"""A1 ablation — "balancing delay paths" across adder architectures.

The paper's conclusion offers two glitch-reduction levers: balancing
delay paths and inserting flipflops.  This bench quantifies the first:
the same 16-bit addition as ripple-carry, carry-select, group
carry-lookahead and Kogge-Stone prefix.  Expected shape: L/F falls
monotonically as the architecture gets better balanced.
"""

from repro.experiments.adder_sweep import (
    adder_architecture_experiment,
    format_adder_sweep,
)

from conftest import vectors


def test_ablation_adder_architectures(run_once):
    n_vectors = vectors(300, 1000)
    data = run_once(
        adder_architecture_experiment, n_bits=16, n_vectors=n_vectors
    )

    print()
    print(format_adder_sweep(data))

    ratio = {r["architecture"]: r["L/F"] for r in data["rows"]}
    assert ratio["ripple"] > ratio["carry-select"]
    assert ratio["ripple"] > ratio["lookahead"] > ratio["kogge-stone"]
    # The best-balanced architecture keeps glitching below 50% of work.
    assert ratio["kogge-stone"] < 0.5
