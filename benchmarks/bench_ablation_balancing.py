"""A4 ablation — balancing delay paths vs inserting flipflops.

The paper's conclusion names both levers; this bench runs them on the
same ripple-carry adder under the same technology model.

Expected shape:
* balancing eliminates ALL useless transitions (L/F = 0) — the
  idealised ``1 + L/F`` bound of Section 4.2 realised exactly;
* pipelining cuts (but need not eliminate) useless transitions;
* both pay: buffers add cells and switching, flipflops add FF + clock
  power.
"""

from repro.experiments.balance import (
    balancing_vs_retiming_experiment,
    format_balance_comparison,
)

from conftest import vectors


def test_ablation_balancing_vs_retiming(run_once):
    n_vectors = vectors(250, 1000)
    data = run_once(
        balancing_vs_retiming_experiment, n_bits=12, n_vectors=n_vectors
    )

    print()
    print(format_balance_comparison(data))
    print(
        f"static skew of original: mean "
        f"{data['skew_report']['mean_skew']:.1f}, "
        f"max {data['skew_report']['max_skew']} "
        f"({data['buffers_inserted']} buffers inserted to balance)"
    )

    rows = data["rows"]
    assert rows["original"]["useless"] > 0
    assert rows["balanced"]["useless"] == 0  # perfect balancing
    assert rows["balanced"]["L/F"] == 0.0
    assert rows["pipelined"]["useless"] < rows["original"]["useless"]
    # Both levers cost something.
    assert rows["balanced"]["cells"] > rows["original"]["cells"]
    assert rows["pipelined"]["flipflops"] > 0
    assert rows["balanced"]["area_mm2"] > rows["original"]["area_mm2"]
