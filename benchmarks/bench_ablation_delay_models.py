"""Ablation — delay-model realism ladder on the 8x8 array multiplier.

The paper uses unit delay (Table 1), then refines to dsum = 2*dcarry
(Table 2), noting the refinement increases measured glitching.  This
bench extends the ladder one step further with a fanout-dependent
(load) delay model.

Expected shape: useful transitions are delay-invariant; useless
transitions grow monotonically as the timing model becomes less
uniform (unit -> sum/carry skew -> load-dependent skew on top).
"""

import random

from repro.circuits.multipliers import build_multiplier_circuit
from repro.core.activity import analyze
from repro.core.report import format_table
from repro.sim.delays import LoadDelay, SumCarryDelay, UnitDelay
from repro.sim.vectors import WordStimulus

from conftest import vectors


def test_ablation_delay_models(run_once):
    n_vectors = vectors(200, 500)

    def experiment():
        circuit, ports = build_multiplier_circuit(8, "array")
        stim = WordStimulus({"x": ports["x"], "y": ports["y"]})
        models = [
            ("unit", UnitDelay()),
            ("dsum=2*dcarry", SumCarryDelay(2, 1)),
            ("load-dependent", LoadDelay(circuit)),
        ]
        rows = []
        for label, model in models:
            result = analyze(
                circuit,
                stim.random(random.Random(1995), n_vectors + 1),
                delay_model=model,
            )
            s = result.summary()
            rows.append(
                {
                    "model": label,
                    "useful": s["useful"],
                    "useless": s["useless"],
                    "L/F": s["L/F"],
                }
            )
        return rows

    rows = run_once(experiment)

    print()
    print(
        format_table(
            ["model", "useful", "useless", "L/F"],
            [[r["model"], r["useful"], r["useless"], r["L/F"]] for r in rows],
            title="Delay-model realism, 8x8 array multiplier",
        )
    )

    useful = {r["model"]: r["useful"] for r in rows}
    assert len(set(useful.values())) == 1, "useful work is delay-invariant"
    useless = [r["useless"] for r in rows]
    assert useless[1] > useless[0], "sum/carry skew adds glitches"
    # Load skew perturbs glitching; it must stay in the glitchy regime.
    assert rows[2]["L/F"] > 0.5
