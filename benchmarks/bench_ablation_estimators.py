"""Ablation — why the paper simulates: probabilistic estimators vs
exact event-driven counting.

Zero-delay switching-activity propagation (the era's cheap estimator)
predicts only *useful* transitions; Najm-style transition densities
capture some multi-transition behaviour.  Neither sees the full glitch
activity the simulator counts.  This bench quantifies the gap on the
8x8 array multiplier — the justification for the paper's
simulation-based method (and for this library).

Expected shape:
    zero-delay estimate  ~=  measured useful rate   (both glitch-blind)
    measured total rate  >>  zero-delay estimate    (glitches dominate)
    density estimate     >   zero-delay estimate    (partially aware)
"""

import random

from repro.circuits.multipliers import build_multiplier_circuit
from repro.core.activity import analyze
from repro.core.report import format_table
from repro.estimate.density import transition_densities
from repro.estimate.probability import switching_activity
from repro.sim.vectors import WordStimulus

from conftest import vectors


def test_ablation_estimators(run_once):
    n_vectors = vectors(400, 1000)

    def experiment():
        circuit, ports = build_multiplier_circuit(8, "array")
        stim = WordStimulus({"x": ports["x"], "y": ports["y"]})
        measured = analyze(
            circuit, stim.random(random.Random(1995), n_vectors + 1)
        )
        monitored = set(measured.per_node)
        zero_delay = sum(
            v for n, v in switching_activity(circuit, 0.5).items()
            if n in monitored
        )
        density = sum(
            v for n, v in transition_densities(circuit, 0.5).items()
            if n in monitored
        )
        return {
            "useful_rate": measured.useful / measured.cycles,
            "total_rate": measured.total_transitions / measured.cycles,
            "zero_delay": zero_delay,
            "density": density,
        }

    data = run_once(experiment)

    print()
    print(
        format_table(
            ["estimator", "transitions / cycle"],
            [
                ["measured useful (simulation)", round(data["useful_rate"], 1)],
                ["measured TOTAL (simulation)", round(data["total_rate"], 1)],
                ["zero-delay switching activity", round(data["zero_delay"], 1)],
                ["transition density (Najm)", round(data["density"], 1)],
            ],
            title="8x8 array multiplier: estimators vs exact counting",
        )
    )

    assert abs(data["zero_delay"] - data["useful_rate"]) < 0.35 * data[
        "useful_rate"
    ]
    assert data["total_rate"] > 1.5 * data["zero_delay"]
    assert data["density"] > data["zero_delay"]
