"""Ablation — why the paper simulates: probabilistic estimators vs
exact glitch-aware counting.

Zero-delay switching-activity propagation (the era's cheap estimator)
predicts only *useful* transitions; Najm-style transition densities
capture some multi-transition behaviour.  Neither sees the full glitch
activity the simulator counts.  This bench drives the
:mod:`repro.experiments.ablation` driver — the same per-net-class
estimate-vs-simulate table ``repro.cli experiment ablation`` prints —
across adder chains and both multiplier architectures, quantifying the
gap that justifies the paper's simulation-based method (and this
library).

Expected shape, per circuit:
    zero-delay estimate  ~=  measured useful rate   (both glitch-blind)
    measured total rate  >>  zero-delay estimate    (glitches dominate
                                                     on unbalanced paths)
    density estimate     >   zero-delay estimate    (partially aware)
"""

from repro.experiments.ablation import (
    estimator_ablation_experiment,
    format_ablation,
)

from conftest import vectors


def test_ablation_estimators(run_once):
    n_vectors = vectors(400, 1000)

    def experiment():
        return estimator_ablation_experiment(
            circuits=("rca8", "rca16", "array8", "wallace8"),
            n_vectors=n_vectors,
        )

    data = run_once(experiment)

    print()
    print(format_ablation(data))

    by_name = {rec["circuit"]: rec for rec in data["circuits"]}
    for rec in data["circuits"]:
        totals = rec["totals"]
        # The zero-delay estimate tracks the measured useful rate...
        assert abs(
            totals["est_useful"] - totals["measured_useful"]
        ) < 0.35 * totals["measured_useful"]
        # ...and the density estimate always exceeds it.
        assert totals["est_density"] > totals["est_useful"]

    # Glitches dominate the unbalanced multiplier (the paper's point):
    # the glitch-blind estimate misses most of the real activity.
    assert by_name["array8"]["gap_vs_zero_delay"] > 1.5
    # The balanced-ish Wallace tree glitches less than the array — the
    # estimator gap is itself a delay-balance signal.
    assert (
        by_name["wallace8"]["gap_vs_zero_delay"]
        < by_name["array8"]["gap_vs_zero_delay"]
    )
