"""Ablation — modelling granularity: FA cells vs gate-level FAs.

DESIGN.md decision 1: the paper simulates full adders as single
two-output cells ("unit delay model for every full adder stage").  This
bench re-runs the RCA activity experiment with the FA decomposed into
XOR/AND/OR gates and compares.

Expected shape: the qualitative picture (useless transitions grow along
the carry chain, L/F near 1 for a 16-bit RCA) survives the granularity
change; absolute counts differ because the gate-level netlist has more
nodes and internal delay structure.
"""

import random

from repro.circuits.adders import build_rca_circuit
from repro.core.activity import analyze
from repro.core.report import format_table
from repro.sim.vectors import WordStimulus

from conftest import vectors


def _run(gate_level: bool, n_vectors: int):
    circuit, ports = build_rca_circuit(
        16, with_cin=True, gate_level=gate_level,
        name=f"rca16_{'gates' if gate_level else 'cells'}",
    )
    stim = WordStimulus(
        {"a": ports["a"], "b": ports["b"], "cin": [ports["cin"]]}
    )
    result = analyze(
        circuit, stim.random(random.Random(1995), n_vectors + 1)
    )
    return circuit, result


def test_ablation_fa_granularity(run_once):
    n_vectors = vectors(500, 2000)

    def experiment():
        out = {}
        for gate_level in (False, True):
            circuit, result = _run(gate_level, n_vectors)
            out["gates" if gate_level else "cells"] = {
                "cells": len(circuit.cells),
                "summary": result.summary(),
            }
        return out

    data = run_once(experiment)

    print()
    print(
        format_table(
            ["granularity", "cells", "total", "useful", "useless", "L/F"],
            [
                [
                    name,
                    d["cells"],
                    d["summary"]["total"],
                    d["summary"]["useful"],
                    d["summary"]["useless"],
                    d["summary"]["L/F"],
                ]
                for name, d in data.items()
            ],
            title="FA modelling granularity, 16-bit RCA",
        )
    )

    cells = data["cells"]["summary"]
    gates = data["gates"]["summary"]
    assert data["gates"]["cells"] > 4 * data["cells"]["cells"]
    assert gates["total"] > cells["total"]  # more monitored nodes
    # The glitch-dominated character survives the granularity change.
    assert 0.5 < cells["L/F"] < 1.5
    assert gates["L/F"] > 0.4
