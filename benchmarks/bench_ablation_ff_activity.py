"""A3 ablation — the paper's 50% flipflop-activity assumption.

Footnote 1: "It is realistic to assume that on average the input of a
flipflop in the circuit is constant for about 50% of the time".  The
paper multiplies a pre-characterised single-FF power (at that activity)
by the FF count.  This bench measures the actual mean D-input toggle
probability across all flipflops of the pipelined direction detector.

Expected shape: the measured activity sits in the same band as the
assumption (tenths, not percents), so the linear-in-count FF power
model is justified.
"""

from repro.core.report import format_table
from repro.experiments.retiming_power import ff_activity_experiment

from conftest import vectors


def test_ablation_ff_activity(run_once):
    n_vectors = vectors(100, 400)
    data = run_once(
        ff_activity_experiment, stages=(0, 2, 4), n_vectors=n_vectors
    )

    print()
    print(
        format_table(
            ["extra stages", "flipflops", "mean D activity"],
            [
                [r["extra_stages"], r["flipflops"], r["mean_d_activity"]]
                for r in data["rows"]
            ],
            title=f"Measured FF input activity (assumed: {data['assumed']})",
        )
    )

    for row in data["rows"]:
        assert 0.2 < row["mean_d_activity"] < 0.8, (
            "measured FF activity should be the same order as the 50% "
            "assumption"
        )
    ffs = [r["flipflops"] for r in data["rows"]]
    assert ffs == sorted(ffs)
