"""A2 ablation — the paper's random-input premise (Section 3.2).

The paper argues multiplexing and source coding destroy signal
correlation, so random inputs model practice.  This bench sweeps a
lag-one correlated stream from fully random (flip probability 0.5)
down to strongly correlated (0.02) on the 8x8 multipliers.

Expected shape: total activity falls with correlation, but the
architecture ordering (array glitches more than Wallace) persists at
every correlation level — the paper's conclusions are robust to the
random-input assumption.
"""

from repro.experiments.multipliers import correlation_experiment, format_rows

from conftest import vectors


def test_ablation_input_correlation(run_once):
    n_vectors = vectors(200, 500)
    data = run_once(
        correlation_experiment,
        n_vectors=n_vectors,
        flip_probabilities=(0.5, 0.25, 0.1, 0.02),
    )

    print()
    print(format_rows(data, "Input correlation sweep (flip prob 0.5 = random)"))

    rows = data["rows"]
    for arch in ("array", "wallace"):
        series = [r for r in rows if r["architecture"] == arch]
        totals = [r["total"] for r in series]
        assert totals == sorted(totals, reverse=True), (
            "activity must fall with correlation"
        )
    by_fp = {}
    for r in rows:
        by_fp.setdefault(r["flip_probability"], {})[r["architecture"]] = r
    for fp, pair in by_fp.items():
        assert pair["array"]["L/F"] > pair["wallace"]["L/F"], fp
