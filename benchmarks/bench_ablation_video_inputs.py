"""A5 ablation — random-input assumption checked on video-like stimulus.

Paper Section 4.2 claims video correlation is destroyed right after the
absolute differences, so random inputs are representative.  This bench
runs the detector on a moving synthetic edge sequence and on equal-
length random stimulus.

Expected shape: BOTH runs land firmly in the glitch-dominated regime
(L/F >> 1) — the paper's reduction-potential conclusion does not hinge
on the random-input assumption.  (On correlated video the useful work
drops while ripple glitching persists, so L/F is typically even larger
than under random inputs.)
"""

from repro.core.report import format_table
from repro.experiments.video import video_vs_random_experiment

from conftest import paper_scale


def test_ablation_video_inputs(run_once):
    size = dict(width=32, height=16, n_fields=4) if paper_scale() else dict(
        width=24, height=12, n_fields=3
    )
    data = run_once(video_vs_random_experiment, **size)

    print()
    print(
        format_table(
            ["stimulus", "total", "useful", "useless", "L/F"],
            [
                [
                    name,
                    data[name]["total"],
                    data[name]["useful"],
                    data[name]["useless"],
                    data[name]["L/F"],
                ]
                for name in ("video", "random")
            ],
            title=f"Detector activity over {data['sites']} sites",
        )
    )

    assert data["video"]["L/F"] > 2.0
    assert data["random"]["L/F"] > 2.0
    # Correlated video does not *reduce* the glitch dominance.
    assert data["video"]["L/F"] >= 0.5 * data["random"]["L/F"]
