"""Infrastructure benchmark — estimator throughput on the compiled IR.

Tracks the fused estimation backend (:mod:`repro.estimate`) the same
way ``bench_sim_throughput.py`` tracks the simulators: whole-netlist
signal-probability and transition-density passes on the 16x16 array
multiplier, measured with pytest-benchmark statistics.  The reference
(seed) implementations run alongside so the fused/reference speedup is
part of the committed trajectory — the acceptance floor for the
compiled estimators is 10x on this workload.

``benchmarks/run_benchmarks.py`` folds these medians into
``BENCH_sim.json`` and its ``--compare`` gate, so an estimator
regression fails CI like a simulator regression does.
"""

import pytest

from repro.circuits.multipliers import build_multiplier_circuit
from repro.estimate.density import transition_densities
from repro.estimate.probability import signal_probabilities
from repro.estimate.reference import (
    signal_probabilities_reference,
    transition_densities_reference,
)

_PASSES = {
    "probability": signal_probabilities,
    "density": transition_densities,
    "probability-reference": signal_probabilities_reference,
    "density-reference": transition_densities_reference,
}


@pytest.fixture(scope="module")
def array16():
    circuit, _ = build_multiplier_circuit(16, "array")
    # Warm the compile memo: the estimators share the simulators'
    # compiled IR, so a process measuring throughput never pays the
    # one-time compile inside the timed region.
    signal_probabilities(circuit, 0.5)
    return circuit


@pytest.mark.parametrize(
    "estimator",
    ["probability", "density", "probability-reference",
     "density-reference"],
)
def test_estimate_throughput_array16(benchmark, array16, estimator):
    fn = _PASSES[estimator]
    result = benchmark(fn, array16, 0.5)
    assert len(result) > 500  # whole-netlist map, not a stub
