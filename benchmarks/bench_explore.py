"""Infrastructure benchmark — design-space exploration throughput.

Measures candidates evaluated per second on the 8-bit ripple-carry
adder's default transform space for the two search regimes:

* ``sim-everything`` — exhaustive search on the from-scratch reference
  path (``INCREMENTAL_EXPANSION`` off): every candidate is rebuilt,
  recompiled and re-estimated from nothing and every unique one pays a
  glitch-exact simulation (the oracle baseline);
* ``estimate-pruned`` — beam search on the incremental path:
  expansions replay structural deltas, recompute only edit cones, and
  only the surviving frontier is simulated.

The per-candidate speedup of the estimate-pruned regime is the whole
point of the subsystem, so it is part of the committed perf
trajectory: ``benchmarks/run_benchmarks.py`` folds both medians into
``BENCH_sim.json`` and the ``--compare`` gate fails CI on regression
like any simulator or estimator workload.
"""

import pytest

from repro.circuits.adders import build_rca_circuit
from repro.explore import search
from repro.explore.search import explore

_N_VECTORS = 60
_STRATEGY = {
    "sim-everything": "exhaustive",
    "estimate-pruned": "beam",
}
_INCREMENTAL = {
    "sim-everything": False,
    "estimate-pruned": True,
}
#: Unique candidates in rca8's default space after fingerprint dedup.
#: run_benchmarks.py divides the median by this to get candidates/s —
#: the assertion below keeps the two in lockstep, so a change to the
#: default space cannot silently mis-scale the committed trajectory.
N_CANDIDATES = 10


@pytest.fixture(scope="module")
def rca8():
    circuit, _ = build_rca_circuit(8, with_cin=False)
    # Warm the compile/fingerprint memos so the timed region measures
    # search work, not one-time setup.
    explore(circuit, strategy="beam", n_vectors=4)
    return circuit


@pytest.mark.parametrize("mode", ["sim-everything", "estimate-pruned"])
def test_explore_throughput_rca8(benchmark, rca8, mode, monkeypatch):
    monkeypatch.setattr(search, "INCREMENTAL_EXPANSION", _INCREMENTAL[mode])
    result = benchmark(
        explore, rca8, strategy=_STRATEGY[mode], n_vectors=_N_VECTORS
    )
    assert len(result.candidates) == N_CANDIDATES
    assert any(c.on_front for c in result.candidates)
    if mode == "estimate-pruned":
        assert result.n_simulated < len(
            [c for c in result.candidates if c.feasible]
        )
