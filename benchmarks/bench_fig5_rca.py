"""E1 — paper Figure 5: per-bit useful/useless transitions of a 16-bit
ripple-carry adder under random inputs.

Paper reference values (16 bits, 4000 inputs): 119002 total, 63334
useful, 55668 useless, L/F = 0.88.  The closed-form model (eqs. 2-7)
reproduces those exactly; the simulation must agree with the model
within sampling noise.
"""

import pytest

from repro.experiments.rca import figure5_experiment, format_figure5

from conftest import vectors


def test_fig5_rca(run_once):
    n_vectors = vectors(1000, 4000)
    data = run_once(figure5_experiment, n_bits=16, n_vectors=n_vectors)

    print()
    print(format_figure5(data))
    sim, ana = data["simulated"], data["analytic"]
    print(
        f"\ntotals   simulated: {sim['total']} / {sim['useful']} / "
        f"{sim['useless']}  L/F={sim['L/F']}"
    )
    print(
        f"totals   analytic : {ana['total']:.0f} / {ana['useful']:.0f} / "
        f"{ana['useless']:.0f}  L/F={ana['L/F']:.2f}"
    )
    print("totals   paper    : 119002 / 63334 / 55668  L/F=0.88 (at 4000)")

    # Shape assertions: simulation agrees with the closed forms, which
    # agree with the paper.
    assert data["total_rel_error"] < 0.05
    assert sim["L/F"] == pytest.approx(0.88, abs=0.08)
    assert ana["L/F"] == pytest.approx(0.88, abs=0.01)
    # Per-bit profile: bit 0 sum never glitches; high bits do.
    assert data["per_bit"][0]["sum_useless_sim"] == 0
    assert data["per_bit"][15]["sum_useless_sim"] > 0.5 * n_vectors
