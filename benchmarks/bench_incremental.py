"""Microbenchmarks of the incremental-recompute stack, stage by stage.

``bench_explore.py`` measures the end-to-end payoff (estimate-pruned
beam vs the from-scratch sim-everything oracle); this file isolates
*where* that payoff comes from, one pair of workloads per layer:

* ``compile`` — splicing a compiled circuit from the parent's via
  :func:`~repro.netlist.compiled.compile_delta` (fused kernels rebuilt
  only for edit-cone cells) vs a full
  :func:`~repro.netlist.compiled.compile_circuit` build;
* ``estimate`` — cone-limited probability/density re-estimation
  (:func:`~repro.estimate.workload.incremental_workload`) vs the full
  fixed-point passes (:func:`~repro.estimate.workload.workload_snapshot`);
* ``expand`` — a beam candidate expansion over rca8's default space on
  the incremental path (delta replay + cone recompute + fingerprint
  dedup) vs the pre-incremental reference path.

Each ``delta`` workload's median lands in ``BENCH_sim.json`` next to
its ``full`` twin with a derived ``speedup_vs_full``, so the committed
perf trajectory shows the incremental layers' value separately from
search-policy effects.
"""

import pytest

from repro.circuits.adders import build_rca_circuit
from repro.circuits.multipliers import build_multiplier_circuit
from repro.estimate.workload import incremental_workload, workload_snapshot
from repro.explore import search
from repro.explore.cost import CostContext
from repro.explore.specs import TransformSpec, default_space
from repro.netlist.compiled import compile_circuit, compile_delta
from repro.netlist.delta import (
    cone_net_indices,
    full_fanout_cone,
    touched_cell_indices,
)
from repro.sim.delays import UnitDelay
from repro.sim.vectors import UniformStimulus

_ROUNDS = 20


@pytest.fixture(scope="module")
def retime_delta_array8():
    """(parent, delta, replayed) for array8's retime(stages=1) edit.

    A representative *local* edit: the inserted pipeline registers and
    rewired consumers cone to ~20% of the netlist, which is what beam
    expansions mostly look like.  (A ``balance`` edit on the same
    circuit cones to ~80% and shows the incremental floor instead.)
    """
    circuit, _ = build_multiplier_circuit(8, "array")
    spec = TransformSpec.make("retime", stages=1)
    _child, _info, delta = spec.apply_delta(circuit, UnitDelay())
    assert delta.is_pure_addition
    return circuit, delta, delta.apply(circuit)


@pytest.mark.parametrize("mode", ["delta", "full"])
def test_incremental_compile_array8(benchmark, retime_delta_array8, mode):
    parent, delta, _replayed = retime_delta_array8
    compile_circuit(parent)  # parent build is shared, not under test

    # Both builds memoize on the child object, so each round compiles
    # a freshly replayed (structurally identical) child.
    def setup():
        return (delta.apply(parent),), {}

    if mode == "delta":
        fn = lambda child: compile_delta(parent, delta, child)  # noqa: E731
    else:
        fn = lambda child: compile_circuit(child)  # noqa: E731
    cc = benchmark.pedantic(fn, setup=setup, rounds=_ROUNDS)
    assert cc.n_nets == len(_replayed.nets)


@pytest.mark.parametrize("mode", ["delta", "full"])
def test_incremental_estimate_array8(benchmark, retime_delta_array8, mode):
    parent, delta, replayed = retime_delta_array8
    stimulus = UniformStimulus()
    snapshot = workload_snapshot(parent, stimulus)
    cc = compile_delta(parent, delta, replayed)
    cone = full_fanout_cone(replayed, touched_cell_indices(replayed, delta))
    nets = cone_net_indices(replayed, cone, delta)
    if mode == "delta":
        result = benchmark(
            incremental_workload,
            replayed, cc, snapshot, cone, nets, stimulus,
        )
        assert result is not None
        assert result.result == workload_snapshot(replayed, stimulus).result
    else:
        result = benchmark(workload_snapshot, replayed, stimulus)
        assert result is not None


@pytest.mark.parametrize("mode", ["delta", "full"])
def test_incremental_expand_rca8(benchmark, mode, monkeypatch):
    circuit, _ = build_rca_circuit(8, with_cin=False)
    space = default_space()
    delay_model = search.resolve_delay(space.delay)
    stimulus = UniformStimulus()
    context = CostContext()
    monkeypatch.setattr(search, "INCREMENTAL_EXPANSION", mode == "delta")
    search._EXPAND_STATS.clear()
    # Warm the per-parent transform memo (and compile/fingerprint
    # memos) so the timed region measures steady-state expansion.
    search._expand_candidates(
        circuit, space, delay_model, stimulus, context, 4
    )
    candidates, n_enumerated = benchmark(
        search._expand_candidates,
        circuit, space, delay_model, stimulus, context, 4,
    )
    assert len(candidates) == 10
    assert n_enumerated == 17
