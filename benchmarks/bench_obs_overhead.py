"""Infrastructure benchmark — tracing overhead on the event backend.

Not a paper artefact: measures the 16x16 array-multiplier workload
(the same one ``bench_sim_throughput.py`` tracks as ``event/16x16``)
with the observability recorder **enabled**, so the committed
trajectory carries a ``trace-overhead/16x16`` row whose
``speedup_vs_event`` ratio shows what ``--trace`` costs.  The
instrumentation charges hot loops once per batch, so the ratio should
sit at ~1.0; a drop means someone moved a hook into an inner loop.

The row also records ``disabled_overhead_frac``: the measured number
of hook invocations per run times the microbenched per-call cost of a
disabled hook, as a fraction of the untraced run time.  That is the
price every *untraced* run pays for having the instrumentation
compiled in — the ISSUE budgets it under 2%.
"""

import random
import time


from repro.circuits.multipliers import build_multiplier_circuit
from repro.core.activity import ActivityRun
from repro.obs import trace
from repro.sim.vectors import WordStimulus

N_BITS = 16
N_CYCLES = 20


def _workload():
    circuit, ports = build_multiplier_circuit(N_BITS, "array")
    stim = WordStimulus({"x": ports["x"], "y": ports["y"]})
    rng = random.Random(42)
    vectors = [dict(v) for v in stim.random(rng, N_CYCLES + 1)]
    return circuit, vectors


def _disabled_profile(run, vectors):
    """(hook calls per run, per-call cost, untraced run time)."""
    trace.disable()
    t0 = time.perf_counter()
    run.run(iter(vectors))
    t_run = time.perf_counter() - t0

    calls = {"n": 0}
    real_active = trace.active

    def counting_active():
        calls["n"] += 1
        return real_active()

    trace.active = counting_active
    try:
        run.run(iter(vectors))
    finally:
        trace.active = real_active

    reps = 50_000
    t0 = time.perf_counter()
    for _ in range(reps):
        trace.span("x")
    per_call = (time.perf_counter() - t0) / reps
    return calls["n"], per_call, t_run


def test_trace_overhead_event16(benchmark):
    circuit, vectors = _workload()
    run = ActivityRun(circuit, backend="event")
    run.run(iter(vectors))  # warm the compile memo

    def simulate_traced():
        with trace.capture():
            return run.run(iter(vectors)).total_transitions

    total = benchmark.pedantic(simulate_traced, rounds=3, iterations=1)
    assert total > 0

    n_calls, per_call, t_run = _disabled_profile(run, vectors)
    frac = (n_calls * per_call) / t_run
    benchmark.extra_info["hook_calls_per_run"] = n_calls
    benchmark.extra_info["disabled_ns_per_call"] = round(per_call * 1e9, 1)
    benchmark.extra_info["disabled_overhead_frac"] = round(frac, 6)
    assert frac < 0.02, (
        f"{n_calls} hook calls x {per_call * 1e9:.0f}ns is "
        f"{frac:.2%} of the {t_run * 1e3:.1f}ms untraced run"
    )
