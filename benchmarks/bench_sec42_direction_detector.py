"""E4 — paper Section 4.2: direction-detector transition activity.

Paper values (unit delay, 4320 random inputs): 272842 useful, 1033970
useless, L/F = 3.79, balanced-activity reduction bound 1 + 3.79 = 4.8.

Shape: the reconstruction must be firmly in the glitch-dominated
regime (L/F >> 1), with every abs-difference stage contributing.
"""

import pytest

from repro.core.report import format_table
from repro.experiments.detector import section42_experiment

from conftest import vectors


def test_sec42_direction_detector(run_once):
    n_vectors = vectors(600, 4320)
    data = run_once(section42_experiment, n_vectors=n_vectors)

    print()
    print(
        format_table(
            ["metric", "repro", "paper"],
            [
                ["useful", data["useful"], data["paper"]["useful"]],
                ["useless", data["useless"], data["paper"]["useless"]],
                ["L/F", data["L/F"], data["paper"]["L/F"]],
                [
                    "reduction bound",
                    data["reduction_bound"],
                    data["paper"]["reduction_bound"],
                ],
            ],
            title=f"Section 4.2 — {n_vectors} random inputs",
        )
    )

    assert data["L/F"] > 2.5  # paper: 3.79; ours lands ~4.1
    assert data["L/F"] < 8.0
    assert data["reduction_bound"] == pytest.approx(1 + data["L/F"])
    for stage in data["per_stage"].values():
        assert stage["useless"] > stage["useful"]  # every ripple stage glitches
