"""Service-layer benchmark: warm vs cold result-cache runs.

The service's value proposition is that repeated workloads — many
users regenerating the same paper artefacts — cost a cache lookup
instead of a simulation.  This bench measures both sides on the
Figure 5 workload: a cold run (simulate + store) and a warm run
(served from the content-addressed store), asserting the warm path is
dramatically faster *and* bit-identical.

Run with ``pytest -s`` to see the measured speedup.
"""

from __future__ import annotations

import time

import pytest

from conftest import vectors
from repro.circuits.catalog import build_named_circuit
from repro.service.runner import cached_run
from repro.service.store import ResultStore
from repro.sim.vectors import UniformStimulus

pytestmark = pytest.mark.benchmark


@pytest.mark.parametrize("phase", ["cold", "warm"])
def test_cache_cold_vs_warm(benchmark, tmp_path, phase):
    """One cached_run per phase; the warm phase must be a pure hit."""
    n = vectors(400, 4000)
    circuit, stim = build_named_circuit("rca16")
    spec = UniformStimulus(seed=1995)
    store = ResultStore(tmp_path)
    if phase == "warm":
        cached_run(circuit, stim, spec, n, store=store)  # prime
        assert len(store) == 1

    result = benchmark.pedantic(
        cached_run,
        args=(circuit, stim, spec, n),
        kwargs={"store": store},
        rounds=1, iterations=1,
    )
    assert result.cycles == n
    if phase == "warm":
        assert store.hits >= 1


def test_warm_speedup_and_exactness(tmp_path, capsys):
    """Direct wall-clock comparison with a bit-exactness check."""
    n = vectors(400, 4000)
    circuit, stim = build_named_circuit("rca16")
    spec = UniformStimulus(seed=1995)
    store = ResultStore(tmp_path)

    t0 = time.perf_counter()
    cold = cached_run(circuit, stim, spec, n, store=store)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = cached_run(circuit, stim, spec, n, store=store)
    warm_s = time.perf_counter() - t0

    assert store.hits == 1
    assert warm.summary() == cold.summary()
    assert {k: vars(v) for k, v in warm.per_node.items()} == {
        k: vars(v) for k, v in cold.per_node.items()
    }
    speedup = cold_s / warm_s if warm_s else float("inf")
    with capsys.disabled():
        print(
            f"\n  fig5 workload ({n} vectors): cold {cold_s * 1000:.1f} ms, "
            f"warm {warm_s * 1000:.2f} ms  ({speedup:.0f}x)"
        )
    # Conservative bound: a store hit must beat resimulation handily.
    assert warm_s < cold_s / 5
