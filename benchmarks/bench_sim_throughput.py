"""Infrastructure benchmark — raw simulation throughput per backend.

Not a paper artefact: these actually use pytest-benchmark's statistics
(multiple rounds) to track simulator speed on the array multipliers,
the heaviest netlists in the reproduction.

* ``test_sim_throughput_array16`` is the historical series (event-driven
  engine, 16x16, 20 cycles) — its trajectory shows the effect of the
  compiled-IR / timing-wheel work on the hot loop.
* ``test_sim_throughput_backends`` parametrizes the same workload over
  the pluggable backends (event-driven vs waveform vs bit-parallel)
  and adds a 32x32 case, so backend wins are tracked per size.
* ``test_sim_throughput_codegen_tiers`` measures the generated-kernel
  tiers (codegen and, with the ``[perf]`` extra, vector) on 256-cycle
  streams — long enough to amortize per-run setup, which is the regime
  those tiers exist for.  Cross-tier comparisons use ``cycles_per_s``,
  so the differing cycle counts don't skew the speedup columns.
* ``test_sim_throughput_farm`` runs the ≥100k-cell ``farm16`` stress
  workload through the vector backend, glitch-exact.

``benchmarks/run_benchmarks.py`` runs this module through
pytest-benchmark's JSON export and refreshes the committed
``BENCH_sim.json`` trajectory at the repo root.
"""

import random

import pytest

from repro.circuits.multipliers import build_multiplier_circuit
from repro.core.activity import ActivityRun
from repro.sim.engine import Simulator
from repro.sim.vector import numpy_available
from repro.sim.vectors import WordStimulus

FARM_CYCLES = 20


def _workload(n_bits: int, n_cycles: int):
    circuit, ports = build_multiplier_circuit(n_bits, "array")
    stim = WordStimulus({"x": ports["x"], "y": ports["y"]})
    rng = random.Random(42)
    vectors = [dict(v) for v in stim.random(rng, n_cycles + 1)]
    return circuit, vectors


def test_sim_throughput_array16(benchmark):
    circuit, vectors = _workload(16, 20)

    def run_20_cycles():
        sim = Simulator(circuit)
        sim.settle(vectors[0])
        total = 0
        for vec in vectors[1:]:
            total += sim.step(vec).total_toggles()
        return total

    total = benchmark(run_20_cycles)
    assert total > 0


@pytest.mark.parametrize("n_bits,n_cycles", [(16, 20), (32, 10)])
@pytest.mark.parametrize("backend", ["event", "waveform", "bitparallel"])
def test_sim_throughput_backends(benchmark, n_bits, n_cycles, backend):
    circuit, vectors = _workload(n_bits, n_cycles)
    run = ActivityRun(circuit, backend=backend)

    def simulate():
        return run.run(iter(vectors)).total_transitions

    total = benchmark.pedantic(simulate, rounds=3, iterations=1)
    assert total > 0


@pytest.mark.parametrize("n_bits,n_cycles", [(16, 256), (32, 256)])
@pytest.mark.parametrize("backend", ["codegen", "vector"])
def test_sim_throughput_codegen_tiers(benchmark, n_bits, n_cycles, backend):
    if backend == "vector" and not numpy_available():
        pytest.skip("vector backend needs the [perf] extra (numpy)")
    circuit, vectors = _workload(n_bits, n_cycles)
    run = ActivityRun(circuit, backend=backend)
    run.run(iter(vectors))  # warm the per-circuit compiled kernels

    def simulate():
        return run.run(iter(vectors)).total_transitions

    total = benchmark.pedantic(simulate, rounds=3, iterations=1)
    assert total > 0


def test_sim_throughput_farm(benchmark):
    if not numpy_available():
        pytest.skip("vector backend needs the [perf] extra (numpy)")
    from repro.circuits.catalog import build_named_circuit
    from repro.sim.vectors import UniformStimulus

    circuit, stim = build_named_circuit("farm16")
    vectors = [
        dict(v) for v in UniformStimulus(seed=42).vectors(stim, FARM_CYCLES + 1)
    ]
    run = ActivityRun(circuit, backend="vector")
    run.run(iter(vectors))  # warm the compile + plan caches

    def simulate():
        return run.run(iter(vectors)).total_transitions

    total = benchmark.pedantic(simulate, rounds=2, iterations=1)
    assert total > 0
