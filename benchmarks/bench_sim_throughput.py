"""Infrastructure benchmark — raw event-driven simulation throughput.

Not a paper artefact: this one actually uses pytest-benchmark's
statistics (multiple rounds) to track the simulator's speed on the
16x16 array multiplier, the heaviest netlist in the reproduction.
Useful for catching performance regressions in the hot loop.
"""

import random

from repro.circuits.multipliers import build_multiplier_circuit
from repro.sim.engine import Simulator
from repro.sim.vectors import WordStimulus


def test_sim_throughput_array16(benchmark):
    circuit, ports = build_multiplier_circuit(16, "array")
    stim = WordStimulus({"x": ports["x"], "y": ports["y"]})
    rng = random.Random(42)
    vectors = [dict(v) for v in stim.random(rng, 21)]

    def run_20_cycles():
        sim = Simulator(circuit)
        sim.settle(vectors[0])
        total = 0
        for vec in vectors[1:]:
            total += sim.step(vec).total_toggles()
        return total

    total = benchmark(run_20_cycles)
    assert total > 0
