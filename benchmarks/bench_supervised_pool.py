"""Supervision overhead benchmark: supervised pool vs the work itself.

Fault tolerance is only free if the supervisor's bookkeeping (private
dispatch pipes, exitcode watching, deadline checks) stays negligible
next to real task cost, and if recovering from an injected crash
costs one retried task — not a stalled sweep.  Three measurements on
the Figure 5 workload, scaled down:

* sequential in-process execution (the floor),
* the supervised pool with healthy workers,
* the supervised pool with every first attempt crash-injected.

Run with ``pytest -s`` to see the measured ratios.
"""

from __future__ import annotations

import time

import pytest

from conftest import vectors
from repro.service import faults
from repro.service.jobs import JobPoint, _compute_point
from repro.service.pool import RetryPolicy, run_supervised
from repro.sim.vectors import UniformStimulus

pytestmark = pytest.mark.benchmark


def _docs(n_points: int, n_vectors: int):
    return [
        JobPoint(
            "rca16", "unit", UniformStimulus(seed=s), n_vectors
        ).to_dict()
        for s in range(1, n_points + 1)
    ]


@pytest.mark.parametrize("mode", ["sequential", "pool", "pool-chaos"])
def test_supervised_fanout(benchmark, mode):
    """One full fan-out per mode; all three must agree bit-exactly."""
    faults.disarm()
    docs = _docs(4, vectors(60, 400))
    policy = RetryPolicy(max_attempts=3, backoff_base_s=0.0, seed=1)
    processes = None if mode == "sequential" else 2
    plan = None
    if mode == "pool-chaos":
        plan = faults.FaultPlan(
            seed=7,
            faults={"worker.crash": faults.FaultSpec(rate=1.0)},
        )

    def run():
        if plan is not None:
            with faults.armed(plan):
                return run_supervised(
                    _compute_point, docs,
                    processes=processes, policy=policy,
                )
        return run_supervised(
            _compute_point, docs, processes=processes, policy=policy,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.completed == len(docs)
    assert not result.failures and not result.interrupted
    if mode == "pool-chaos":
        assert result.n_retries == len(docs)  # every task crashed once
    reference = [_compute_point(doc) for doc in docs]
    assert result.payloads == reference


def test_crash_recovery_cost(capsys):
    """Wall-clock: a crash-riddled sweep vs a healthy one."""
    faults.disarm()
    docs = _docs(4, vectors(60, 400))
    policy = RetryPolicy(max_attempts=3, backoff_base_s=0.0, seed=1)

    t0 = time.perf_counter()
    healthy = run_supervised(
        _compute_point, docs, processes=2, policy=policy
    )
    healthy_s = time.perf_counter() - t0

    plan = faults.FaultPlan(
        seed=7, faults={"worker.crash": faults.FaultSpec(rate=1.0)}
    )
    t0 = time.perf_counter()
    with faults.armed(plan):
        chaotic = run_supervised(
            _compute_point, docs, processes=2, policy=policy
        )
    chaos_s = time.perf_counter() - t0

    assert chaotic.payloads == healthy.payloads
    assert chaotic.n_retries == len(docs)
    with capsys.disabled():
        print(
            f"\n[supervised pool] healthy {healthy_s * 1e3:.0f} ms, "
            f"all-crash {chaos_s * 1e3:.0f} ms "
            f"({chaos_s / max(healthy_s, 1e-9):.1f}x; "
            f"{chaotic.n_retries} respawn+retry cycles)"
        )
