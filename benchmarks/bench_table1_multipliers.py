"""E2 — paper Table 1: array vs Wallace-tree multipliers, unit delay.

Paper values (500 random inputs):

    | arch    | size  | total  | useful | useless | L/F  |
    | array   | 8x8   | 58858  | 23418  | 35440   | 1.51 |
    | array   | 16x16 | 438575 | 102845 | 335730  | 3.26 |
    | wallace | 8x8   | 50824  | 39608  | 11216   | 0.28 |
    | wallace | 16x16 | 200380 | 173330 | 27050   | 0.16 |

Shape requirements: the array's useless count and L/F dwarf the
Wallace tree's at both sizes, and the array degrades with size.
"""

from repro.experiments.multipliers import format_rows, table1_experiment

from conftest import vectors


def test_table1_multipliers(run_once):
    n_vectors = vectors(200, 500)
    data = run_once(table1_experiment, n_vectors=n_vectors)

    print()
    print(format_rows(data, f"Table 1 — unit delay, {n_vectors} inputs"))
    print("paper: array 1.51 / 3.26; wallace 0.28 / 0.16 (L/F)")

    rows = {(r["architecture"], r["size"]): r for r in data["rows"]}
    for size in ("8x8", "16x16"):
        assert (
            rows[("array", size)]["L/F"] > 2.5 * rows[("wallace", size)]["L/F"]
        )
        assert (
            rows[("array", size)]["useless"]
            > 2 * rows[("wallace", size)]["useless"]
        )
    assert rows[("array", "16x16")]["L/F"] > rows[("array", "8x8")]["L/F"]
    # Wallace has at least comparable useful work (more gates, more F).
    assert (
        rows[("wallace", "16x16")]["useful"]
        > rows[("array", "16x16")]["useful"]
    )
