"""E3 — paper Table 2: realistic full-adder timing dsum = 2 * dcarry.

Paper values (8x8, 500 random inputs):

    |          | array             | wallace           |
    | delay    | d=d     d=2d      | d=d     d=2d      |
    | useful F | 23552   23552     | 38786   38786     |
    | useless L| 34346   47340     | 11274   24762     |
    | L/F      | 1.46    2.01      | 0.29    0.64      |

Shape: doubling the sum delay inflates useless activity in both
architectures while leaving useful counts untouched, and the array
stays far worse than the Wallace tree.
"""

from repro.experiments.multipliers import format_rows, table2_experiment

from conftest import vectors


def test_table2_delay_imbalance(run_once):
    n_vectors = vectors(200, 500)
    data = run_once(table2_experiment, n_vectors=n_vectors)

    print()
    print(format_rows(data, f"Table 2 — 8x8, {n_vectors} inputs"))
    print("paper L/F: array 1.46 -> 2.01, wallace 0.29 -> 0.64")

    rows = {(r["architecture"], r["delay"]): r for r in data["rows"]}
    for arch in ("array", "wallace"):
        balanced = rows[(arch, "dsum=dcarry")]
        skewed = rows[(arch, "dsum=2*dcarry")]
        assert skewed["useful"] == balanced["useful"]
        assert skewed["useless"] > 1.2 * balanced["useless"]
        assert skewed["L/F"] > balanced["L/F"]
    assert (
        rows[("array", "dsum=2*dcarry")]["useless"]
        > rows[("wallace", "dsum=2*dcarry")]["useless"]
    )
