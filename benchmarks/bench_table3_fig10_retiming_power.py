"""E5 — paper Table 3 + Figure 10: the optimum retiming for power.

Paper values (four direction-detector layouts at 5 MHz):

    | circuit        | 1    | 2    | 3    | 4    |
    | flipflops      | 48   | 174  | 218  | 350  |
    | clock cap (pF) | 3.2  | 10.5 | 12.8 | 19.9 |
    | logic (mW)     | 21.8 | 9.7  | 7.5  | 6.1  |
    | flipflop (mW)  | 0.9  | 3.3  | 4.1  | 6.6  |
    | clock (mW)     | 0.5  | 1.5  | 1.8  | 2.8  |
    | total (mW)     | 23.2 | 14.5 | 13.4 | 15.5 |

Shape requirements reproduced here: logic power falls monotonically
(~3.6x first to last in the paper), flipflop and clock power rise with
the flipflop count, and the TOTAL power has an interior minimum —
i.e. an optimum retiming frequency for power exists (Figure 10).
"""

from repro.experiments.retiming_power import format_table3, table3_experiment

from conftest import vectors


def test_table3_fig10_retiming_power(run_once):
    n_vectors = vectors(120, 500)
    data = run_once(
        table3_experiment, stages=(0, 1, 2, 4), n_vectors=n_vectors
    )

    print()
    print(format_table3(data))
    print(
        "paper: logic 21.8->6.1 mW (3.6x), total minimum at circuit 3 "
        "(218 FFs)"
    )

    rows = data["rows"]
    assert rows[0]["flipflops"] == 48  # paper circuit 1 exactly

    logic = [r["logic_mW"] for r in rows]
    assert all(a > b for a, b in zip(logic, logic[1:]))
    assert data["logic_power_ratio_first_to_last"] > 2.0

    for key in ("flipflop_mW", "clock_mW", "flipflops", "area_mm2"):
        series = [r[key] for r in rows]
        assert all(a < b for a, b in zip(series, series[1:])), key

    totals = [r["total_mW"] for r in rows]
    idx = data["optimum_index"]
    assert totals[idx] == min(totals)
    assert 0 < idx, "minimum must be interior (deeper than circuit 1)"
    # Glitch activity collapses with pipelining depth.
    assert rows[-1]["L/F"] < rows[0]["L/F"]
