"""E6 — paper Section 3.1 / Figure 3: the worst-case ripple.

The constructive stimulus (alternating generate/kill previous operands,
all-propagate new operands) makes the top carry C_N and sum S_{N-1}
toggle exactly N times in a single clock cycle; the probability of
hitting this with random inputs is 3 * (1/8)^N — negligible already for
small N, which is why the paper turns to average-case analysis.
"""

from repro.core.report import format_table
from repro.experiments.rca import worst_case_experiment

from conftest import paper_scale


def test_worst_case_rca(run_once):
    sizes = (4, 8, 16, 24) if paper_scale() else (4, 8, 16)

    def sweep():
        return [worst_case_experiment(n) for n in sizes]

    results = run_once(sweep)

    print()
    print(
        format_table(
            ["N", "C_N toggles", "S_{N-1} toggles", "bound", "P[random]"],
            [
                [
                    r["n_bits"],
                    r["top_carry_toggles"],
                    r["top_sum_toggles"],
                    r["bound"],
                    f"{r['probability']:.3g}",
                ]
                for r in results
            ],
            title="Worst-case ripple (paper Section 3.1)",
        )
    )

    for r in results:
        assert r["top_carry_toggles"] == r["bound"] == r["n_bits"]
        assert r["top_sum_toggles"] == r["n_bits"]
        assert r["probability"] == 3 * (1 / 8) ** r["n_bits"]
