"""Shared benchmark configuration.

Every benchmark regenerates one table or figure of the paper.  By
default the vector counts are reduced so the whole suite runs in a few
minutes; set ``REPRO_PAPER_SCALE=1`` to use the paper's exact workload
sizes (4000 inputs for Figure 5, 500 for Tables 1-2, 4320 for the
direction detector).

Benchmarks run once per measurement (``rounds=1``) — the quantities of
interest are the regenerated table rows, which are printed (visible
with ``pytest -s``) and shape-checked with assertions; wall-clock time
is reported by pytest-benchmark as a by-product.
"""

from __future__ import annotations

import os

import pytest


def paper_scale() -> bool:
    return os.environ.get("REPRO_PAPER_SCALE", "") not in ("", "0")


def vectors(reduced: int, full: int) -> int:
    """Pick the workload size for the current scale."""
    return full if paper_scale() else reduced


@pytest.fixture
def run_once(benchmark):
    """Run the experiment exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
