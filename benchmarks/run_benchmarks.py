#!/usr/bin/env python
"""Refresh the committed simulator/estimator-throughput trajectory.

Runs ``bench_sim_throughput.py`` and ``bench_estimate_throughput.py``
through pytest-benchmark's JSON export and normalizes the result into
``BENCH_sim.json`` at the repo root: one entry per (backend, workload)
with the median wall time and derived rates, plus per-workload
speedups relative to the event-driven reference (simulators) or the
seed dict-walking implementation (estimators).  Committing the file
after perf-relevant PRs gives the repo a reviewable perf trajectory —
a regression shows up as a diff, not as an anecdote.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/run_benchmarks.py

``--compare REFERENCE.json`` additionally gates the run: after
measuring (and refreshing the output file) it compares each workload's
median against the reference file and exits non-zero if any regressed
by more than ``--threshold`` (default 25%) — the CI bench job runs
this against the committed ``BENCH_sim.json``.

Extra pytest arguments are passed through, e.g.::

    PYTHONPATH=src python benchmarks/run_benchmarks.py -k "16"
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.obs.ledger import compare_snapshots  # noqa: E402

BENCHES = [
    Path(__file__).resolve().parent / "bench_sim_throughput.py",
    Path(__file__).resolve().parent / "bench_estimate_throughput.py",
    Path(__file__).resolve().parent / "bench_explore.py",
    Path(__file__).resolve().parent / "bench_incremental.py",
    Path(__file__).resolve().parent / "bench_obs_overhead.py",
]
OUT = ROOT / "BENCH_sim.json"


def run_benchmarks(extra_args: list[str]) -> dict:
    """Run the throughput benches, returning pytest-benchmark's export."""
    with tempfile.TemporaryDirectory() as tmp:
        export = Path(tmp) / "bench.json"
        cmd = [
            sys.executable, "-m", "pytest",
            *(str(b) for b in BENCHES), "-q",
            "--benchmark-disable-gc",
            f"--benchmark-json={export}",
            *extra_args,
        ]
        proc = subprocess.run(cmd, cwd=ROOT)
        if proc.returncode != 0:
            raise SystemExit(proc.returncode)
        with open(export) as fh:
            return json.load(fh)


def normalize(data: dict) -> dict:
    """Collapse the pytest-benchmark export into the committed schema."""
    results = {}
    for bench in data.get("benchmarks", []):
        params = bench.get("params") or {}
        median = bench["stats"]["median"]
        if bench["name"].startswith(
            ("test_sim_throughput_backends", "test_sim_throughput_codegen")
        ):
            backend = params["backend"]
            n_bits = params["n_bits"]
            n_cycles = params["n_cycles"]
            key = f"{backend}/{n_bits}x{n_bits}"
        elif bench["name"].startswith("test_sim_throughput_farm"):
            from bench_sim_throughput import FARM_CYCLES

            backend, n_cycles = "vector", FARM_CYCLES
            key = f"{backend}/farm16"
            results[key] = {
                "backend": backend,
                "workload": (
                    f"farm16 multiplier farm (~100k cells), "
                    f"{n_cycles} cycles, glitch-exact"
                ),
                "median_s": round(median, 6),
                "cycles_per_s": round(n_cycles / median, 1),
            }
            continue
        elif bench["name"].startswith("test_sim_throughput_array16"):
            # Historical single-engine series (Simulator.step loop).
            backend, n_bits, n_cycles = "event-step-loop", 16, 20
            key = f"{backend}/{n_bits}x{n_bits}"
        elif bench["name"].startswith("test_estimate_throughput_array16"):
            estimator = params["estimator"]
            backend = f"estimate-{estimator}"
            key = f"{backend}/16x16"
            results[key] = {
                "backend": backend,
                "workload": "array16 multiplier, whole-netlist estimate",
                "median_s": round(median, 6),
                "passes_per_s": round(1.0 / median, 1),
            }
            continue
        elif bench["name"].startswith("test_trace_overhead_event16"):
            from bench_obs_overhead import N_BITS, N_CYCLES

            extra = bench.get("extra_info", {})
            key = f"trace-overhead/{N_BITS}x{N_BITS}"
            results[key] = {
                "backend": "trace-overhead",
                "workload": (
                    f"array{N_BITS} multiplier, {N_CYCLES} cycles, "
                    "recorder enabled"
                ),
                "median_s": round(median, 6),
                "cycles_per_s": round(N_CYCLES / median, 1),
                "disabled_overhead_frac": extra.get(
                    "disabled_overhead_frac"
                ),
            }
            continue
        elif bench["name"].startswith("test_explore_throughput_rca8"):
            from bench_explore import N_CANDIDATES

            mode = params["mode"]
            backend = f"explore-{mode}"
            key = f"{backend}/rca8"
            results[key] = {
                "backend": backend,
                "workload": "rca8 default space, full exploration",
                "median_s": round(median, 6),
                "candidates_per_s": round(N_CANDIDATES / median, 1),
            }
            continue
        elif bench["name"].startswith("test_incremental_"):
            # test_incremental_<stage>_<circuit>[<mode>] -> one entry
            # per (stage, mode) pair; "delta" vs its "full" twin.
            mode = params["mode"]
            stage, circ = (
                bench["name"].split("[", 1)[0]
                .removeprefix("test_incremental_").rsplit("_", 1)
            )
            backend = f"incremental-{stage}-{mode}"
            key = f"{backend}/{circ}"
            workloads = {
                "compile": f"{circ} retime edit, compiled-circuit build",
                "estimate": f"{circ} retime edit, workload re-estimation",
                "expand": f"{circ} default space, beam expansion",
            }
            results[key] = {
                "backend": backend,
                "workload": workloads[stage],
                "median_s": round(median, 6),
                "ops_per_s": round(1.0 / median, 1),
            }
            continue
        else:
            continue
        results[key] = {
            "backend": backend,
            "workload": f"array{n_bits} multiplier, {n_cycles} cycles",
            "median_s": round(median, 6),
            "cycles_per_s": round(n_cycles / median, 1),
        }
    # Speedups vs each family's reference: the event-driven engine for
    # simulators, the seed dict-walking implementation for estimators.
    for key, entry in results.items():
        backend = entry["backend"]
        if backend.startswith("estimate-"):
            if not backend.endswith("-reference"):
                ref = results.get(f"{backend}-reference/16x16")
                if ref is not None:
                    entry["speedup_vs_reference"] = round(
                        ref["median_s"] / entry["median_s"], 2
                    )
            continue
        if backend.startswith("explore-"):
            if backend != "explore-sim-everything":
                ref = results.get("explore-sim-everything/rca8")
                if ref is not None:
                    entry["speedup_vs_sim_everything"] = round(
                        ref["median_s"] / entry["median_s"], 2
                    )
            continue
        if backend.startswith("incremental-"):
            if backend.endswith("-delta"):
                twin = backend[: -len("delta")] + "full"
                ref = results.get(f"{twin}/{key.split('/', 1)[1]}")
                if ref is not None:
                    entry["speedup_vs_full"] = round(
                        ref["median_s"] / entry["median_s"], 2
                    )
            continue
        ref = results.get(f"event/{key.split('/', 1)[1]}")
        if ref is not None:
            # Rate-based, not median-based: the codegen tiers measure
            # longer streams (256 cycles) than the event reference, so
            # comparing wall times directly would be meaningless.
            entry["speedup_vs_event"] = round(
                entry["cycles_per_s"] / ref["cycles_per_s"], 2
            )
    return {
        "schema": 1,
        "source": " + ".join(
            str(b.relative_to(ROOT)) for b in BENCHES
        ),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": dict(sorted(results.items())),
    }


# The regression gate lives in repro.obs.ledger now (shared with
# ``repro bench report --diff``); this alias keeps the historical
# entry point for callers of run_benchmarks.compare.
compare = compare_snapshots


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--compare", default=None, metavar="REFERENCE.json",
        help="exit non-zero if any median regresses past the threshold",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="allowed median regression fraction (default 0.25)",
    )
    args, extra = parser.parse_known_args(list(argv or []))

    reference = None
    if args.compare is not None:
        with open(args.compare) as fh:
            reference = json.load(fh)  # read before OUT is overwritten

    data = normalize(run_benchmarks(extra))
    with open(OUT, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"wrote {OUT}")
    for key, entry in data["results"].items():
        if "speedup_vs_event" in entry:
            extra_txt = f"  ({entry['speedup_vs_event']}x vs event)"
        elif "speedup_vs_reference" in entry:
            extra_txt = (
                f"  ({entry['speedup_vs_reference']}x vs reference)"
            )
        elif "speedup_vs_sim_everything" in entry:
            extra_txt = (
                f"  ({entry['speedup_vs_sim_everything']}x vs "
                "sim-everything)"
            )
        elif "speedup_vs_full" in entry:
            extra_txt = f"  ({entry['speedup_vs_full']}x vs full)"
        else:
            extra_txt = ""
        if "cycles_per_s" in entry:
            rate_txt = f"{entry['cycles_per_s']:>10.1f} cycles/s"
        elif "candidates_per_s" in entry:
            rate_txt = f"{entry['candidates_per_s']:>10.1f} candidates/s"
        elif "ops_per_s" in entry:
            rate_txt = f"{entry['ops_per_s']:>10.1f} ops/s"
        else:
            rate_txt = f"{entry['passes_per_s']:>10.1f} passes/s"
        print(
            f"  {key:34s} {entry['median_s'] * 1000:9.3f} ms median"
            f"  {rate_txt}{extra_txt}"
        )

    if reference is not None:
        regressions = compare(reference, data, args.threshold)
        if regressions:
            print(
                f"\nFAIL: {len(regressions)} workload(s) regressed "
                f">{args.threshold * 100:.0f}% vs {args.compare}:"
            )
            for line in regressions:
                print(f"  {line}")
            return 1
        print(
            f"\nno workload regressed >{args.threshold * 100:.0f}% "
            f"vs {args.compare}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
