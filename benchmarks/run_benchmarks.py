#!/usr/bin/env python
"""Refresh the committed simulator-throughput trajectory.

Runs ``bench_sim_throughput.py`` through pytest-benchmark's JSON
export and normalizes the result into ``BENCH_sim.json`` at the repo
root: one entry per (backend, workload) with the median wall time and
derived cycles/s, plus per-workload speedups relative to the
event-driven reference.  Committing the file after perf-relevant PRs
gives the repo a reviewable perf trajectory — a regression shows up as
a diff, not as an anecdote.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/run_benchmarks.py

Extra pytest arguments are passed through, e.g.::

    PYTHONPATH=src python benchmarks/run_benchmarks.py -k "16"
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
BENCH = Path(__file__).resolve().parent / "bench_sim_throughput.py"
OUT = ROOT / "BENCH_sim.json"


def run_benchmarks(extra_args: list[str]) -> dict:
    """Run the throughput bench, returning pytest-benchmark's export."""
    with tempfile.TemporaryDirectory() as tmp:
        export = Path(tmp) / "bench.json"
        cmd = [
            sys.executable, "-m", "pytest", str(BENCH), "-q",
            "--benchmark-disable-gc",
            f"--benchmark-json={export}",
            *extra_args,
        ]
        proc = subprocess.run(cmd, cwd=ROOT)
        if proc.returncode != 0:
            raise SystemExit(proc.returncode)
        with open(export) as fh:
            return json.load(fh)


def normalize(data: dict) -> dict:
    """Collapse the pytest-benchmark export into the committed schema."""
    results = {}
    for bench in data.get("benchmarks", []):
        params = bench.get("params") or {}
        median = bench["stats"]["median"]
        if bench["name"].startswith("test_sim_throughput_backends"):
            backend = params["backend"]
            n_bits = params["n_bits"]
            n_cycles = params["n_cycles"]
            key = f"{backend}/{n_bits}x{n_bits}"
        elif bench["name"].startswith("test_sim_throughput_array16"):
            # Historical single-engine series (Simulator.step loop).
            backend, n_bits, n_cycles = "event-step-loop", 16, 20
            key = f"{backend}/{n_bits}x{n_bits}"
        else:
            continue
        results[key] = {
            "backend": backend,
            "workload": f"array{n_bits} multiplier, {n_cycles} cycles",
            "median_s": round(median, 6),
            "cycles_per_s": round(n_cycles / median, 1),
        }
    # Speedups vs the event-driven reference, per workload size.
    for key, entry in results.items():
        ref = results.get(f"event/{key.split('/', 1)[1]}")
        if ref is not None:
            entry["speedup_vs_event"] = round(
                ref["median_s"] / entry["median_s"], 2
            )
    return {
        "schema": 1,
        "source": "benchmarks/bench_sim_throughput.py",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": dict(sorted(results.items())),
    }


def main(argv: list[str] | None = None) -> int:
    data = normalize(run_benchmarks(list(argv or [])))
    with open(OUT, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"wrote {OUT}")
    for key, entry in data["results"].items():
        speedup = entry.get("speedup_vs_event")
        extra = f"  ({speedup}x vs event)" if speedup else ""
        print(
            f"  {key:28s} {entry['median_s'] * 1000:9.3f} ms median"
            f"  {entry['cycles_per_s']:>10.1f} cycles/s{extra}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
