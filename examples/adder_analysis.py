"""Paper Section 3 end to end: analytic model vs simulation, worst case,
and the architecture-balancing ablation.

1. Figure 5: per-bit useful/useless profile of a 16-bit RCA for 4000
   random inputs — closed-form (eqs. 2-7) next to simulation.
2. Section 3.1: the constructive worst case (N transitions on the top
   carry) and its vanishing probability ``3*(1/8)^N``.
3. Ablation: four adder architectures ranked by delay balance.

Run:  python examples/adder_analysis.py [n_vectors]
"""

import sys

from repro import format_table
from repro.experiments.adder_sweep import (
    adder_architecture_experiment,
    format_adder_sweep,
)
from repro.experiments.rca import (
    figure5_experiment,
    format_figure5,
    worst_case_experiment,
)


def main() -> None:
    n_vectors = int(sys.argv[1]) if len(sys.argv) > 1 else 4000

    fig5 = figure5_experiment(n_vectors=n_vectors)
    print(format_figure5(fig5))
    print(
        format_table(
            ["", "total", "useful", "useless", "L/F"],
            [
                [
                    "analytic (eqs. 2-7)",
                    round(fig5["analytic"]["total"]),
                    round(fig5["analytic"]["useful"]),
                    round(fig5["analytic"]["useless"]),
                    round(fig5["analytic"]["L/F"], 2),
                ],
                [
                    "simulated",
                    fig5["simulated"]["total"],
                    fig5["simulated"]["useful"],
                    fig5["simulated"]["useless"],
                    fig5["simulated"]["L/F"],
                ],
            ],
            title="Totals (paper: 119002 / 63334 / 55668, L/F = 0.88)",
        )
    )

    print()
    for n_bits in (4, 8, 16):
        wc = worst_case_experiment(n_bits)
        print(
            f"worst case N={n_bits:2d}: top carry toggles "
            f"{wc['top_carry_toggles']} (bound {wc['bound']}), "
            f"P[random hit] = {wc['probability']:.3g}"
        )

    print()
    sweep = adder_architecture_experiment(n_vectors=min(n_vectors, 500))
    print(format_adder_sweep(sweep))
    print(
        "\nBetter-balanced architectures glitch less: the L/F column"
        " should decrease from ripple to Kogge-Stone."
    )


if __name__ == "__main__":
    main()
