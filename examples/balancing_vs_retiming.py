"""The paper's two glitch levers, head to head.

Paper Section 6: glitches can be reduced "by balancing delay paths
and/or by introducing flipflops in the circuit".  This example applies
both to the same ripple-carry adder:

* **balanced** — buffers pad every early-arriving input
  (:func:`repro.opt.balance_paths`): all glitches gone, but ~15 buffers
  per cell on a 12-bit RCA;
* **pipelined** — minimum-period retiming distributes flipflop stages
  (:func:`repro.retime.pipeline_circuit`): most glitches gone, plus the
  circuit now runs at a fraction of the original period.

Run:  python examples/balancing_vs_retiming.py [n_bits] [n_vectors]
"""

import sys

from repro.experiments.balance import (
    balancing_vs_retiming_experiment,
    format_balance_comparison,
)


def main() -> None:
    n_bits = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    n_vectors = int(sys.argv[2]) if len(sys.argv) > 2 else 300

    data = balancing_vs_retiming_experiment(n_bits=n_bits, n_vectors=n_vectors)
    print(format_balance_comparison(data))

    skew = data["skew_report"]
    print(
        f"\noriginal skew profile: {skew['skewed_fraction']:.0%} of cells "
        f"see skewed inputs (mean {skew['mean_skew']:.1f}, "
        f"max {skew['max_skew']} units); "
        f"{data['buffers_inserted']} buffers fix that."
    )
    rows = data["rows"]
    print(
        f"balanced: useless {rows['original']['useless']} -> "
        f"{rows['balanced']['useless']} (all glitches gone);  "
        f"pipelined: -> {rows['pipelined']['useless']} with "
        f"{rows['pipelined']['flipflops']} flipflops."
    )


if __name__ == "__main__":
    main()
