"""Regenerate paper Section 4.2: direction-detector glitch analysis.

Simulates the Phideo progressive-scan direction detector with random
inputs (the paper used 4320), classifies every transition, reports the
useless/useful ratio next to the paper's 3.79, and dumps the first few
cycles of the most glitch-prone nets to a VCD file for waveform
inspection.

Run:  python examples/direction_detector_report.py [n_vectors]
"""

import os
import random
import sys

from repro import Simulator, format_table
from repro.circuits.direction_detector import build_direction_detector
from repro.experiments.detector import detector_stimulus, section42_experiment
from repro.sim.vcd import dump_vcd


def main() -> None:
    n_vectors = int(sys.argv[1]) if len(sys.argv) > 1 else 4320
    data = section42_experiment(n_vectors=n_vectors)

    print(
        format_table(
            ["metric", "this repro", "paper"],
            [
                ["useful transitions", data["useful"], data["paper"]["useful"]],
                ["useless transitions", data["useless"], data["paper"]["useless"]],
                ["useless/useful (L/F)", data["L/F"], data["paper"]["L/F"]],
                [
                    "balanced reduction bound (1+L/F)",
                    data["reduction_bound"],
                    data["paper"]["reduction_bound"],
                ],
            ],
            title=f"Direction detector, {n_vectors} random inputs, unit delay",
        )
    )

    print("\nPer-stage activity (abs-difference words):")
    rows = [
        [name, s["total"], s["useful"], s["useless"], s["L/F"]]
        for name, s in data["per_stage"].items()
    ]
    print(format_table(["stage", "total", "useful", "useless", "L/F"], rows))

    # Waveform dump of a few cycles for the min-diff output word.
    circuit, ports = build_direction_detector()
    stim = detector_stimulus(ports)
    sim = Simulator(circuit, record_events=True)
    vectors = list(stim.random(random.Random(7), 6))
    sim.settle(vectors[0])
    traces = [sim.step(v) for v in vectors[1:]]
    vcd = dump_vcd(circuit, traces, cycle_length=128, nets=ports.min_diff)
    # The dump is an output artifact; keep it next to the example that
    # produces it rather than littering the repo root.
    out = os.path.join(os.path.dirname(__file__), "direction_detector_min.vcd")
    with open(out, "w") as fh:
        fh.write(vcd)
    print(f"\nWrote {out} ({len(vcd.splitlines())} lines) — open in GTKWave")
    print("to see the glitch trains the classifier counts as useless.")


if __name__ == "__main__":
    main()
