"""Sequential datapath example: glitch power of a transposed FIR filter.

FIR filters are the arithmetic-in-a-multiplexed-environment workload
the paper's Section 3.2 motivates.  This example builds a transposed
direct-form FIR (shift-add constant multipliers, ripple adders,
inter-tap registers), measures its transition-activity split on a
random input stream, then pipelines it one stage deeper and shows the
paper's trade: useless transitions collapse, flipflop/clock power rises.

Run:  python examples/fir_filter_power.py [n_vectors]
"""

import random
import sys

from repro import WordStimulus, analyze, estimate_power, format_table
from repro.circuits.datapath import transposed_fir
from repro.retime.pipeline import pipeline_circuit


def measure(circuit, vectors, frequency=5e6):
    activity = analyze(circuit, iter(vectors))
    power = estimate_power(circuit, activity, frequency)
    s = activity.summary()
    mw = power.as_milliwatts()
    return [
        s["useful"], s["useless"], s["L/F"],
        circuit.num_flipflops,
        mw["logic_mW"], mw["flipflop_mW"], mw["clock_mW"], mw["total_mW"],
    ]


def main() -> None:
    n_vectors = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    width, coeffs = 8, (3, 5, 7, 2)

    base, ports = transposed_fir(width, coeffs)
    stim = WordStimulus({"x": ports["x"]})
    vectors = [dict(v) for v in stim.random(random.Random(1995), n_vectors + 1)]

    rows = [["original"] + measure(base, vectors)]
    for stages in (1, 2):
        deep = pipeline_circuit(base, stages)
        rows.append([f"+{stages} stage(s)"] + measure(deep.circuit, vectors))

    print(
        format_table(
            [
                "variant", "useful", "useless", "L/F", "FFs",
                "logic mW", "FF mW", "clock mW", "total mW",
            ],
            rows,
            title=(
                f"Transposed FIR, {len(coeffs)} taps x {width} bits, "
                f"{n_vectors} random samples @ 5 MHz"
            ),
        )
    )
    print(
        "\nPipelining the tap adders removes most glitch activity from the"
        "\nripple chains while flipflop and clock power grow — the same"
        "\ntrade the paper's Table 3 measures on the direction detector."
    )


if __name__ == "__main__":
    main()
