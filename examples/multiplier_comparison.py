"""Regenerate paper Tables 1 and 2: multiplier architecture comparison.

Table 1 — array vs Wallace-tree multipliers at 8x8 and 16x16 under unit
delay; Table 2 — the 8x8 pair again with the realistic full-adder
timing ``dsum = 2 * dcarry``.  Also runs the input-correlation ablation
showing that the array/wallace glitch ordering survives correlated
(video-like) inputs.

Run:  python examples/multiplier_comparison.py [n_vectors]
"""

import sys

from repro.experiments.multipliers import (
    correlation_experiment,
    format_rows,
    table1_experiment,
    table2_experiment,
)


def main() -> None:
    n_vectors = int(sys.argv[1]) if len(sys.argv) > 1 else 500

    table1 = table1_experiment(n_vectors=n_vectors)
    print(format_rows(table1, f"Table 1 — unit delay, {n_vectors} random inputs"))
    print(
        "\npaper Table 1:  array 8x8 L/F=1.51, 16x16 L/F=3.26;"
        " wallace 8x8 L/F=0.28, 16x16 L/F=0.16\n"
    )

    table2 = table2_experiment(n_vectors=n_vectors)
    print(format_rows(table2, f"Table 2 — dsum vs 2*dcarry, {n_vectors} inputs"))
    print(
        "\npaper Table 2:  array L/F 1.46 -> 2.01, wallace L/F 0.29 -> 0.64"
        " when dsum doubles\n"
    )

    corr = correlation_experiment(n_vectors=n_vectors)
    print(
        format_rows(
            corr,
            "Ablation — input correlation (flip probability 0.5 = random)",
        )
    )


if __name__ == "__main__":
    main()
