"""Quickstart: count useful vs useless transitions in a multiplier.

Builds an 8x8 carry-save array multiplier and a Wallace-tree
multiplier, simulates both with 500 random input pairs under the
paper's unit-delay model, and prints the transition-activity split —
a miniature of paper Table 1.

Run:  python examples/quickstart.py
"""

import random

from repro import WordStimulus, analyze, build_multiplier_circuit, format_table


def main() -> None:
    rows = []
    for architecture in ("array", "wallace"):
        circuit, ports = build_multiplier_circuit(8, architecture)
        stimulus = WordStimulus({"x": ports["x"], "y": ports["y"]})
        vectors = stimulus.random(random.Random(1995), 501)  # 1 warm-up + 500
        result = analyze(circuit, vectors)
        summary = result.summary()
        rows.append(
            [
                architecture,
                summary["total"],
                summary["useful"],
                summary["useless"],
                summary["L/F"],
                summary["reduction_bound"],
            ]
        )
    print(
        format_table(
            ["architecture", "total", "useful F", "useless L", "L/F", "1+L/F"],
            rows,
            title="8x8 multiplier transition activity, 500 random inputs",
        )
    )
    print(
        "\nThe delay-unbalanced array multiplier wastes most of its"
        " transitions on glitches; the balanced Wallace tree does not"
        " (paper Table 1)."
    )


if __name__ == "__main__":
    main()
