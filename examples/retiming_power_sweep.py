"""Regenerate paper Table 3 / Figure 10: the optimum retiming for power.

Pipelines the direction detector ever deeper via minimum-period
retiming, estimates the three power components at 5 MHz for each
variant, prints the Table 3 rows and draws Figure 10 (power vs
flipflop count) as an ASCII chart.  The total-power curve exhibits an
interior minimum: retiming deeper than necessary *reduces* power up to
a point, after which flipflop + clock power dominate.

Run:  python examples/retiming_power_sweep.py [n_vectors]
"""

import sys

from repro.experiments.retiming_power import format_table3, table3_experiment


def ascii_chart(rows, height: int = 12) -> str:
    """Plot logic/flipflop/clock/total power against flipflop count."""
    series = {
        "T": [r["total_mW"] for r in rows],  # total
        "L": [r["logic_mW"] for r in rows],  # logic
        "F": [r["flipflop_mW"] for r in rows],  # flipflops
        "C": [r["clock_mW"] for r in rows],  # clock
    }
    peak = max(max(vals) for vals in series.values())
    columns = len(rows)
    grid = [[" "] * (columns * 8) for _ in range(height)]
    for label, vals in series.items():
        for i, v in enumerate(vals):
            row = height - 1 - int(round((v / peak) * (height - 1)))
            col = i * 8 + 4
            grid[row][col] = label
    lines = ["".join(r).rstrip() for r in grid]
    axis = "".join(f"{r['flipflops']:^8d}" for r in rows)
    lines.append("-" * (columns * 8))
    lines.append(axis + "   flipflops")
    lines.append("T=total  L=logic  F=flipflop  C=clock   (mW)")
    return "\n".join(lines)


def main() -> None:
    n_vectors = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    data = table3_experiment(
        stages=(0, 1, 2, 3, 4, 6), n_vectors=n_vectors
    )
    print(format_table3(data))
    print()
    print(ascii_chart(data["rows"]))
    best = data["rows"][data["optimum_index"]]
    print(
        f"\nOptimum at circuit {best['circuit']} "
        f"({best['flipflops']} flipflops, {best['total_mW']} mW total); "
        f"logic power shrinks {data['logic_power_ratio_first_to_last']}x "
        "from the shallowest to the deepest variant "
        "(paper: ~3.6x, optimum at its circuit 3)."
    )


if __name__ == "__main__":
    main()
