"""Flagship domain example: progressive scan conversion with power audit.

This is the application the paper's direction detector lives in
(Phideo, [paper ref. 6]): de-interlacing video by interpolating the
missing lines along detected edge directions.  The example

1. synthesises a moving diagonal-edge field sequence,
2. de-interlaces every field through the *gate-level* detector netlist,
3. renders one field and its de-interlaced frame as ASCII art,
4. reports the transition-activity split and the estimated power of
   the scan — connecting the application workload to the paper's
   glitch numbers.

Run:  python examples/video_scan_conversion.py
"""

from repro import estimate_power, format_table
from repro.circuits.direction_detector import build_direction_detector
from repro.video.frames import moving_sequence
from repro.video.scan import deinterlace_frame

_SHADES = " .:-=+*#%@"


def ascii_image(rows, title: str) -> str:
    lines = [title]
    for row in rows:
        lines.append(
            "".join(_SHADES[min(p, 255) * (len(_SHADES) - 1) // 255] for p in row)
        )
    return "\n".join(lines)


def main() -> None:
    fields = moving_sequence(
        width=48, height=10, n_fields=2, slope=1.2, velocity=5, noise=3
    )

    merged_activity = None
    histogram = {0: 0, 1: 0, 2: 0}
    last_frame = None
    for field in fields:
        frame, activity, hist = deinterlace_frame(field)
        last_frame = (field, frame)
        for k, v in hist.items():
            histogram[k] += v
        if merged_activity is None:
            merged_activity = activity
        else:
            merged_activity.merge(activity)

    assert last_frame is not None and merged_activity is not None
    field, frame = last_frame
    print(ascii_image(field, "interlaced field (one of two):"))
    print()
    print(ascii_image(frame, "de-interlaced frame (detector-directed):"))

    print()
    print(
        format_table(
            ["direction", "decisions"],
            [
                ["left diagonal", histogram[0]],
                ["vertical (default)", histogram[1]],
                ["right diagonal", histogram[2]],
            ],
            title="direction decisions across the sequence",
        )
    )

    summary = merged_activity.summary()
    circuit, _ = build_direction_detector()
    power = estimate_power(circuit, merged_activity, frequency=5e6)
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ["interpolation sites", summary["cycles"]],
                ["useful transitions", summary["useful"]],
                ["useless transitions (glitches)", summary["useless"]],
                ["L/F", summary["L/F"]],
                ["balanced-activity bound 1+L/F", summary["reduction_bound"]],
                ["logic power @ 5 MHz (mW)", power.as_milliwatts()["logic_mW"]],
            ],
            title="transition activity of the scan (paper Sec. 4.2 metric)",
        )
    )
    print(
        "\nEven on structured video the ripple datapath spends most of its"
        "\ntransitions on glitches — the paper's motivation for retiming."
    )


if __name__ == "__main__":
    main()
