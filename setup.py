"""Legacy setup shim.

The reference environment is offline and lacks the ``wheel`` package,
so ``pip install -e .`` must use the classic ``setup.py develop`` path
instead of PEP 517/660.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
