"""repro — reproduction of Leijten, van Meerbergen & Jess,
"Analysis and Reduction of Glitches in Synchronous Networks" (DATE 1995).

The library analyses transition activity in synchronous gate-level
networks, distinguishing *useful* transitions from *useless* ones
(glitches) by per-cycle parity evaluation, and reduces glitches by
retiming/pipelining, trading combinational logic power against
flipflop and clock power.

Quick start::

    import random
    from repro import build_multiplier_circuit, analyze, WordStimulus

    circuit, ports = build_multiplier_circuit(8, "array")
    stim = WordStimulus({"x": ports["x"], "y": ports["y"]})
    result = analyze(circuit, stim.random(random.Random(1), 500))
    print(result.summary())   # total / useful / useless / L-F ratio

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from repro.core import (
    ActivityResult,
    ActivityRun,
    NodeActivity,
    PowerBreakdown,
    analyze,
    classify_toggle_count,
    dynamic_power,
    estimate_power,
    format_table,
    rca_expected_counts,
    rca_per_bit_table,
    worst_case_probability,
    worst_case_transitions,
    worst_case_vectors,
)
from repro.netlist import Circuit, CellKind, compile_circuit, validate
from repro.sim import (
    Simulator,
    UnitDelay,
    SumCarryDelay,
    PerKindDelay,
    WordStimulus,
    StimulusSpec,
    UniformStimulus,
    CorrelatedStimulus,
    BurstMarkovStimulus,
    make_stimulus,
    EventDrivenBackend,
    WaveformBackend,
    BitParallelBackend,
    dump_vcd,
)
from repro.circuits import (
    build_rca_circuit,
    build_multiplier_circuit,
    build_direction_detector,
    build_named_circuit,
)
from repro.service import (
    BatchScheduler,
    JobSpec,
    ResultStore,
    RunKey,
    cached_estimate,
    cached_run,
    configure_default_store,
)
from repro.estimate import (
    EstimateResult,
    estimate_workload,
    input_statistics,
    signal_probabilities,
    switching_activity,
    transition_densities,
)
from repro.retime import pipeline_circuit, RetimingGraph, minimum_period
from repro.opt import balance_paths, balancing_report
from repro.tech import TechnologyLibrary, ClockTreeModel, AreaModel

__version__ = "1.0.0"

__all__ = [
    "ActivityResult",
    "ActivityRun",
    "NodeActivity",
    "PowerBreakdown",
    "analyze",
    "classify_toggle_count",
    "dynamic_power",
    "estimate_power",
    "format_table",
    "rca_expected_counts",
    "rca_per_bit_table",
    "worst_case_probability",
    "worst_case_transitions",
    "worst_case_vectors",
    "Circuit",
    "CellKind",
    "compile_circuit",
    "validate",
    "Simulator",
    "EventDrivenBackend",
    "WaveformBackend",
    "BitParallelBackend",
    "UnitDelay",
    "SumCarryDelay",
    "PerKindDelay",
    "WordStimulus",
    "StimulusSpec",
    "UniformStimulus",
    "CorrelatedStimulus",
    "BurstMarkovStimulus",
    "make_stimulus",
    "dump_vcd",
    "build_rca_circuit",
    "build_multiplier_circuit",
    "build_direction_detector",
    "build_named_circuit",
    "BatchScheduler",
    "JobSpec",
    "ResultStore",
    "RunKey",
    "cached_estimate",
    "cached_run",
    "configure_default_store",
    "EstimateResult",
    "estimate_workload",
    "input_statistics",
    "signal_probabilities",
    "switching_activity",
    "transition_densities",
    "pipeline_circuit",
    "RetimingGraph",
    "minimum_period",
    "balance_paths",
    "balancing_report",
    "TechnologyLibrary",
    "ClockTreeModel",
    "AreaModel",
    "__version__",
]
