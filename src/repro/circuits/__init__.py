"""Parameterised generators for the paper's benchmark circuits.

All generators take a :class:`~repro.netlist.circuit.Circuit` under
construction plus input words (lists of net indices, LSB first) and
return output words.  A *prefix* argument namespaces cell and net names
so generators compose.

* :mod:`repro.circuits.primitives` — full/half adder (cell-level and
  gate-level), constants;
* :mod:`repro.circuits.adders` — ripple-carry (paper Section 3),
  carry-lookahead, carry-select, Kogge–Stone (for the architecture
  ablation);
* :mod:`repro.circuits.multipliers` — carry-save array and Wallace-tree
  multipliers (paper Section 4.1, Tables 1–2);
* :mod:`repro.circuits.comparators` — ripple comparator, min/max,
  absolute difference;
* :mod:`repro.circuits.direction_detector` — the Phideo progressive-
  scan direction detector (paper Section 4.2, Figure 8).
"""

from repro.circuits.primitives import (
    full_adder,
    half_adder,
    full_adder_gates,
    constant_word,
)
from repro.circuits.adders import (
    ripple_carry_adder,
    build_rca_circuit,
    carry_lookahead_adder,
    carry_select_adder,
    kogge_stone_adder,
)
from repro.circuits.multipliers import (
    array_multiplier,
    wallace_tree_multiplier,
    baugh_wooley_multiplier,
    reduce_and_add_columns,
    build_multiplier_circuit,
)
from repro.circuits.comparators import (
    greater_than,
    equality,
    min_max,
    abs_diff,
    subtractor,
)
from repro.circuits.direction_detector import (
    build_direction_detector,
    DirectionDetectorPorts,
)
from repro.circuits.datapath import (
    constant_multiplier,
    mac_unit,
    transposed_fir,
    reference_fir,
)
from repro.circuits.catalog import build_named_circuit

__all__ = [
    "full_adder",
    "half_adder",
    "full_adder_gates",
    "constant_word",
    "ripple_carry_adder",
    "build_rca_circuit",
    "carry_lookahead_adder",
    "carry_select_adder",
    "kogge_stone_adder",
    "array_multiplier",
    "wallace_tree_multiplier",
    "baugh_wooley_multiplier",
    "reduce_and_add_columns",
    "build_multiplier_circuit",
    "greater_than",
    "equality",
    "min_max",
    "abs_diff",
    "subtractor",
    "build_direction_detector",
    "DirectionDetectorPorts",
    "constant_multiplier",
    "mac_unit",
    "transposed_fir",
    "reference_fir",
    "build_named_circuit",
]
