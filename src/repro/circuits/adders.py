"""Adder architectures.

:func:`ripple_carry_adder` is the paper's Section 3 object of study —
N cascaded full-adder stages whose carry chain is the canonical
unbalanced delay path.  The other architectures (carry-lookahead,
carry-select, Kogge–Stone prefix) implement the same function with
progressively better-balanced paths and exist for the architecture
ablation: the paper's thesis predicts their glitch activity ordering.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.netlist.cells import CellKind
from repro.netlist.circuit import Circuit
from repro.circuits.primitives import full_adder, full_adder_gates, half_adder


def ripple_carry_adder(
    circuit: Circuit,
    a: Sequence[int],
    b: Sequence[int],
    cin: int | None = None,
    prefix: str = "rca",
    gate_level: bool = False,
) -> Tuple[List[int], List[int]]:
    """N-stage ripple-carry adder.

    Returns ``(sums, carries)`` where ``sums[i]`` is ``S_i`` and
    ``carries[i]`` is ``C_{i+1}`` (so ``carries[-1]`` is the adder's
    carry out ``C_N``) — exactly the signals of the paper's Figure 3.

    With *cin* ``None`` the first stage is a half adder (no carry-in
    pin); *gate_level* selects the XOR/AND/OR decomposition instead of
    FA cells.
    """
    if len(a) != len(b):
        raise ValueError("operand widths differ")
    if not a:
        raise ValueError("adder must have at least one bit")
    sums: List[int] = []
    carries: List[int] = []
    carry = cin
    for i, (ai, bi) in enumerate(zip(a, b)):
        if carry is None:
            s, carry = half_adder(circuit, ai, bi, name=f"{prefix}_ha{i}")
        elif gate_level:
            s, carry = full_adder_gates(circuit, ai, bi, carry, f"{prefix}_fa{i}")
        else:
            s, carry = full_adder(circuit, ai, bi, carry, name=f"{prefix}_fa{i}")
        sums.append(s)
        carries.append(carry)
    return sums, carries


def build_rca_circuit(
    n_bits: int,
    with_cin: bool = True,
    gate_level: bool = False,
    name: str | None = None,
) -> tuple[Circuit, dict]:
    """A standalone RCA circuit with named ports.

    Returns ``(circuit, ports)`` where ports holds the ``a``, ``b``
    input words, optional ``cin``, and the ``sums`` / ``carries``
    output words (used by the Figure 5 experiment to monitor exactly
    the paper's S and C signals).
    """
    circuit = Circuit(name or f"rca{n_bits}")
    a = circuit.add_input_word("a", n_bits)
    b = circuit.add_input_word("b", n_bits)
    cin = circuit.add_input("cin") if with_cin else None
    sums, carries = ripple_carry_adder(
        circuit, a, b, cin, gate_level=gate_level
    )
    circuit.mark_output_word(sums, "s")
    circuit.mark_output(carries[-1], "cout")
    ports = {"a": a, "b": b, "cin": cin, "sums": sums, "carries": carries}
    return circuit, ports


# ----------------------------------------------------------------------
# architectures for the balancing ablation
# ----------------------------------------------------------------------
def carry_lookahead_adder(
    circuit: Circuit,
    a: Sequence[int],
    b: Sequence[int],
    cin: int | None = None,
    group: int = 4,
    prefix: str = "cla",
) -> Tuple[List[int], int]:
    """Group carry-lookahead adder; returns ``(sums, carry_out)``.

    Within each *group*-bit block the carries are computed as two-level
    AND-OR lookahead from generate/propagate; blocks are chained
    ripple-fashion (the classic 74x283-style structure).
    """
    if len(a) != len(b) or not a:
        raise ValueError("bad operand widths")
    n = len(a)
    sums: List[int] = []
    if cin is None:
        zero = circuit.add_cell(CellKind.CONST0, [], name=f"{prefix}_c0").outputs[0]
        cin = zero
    carry = cin
    for base in range(0, n, group):
        hi = min(base + group, n)
        g = [
            circuit.gate(CellKind.AND, a[i], b[i], name=f"{prefix}_g{i}")
            for i in range(base, hi)
        ]
        p = [
            circuit.gate(CellKind.XOR, a[i], b[i], name=f"{prefix}_p{i}")
            for i in range(base, hi)
        ]
        carries = [carry]
        for k in range(len(g)):
            # c_{k+1} = g_k + p_k g_{k-1} + ... + p_k..p_0 c_in,
            # each product term as one wide AND (true two-level lookahead).
            terms = [g[k]]
            for j in range(k - 1, -1, -1):
                terms.append(
                    circuit.gate(
                        CellKind.AND, g[j], *p[j + 1 : k + 1],
                        name=f"{prefix}_t{base + k}_{j}",
                    )
                )
            terms.append(
                circuit.gate(
                    CellKind.AND, carries[0], *p[: k + 1],
                    name=f"{prefix}_cc{base + k}",
                )
            )
            ck = circuit.gate(
                CellKind.OR, *terms, name=f"{prefix}_c{base + k + 1}"
            )
            carries.append(ck)
        for k in range(len(g)):
            sums.append(
                circuit.gate(
                    CellKind.XOR, p[k], carries[k], name=f"{prefix}_s{base + k}"
                )
            )
        carry = carries[-1]
    return sums, carry


def carry_select_adder(
    circuit: Circuit,
    a: Sequence[int],
    b: Sequence[int],
    block: int = 4,
    prefix: str = "csel",
) -> Tuple[List[int], int]:
    """Carry-select adder; returns ``(sums, carry_out)``.

    Each block computes both carry-in hypotheses with two ripple chains
    and muxes on the actual block carry — shorter worst-case paths than
    a flat RCA at the cost of duplicated hardware.
    """
    if len(a) != len(b) or not a:
        raise ValueError("bad operand widths")
    n = len(a)
    zero = circuit.add_cell(CellKind.CONST0, [], name=f"{prefix}_z").outputs[0]
    one = circuit.add_cell(CellKind.CONST1, [], name=f"{prefix}_o").outputs[0]
    sums: List[int] = []
    carry: int | None = None
    for base in range(0, n, block):
        hi = min(base + block, n)
        aa, bb = a[base:hi], b[base:hi]
        if carry is None:
            s, cs = ripple_carry_adder(
                circuit, aa, bb, zero, prefix=f"{prefix}_b{base}"
            )
            sums.extend(s)
            carry = cs[-1]
            continue
        s0, c0 = ripple_carry_adder(
            circuit, aa, bb, zero, prefix=f"{prefix}_b{base}h0"
        )
        s1, c1 = ripple_carry_adder(
            circuit, aa, bb, one, prefix=f"{prefix}_b{base}h1"
        )
        for k in range(len(aa)):
            sums.append(
                circuit.gate(
                    CellKind.MUX2, carry, s0[k], s1[k],
                    name=f"{prefix}_m{base + k}",
                )
            )
        carry = circuit.gate(
            CellKind.MUX2, carry, c0[-1], c1[-1], name=f"{prefix}_mc{base}"
        )
    assert carry is not None
    return sums, carry


def kogge_stone_adder(
    circuit: Circuit,
    a: Sequence[int],
    b: Sequence[int],
    prefix: str = "ks",
) -> Tuple[List[int], int]:
    """Kogge–Stone parallel-prefix adder; returns ``(sums, carry_out)``.

    Log-depth, fully balanced prefix network — the best-balanced
    architecture in the ablation, hence (per the paper's thesis) the
    least glitchy.
    """
    if len(a) != len(b) or not a:
        raise ValueError("bad operand widths")
    n = len(a)
    g = [
        circuit.gate(CellKind.AND, a[i], b[i], name=f"{prefix}_g0_{i}")
        for i in range(n)
    ]
    p = [
        circuit.gate(CellKind.XOR, a[i], b[i], name=f"{prefix}_p0_{i}")
        for i in range(n)
    ]
    gk, pk = list(g), list(p)
    dist = 1
    level = 1
    while dist < n:
        new_g, new_p = list(gk), list(pk)
        for i in range(dist, n):
            t = circuit.gate(
                CellKind.AND, pk[i], gk[i - dist],
                name=f"{prefix}_t{level}_{i}",
            )
            new_g[i] = circuit.gate(
                CellKind.OR, gk[i], t, name=f"{prefix}_g{level}_{i}"
            )
            new_p[i] = circuit.gate(
                CellKind.AND, pk[i], pk[i - dist],
                name=f"{prefix}_p{level}_{i}",
            )
        gk, pk = new_g, new_p
        dist *= 2
        level += 1
    # carries: c_{i+1} = G[0..i]; sum_i = p_i ^ c_i with c_0 = 0
    sums = [p[0]]
    for i in range(1, n):
        sums.append(
            circuit.gate(
                CellKind.XOR, p[i], gk[i - 1], name=f"{prefix}_s{i}"
            )
        )
    return sums, gk[n - 1]
