"""Named circuit catalog: string name -> (circuit, word stimulus).

One registry shared by every front end — the CLI, the service job
scheduler, and the benchmarks — so a declarative job spec can carry a
plain string (``"array16"``) that any worker process resolves to the
identical netlist.  Names:

* ``rcaN`` — N-bit ripple-carry adder;
* ``arrayN`` / ``wallaceN`` — NxN array / Wallace-tree multiplier;
* ``farmN`` — a ≥100k-cell farm of NxN array-multiplier tiles sharing
  one rotated input-word pair (the backend stress workload);
* ``detector`` — the Section 4.2 direction-detector processing unit.
"""

from __future__ import annotations

from typing import Tuple

from repro.circuits.adders import build_rca_circuit
from repro.circuits.direction_detector import build_direction_detector
from repro.circuits.multipliers import build_multiplier_circuit
from repro.netlist.circuit import Circuit
from repro.sim.vectors import WordStimulus


def _parse_size(name: str, prefix: str) -> int:
    try:
        n = int(name[len(prefix):])
    except ValueError:
        raise ValueError(f"bad circuit name {name!r}: expected {prefix}<bits>")
    if not 1 <= n <= 64:
        raise ValueError(f"width {n} out of range 1..64")
    return n


def validate_name(name: str) -> str:
    """Check *name* is a known catalog entry without building it.

    Cheap enough to run per sweep point at job-expansion time, so a
    bad circuit axis fails before anything simulates.  Returns the
    name; raises ``ValueError`` like :func:`build_named_circuit`.
    """
    if name.startswith("rca"):
        _parse_size(name, "rca")
    elif name.startswith("array"):
        _parse_size(name, "array")
    elif name.startswith("wallace"):
        _parse_size(name, "wallace")
    elif name.startswith("farm"):
        _parse_size(name, "farm")
    elif name != "detector":
        raise ValueError(
            f"unknown circuit {name!r}; "
            "try rca16, array8, wallace8, farm16, detector"
        )
    return name


def build_named_circuit(name: str) -> Tuple[Circuit, WordStimulus]:
    """Construct a circuit by catalog name; returns it with its stimulus."""
    if name.startswith("rca"):
        n = _parse_size(name, "rca")
        circuit, ports = build_rca_circuit(n, with_cin=False)
        return circuit, WordStimulus({"a": ports["a"], "b": ports["b"]})
    if name.startswith("array") or name.startswith("wallace"):
        arch = "array" if name.startswith("array") else "wallace"
        n = _parse_size(name, arch)
        circuit, ports = build_multiplier_circuit(n, arch)
        return circuit, WordStimulus({"x": ports["x"], "y": ports["y"]})
    if name.startswith("farm"):
        from repro.circuits.farm import build_multiplier_farm

        n = _parse_size(name, "farm")
        circuit, ports = build_multiplier_farm(n)
        return circuit, WordStimulus({"x": ports["x"], "y": ports["y"]})
    if name == "detector":
        from repro.experiments.detector import detector_stimulus

        circuit, ports = build_direction_detector()
        return circuit, detector_stimulus(ports)
    raise ValueError(
        f"unknown circuit {name!r}; "
        "try rca16, array8, wallace8, farm16, detector"
    )
