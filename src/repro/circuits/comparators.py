"""Comparators, min/max selection and absolute difference.

These are the building blocks of the direction detector (paper
Figure 8).  They are deliberately built in the ripple style that was
standard for compact 1995-era datapaths — LSB-to-MSB comparator chains
and ripple subtractors — because the paper's Section 4.2 point is
precisely that such units have strongly unbalanced paths and therefore
high glitch activity.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.netlist.cells import CellKind
from repro.netlist.circuit import Circuit
from repro.circuits.primitives import full_adder, reduce_tree


def greater_than(
    circuit: Circuit,
    a: Sequence[int],
    b: Sequence[int],
    prefix: str = "gt",
) -> int:
    """Ripple magnitude comparator: one net that is 1 iff ``a > b``.

    Scans LSB to MSB with the recurrence
    ``gt_i = a_i & ~b_i  |  (a_i XNOR b_i) & gt_{i-1}``
    so higher bits override lower ones; the resulting chain is as
    unbalanced as a ripple carry.
    """
    if len(a) != len(b) or not a:
        raise ValueError("bad operand widths")
    gt: int | None = None
    for i, (ai, bi) in enumerate(zip(a, b)):
        nb = circuit.gate(CellKind.NOT, bi, name=f"{prefix}_nb{i}")
        here = circuit.gate(CellKind.AND, ai, nb, name=f"{prefix}_w{i}")
        if gt is None:
            gt = here
        else:
            eq = circuit.gate(CellKind.XNOR, ai, bi, name=f"{prefix}_e{i}")
            keep = circuit.gate(CellKind.AND, eq, gt, name=f"{prefix}_k{i}")
            gt = circuit.gate(CellKind.OR, here, keep, name=f"{prefix}_g{i}")
    assert gt is not None
    return gt


def equality(
    circuit: Circuit,
    a: Sequence[int],
    b: Sequence[int],
    prefix: str = "eq",
) -> int:
    """One net that is 1 iff ``a == b`` (XNOR bits, balanced AND tree)."""
    if len(a) != len(b) or not a:
        raise ValueError("bad operand widths")
    bits = [
        circuit.gate(CellKind.XNOR, ai, bi, name=f"{prefix}_x{i}")
        for i, (ai, bi) in enumerate(zip(a, b))
    ]
    if len(bits) == 1:
        return bits[0]
    return reduce_tree(circuit, CellKind.AND, bits, prefix=f"{prefix}_and")


def mux_word(
    circuit: Circuit,
    sel: int,
    when0: Sequence[int],
    when1: Sequence[int],
    prefix: str = "mux",
) -> List[int]:
    """Bitwise 2:1 word multiplexer: *when0* if ``sel == 0`` else *when1*."""
    if len(when0) != len(when1):
        raise ValueError("mux operand widths differ")
    return [
        circuit.gate(
            CellKind.MUX2, sel, w0, w1, name=f"{prefix}_{i}"
        )
        for i, (w0, w1) in enumerate(zip(when0, when1))
    ]


def min_max(
    circuit: Circuit,
    a: Sequence[int],
    b: Sequence[int],
    prefix: str = "mm",
) -> Tuple[List[int], List[int], int]:
    """``(min, max, a_gt_b)`` of two unsigned words."""
    gt = greater_than(circuit, a, b, prefix=f"{prefix}_gt")
    lo = mux_word(circuit, gt, a, b, prefix=f"{prefix}_lo")
    hi = mux_word(circuit, gt, b, a, prefix=f"{prefix}_hi")
    return lo, hi, gt


def minimum(
    circuit: Circuit,
    a: Sequence[int],
    b: Sequence[int],
    prefix: str = "min",
) -> Tuple[List[int], int]:
    """``(min(a, b), a_gt_b)`` — builds only the min-side selector."""
    gt = greater_than(circuit, a, b, prefix=f"{prefix}_gt")
    return mux_word(circuit, gt, a, b, prefix=f"{prefix}_lo"), gt


def maximum(
    circuit: Circuit,
    a: Sequence[int],
    b: Sequence[int],
    prefix: str = "max",
) -> Tuple[List[int], int]:
    """``(max(a, b), a_gt_b)`` — builds only the max-side selector."""
    gt = greater_than(circuit, a, b, prefix=f"{prefix}_gt")
    return mux_word(circuit, gt, b, a, prefix=f"{prefix}_hi"), gt


def subtractor(
    circuit: Circuit,
    a: Sequence[int],
    b: Sequence[int],
    prefix: str = "sub",
) -> Tuple[List[int], int]:
    """Ripple borrow-free subtractor: ``a - b`` as ``a + ~b + 1``.

    Returns ``(difference, no_borrow)`` where *no_borrow* (the ripple
    carry out) is 1 iff ``a >= b``.
    """
    if len(a) != len(b) or not a:
        raise ValueError("bad operand widths")
    one = circuit.add_cell(CellKind.CONST1, [], name=f"{prefix}_one")
    carry = one.outputs[0]
    diff: List[int] = []
    for i, (ai, bi) in enumerate(zip(a, b)):
        nb = circuit.gate(CellKind.NOT, bi, name=f"{prefix}_nb{i}")
        s, carry = full_adder(circuit, ai, nb, carry, name=f"{prefix}_fa{i}")
        diff.append(s)
    return diff, carry


def abs_diff(
    circuit: Circuit,
    a: Sequence[int],
    b: Sequence[int],
    prefix: str = "ad",
) -> List[int]:
    """Absolute difference ``|a - b|`` of two unsigned words.

    Computes both ``a - b`` and ``b - a`` with ripple subtractors and
    selects the non-negative one on the first subtractor's carry out —
    the compact dual-subtractor structure whose long ripple chains feed
    the direction detector's glitch activity.
    """
    d_ab, a_ge_b = subtractor(circuit, a, b, prefix=f"{prefix}_ab")
    d_ba, _ = subtractor(circuit, b, a, prefix=f"{prefix}_ba")
    # a_ge_b == 1 selects a - b.
    return mux_word(circuit, a_ge_b, d_ba, d_ab, prefix=f"{prefix}_sel")
