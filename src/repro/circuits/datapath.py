"""Sequential DSP datapaths: constant multipliers, MAC, transposed FIR.

The paper's Section 5 argument is about *synchronous* networks — the
registers are part of the design, and retiming relocates them.  The
multiplier/detector experiments pipeline purely combinational blocks;
these generators provide genuinely sequential test cases:

* :func:`constant_multiplier` — shift-add multiplication by a fixed
  coefficient (the standard fixed-coefficient datapath idiom);
* :func:`mac_unit` — multiplier + accumulator register (a loop: the
  retiming graph is cyclic, so minimum-period retiming is bounded by
  the loop's delay-to-register ratio);
* :func:`transposed_fir` — a transposed direct-form FIR filter whose
  inter-tap registers are the textbook retiming example: the adder
  chain between registers can be rebalanced without adding latency.

All arithmetic is unsigned modulo ``2^width`` (sufficient for activity
and retiming experiments; golden models in the tests mirror that).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.circuits.adders import ripple_carry_adder
from repro.netlist.cells import CellKind
from repro.netlist.circuit import Circuit
from repro.circuits.primitives import constant_word


def _add_words_mod(
    circuit: Circuit,
    a: Sequence[int],
    b: Sequence[int],
    prefix: str,
) -> List[int]:
    """``(a + b) mod 2^w`` with a ripple adder (carry out dropped)."""
    sums, _carries = ripple_carry_adder(circuit, list(a), list(b), prefix=prefix)
    return sums


def constant_multiplier(
    circuit: Circuit,
    x: Sequence[int],
    coefficient: int,
    prefix: str = "cmul",
) -> List[int]:
    """``(x * coefficient) mod 2^len(x)`` by shift-and-add.

    One ripple adder per set coefficient bit; a zero coefficient yields
    a constant-zero word.  This is how fixed FIR taps were built before
    canonical-signed-digit optimisers.
    """
    width = len(x)
    if width == 0:
        raise ValueError("operand must be at least 1 bit wide")
    if coefficient < 0:
        raise ValueError("coefficient must be non-negative")
    coefficient %= 1 << width

    zero = constant_word(circuit, 0, width, prefix=f"{prefix}_z")
    total: List[int] | None = None
    term_id = 0
    for shift in range(width):
        if not (coefficient >> shift) & 1:
            continue
        # x << shift, truncated to width bits.
        shifted = list(zero[:shift]) + list(x[: width - shift])
        if total is None:
            total = shifted
        else:
            total = _add_words_mod(
                circuit, total, shifted, prefix=f"{prefix}_a{term_id}"
            )
        term_id += 1
    return list(zero) if total is None else list(total)


def mac_unit(
    width: int = 8,
    coefficient: int = 3,
    name: str = "mac",
) -> Tuple[Circuit, Dict[str, List[int]]]:
    """A multiply-accumulate unit: ``acc <= acc + coefficient * x``.

    Returns ``(circuit, ports)`` with the input word ``x`` and the
    registered accumulator output ``acc``.  The accumulator register
    closes a combinational loop through the adder, so the retiming
    graph is cyclic — the minimum achievable period is set by the loop.
    """
    circuit = Circuit(name)
    x = circuit.add_input_word("x", width)
    scaled = constant_multiplier(circuit, x, coefficient, prefix="scale")
    acc_q = circuit.new_net_word("acc", width)
    acc_d = _add_words_mod(circuit, scaled, acc_q, prefix="accadd")
    for d, q in zip(acc_d, acc_q):
        circuit.add_cell(
            CellKind.DFF, [d], [q], name=f"accff_{circuit.net_name(q)}"
        )
    circuit.mark_output_word(acc_q, "out")
    return circuit, {"x": x, "acc": acc_q}


def transposed_fir(
    width: int = 8,
    coefficients: Sequence[int] = (1, 2, 3),
    name: str = "fir",
) -> Tuple[Circuit, Dict[str, List[int]]]:
    """A transposed direct-form FIR: ``y[n] = sum_k c_k * x[n-k]``.

    Structure (all words *width* bits, arithmetic mod ``2^width``)::

        y = c_0*x + z^-1 (c_1*x + z^-1 (c_2*x + ...))

    Every tap product feeds an adder whose other operand arrives from
    the next tap through a register — the canonical retiming testbed:
    registers already sit between the adders and can be redistributed.
    """
    if not coefficients:
        raise ValueError("need at least one coefficient")
    circuit = Circuit(name)
    x = circuit.add_input_word("x", width)

    products = [
        constant_multiplier(circuit, x, c, prefix=f"tap{k}")
        for k, c in enumerate(coefficients)
    ]
    # Walk from the last tap towards the output.
    partial = products[-1]
    for k in range(len(coefficients) - 2, -1, -1):
        delayed = circuit.add_dff_word(partial, name=f"z{k}")
        partial = _add_words_mod(
            circuit, products[k], delayed, prefix=f"sum{k}"
        )
    circuit.mark_output_word(partial, "y")
    return circuit, {"x": x, "y": partial}


def reference_fir(
    stream: Sequence[int], coefficients: Sequence[int], width: int
) -> List[int]:
    """Golden model of :func:`transposed_fir` (mod ``2^width``)."""
    mask = (1 << width) - 1
    out = []
    for n in range(len(stream)):
        acc = 0
        for k, c in enumerate(coefficients):
            if n - k >= 0:
                acc += (c & mask) * stream[n - k]
        out.append(acc & mask)
    return out
