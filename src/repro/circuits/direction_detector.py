"""The Phideo direction detector (paper Section 4.2, Figure 8).

The unit implements the core of a progressive-scan conversion
algorithm [paper ref. 6]: given three pixels ``a[0..2]`` from the video
line above and three pixels ``b[0..2]`` from the line below an
interpolation site, it measures luminance differences along three
candidate interpolation directions

* left  diagonal: ``|a[0] - b[2]|``
* vertical:       ``|a[1] - b[1]|``
* right diagonal: ``|a[2] - b[0]|``

selects the direction of minimum difference, and falls back to the
default (vertical, "along a[1], b[1]") when the detection is not
trustworthy — here, when the spread ``max - min`` does not exceed a
threshold.  Outputs mirror Figure 8: the 2-bit ``direction`` code, the
``min`` and ``max`` difference words, and the ``is_min`` / ``is_max``
flags that tell whether the default direction attains the extreme.

The paper's exact netlist is proprietary; this reconstruction follows
the figure's block structure with era-typical ripple arithmetic (see
DESIGN.md substitutions).  What the experiment needs from it — a
realistic video datapath whose cascaded ripple units produce a large
useless/useful ratio — is structural, not numerical.

Direction codes: 0 = left diagonal, 1 = vertical (default),
2 = right diagonal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.netlist.cells import CellKind
from repro.netlist.circuit import Circuit
from repro.circuits.comparators import (
    abs_diff,
    equality,
    greater_than,
    maximum,
    min_max,
    minimum,
    mux_word,
)
from repro.circuits.primitives import constant_word


@dataclass
class DirectionDetectorPorts:
    """Net-index handles of a built direction detector."""

    a: List[List[int]]  # three pixel words, line above
    b: List[List[int]]  # three pixel words, line below
    direction: List[int]  # 2-bit direction code
    min_diff: List[int]
    max_diff: List[int]
    is_min: int
    is_max: int
    # internal words, exposed for activity profiling:
    d_left: List[int]
    d_mid: List[int]
    d_right: List[int]


def build_direction_detector(
    width: int = 8,
    threshold: int = 16,
    register_inputs: bool = False,
    name: str = "direction_detector",
) -> tuple[Circuit, DirectionDetectorPorts]:
    """Build the detector; returns ``(circuit, ports)``.

    *width* is the pixel bit width (8 for video), *threshold* the
    constant the difference spread is compared against.  With
    *register_inputs* every input bit passes through a DFF first —
    6 words x *width* flipflops (48 at width 8, matching the paper's
    circuit 1 flipflop count exactly).
    """
    if width < 2:
        raise ValueError("pixel width must be at least 2 bits")
    if not 0 <= threshold < (1 << width):
        raise ValueError("threshold must fit in the pixel width")
    circuit = Circuit(name)
    a_in = [circuit.add_input_word(f"a{k}", width) for k in range(3)]
    b_in = [circuit.add_input_word(f"b{k}", width) for k in range(3)]
    if register_inputs:
        a = [circuit.add_dff_word(w, name=f"ra{k}") for k, w in enumerate(a_in)]
        b = [circuit.add_dff_word(w, name=f"rb{k}") for k, w in enumerate(b_in)]
    else:
        a, b = a_in, b_in

    # Directional absolute differences (the three grouped |a-b| blocks
    # of Figure 8; the default path has its own, fourth, block).
    d_left = abs_diff(circuit, a[0], b[2], prefix="dl")
    d_mid = abs_diff(circuit, a[1], b[1], prefix="dm")
    d_right = abs_diff(circuit, a[2], b[0], prefix="dr")
    d_default = abs_diff(circuit, a[1], b[1], prefix="dd")

    # find min/max over the three candidates (three '>' comparators).
    lo01, hi01, left_gt_mid = min_max(circuit, d_left, d_mid, prefix="mm0")
    min_diff, lo_gt_right = minimum(circuit, lo01, d_right, prefix="mmlo")
    max_diff, _hi_cmp = maximum(circuit, hi01, d_right, prefix="mmhi")

    # Detected direction code from the comparator outcomes:
    #   lo_gt_right == 1        -> right diagonal wins (code 2)
    #   else left_gt_mid == 1   -> vertical wins       (code 1)
    #   else                    -> left diagonal       (code 0)
    not_right = circuit.gate(CellKind.NOT, lo_gt_right, name="dir_nr")
    code0 = circuit.gate(
        CellKind.AND, not_right, left_gt_mid, name="dir_code0"
    )  # bit 0 set only for vertical
    code1 = lo_gt_right  # bit 1 set only for right diagonal
    detected = [code0, code1]

    # Reliability test: use the detected direction only when the spread
    # max - min clearly exceeds the threshold ('>' block of Figure 8).
    spread = abs_diff(circuit, max_diff, min_diff, prefix="spread")
    thr = constant_word(circuit, threshold, width, prefix="thr")
    use_detected = greater_than(circuit, spread, thr, prefix="use")

    default_code = constant_word(circuit, 1, 2, prefix="defdir")
    direction = mux_word(
        circuit, use_detected, default_code, detected, prefix="dirsel"
    )

    is_min = equality(circuit, d_default, min_diff, prefix="ismin")
    is_max = equality(circuit, d_default, max_diff, prefix="ismax")

    circuit.mark_output_word(direction, "direction")
    circuit.mark_output_word(min_diff, "min")
    circuit.mark_output_word(max_diff, "max")
    circuit.mark_output(is_min, "is_min")
    circuit.mark_output(is_max, "is_max")

    ports = DirectionDetectorPorts(
        a=a_in,
        b=b_in,
        direction=direction,
        min_diff=min_diff,
        max_diff=max_diff,
        is_min=is_min,
        is_max=is_max,
        d_left=d_left,
        d_mid=d_mid,
        d_right=d_right,
    )
    return circuit, ports


def reference_direction_detector(
    a: List[int], b: List[int], width: int = 8, threshold: int = 16
) -> dict:
    """Pure-Python golden model of the detector (for functional tests)."""
    mask = (1 << width) - 1
    d_left = abs((a[0] & mask) - (b[2] & mask))
    d_mid = abs((a[1] & mask) - (b[1] & mask))
    d_right = abs((a[2] & mask) - (b[0] & mask))
    # Mirror the gate-level comparator decisions exactly (strict '>').
    lo01 = d_mid if d_left > d_mid else d_left
    hi01 = d_left if d_left > d_mid else d_mid
    min_diff = d_right if lo01 > d_right else lo01
    max_diff = hi01 if hi01 > d_right else d_right
    if lo01 > d_right:
        detected = 2
    elif d_left > d_mid:
        detected = 1
    else:
        detected = 0
    spread = max_diff - min_diff
    direction = detected if spread > threshold else 1
    return {
        "direction": direction,
        "min": min_diff,
        "max": max_diff,
        "is_min": int(d_mid == min_diff),
        "is_max": int(d_mid == max_diff),
    }
