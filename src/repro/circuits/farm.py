"""A ≥100k-cell stress workload: a farm of array-multiplier tiles.

The paper's circuits top out at a few thousand cells; the simulation
backends are engineered to scale far beyond that, and this module
builds the workload that proves it.  :func:`build_multiplier_farm`
tiles :func:`~repro.circuits.multipliers.array_multiplier` instances
until a requested cell count is reached, all fed from **one shared
pair of input words**: tile *t* multiplies the x word rotated by *t*
bit positions against the y word rotated by ``2 t``.  Sharing (and
rotating) the operands keeps the primary-input count at ``2 n_bits``
regardless of farm size — the per-cycle stimulus stays cheap while
every tile still computes a distinct product, so the glitch profile
does not collapse into copies of identical activity.

Each tile is the deep, delay-unbalanced carry-save array measured in
Table 1, which makes the farm glitch-rich by construction — the right
stress case for the glitch-exact engines rather than a trivially
settled one.
"""

from __future__ import annotations

from math import ceil
from typing import List, Tuple

from repro.circuits.multipliers import array_multiplier
from repro.netlist.circuit import Circuit

#: Cells in one n=16 array tile (n*n AND matrix plus the carry-save
#: rows and final ripple adder); used only for the docstring math.
ARRAY16_TILE_CELLS = 496


def _rotated(word: List[int], k: int) -> List[int]:
    """The net word rotated left by *k* positions (lsb-first layout)."""
    k %= len(word)
    return word[k:] + word[:k]


def build_multiplier_farm(
    n_bits: int = 16,
    min_cells: int = 100_000,
    name: str | None = None,
) -> Tuple[Circuit, dict]:
    """A farm of ``n_bits x n_bits`` array multipliers, ≥ *min_cells* cells.

    Returns ``(circuit, ports)`` where ports holds the shared ``x`` /
    ``y`` input words and the list of per-tile ``products``.  The tile
    count is the smallest that reaches *min_cells* (one tile minimum),
    so ``build_multiplier_farm(16, 100_000)`` yields a ~100k-cell
    netlist with just 32 primary inputs.
    """
    if n_bits < 1:
        raise ValueError("n_bits must be >= 1")
    if min_cells < 1:
        raise ValueError("min_cells must be >= 1")
    probe = Circuit("farm-probe")
    px = probe.add_input_word("x", n_bits)
    py = probe.add_input_word("y", n_bits)
    array_multiplier(probe, px, py, prefix="t0")
    tile_cells = len(probe.cells)
    tiles = max(1, ceil(min_cells / tile_cells))

    circuit = Circuit(name or f"farm{n_bits}")
    x = circuit.add_input_word("x", n_bits)
    y = circuit.add_input_word("y", n_bits)
    products: List[List[int]] = []
    for t in range(tiles):
        product = array_multiplier(
            circuit, _rotated(x, t), _rotated(y, 2 * t), prefix=f"t{t}"
        )
        circuit.mark_output_word(product, f"p{t}")
        products.append(product)
    return circuit, {"x": x, "y": y, "products": products}
