"""Array and Wallace-tree multipliers (paper Section 4.1).

Both architectures multiply unsigned operands and share the same
partial-product AND matrix; they differ only in how the partial
products are summed:

* :func:`array_multiplier` — the carry-save *array* of paper Figure 6:
  each row of FA cells adds one partial-product row to the shifted
  sum/carry vectors of the row above, followed by a ripple-carry final
  adder.  Deep, strongly delay-unbalanced paths -> many glitches.
* :func:`wallace_tree_multiplier` — column-wise 3:2 reduction in
  log-depth layers (paper Figure 7), followed by a ripple-carry final
  adder ("17bit RCA" in the figure).  Much better balanced -> few
  glitches.

The Table 1 / Table 2 experiments monitor every adder-cell output in
these structures.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.netlist.cells import CellKind
from repro.netlist.circuit import Circuit
from repro.circuits.primitives import full_adder, half_adder


def _partial_products(
    circuit: Circuit,
    x: Sequence[int],
    y: Sequence[int],
    prefix: str,
) -> List[List[int]]:
    """The AND matrix: ``pp[i][j] = x[j] & y[i]`` (weight ``i + j``)."""
    return [
        [
            circuit.gate(
                CellKind.AND, x[j], y[i], name=f"{prefix}_pp{i}_{j}"
            )
            for j in range(len(x))
        ]
        for i in range(len(y))
    ]


def array_multiplier(
    circuit: Circuit,
    x: Sequence[int],
    y: Sequence[int],
    prefix: str = "arr",
) -> List[int]:
    """Carry-save array multiplier; returns the ``len(x)+len(y)``-bit product.

    Row ``i`` adds partial-product row ``i`` to the shifted sum vector
    and the carry vector of row ``i-1``; carries are saved (not
    propagated) until the final ripple-carry adder merges the last
    sum/carry vectors.  The carry chain of that final adder plus the
    column-depth imbalance of the array create the long unbalanced
    paths measured in Table 1.
    """
    n, m = len(x), len(y)
    if n == 0 or m == 0:
        raise ValueError("operands must be at least 1 bit wide")
    pp = _partial_products(circuit, x, y, prefix)
    product: List[int] = []

    # Row 0 contributes the initial sum vector; no carries yet.
    s: List[int | None] = list(pp[0])  # s[j] has weight j (relative to row)
    c: List[int | None] = [None] * n  # c[j] has weight j+1
    product.append(pp[0][0])

    for i in range(1, m):
        new_s: List[int | None] = [None] * n
        new_c: List[int | None] = [None] * n
        for j in range(n):
            a = pp[i][j]  # weight i + j
            b = s[j + 1] if j + 1 < n else None  # weight (i-1)+(j+1)
            k = c[j]  # weight (i-1)+j+1
            operands = [o for o in (b, k) if o is not None]
            if len(operands) == 2:
                new_s[j], new_c[j] = full_adder(
                    circuit, a, operands[0], operands[1],
                    name=f"{prefix}_fa{i}_{j}",
                )
            elif len(operands) == 1:
                new_s[j], new_c[j] = half_adder(
                    circuit, a, operands[0], name=f"{prefix}_ha{i}_{j}"
                )
            else:
                new_s[j] = a  # passes straight through
                new_c[j] = None
        s, c = new_s, new_c
        assert s[0] is not None
        product.append(s[0])

    # Final carry-propagate (ripple) adder over the remaining
    # sum/carry vectors: a[j] = s[j+1], b[j] = c[j], weight m + j.
    carry: int | None = None
    for j in range(n):
        a_bit = s[j + 1] if j + 1 < n else None
        b_bit = c[j]
        operands = [o for o in (a_bit, b_bit, carry) if o is not None]
        top = j == n - 1
        if len(operands) >= 2 and top:
            # The carry out of the most significant cell has weight
            # n + m and can never fire; emit the sum XOR only.
            bit = circuit.gate(
                CellKind.XOR, *operands, name=f"{prefix}_cpa{j}"
            )
            carry = None
        elif len(operands) == 3:
            bit, carry = full_adder(
                circuit, operands[0], operands[1], operands[2],
                name=f"{prefix}_cpa{j}",
            )
        elif len(operands) == 2:
            bit, carry = half_adder(
                circuit, operands[0], operands[1], name=f"{prefix}_cpa{j}"
            )
        elif len(operands) == 1:
            bit, carry = operands[0], None
        else:
            zero = circuit.add_cell(
                CellKind.CONST0, [], name=f"{prefix}_z{j}"
            )
            bit, carry = zero.outputs[0], None
        product.append(bit)
    assert len(product) == n + m, (len(product), n + m)
    return product


def reduce_and_add_columns(
    circuit: Circuit,
    columns: Dict[int, List[int]],
    width: int,
    prefix: str,
) -> List[int]:
    """Wallace 3:2/2:2 column reduction plus final ripple-carry add.

    *columns* maps weight -> list of nets; the result is the *width*-bit
    sum of all bits **modulo 2^width** — carries out of the top column
    are mathematically dropped (its cells degenerate to XOR, which is
    addition mod 2), exactly what an unsigned product (which cannot
    overflow) and a Baugh–Wooley two's-complement product (whose
    correction constants wrap) both require.
    """
    layer = 0
    while max(len(bits) for bits in columns.values()) > 2:
        new_columns: Dict[int, List[int]] = {w: [] for w in range(width)}
        for w in range(width):
            bits = columns[w]
            if w == width - 1 and len(bits) >= 2:
                # Top-column carries would have weight 2^width: they are
                # dropped by the mod-2^width semantics, so the cells
                # degenerate to XOR (addition mod 2).
                new_columns[w].append(
                    circuit.gate(
                        CellKind.XOR, *bits, name=f"{prefix}_l{layer}_top"
                    )
                )
                continue
            idx = 0
            group_id = 0
            while len(bits) - idx >= 3:
                sm, cy = full_adder(
                    circuit, bits[idx], bits[idx + 1], bits[idx + 2],
                    name=f"{prefix}_l{layer}_w{w}_fa{group_id}",
                )
                new_columns[w].append(sm)
                new_columns[w + 1].append(cy)
                idx += 3
                group_id += 1
            # Classic Wallace: every remaining pair is half-added too.
            # Without this, an isolated 3-high column emits a carry that
            # pushes its neighbour to 3 and the reduction degenerates to
            # a ripple marching one column per layer.
            if len(bits) - idx == 2:
                sm, cy = half_adder(
                    circuit, bits[idx], bits[idx + 1],
                    name=f"{prefix}_l{layer}_w{w}_ha",
                )
                new_columns[w].append(sm)
                new_columns[w + 1].append(cy)
                idx += 2
            new_columns[w].extend(bits[idx:])
        columns = new_columns
        layer += 1

    # Final ripple-carry addition of the remaining two rows; the top
    # column again adds mod 2 (XOR), dropping the weight-2^width carry.
    product: List[int] = []
    carry: int | None = None
    for w in range(width):
        bits = list(columns[w])
        if carry is not None:
            bits.append(carry)
        top = w == width - 1
        if len(bits) >= 2 and top:
            bit = circuit.gate(CellKind.XOR, *bits, name=f"{prefix}_cpa{w}")
            carry = None
        elif len(bits) == 3:
            bit, carry = full_adder(
                circuit, bits[0], bits[1], bits[2], name=f"{prefix}_cpa{w}"
            )
        elif len(bits) == 2:
            bit, carry = half_adder(
                circuit, bits[0], bits[1], name=f"{prefix}_cpa{w}"
            )
        elif len(bits) == 1:
            bit, carry = bits[0], None
        else:
            zero = circuit.add_cell(
                CellKind.CONST0, [], name=f"{prefix}_z{w}"
            )
            bit, carry = zero.outputs[0], None
        product.append(bit)
    return product


def wallace_tree_multiplier(
    circuit: Circuit,
    x: Sequence[int],
    y: Sequence[int],
    prefix: str = "wal",
) -> List[int]:
    """Wallace-tree multiplier; returns the ``len(x)+len(y)``-bit product.

    Column heights are reduced with carry-save 3:2 (FA) and 2:2 (HA)
    compressors layer by layer until every column holds at most two
    bits, then a ripple-carry adder produces the final product.
    """
    n, m = len(x), len(y)
    if n == 0 or m == 0:
        raise ValueError("operands must be at least 1 bit wide")
    pp = _partial_products(circuit, x, y, prefix)
    width = n + m
    columns: Dict[int, List[int]] = {w: [] for w in range(width)}
    for i in range(m):
        for j in range(n):
            columns[i + j].append(pp[i][j])
    return reduce_and_add_columns(circuit, columns, width, prefix)


def baugh_wooley_multiplier(
    circuit: Circuit,
    x: Sequence[int],
    y: Sequence[int],
    prefix: str = "bw",
) -> List[int]:
    """Signed (two's complement) Baugh–Wooley multiplier.

    Extension beyond the paper (which treats positive numbers): the
    regular Baugh–Wooley form makes a signed multiplier out of the same
    carry-save machinery by complementing the partial products that
    involve exactly one sign bit (NAND instead of AND cells) and adding
    correction constants ``2^n`` and ``2^(2n-1)``:

        P = sum_{i,j<n-1} x_j y_i 2^(i+j)
          + sum_{i<n-1} ~(x_{n-1} y_i) 2^(n-1+i)
          + sum_{j<n-1} ~(x_j y_{n-1}) 2^(n-1+j)
          + x_{n-1} y_{n-1} 2^(2n-2)  +  2^n  +  2^(2n-1)   (mod 2^2n)

    Requires square operands (``len(x) == len(y) >= 2``).  The result is
    the exact 2n-bit two's-complement product.
    """
    n = len(x)
    if n != len(y):
        raise ValueError("Baugh-Wooley requires equal operand widths")
    if n < 2:
        raise ValueError("Baugh-Wooley requires at least 2-bit operands")
    width = 2 * n
    columns: Dict[int, List[int]] = {w: [] for w in range(width)}
    for i in range(n - 1):
        for j in range(n - 1):
            columns[i + j].append(
                circuit.gate(
                    CellKind.AND, x[j], y[i], name=f"{prefix}_pp{i}_{j}"
                )
            )
    for i in range(n - 1):
        columns[n - 1 + i].append(
            circuit.gate(
                CellKind.NAND, x[n - 1], y[i], name=f"{prefix}_nx{i}"
            )
        )
    for j in range(n - 1):
        columns[n - 1 + j].append(
            circuit.gate(
                CellKind.NAND, x[j], y[n - 1], name=f"{prefix}_ny{j}"
            )
        )
    columns[2 * n - 2].append(
        circuit.gate(
            CellKind.AND, x[n - 1], y[n - 1], name=f"{prefix}_pps"
        )
    )
    one_n = circuit.add_cell(CellKind.CONST1, [], name=f"{prefix}_k1")
    columns[n].append(one_n.outputs[0])
    one_top = circuit.add_cell(CellKind.CONST1, [], name=f"{prefix}_k2")
    columns[2 * n - 1].append(one_top.outputs[0])
    return reduce_and_add_columns(circuit, columns, width, prefix)


def build_multiplier_circuit(
    n_bits: int,
    architecture: str,
    name: str | None = None,
) -> tuple[Circuit, dict]:
    """A standalone ``n_bits x n_bits`` multiplier with named ports.

    *architecture* is ``"array"`` or ``"wallace"``.  Returns
    ``(circuit, ports)`` with the ``x``/``y`` input words and the
    ``product`` output word.
    """
    builders = {
        "array": array_multiplier,
        "wallace": wallace_tree_multiplier,
        "baugh-wooley": baugh_wooley_multiplier,
    }
    try:
        builder = builders[architecture]
    except KeyError:
        raise ValueError(
            f"unknown architecture {architecture!r}; "
            f"choose from {sorted(builders)}"
        ) from None
    circuit = Circuit(name or f"{architecture}{n_bits}x{n_bits}")
    x = circuit.add_input_word("x", n_bits)
    y = circuit.add_input_word("y", n_bits)
    product = builder(circuit, x, y)
    circuit.mark_output_word(product, "p")
    return circuit, {"x": x, "y": y, "product": product}
