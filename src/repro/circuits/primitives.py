"""Arithmetic primitives: adder cells and constants.

Two full-adder granularities are provided because the paper simulates
at the *cell* level ("unit delay model for every full adder stage"):

* :func:`full_adder` — one two-output FA cell; the delay model can give
  sum and carry distinct delays (Table 2's ``dsum = 2*dcarry``);
* :func:`full_adder_gates` — the classic 2x XOR + 2x AND + OR
  decomposition, used by the granularity ablation.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.netlist.cells import CellKind
from repro.netlist.circuit import Circuit


def full_adder(
    circuit: Circuit,
    a: int,
    b: int,
    cin: int,
    name: str | None = None,
) -> Tuple[int, int]:
    """One FA cell; returns ``(sum, carry_out)`` net indices."""
    cell = circuit.add_cell(CellKind.FA, [a, b, cin], name=name)
    return cell.outputs[0], cell.outputs[1]


def half_adder(
    circuit: Circuit,
    a: int,
    b: int,
    name: str | None = None,
) -> Tuple[int, int]:
    """One HA cell; returns ``(sum, carry_out)`` net indices."""
    cell = circuit.add_cell(CellKind.HA, [a, b], name=name)
    return cell.outputs[0], cell.outputs[1]


def full_adder_gates(
    circuit: Circuit,
    a: int,
    b: int,
    cin: int,
    prefix: str = "fa",
) -> Tuple[int, int]:
    """Gate-level full adder: ``s = a^b^cin``, ``co = ab + cin(a^b)``."""
    p = circuit.gate(CellKind.XOR, a, b, name=f"{prefix}_p")
    s = circuit.gate(CellKind.XOR, p, cin, name=f"{prefix}_s")
    g = circuit.gate(CellKind.AND, a, b, name=f"{prefix}_g")
    t = circuit.gate(CellKind.AND, p, cin, name=f"{prefix}_t")
    co = circuit.gate(CellKind.OR, g, t, name=f"{prefix}_co")
    return s, co


def constant_word(
    circuit: Circuit, value: int, width: int, prefix: str = "const"
) -> List[int]:
    """A *width*-bit constant word built from CONST0/CONST1 cells.

    Constant nets never toggle, so they contribute no activity; they
    give thresholds and default codes a physical driver.
    """
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    nets = []
    for i in range(width):
        kind = CellKind.CONST1 if (value >> i) & 1 else CellKind.CONST0
        cell = circuit.add_cell(kind, [], name=f"{prefix}_{i}")
        nets.append(cell.outputs[0])
    return nets


def reduce_tree(
    circuit: Circuit,
    kind: CellKind,
    nets: Sequence[int],
    prefix: str = "tree",
    arity: int = 2,
) -> int:
    """Balanced reduction tree (AND/OR/XOR) over *nets*.

    Balanced trees minimise delay imbalance — the paper's prescription —
    so reductions (e.g. wide equality) are built this way by default.
    """
    if not nets:
        raise ValueError("cannot reduce an empty net list")
    if arity < 2:
        raise ValueError("tree arity must be >= 2")
    layer = list(nets)
    level = 0
    while len(layer) > 1:
        nxt: List[int] = []
        for i in range(0, len(layer), arity):
            group = layer[i : i + arity]
            if len(group) == 1:
                nxt.append(group[0])
            else:
                nxt.append(
                    circuit.gate(
                        kind, *group, name=f"{prefix}_l{level}_{i // arity}"
                    )
                )
        layer = nxt
        level += 1
    return layer[0]
