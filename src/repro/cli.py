"""Command-line front end.

Exposes the library's analyses without writing Python::

    python -m repro.cli analyze --circuit array8 --vectors 500
    python -m repro.cli analyze --circuit array16 --vectors 2000 \
        --shards 8 --jobs 4          # sharded, exactly merged
    python -m repro.cli analyze --circuit array16 --backend auto \
        --vectors 2000               # waveform engine, glitch-exact
    python -m repro.cli analyze --circuit rca16 --backend bitparallel
    python -m repro.cli analyze --circuit rca8 --vectors 50 \
        --backend auto --vcd rca8.vcd   # falls back to event-driven
    python -m repro.cli experiment table1
    python -m repro.cli export --circuit detector --format dot
    python -m repro.cli balance --circuit rca16 --vectors 300

Circuit names: ``rcaN`` (ripple-carry adder), ``arrayN`` / ``wallaceN``
(NxN multipliers), ``detector`` (the Section 4.2 processing unit).
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Sequence, Tuple

from repro.circuits.adders import build_rca_circuit
from repro.circuits.direction_detector import build_direction_detector
from repro.circuits.multipliers import build_multiplier_circuit
from repro.core.activity import ActivityRun
from repro.core.report import format_table
from repro.netlist.circuit import Circuit
from repro.netlist.io import circuit_to_dot, circuit_to_json
from repro.sim.delays import DelayModel, SumCarryDelay, UnitDelay
from repro.sim.vectors import WordStimulus


def _parse_size(name: str, prefix: str) -> int:
    try:
        n = int(name[len(prefix):])
    except ValueError:
        raise SystemExit(f"bad circuit name {name!r}: expected {prefix}<bits>")
    if not 1 <= n <= 64:
        raise SystemExit(f"width {n} out of range 1..64")
    return n


def build_named_circuit(name: str) -> Tuple[Circuit, WordStimulus]:
    """Construct a circuit by CLI name; returns it with its stimulus."""
    if name.startswith("rca"):
        n = _parse_size(name, "rca")
        circuit, ports = build_rca_circuit(n, with_cin=False)
        return circuit, WordStimulus({"a": ports["a"], "b": ports["b"]})
    if name.startswith("array") or name.startswith("wallace"):
        arch = "array" if name.startswith("array") else "wallace"
        n = _parse_size(name, arch)
        circuit, ports = build_multiplier_circuit(n, arch)
        return circuit, WordStimulus({"x": ports["x"], "y": ports["y"]})
    if name == "detector":
        from repro.experiments.detector import detector_stimulus

        circuit, ports = build_direction_detector()
        return circuit, detector_stimulus(ports)
    raise SystemExit(
        f"unknown circuit {name!r}; try rca16, array8, wallace8, detector"
    )


def _delay_model(spec: str) -> DelayModel:
    if spec == "unit":
        return UnitDelay()
    if spec == "sumcarry":
        return SumCarryDelay(dsum=2, dcarry=1)
    raise SystemExit(f"unknown delay model {spec!r}; use unit or sumcarry")


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.sim.backends import select_backend

    circuit, stim = build_named_circuit(args.circuit)
    if args.shards < 1:
        raise SystemExit(f"--shards must be >= 1, got {args.shards}")
    rng = random.Random(args.seed)
    backend = args.backend
    if args.vcd is not None:
        # Recorded events exist only on the event-driven engine; auto
        # falls back to it, anything else is a contradiction.
        if backend not in ("auto", "event"):
            raise SystemExit(
                f"--vcd requires recorded events, which only the "
                f"event-driven engine produces; drop --backend {backend} "
                "or use --backend auto"
            )
        if args.shards > 1:
            raise SystemExit("--vcd records a single stream; drop --shards")
        backend = select_backend(record_events=True)
    if backend in ("event", "waveform", "auto"):
        delay = _delay_model(args.delay or "unit")
        if backend == "auto":
            backend = select_backend(delay)
    elif args.delay is not None:
        raise SystemExit(
            f"--delay {args.delay} has no effect on the zero-delay "
            f"{args.backend!r} backend; drop it or use --backend event"
        )
    else:
        delay = None
    run = ActivityRun(circuit, delay_model=delay, backend=backend)
    vectors = stim.random(rng, args.vectors + 1)
    if args.vcd is not None:
        from repro.core.activity import accumulate_traces
        from repro.sim.vcd import dump_vcd

        traces = run.step_traces(vectors, record_events=True)
        result = accumulate_traces(run._result_shell(), traces)
        cycle_length = max(
            (t.settle_time for t in traces), default=0
        ) + 1
        with open(args.vcd, "w") as fh:
            fh.write(dump_vcd(circuit, traces, cycle_length=cycle_length))
        print(f"wrote {len(traces)} cycles to {args.vcd}")
    elif args.shards > 1:
        result = run.run_sharded(
            vectors, shards=args.shards, processes=args.jobs
        )
    else:
        result = run.run(vectors)
    summary = result.summary()
    print(
        format_table(
            ["metric", "value"],
            [[k, v] for k, v in summary.items()],
            title=(
                f"{circuit.name}: {args.vectors} random vectors, "
                f"{result.delay_description}"
            ),
        )
    )
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    name = args.name
    if name == "fig5":
        from repro.experiments.rca import figure5_experiment, format_figure5

        print(format_figure5(figure5_experiment(n_vectors=args.vectors)))
    elif name == "table1":
        from repro.experiments.multipliers import format_rows, table1_experiment

        print(format_rows(table1_experiment(n_vectors=args.vectors), "Table 1"))
    elif name == "table2":
        from repro.experiments.multipliers import format_rows, table2_experiment

        print(format_rows(table2_experiment(n_vectors=args.vectors), "Table 2"))
    elif name == "sec42":
        from repro.experiments.detector import section42_experiment

        data = section42_experiment(n_vectors=args.vectors)
        rows = [
            ["useful", data["useful"], data["paper"]["useful"]],
            ["useless", data["useless"], data["paper"]["useless"]],
            ["L/F", data["L/F"], data["paper"]["L/F"]],
        ]
        print(format_table(["metric", "repro", "paper"], rows, "Section 4.2"))
    elif name == "table3":
        from repro.experiments.retiming_power import (
            format_table3,
            table3_experiment,
        )

        print(format_table3(table3_experiment(n_vectors=args.vectors)))
    elif name == "adders":
        from repro.experiments.adder_sweep import (
            adder_architecture_experiment,
            format_adder_sweep,
        )

        print(
            format_adder_sweep(
                adder_architecture_experiment(n_vectors=args.vectors)
            )
        )
    else:
        raise SystemExit(
            f"unknown experiment {name!r}; "
            "try fig5, table1, table2, sec42, table3, adders"
        )
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    circuit, _ = build_named_circuit(args.circuit)
    if args.format == "json":
        print(circuit_to_json(circuit, indent=2))
    else:
        print(circuit_to_dot(circuit, max_cells=args.max_cells))
    return 0


def cmd_balance(args: argparse.Namespace) -> int:
    from repro.experiments.balance import (
        balancing_vs_retiming_experiment,
        format_balance_comparison,
    )

    n_bits = _parse_size(args.circuit, "rca")
    data = balancing_vs_retiming_experiment(
        n_bits=n_bits, n_vectors=args.vectors
    )
    print(format_balance_comparison(data))
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Glitch-aware transition-activity analysis "
            "(Leijten et al., DATE 1995 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="count useful/useless transitions")
    p.add_argument("--circuit", required=True)
    p.add_argument("--vectors", type=int, default=500)
    p.add_argument("--seed", type=int, default=1995)
    p.add_argument(
        "--delay", default=None, choices=["unit", "sumcarry"],
        help="event-backend delay model (default: unit)",
    )
    p.add_argument(
        "--backend", default="event",
        choices=["auto", "event", "waveform", "bitparallel"],
        help=(
            "simulation backend: auto picks the waveform engine for "
            "glitch-exact aggregate runs (event-driven when --vcd is "
            "given); bitparallel counts useful activity only"
        ),
    )
    p.add_argument(
        "--vcd", default=None, metavar="PATH",
        help=(
            "dump the simulated waveforms to a VCD file (forces the "
            "event-driven engine with event recording)"
        ),
    )
    p.add_argument(
        "--shards", type=int, default=1,
        help="split the vector stream into N exactly-merged shards",
    )
    p.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for sharded runs (default: in-process)",
    )
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("name")
    p.add_argument("--vectors", type=int, default=300)
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser("export", help="dump a circuit as JSON or DOT")
    p.add_argument("--circuit", required=True)
    p.add_argument("--format", default="json", choices=["json", "dot"])
    p.add_argument("--max-cells", type=int, default=2000)
    p.set_defaults(func=cmd_export)

    p = sub.add_parser(
        "balance", help="compare balancing vs retiming on an RCA"
    )
    p.add_argument("--circuit", default="rca12")
    p.add_argument("--vectors", type=int, default=300)
    p.set_defaults(func=cmd_balance)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
