"""Command-line front end.

Exposes the library's analyses without writing Python::

    python -m repro.cli analyze --circuit array8 --vectors 500
    python -m repro.cli analyze --circuit array16 --vectors 2000 \
        --shards 8 --jobs 4          # sharded, exactly merged
    python -m repro.cli analyze --circuit array16 --backend auto \
        --vectors 2000               # fastest glitch-exact engine
    python -m repro.cli analyze --circuit array32 --backend vector \
        --vectors 5000               # numpy tier ([perf] extra)
    python -m repro.cli analyze --circuit rca16 --backend bitparallel
    python -m repro.cli analyze --circuit rca8 --vectors 50 \
        --backend auto --vcd rca8.vcd   # falls back to event-driven
    python -m repro.cli analyze --circuit array8 --cache .repro-cache
    python -m repro.cli analyze --circuit array8 --estimate   # + estimator gap
    python -m repro.cli estimate --circuit array16            # analytic only
    python -m repro.cli experiment table1
    python -m repro.cli experiment ablation                   # estimate vs sim
    python -m repro.cli experiment fig5 --cache .repro-cache  # warm = instant
    python -m repro.cli submit --circuit array8 --cache .repro-cache \
        --sweep circuit=rca8,rca16,array8 --sweep n_vectors=200,500 --jobs 4
    python -m repro.cli status --cache .repro-cache
    python -m repro.cli cache --dir .repro-cache
    python -m repro.cli export --circuit detector --format dot
    python -m repro.cli import design.json --action analyze
    python -m repro.cli balance --circuit rca16 --vectors 300
    python -m repro.cli analyze --circuit rca16 --trace t.json --metrics
    python -m repro.cli trace t.json            # span tree from the file
    python -m repro.cli explore --circuit array8 --strategy beam \
        --cache .repro-cache       # estimate-guided Pareto search
    python -m repro.cli experiment frontier

Circuit names: ``rcaN`` (ripple-carry adder), ``arrayN`` / ``wallaceN``
(NxN multipliers), ``detector`` (the Section 4.2 processing unit).
``--cache DIR`` routes runs through the service layer
(:mod:`repro.service`): identical re-runs are served bit-identically
from the content-addressed store with zero simulation work.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Sequence, Tuple

from repro.circuits.catalog import build_named_circuit as _catalog_build
from repro.core.activity import ActivityRun
from repro.core.report import format_table
from repro.netlist.circuit import Circuit
from repro.netlist.io import circuit_to_dot, circuit_to_json
from repro.sim.delays import DelayModel, SumCarryDelay, UnitDelay
from repro.sim.vectors import WordStimulus


def build_named_circuit(name: str) -> Tuple[Circuit, WordStimulus]:
    """Construct a circuit by CLI name; returns it with its stimulus.

    Thin wrapper over :func:`repro.circuits.catalog.build_named_circuit`
    that converts lookup errors into ``SystemExit``.
    """
    try:
        return _catalog_build(name)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _parse_size(name: str, prefix: str) -> int:
    from repro.circuits.catalog import _parse_size as parse

    try:
        return parse(name, prefix)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _delay_model(spec: str) -> DelayModel:
    if spec == "unit":
        return UnitDelay()
    if spec == "sumcarry":
        return SumCarryDelay(dsum=2, dcarry=1)
    raise SystemExit(f"unknown delay model {spec!r}; use unit or sumcarry")


def _open_store(path: str | None, max_bytes: int | None = None):
    """A :class:`~repro.service.store.ResultStore` at *path*, or None."""
    if path is None:
        return None
    from repro.service.store import ResultStore

    return ResultStore(path, max_bytes=max_bytes)


def _require_backend(name: str) -> None:
    """Exit with a one-line error when *name* cannot run here.

    ``auto`` always resolves to something runnable; concrete names are
    checked up front so a missing optional dependency surfaces as a
    clean message listing the usable engines, not a traceback from
    deep inside a run.
    """
    from repro.sim.backends import (
        available_backends,
        backend_unavailable_reason,
    )

    if name == "auto":
        return
    try:
        reason = backend_unavailable_reason(name)
    except ValueError as exc:
        raise SystemExit(str(exc))
    if reason is not None:
        raise SystemExit(
            f"{reason} (available backends: "
            f"{', '.join(available_backends())})"
        )


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.sim.backends import select_backend

    circuit, stim = build_named_circuit(args.circuit)
    if args.shards < 1:
        raise SystemExit(f"--shards must be >= 1, got {args.shards}")
    rng = random.Random(args.seed)
    backend = args.backend
    _require_backend(backend)
    if args.vcd is not None:
        # Recorded events exist only on the event-driven engine; auto
        # falls back to it, anything else is a contradiction.
        if backend not in ("auto", "event"):
            raise SystemExit(
                f"--vcd requires recorded events, which only the "
                f"event-driven engine produces; drop --backend {backend} "
                "or use --backend auto"
            )
        if args.shards > 1:
            raise SystemExit("--vcd records a single stream; drop --shards")
        if args.cache is not None:
            raise SystemExit(
                "--vcd needs recorded per-cycle events, which the result "
                "store does not hold; drop --cache for VCD dumps"
            )
        backend = select_backend(record_events=True)
    if backend in ("event", "waveform", "codegen", "vector", "auto"):
        # "auto" is passed through unresolved: ActivityRun/cached_run
        # resolve it themselves, which arms runtime failover down the
        # backend chain (an explicitly named backend never falls back).
        delay = _delay_model(args.delay or "unit")
    elif args.delay is not None:
        raise SystemExit(
            f"--delay {args.delay} has no effect on the zero-delay "
            f"{args.backend!r} backend; drop it or use --backend event"
        )
    else:
        delay = None
    store = None
    if args.cache is not None:
        # Route through the service layer: exact content-addressed
        # reuse, bit-identical to the direct run below.
        from repro.service.runner import cached_run
        from repro.sim.vectors import UniformStimulus

        store = _open_store(args.cache)
        result = cached_run(
            circuit, stim, UniformStimulus(seed=args.seed), args.vectors,
            delay_model=delay, backend=backend, store=store,
            shards=args.shards, processes=args.jobs,
        )
        source = "cache" if store.hits else "simulated"
        store.flush()  # persist hit recency even in read-only runs
        print(f"[cache] {source}: {store.root}")
    else:
        run = ActivityRun(circuit, delay_model=delay, backend=backend)
        vectors = stim.random(rng, args.vectors + 1)
        if args.vcd is not None:
            from repro.core.activity import accumulate_traces
            from repro.sim.vcd import dump_vcd

            traces = run.step_traces(vectors, record_events=True)
            result = accumulate_traces(run._result_shell(), traces)
            cycle_length = max(
                (t.settle_time for t in traces), default=0
            ) + 1
            with open(args.vcd, "w") as fh:
                fh.write(dump_vcd(circuit, traces, cycle_length=cycle_length))
            print(f"wrote {len(traces)} cycles to {args.vcd}")
        elif args.shards > 1:
            result = run.run_sharded(
                vectors, shards=args.shards, processes=args.jobs
            )
        else:
            result = run.run(vectors)
    summary = result.summary()
    print(
        format_table(
            ["metric", "value"],
            [[k, v] for k, v in summary.items()],
            title=(
                f"{circuit.name}: {args.vectors} random vectors, "
                f"{result.delay_description}"
            ),
        )
    )
    if args.estimate:
        from repro.sim.vectors import UniformStimulus

        estimate = _estimate_for(
            circuit, UniformStimulus(seed=args.seed), store
        )
        cycles = result.cycles or 1
        est = estimate.summary()
        rows = [
            [
                "useful/cycle",
                round(result.useful / cycles, 2),
                est["useful"],
            ],
            [
                "total/cycle",
                round(result.total_transitions / cycles, 2),
                est["total"],
            ],
            ["L/F", summary["L/F"], est["L/F"]],
        ]
        # The bit-parallel engine counts only settled (useful)
        # activity, so its "total" is not glitch-inclusive — label the
        # comparison accordingly rather than overclaim exactness.
        sim_label = (
            "zero-delay simulation (useful-only totals)"
            if backend == "bitparallel" else "glitch-exact simulation"
        )
        print()
        print(format_table(
            ["metric", "simulated", "estimated"],
            rows,
            title=(
                f"{circuit.name}: {sim_label} vs analytic "
                "estimate (rates per cycle)"
            ),
        ))
    return 0


def _estimate_for(circuit: Circuit, stimulus, store):
    """One workload estimate, through the service layer when *store* is set."""
    if store is not None:
        from repro.service.runner import cached_estimate

        hits_before = store.hits
        estimate = cached_estimate(circuit, stimulus, store=store)
        source = "cache" if store.hits > hits_before else "estimated"
        store.flush()  # persist hit recency even in read-only runs
        print(f"[estimate cache] {source}: {store.root}")
        return estimate
    from repro.estimate.workload import estimate_workload

    return estimate_workload(circuit, stimulus)


def cmd_estimate(args: argparse.Namespace) -> int:
    circuit, _ = build_named_circuit(args.circuit)
    stimulus = _make_stimulus_arg(args)
    estimate = _estimate_for(circuit, stimulus, _open_store(args.cache))
    summary = estimate.summary()
    print(format_table(
        ["metric", "value"],
        [[k, v] for k, v in summary.items()],
        title=(
            f"{circuit.name}: analytic estimate, "
            f"{estimate.stimulus_description} "
            f"(p={estimate.input_probability:g}, "
            f"D={estimate.input_density:g})"
        ),
    ))
    classes = estimate.by_class(circuit)
    rows = [
        [
            cls,
            row["nets"],
            round(row["useful"], 2),
            round(row["density"], 2),
        ]
        for cls, row in sorted(classes.items())
    ]
    print(format_table(
        ["net class", "nets", "zero-delay useful/cyc", "density/cyc"],
        rows,
        title="estimated activity per net class",
    ))
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    from repro.obs import trace as obs

    name = args.name
    store = _open_store(args.cache)
    with obs.span(f"experiment.{name}", vectors=args.vectors):
        _dispatch_experiment(name, args, store)
    if store is not None:
        store.flush()  # persist hit recency even in read-only runs
        print(
            f"[cache] {store.hits} hit(s), {store.misses} miss(es) "
            f"at {store.root}"
        )
    return 0


def _dispatch_experiment(name: str, args: argparse.Namespace, store) -> None:
    if name == "fig5":
        from repro.experiments.rca import figure5_experiment, format_figure5

        print(format_figure5(
            figure5_experiment(n_vectors=args.vectors, store=store)
        ))
    elif name == "table1":
        from repro.experiments.multipliers import format_rows, table1_experiment

        print(format_rows(
            table1_experiment(n_vectors=args.vectors, store=store), "Table 1"
        ))
    elif name == "table2":
        from repro.experiments.multipliers import format_rows, table2_experiment

        print(format_rows(
            table2_experiment(n_vectors=args.vectors, store=store), "Table 2"
        ))
    elif name == "sec42":
        from repro.experiments.detector import section42_experiment

        data = section42_experiment(n_vectors=args.vectors, store=store)
        rows = [
            ["useful", data["useful"], data["paper"]["useful"]],
            ["useless", data["useless"], data["paper"]["useless"]],
            ["L/F", data["L/F"], data["paper"]["L/F"]],
        ]
        print(format_table(["metric", "repro", "paper"], rows, "Section 4.2"))
    elif name == "table3":
        from repro.experiments.retiming_power import (
            format_table3,
            table3_experiment,
        )

        print(format_table3(
            table3_experiment(n_vectors=args.vectors, store=store)
        ))
    elif name == "ablation":
        from repro.experiments.ablation import (
            estimator_ablation_experiment,
            format_ablation,
        )

        print(format_ablation(
            estimator_ablation_experiment(
                n_vectors=args.vectors, store=store
            )
        ))
    elif name == "adders":
        from repro.experiments.adder_sweep import (
            adder_architecture_experiment,
            format_adder_sweep,
        )

        print(
            format_adder_sweep(
                adder_architecture_experiment(
                    n_vectors=args.vectors, store=store
                )
            )
        )
    elif name == "frontier":
        from repro.experiments.explore_frontier import (
            explore_frontier_experiment,
            format_frontier,
        )

        print(format_frontier(
            explore_frontier_experiment(n_vectors=args.vectors, store=store)
        ))
    else:
        raise SystemExit(
            f"unknown experiment {name!r}; "
            "try fig5, table1, table2, sec42, table3, adders, ablation, "
            "frontier"
        )


def _parse_sweep(
    pairs: List[str] | None,
) -> dict:
    """``axis=v1,v2,...`` option strings -> sweep dict (typed values)."""
    sweep: dict = {}
    for pair in pairs or []:
        axis, sep, values = pair.partition("=")
        if not sep or not values:
            raise SystemExit(
                f"bad --sweep {pair!r}: expected axis=value1,value2,..."
            )
        items: List = values.split(",")
        if axis in ("n_vectors", "seed"):
            try:
                items = [int(v) for v in items]
            except ValueError:
                raise SystemExit(f"--sweep {axis} values must be integers")
        sweep[axis] = items
    return sweep


def _make_stimulus_arg(args: argparse.Namespace):
    from repro.sim.vectors import make_stimulus

    params = {"seed": args.seed}
    if args.stimulus == "correlated":
        params["flip_probability"] = args.flip_probability
    try:
        return make_stimulus(args.stimulus, **params)
    except (TypeError, ValueError) as exc:
        raise SystemExit(str(exc))


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.jobs import BatchScheduler, JobSpec

    _require_backend(args.backend)
    store = _open_store(args.cache)
    spec = JobSpec(
        circuit=args.circuit,
        delay=args.delay,
        stimulus=_make_stimulus_arg(args),
        n_vectors=args.vectors,
        backend=args.backend,
        estimate=args.estimate,
        sweep=_parse_sweep(args.sweep),
    )
    try:
        points = spec.points()
    except ValueError as exc:
        raise SystemExit(str(exc))
    policy = None
    if args.retries is not None or args.task_timeout is not None:
        from repro.service.pool import RetryPolicy

        defaults = RetryPolicy()
        policy = RetryPolicy(
            max_attempts=(
                defaults.max_attempts if args.retries is None
                else max(1, args.retries + 1)
            ),
            timeout_s=(
                defaults.timeout_s if args.task_timeout is None
                else args.task_timeout
            ),
        )
    scheduler = BatchScheduler(
        store=store, processes=args.jobs, policy=policy
    )
    if args.dry_run:
        hits, misses = scheduler.plan(spec)
        rows = [[p.label(), "hit"] for p, _ in hits]
        rows += [[p.label(), "miss"] for p, _ in misses]
        print(format_table(
            ["point", "cache"], rows,
            title=f"dry run — {len(points)} point(s), "
                  f"{len(hits)} cached, {len(misses)} to simulate",
        ))
        return 0
    report = scheduler.run(spec, heartbeat_s=args.heartbeat)
    rows = [
        [
            o.point.label(), o.status, o.summary["total"],
            o.summary["useful"], o.summary["useless"], o.summary["L/F"],
        ]
        for o in report.outcomes
    ]
    title = (
        f"{report.job_id}: {report.n_hits} hit(s), "
        f"{report.n_computed} computed in {report.elapsed_s:.2f}s"
    )
    if report.n_failed:
        title += f", {report.n_failed} FAILED"
    print(format_table(
        ["point", "source", "total", "useful", "useless", "L/F"],
        rows, title=title,
    ))
    for failure in report.failures:
        print(
            f"[failed] {failure.label}: {failure.kind} after "
            f"{failure.attempts} attempt(s): {failure.error}"
        )
    return 1 if report.n_failed else 0


def cmd_status(args: argparse.Namespace) -> int:
    from repro.service.jobs import load_job_records

    store = _open_store(args.cache)
    if store is None:
        raise SystemExit("status requires --cache DIR")
    records = load_job_records(store)
    if args.job is not None:
        matches = [r for r in records if r.get("job_id") == args.job]
        if not matches:
            raise SystemExit(f"no job {args.job!r} in {store.root}")
        record = matches[-1]
        rows = [
            [
                o["point"]["circuit"], o["point"]["delay"],
                o["point"]["n_vectors"], o["status"],
                o["summary"]["total"], o["summary"]["L/F"],
            ]
            for o in record["outcomes"]
        ]
        print(format_table(
            ["circuit", "delay", "vectors", "source", "total", "L/F"],
            rows, title=record["job_id"],
        ))
        return 0
    if not records:
        print(f"no jobs recorded in {store.root}")
        return 0
    rows = [
        [
            r["job_id"], len(r.get("outcomes", [])),
            r.get("hits", 0), r.get("computed", 0),
            r.get("failed", 0),
            "yes" if r.get("interrupted") else "no",
            r.get("elapsed_s", 0.0),
        ]
        for r in records
    ]
    print(format_table(
        ["job", "points", "hits", "computed", "failed", "interrupted",
         "elapsed_s"],
        rows, title=f"jobs in {store.root}",
    ))
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    store = _open_store(args.dir)
    if store is None:
        raise SystemExit("cache requires --dir DIR")
    if args.action == "verify":
        report = store.verify()
        rows = [
            [p["digest"][:12], p["kind"], p["detail"]]
            for p in report["problems"]
        ]
        title = (
            f"{report['ok']}/{report['entries']} entrie(s) ok, "
            f"{len(report['problems'])} problem(s)"
        )
        if rows:
            print(format_table(["digest", "kind", "detail"], rows,
                               title=title))
        else:
            print(title)
        return 1 if report["problems"] else 0
    if args.action == "repair":
        before = store.verify()
        fixed = store.repair()
        print(
            f"dropped {fixed['dropped']} corrupt entrie(s), adopted "
            f"{fixed['adopted']} orphan object(s), deleted "
            f"{fixed['deleted']} unparseable orphan(s), swept "
            f"{fixed['swept_tmp']} stale tmp file(s) "
            f"({len(before['problems'])} problem(s) found)"
        )
        after = store.verify()
        print(f"{after['ok']}/{after['entries']} entrie(s) ok after repair")
        return 0
    if args.clear:
        n = store.clear()
        print(f"cleared {n} entrie(s) from {store.root}")
        return 0
    if args.prune_bytes is not None:
        n = store.prune(args.prune_bytes)
        print(f"evicted {n} entrie(s); {store.total_bytes()} bytes remain")
        return 0
    stats = store.stats()
    rows = [[k, v] for k, v in stats.items() if not k.startswith("session_")]
    print(format_table(["metric", "value"], rows, title="result store"))
    entries = list(store.entries())[-args.limit:] if args.limit > 0 else []
    if entries:
        rows = [
            [
                e["digest"][:12],
                e.get("circuit_name", "?"),
                # Entries adopted by index recovery have no decomposed
                # key (the digest alone addresses them).
                (e.get("key") or {}).get("n_vectors", "?"),
                (e.get("key") or {}).get("result_class", "?"),
                (e.get("summary") or {}).get("total", "?"),
                e["size"],
            ]
            for e in entries
        ]
        print(format_table(
            ["digest", "circuit", "vectors", "class", "total", "bytes"],
            rows, title=f"most recent {len(rows)} entrie(s)",
        ))
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    circuit, _ = build_named_circuit(args.circuit)
    if args.format == "json":
        print(circuit_to_json(circuit, indent=2))
    else:
        print(circuit_to_dot(circuit, max_cells=args.max_cells))
    return 0


def _run_explore(circuit: Circuit, args: argparse.Namespace) -> int:
    """Shared exploration path for ``explore`` and ``import --action explore``."""
    from repro.explore.report import format_explore
    from repro.explore.search import explore
    from repro.explore.specs import default_space
    from repro.sim.vectors import UniformStimulus

    space = default_space(
        delay=args.delay or "unit",
        max_stages=args.max_stages,
        max_depth=args.max_depth,
        max_area_mm2=args.max_area,
        max_latency=args.max_latency,
    )
    store = _open_store(args.cache)
    try:
        result = explore(
            circuit,
            space=space,
            strategy=args.strategy,
            beam_width=args.beam_width,
            n_vectors=args.vectors,
            stimulus=UniformStimulus(seed=args.seed),
            store=store,
            processes=args.jobs,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    print(format_explore(result))
    if store is not None:
        store.flush()  # persist hit recency even in warm runs
        print(
            f"[cache] {store.hits} hit(s), {store.misses} miss(es) "
            f"at {store.root}"
        )
    if not any(c.on_front for c in result.candidates):
        raise SystemExit(
            "exploration produced an empty front; relax --max-area / "
            "--max-latency"
        )
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    circuit, _ = build_named_circuit(args.circuit)
    return _run_explore(circuit, args)


def _load_imported_circuit(path: str) -> Circuit:
    from repro.netlist.io import circuit_from_json
    from repro.netlist.validate import validate

    try:
        with open(path) as fh:
            text = fh.read()
    except OSError as exc:
        raise SystemExit(f"cannot read {path}: {exc}")
    try:
        circuit = circuit_from_json(text)
    except (ValueError, KeyError, TypeError) as exc:
        raise SystemExit(f"{path} is not a schema-v1 netlist: {exc}")
    errors = [i for i in validate(circuit) if i.severity == "error"]
    if errors:
        detail = "; ".join(i.message for i in errors[:5])
        raise SystemExit(f"{path} failed netlist validation: {detail}")
    if not circuit.inputs:
        raise SystemExit(f"{path} has no primary inputs to stimulate")
    return circuit


def cmd_import(args: argparse.Namespace) -> int:
    """Load an exported/externally generated netlist and analyze it."""
    from repro.netlist.io import words_from_inputs

    circuit = _load_imported_circuit(args.path)
    if args.action == "explore":
        return _run_explore(circuit, args)
    if args.action == "estimate":
        from repro.sim.vectors import UniformStimulus

        estimate = _estimate_for(
            circuit, UniformStimulus(seed=args.seed), _open_store(args.cache)
        )
        print(format_table(
            ["metric", "value"],
            [[k, v] for k, v in estimate.summary().items()],
            title=(
                f"{circuit.name} (imported): analytic estimate, "
                f"{estimate.stimulus_description}"
            ),
        ))
        return 0
    # analyze: only this path needs the name-derived word stimulus.
    from repro.sim.vectors import UniformStimulus, WordStimulus

    try:
        words = words_from_inputs(circuit)
    except ValueError as exc:
        raise SystemExit(str(exc))
    stim = WordStimulus(words)
    delay = _delay_model(args.delay or "unit")
    store = _open_store(args.cache)
    if store is not None:
        from repro.service.runner import cached_run

        result = cached_run(
            circuit, stim, UniformStimulus(seed=args.seed), args.vectors,
            delay_model=delay, backend="auto", store=store,
        )
        source = "cache" if store.hits else "simulated"
        store.flush()
        print(f"[cache] {source}: {store.root}")
    else:
        run = ActivityRun(circuit, delay_model=delay, backend="auto")
        result = run.run(
            UniformStimulus(seed=args.seed).vectors(stim, args.vectors + 1)
        )
    word_desc = ", ".join(
        f"{name}[{len(nets)}]" for name, nets in words.items()
    )
    print(
        format_table(
            ["metric", "value"],
            [[k, v] for k, v in result.summary().items()],
            title=(
                f"{circuit.name} (imported, words {word_desc}): "
                f"{args.vectors} random vectors, "
                f"{result.delay_description}"
            ),
        )
    )
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Render (or validate) a Chrome-trace file written by ``--trace``."""
    import json

    from repro.obs import trace as obs

    try:
        with open(args.path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read trace {args.path}: {exc}")
    errors = obs.validate_chrome_trace(doc)
    if args.validate:
        if errors:
            for err in errors[:20]:
                print(err)
            print(f"{args.path}: INVALID ({len(errors)} error(s))")
            return 1
        print(
            f"{args.path}: valid "
            f"({len(doc['traceEvents'])} trace event(s))"
        )
        return 0
    if errors:
        raise SystemExit(f"{args.path}: not a repro trace: {errors[0]}")
    events = obs.events_from_chrome(doc)
    print(obs.format_tree(events, min_ms=args.min_ms))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Render or diff the committed perf-trajectory ledger."""
    from repro.obs.ledger import (
        compare_snapshots,
        format_diff,
        format_ledger,
        load_snapshot,
        validate_snapshot,
    )

    def _load(path: str):
        try:
            doc = load_snapshot(path)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read ledger {path}: {exc}")
        errors = validate_snapshot(doc)
        if errors:
            for err in errors[:20]:
                print(err)
            raise SystemExit(
                f"{path}: not a bench snapshot ({len(errors)} error(s))"
            )
        return doc

    current = _load(args.file)
    if args.diff is None:
        print(format_ledger(current))
        return 0
    reference = _load(args.diff)
    print(format_diff(reference, current, threshold=args.threshold))
    regressions = compare_snapshots(reference, current, args.threshold)
    return 1 if regressions else 0


def cmd_balance(args: argparse.Namespace) -> int:
    from repro.experiments.balance import (
        balancing_vs_retiming_experiment,
        format_balance_comparison,
    )

    n_bits = _parse_size(args.circuit, "rca")
    data = balancing_vs_retiming_experiment(
        n_bits=n_bits, n_vectors=args.vectors
    )
    print(format_balance_comparison(data))
    return 0


def _obs_options(p: argparse.ArgumentParser) -> None:
    """Observability flags shared by the run commands."""
    p.add_argument(
        "--trace", default=None, metavar="PATH",
        help=(
            "record hierarchical spans across every layer (workers "
            "included) and write a Chrome-trace JSON file loadable in "
            "chrome://tracing or ui.perfetto.dev; render it later with "
            "'repro trace PATH'"
        ),
    )
    p.add_argument(
        "--metrics", action="store_true",
        help=(
            "print the run's counters, gauges and latency histograms "
            "(cache, pool, sim, store) on exit"
        ),
    )
    p.add_argument(
        "--log", default=None, metavar="PATH",
        help=(
            "append every span/instant as one JSON line to PATH, "
            "correlated by a per-run run_id that workers inherit; "
            "greppable while the run is still going"
        ),
    )
    p.add_argument(
        "--sample", type=float, default=None, metavar="HZ",
        help=(
            "sample RSS/CPU/GC/pool-queue-depth HZ times per second "
            "into the trace as Chrome counter tracks"
        ),
    )


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Glitch-aware transition-activity analysis "
            "(Leijten et al., DATE 1995 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="count useful/useless transitions")
    p.add_argument("--circuit", required=True)
    p.add_argument("--vectors", type=int, default=500)
    p.add_argument("--seed", type=int, default=1995)
    p.add_argument(
        "--delay", default=None, choices=["unit", "sumcarry"],
        help="event-backend delay model (default: unit)",
    )
    p.add_argument(
        "--backend", default="event",
        choices=[
            "auto", "event", "waveform", "bitparallel", "codegen",
            "vector",
        ],
        help=(
            "simulation backend: auto picks the fastest glitch-exact "
            "engine (vector with the [perf] extra, waveform without; "
            "event-driven when --vcd is given); codegen/vector are the "
            "generated-kernel tiers; bitparallel counts useful "
            "activity only"
        ),
    )
    p.add_argument(
        "--vcd", default=None, metavar="PATH",
        help=(
            "dump the simulated waveforms to a VCD file (forces the "
            "event-driven engine with event recording)"
        ),
    )
    p.add_argument(
        "--shards", type=int, default=1,
        help="split the vector stream into N exactly-merged shards",
    )
    p.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for sharded runs (default: in-process)",
    )
    p.add_argument(
        "--cache", default=None, metavar="DIR",
        help=(
            "route the run through the service result store at DIR; "
            "identical re-runs are served bit-exactly without simulating"
        ),
    )
    p.add_argument(
        "--estimate", action="store_true",
        help=(
            "also run the analytic estimation backend on the same "
            "workload and print the simulated-vs-estimated comparison"
        ),
    )
    _obs_options(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "estimate",
        help="analytic activity estimate (no simulation)",
    )
    p.add_argument("--circuit", required=True)
    p.add_argument("--seed", type=int, default=1995)
    p.add_argument(
        "--stimulus", default="uniform",
        choices=["uniform", "correlated", "burst"],
        help="workload whose analytic input statistics drive the estimate",
    )
    p.add_argument("--flip-probability", type=float, default=0.1)
    p.add_argument(
        "--cache", default=None, metavar="DIR",
        help=(
            "serve repeated estimates from the service result store at "
            "DIR (entries are shared across stimulus seeds)"
        ),
    )
    p.set_defaults(func=cmd_estimate)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("name")
    p.add_argument("--vectors", type=int, default=300)
    p.add_argument(
        "--cache", default=None, metavar="DIR",
        help="serve repeated runs from the service result store at DIR",
    )
    _obs_options(p)
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser(
        "submit",
        help="run a declarative (sweep) batch job through the service",
    )
    p.add_argument("--circuit", default="array8")
    p.add_argument("--vectors", type=int, default=500)
    p.add_argument("--seed", type=int, default=1995)
    p.add_argument(
        "--delay", default="unit", choices=["unit", "sumcarry", "zero"],
    )
    p.add_argument(
        "--stimulus", default="uniform",
        choices=["uniform", "correlated", "burst"],
    )
    p.add_argument("--flip-probability", type=float, default=0.1)
    p.add_argument(
        "--backend", default="auto",
        choices=[
            "auto", "event", "waveform", "bitparallel", "codegen",
            "vector",
        ],
    )
    p.add_argument(
        "--estimate", action="store_true",
        help="run the analytic estimation backend instead of simulating",
    )
    p.add_argument(
        "--sweep", action="append", metavar="AXIS=V1,V2,...",
        help=(
            "sweep an axis (circuit, delay, n_vectors, seed, estimate) "
            "over values; repeatable, axes combine as a Cartesian "
            "product (estimate=0,1 yields the simulate/estimate pair "
            "per point)"
        ),
    )
    p.add_argument(
        "--cache", default=None, metavar="DIR",
        help="result store directory (enables partial-hit resume)",
    )
    p.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for cache-missing points",
    )
    p.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help=(
            "retry a crashed/hung/failing point up to N times before "
            "quarantining it (default 2)"
        ),
    )
    p.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help=(
            "per-point wall-clock limit; a worker past it is killed "
            "and the point retried (default 300)"
        ),
    )
    p.add_argument(
        "--dry-run", action="store_true",
        help="show the hit/miss plan without simulating",
    )
    p.add_argument(
        "--heartbeat", type=float, default=None, metavar="SECONDS",
        help=(
            "print a progress line (done/total, warm-hit ratio, "
            "p50/p99 task latency, ETA) to stderr at most every "
            "SECONDS; 0 prints on every resolved point"
        ),
    )
    _obs_options(p)
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "trace", help="render or validate a --trace Chrome-trace file"
    )
    p.add_argument("path", help="JSON file written by a --trace run")
    p.add_argument(
        "--validate", action="store_true",
        help="check the file against the trace schema and exit",
    )
    p.add_argument(
        "--min-ms", type=float, default=0.0, metavar="MS",
        help="fold spans shorter than MS out of the tree",
    )
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "bench",
        help="inspect or diff the committed perf-trajectory ledger",
    )
    p.add_argument(
        "action", choices=["report"],
        help="'report' renders the ledger (or diffs it with --diff)",
    )
    p.add_argument(
        "--file", default="BENCH_sim.json", metavar="PATH",
        help="ledger snapshot to read (default BENCH_sim.json)",
    )
    p.add_argument(
        "--diff", default=None, metavar="REFERENCE.json",
        help=(
            "diff against a reference snapshot and exit non-zero on "
            "any regression past --threshold (same gate as "
            "run_benchmarks.py --compare)"
        ),
    )
    p.add_argument(
        "--threshold", type=float, default=0.25,
        help="allowed median regression fraction (default 0.25)",
    )
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("status", help="list batch jobs recorded in a store")
    p.add_argument("--cache", required=True, metavar="DIR")
    p.add_argument("--job", default=None, help="show one job in detail")
    p.set_defaults(func=cmd_status)

    p = sub.add_parser("cache", help="inspect or maintain a result store")
    p.add_argument(
        "action", nargs="?", default=None, choices=["verify", "repair"],
        help=(
            "verify: checksum every entry and report corruption "
            "(exit 1 on problems); repair: drop corrupt entries, "
            "adopt orphaned objects, sweep stale temp files"
        ),
    )
    p.add_argument("--dir", required=True, metavar="DIR")
    p.add_argument("--clear", action="store_true", help="drop all entries")
    p.add_argument(
        "--prune-bytes", type=int, default=None, metavar="N",
        help="evict least-recently-used entries down to N bytes",
    )
    p.add_argument(
        "--limit", type=int, default=10,
        help="entries to list (default 10)",
    )
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser("export", help="dump a circuit as JSON or DOT")
    p.add_argument("--circuit", required=True)
    p.add_argument("--format", default="json", choices=["json", "dot"])
    p.add_argument("--max-cells", type=int, default=2000)
    p.set_defaults(func=cmd_export)

    p = sub.add_parser(
        "balance", help="compare balancing vs retiming on an RCA"
    )
    p.add_argument("--circuit", default="rca12")
    p.add_argument("--vectors", type=int, default=300)
    p.set_defaults(func=cmd_balance)

    def _explore_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--vectors", type=int, default=120)
        p.add_argument("--seed", type=int, default=1995)
        p.add_argument(
            "--strategy", default="beam",
            choices=["beam", "greedy", "exhaustive"],
            help=(
                "exhaustive simulates every unique candidate; beam/"
                "greedy rank with the analytic estimators and simulate "
                "only the surviving frontier"
            ),
        )
        p.add_argument(
            "--beam-width", type=int, default=4,
            help="candidates expanded per depth in beam search",
        )
        p.add_argument(
            "--max-depth", type=int, default=2,
            help="maximum transform-chain length",
        )
        p.add_argument(
            "--max-stages", type=int, default=2,
            help="largest retime(stages=k) transform in the space",
        )
        p.add_argument(
            "--delay", default="unit", choices=["unit", "sumcarry"],
            help="delay regime candidates are padded for and measured under",
        )
        p.add_argument(
            "--max-area", type=float, default=None, metavar="MM2",
            help="area constraint: candidates above it leave the front",
        )
        p.add_argument(
            "--max-latency", type=int, default=None, metavar="STAGES",
            help="pipeline-latency constraint (extra clock cycles)",
        )
        p.add_argument(
            "--cache", default=None, metavar="DIR",
            help=(
                "result store: candidate sims resume warm, the whole "
                "exploration result is served instantly on re-runs"
            ),
        )
        p.add_argument(
            "--jobs", type=int, default=None,
            help="worker processes for candidate simulations",
        )
        _obs_options(p)

    p = sub.add_parser(
        "explore",
        help="search transform combinations for minimum glitch power",
    )
    p.add_argument("--circuit", required=True)
    _explore_options(p)
    p.set_defaults(func=cmd_explore)

    p = sub.add_parser(
        "import",
        help="load a schema-v1 JSON netlist (inverse of export) and run it",
    )
    p.add_argument("path", help="netlist JSON file (see repro export)")
    p.add_argument(
        "--action", default="analyze",
        choices=["analyze", "estimate", "explore"],
        help="what to run on the imported circuit",
    )
    _explore_options(p)
    p.set_defaults(func=cmd_import)

    return parser


def _finish_observed(args: argparse.Namespace, rec) -> None:
    """Persist the observability artifacts of an instrumented run.

    Called after the recorder is disarmed so the export itself is not
    traced.  Writes the Chrome-trace file (``--trace``), prints the
    counter table (``--metrics``) and — whenever the run had a result
    store — drops a manifest next to the job records in
    ``<cache>/manifests``.
    """
    import os

    from repro.obs import trace as obs
    from repro.obs.manifest import build_manifest, write_manifest

    trace_path = getattr(args, "trace", None)
    if trace_path:
        obs.write_chrome_trace(trace_path, rec.events)
        print(f"[trace] {len(rec.events)} event(s) -> {trace_path}")
    log_path = getattr(args, "log", None)
    if log_path:
        print(f"[log] events appended to {log_path}")
    if getattr(args, "metrics", False):
        table = rec.metrics.format_table()
        if table:
            print(table)
        else:
            print("[metrics] no counters recorded")
    cache = getattr(args, "cache", None)
    if cache is not None:
        manifest = build_manifest(
            rec,
            command=args.command,
            backend=getattr(args, "backend", None),
            seed=getattr(args, "seed", None),
        )
        path = write_manifest(os.path.join(cache, "manifests"), manifest)
        print(f"[manifest] {path}")


def main(argv: Sequence[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    observed = (
        getattr(args, "trace", None)
        or getattr(args, "metrics", False)
        or getattr(args, "log", None)
        or getattr(args, "sample", None) is not None
    )
    if observed:
        from repro.obs import trace as obs
        from repro.obs.sampler import ResourceSampler

        rec = obs.enable()
        log_path = getattr(args, "log", None)
        if log_path:
            from repro.obs import log as obs_log

            obs_log.enable(log_path)
        sample_hz = getattr(args, "sample", None)
        sampler = None
        if sample_hz is not None and sample_hz > 0:
            sampler = ResourceSampler(
                interval_s=1.0 / sample_hz, recorder=rec
            )
            sampler.start()
        try:
            return args.func(args)
        finally:
            if sampler is not None:
                sampler.stop()
            obs.disable()  # also closes the event log, if armed
            _finish_observed(args, rec)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
