"""Transition-activity analysis: the paper's primary contribution.

Provides the useful/useless transition classification via parity
evaluation (:mod:`repro.core.transitions`), per-circuit activity
accounting on top of the event-driven simulator
(:mod:`repro.core.activity`), the closed-form ripple-carry-adder
probability model of paper Section 3 (:mod:`repro.core.analytical`),
and the three-component dynamic power model of Section 5
(:mod:`repro.core.power`).
"""

from repro.core.transitions import (
    classify_toggle_count,
    glitch_count,
    NodeActivity,
)
from repro.core.activity import (
    ActivityResult,
    ActivityRun,
    analyze,
    accumulate_traces,
)
from repro.core.analytical import (
    transition_ratio_sum,
    transition_ratio_carry,
    useful_ratio_sum,
    useless_ratio_sum,
    useful_ratio_carry,
    useless_ratio_carry,
    rca_expected_counts,
    rca_per_bit_table,
    worst_case_transitions,
    worst_case_probability,
    worst_case_vectors,
)
from repro.core.power import (
    dynamic_power,
    PowerBreakdown,
    estimate_power,
)
from repro.core.report import format_table

__all__ = [
    "classify_toggle_count",
    "glitch_count",
    "NodeActivity",
    "ActivityResult",
    "ActivityRun",
    "analyze",
    "accumulate_traces",
    "transition_ratio_sum",
    "transition_ratio_carry",
    "useful_ratio_sum",
    "useless_ratio_sum",
    "useful_ratio_carry",
    "useless_ratio_carry",
    "rca_expected_counts",
    "rca_per_bit_table",
    "worst_case_transitions",
    "worst_case_probability",
    "worst_case_vectors",
    "dynamic_power",
    "PowerBreakdown",
    "estimate_power",
    "format_table",
]
