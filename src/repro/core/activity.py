"""Circuit-level transition-activity accounting.

:func:`analyze` is the main entry point: it simulates a circuit over a
vector stream and returns an :class:`ActivityResult` with per-node and
aggregate useful/useless/glitch statistics — the quantities behind the
paper's Tables 1 and 2, Figure 5, and the Section 4.2 direction
detector numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence

from repro.core.transitions import NodeActivity
from repro.netlist.circuit import Circuit
from repro.sim.delays import DelayModel, UnitDelay, ZeroDelay
from repro.sim.engine import CycleTrace, Simulator


@dataclass
class ActivityResult:
    """Aggregated transition activity for one simulation run.

    The paper's headline metrics map as follows:

    * *total* (Table 1 "total")       -> :attr:`total_transitions`
    * *useful F* (Table 1 "useful F") -> :attr:`useful`
    * *useless L* (Table 1 "useless L") -> :attr:`useless`
    * *L/F*                           -> :meth:`useless_useful_ratio`
    * glitch-free reduction bound 1 + L/F (Section 4.2)
                                      -> :meth:`reduction_bound`
    """

    circuit_name: str
    delay_description: str
    cycles: int = 0
    per_node: Dict[int, NodeActivity] = field(default_factory=dict)
    node_names: Dict[int, str] = field(default_factory=dict)

    # -- aggregates ----------------------------------------------------
    @property
    def total_transitions(self) -> int:
        return sum(a.toggles for a in self.per_node.values())

    @property
    def useful(self) -> int:
        return sum(a.useful for a in self.per_node.values())

    @property
    def useless(self) -> int:
        return sum(a.useless for a in self.per_node.values())

    @property
    def rises(self) -> int:
        return sum(a.rises for a in self.per_node.values())

    @property
    def glitches(self) -> int:
        return sum(a.glitches for a in self.per_node.values())

    def useless_useful_ratio(self) -> float:
        """The paper's L/F metric (``inf`` when no useful transitions)."""
        if self.useful == 0:
            return float("inf") if self.useless else 0.0
        return self.useless / self.useful

    def reduction_bound(self) -> float:
        """Best-case activity reduction factor from perfect balancing.

        Section 4.2: activity can shrink by ``1 + L/F`` if all delay
        paths are balanced (all useless transitions eliminated).
        """
        return 1.0 + self.useless_useful_ratio()

    # -- per-node / per-word views ---------------------------------------
    def node(self, net: int) -> NodeActivity:
        """Activity of one net (zero record if it never toggled)."""
        return self.per_node.get(net, NodeActivity())

    def restrict(self, nets: Iterable[int]) -> "ActivityResult":
        """A new result containing only *nets* (e.g. one output word)."""
        keep = set(nets)
        out = ActivityResult(
            circuit_name=self.circuit_name,
            delay_description=self.delay_description,
            cycles=self.cycles,
        )
        for n, act in self.per_node.items():
            if n in keep:
                out.per_node[n] = act
                if n in self.node_names:
                    out.node_names[n] = self.node_names[n]
        return out

    def word_profile(
        self, word: Sequence[int]
    ) -> List[NodeActivity]:
        """Per-bit activity along a word, LSB first (paper Figure 5)."""
        return [self.node(n) for n in word]

    def merge(self, other: "ActivityResult") -> None:
        """Accumulate a second (sharded) run into this result."""
        if other.circuit_name != self.circuit_name:
            raise ValueError("cannot merge results from different circuits")
        self.cycles += other.cycles
        for n, act in other.per_node.items():
            mine = self.per_node.get(n)
            if mine is None:
                self.per_node[n] = NodeActivity(
                    act.toggles, act.rises, act.useful, act.useless,
                    act.cycles_active,
                )
            else:
                mine.merge(act)
        self.node_names.update(other.node_names)

    def summary(self) -> Dict[str, float]:
        """Headline numbers in one dict (used by reports and benches)."""
        return {
            "cycles": self.cycles,
            "total": self.total_transitions,
            "useful": self.useful,
            "useless": self.useless,
            "glitches": self.glitches,
            "rises": self.rises,
            "L/F": round(self.useless_useful_ratio(), 4),
            "reduction_bound": round(self.reduction_bound(), 4),
        }


def accumulate_traces(
    result: ActivityResult, traces: Iterable[CycleTrace]
) -> ActivityResult:
    """Fold raw cycle traces into *result* (in place; returned for chaining)."""
    per_node = result.per_node
    for trace in traces:
        result.cycles += 1
        rises = trace.rises
        for net, toggles in trace.toggles.items():
            act = per_node.get(net)
            if act is None:
                act = per_node[net] = NodeActivity()
            act.add_cycle(toggles, rises.get(net, 0))
    return result


def analyze(
    circuit: Circuit,
    vectors: Iterable[Sequence[int] | Mapping[int, int]],
    delay_model: DelayModel | None = None,
    warmup: Sequence[int] | Mapping[int, int] | None = None,
    monitor: Iterable[int] | None = None,
) -> ActivityResult:
    """Simulate *circuit* over *vectors* and classify every transition.

    Parameters mirror :class:`~repro.sim.engine.Simulator`; the first
    vector is consumed as warm-up when *warmup* is ``None``.  Zero-delay
    models are rejected: without intra-cycle time resolution no glitch
    can be observed, so the classification would be vacuously "all
    useful" and silently wrong.
    """
    delay_model = delay_model or UnitDelay()
    if isinstance(delay_model, ZeroDelay):
        raise ValueError(
            "activity analysis requires a delay model with >= 1 delta "
            "per cell; ZeroDelay hides all glitches"
        )
    sim = Simulator(circuit, delay_model, monitor=monitor)
    result = ActivityResult(
        circuit_name=circuit.name,
        delay_description=delay_model.describe(),
        node_names={n.index: n.name for n in circuit.nets},
    )
    traces = sim.run(vectors, warmup=warmup)
    return accumulate_traces(result, traces)
