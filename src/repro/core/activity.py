"""Circuit-level transition-activity accounting: the session API.

:class:`ActivityRun` is the single entry point every consumer (the
seven experiment drivers, the CLI, the benchmarks) routes through.  A
session binds one circuit to one delay model and one simulation
backend (:mod:`repro.sim.backends`) and offers:

* :meth:`ActivityRun.run` — simulate a vector stream and classify
  every transition, returning an :class:`ActivityResult` with per-node
  and aggregate useful/useless/glitch statistics — the quantities
  behind the paper's Tables 1 and 2, Figure 5, and the Section 4.2
  direction detector numbers;
* :meth:`ActivityRun.run_sharded` — the same result, computed by
  splitting the vector stream into contiguous shards (optionally
  across ``multiprocessing`` workers).  Shard boundary states are
  fast-forwarded with the fastest available zero-delay engine — exact,
  because settled event-driven values provably equal zero-delay
  evaluation — and shard results are combined with
  :meth:`ActivityResult.merge`, so the merged result is bit-identical
  to an unsharded run;
* :meth:`ActivityRun.step_traces` — raw per-cycle traces for callers
  that need single-cycle detail (worst-case stimuli, VCD dumps);
* :meth:`ActivityRun.ff_activity` — mean flipflop D-input toggle
  probability, measured with the zero-delay engine (settled values
  only, which is exactly what D pins sample).

:func:`analyze` remains as the one-call convenience wrapper.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.core.transitions import NodeActivity
from repro.netlist.circuit import Circuit
from repro.obs import trace as obs
from repro.sim.backends import (
    AUTO_BACKEND,
    BACKENDS,
    BackendDegradedWarning,
    BackendUnavailableError,
    RunStats,
    _resolve_vector,
    backend_unavailable_reason,
    canonical_backend,
    fallback_candidates,
    get_backend,
    select_backend,
    zero_delay_backend,
)
from repro.sim.delays import DelayModel, UnitDelay, ZeroDelay
from repro.sim.engine import CycleTrace, Simulator


def summarize_counts(
    cycles: int, toggles: int, rises: int, useful: int, useless: int
) -> Dict[str, float]:
    """The headline summary dict from aggregate transition counts.

    One source of truth for every surface that reports these numbers
    (:meth:`ActivityResult.summary`, the service store's payload
    summaries, the batch scheduler's tables).  ``glitches`` is exactly
    ``useless // 2``: per-cycle classification always produces an even
    useless count per node, so the per-node and aggregate definitions
    coincide.
    """
    ratio = (
        useless / useful if useful
        else (float("inf") if useless else 0.0)
    )
    return {
        "cycles": cycles,
        "total": toggles,
        "useful": useful,
        "useless": useless,
        "glitches": useless // 2,
        "rises": rises,
        "L/F": round(ratio, 4),
        "reduction_bound": round(1.0 + ratio, 4),
    }


@dataclass
class ActivityResult:
    """Aggregated transition activity for one simulation run.

    The paper's headline metrics map as follows:

    * *total* (Table 1 "total")       -> :attr:`total_transitions`
    * *useful F* (Table 1 "useful F") -> :attr:`useful`
    * *useless L* (Table 1 "useless L") -> :attr:`useless`
    * *L/F*                           -> :meth:`useless_useful_ratio`
    * glitch-free reduction bound 1 + L/F (Section 4.2)
                                      -> :meth:`reduction_bound`
    """

    circuit_name: str
    delay_description: str
    cycles: int = 0
    per_node: Dict[int, NodeActivity] = field(default_factory=dict)
    node_names: Dict[int, str] = field(default_factory=dict)

    # -- aggregates ----------------------------------------------------
    @property
    def total_transitions(self) -> int:
        return sum(a.toggles for a in self.per_node.values())

    @property
    def useful(self) -> int:
        return sum(a.useful for a in self.per_node.values())

    @property
    def useless(self) -> int:
        return sum(a.useless for a in self.per_node.values())

    @property
    def rises(self) -> int:
        return sum(a.rises for a in self.per_node.values())

    @property
    def glitches(self) -> int:
        return sum(a.glitches for a in self.per_node.values())

    def useless_useful_ratio(self) -> float:
        """The paper's L/F metric (``inf`` when no useful transitions)."""
        if self.useful == 0:
            return float("inf") if self.useless else 0.0
        return self.useless / self.useful

    def reduction_bound(self) -> float:
        """Best-case activity reduction factor from perfect balancing.

        Section 4.2: activity can shrink by ``1 + L/F`` if all delay
        paths are balanced (all useless transitions eliminated).
        """
        return 1.0 + self.useless_useful_ratio()

    # -- per-node / per-word views ---------------------------------------
    def node(self, net: int) -> NodeActivity:
        """Activity of one net (zero record if it never toggled)."""
        return self.per_node.get(net, NodeActivity())

    def restrict(self, nets: Iterable[int]) -> "ActivityResult":
        """A new result containing only *nets* (e.g. one output word)."""
        keep = set(nets)
        out = ActivityResult(
            circuit_name=self.circuit_name,
            delay_description=self.delay_description,
            cycles=self.cycles,
        )
        for n, act in self.per_node.items():
            if n in keep:
                out.per_node[n] = act
                if n in self.node_names:
                    out.node_names[n] = self.node_names[n]
        return out

    def word_profile(
        self, word: Sequence[int]
    ) -> List[NodeActivity]:
        """Per-bit activity along a word, LSB first (paper Figure 5)."""
        return [self.node(n) for n in word]

    def merge(self, other: "ActivityResult") -> None:
        """Accumulate a second (sharded) run into this result.

        Both results must come from the same circuit *and* the same
        delay regime — merging, say, unit-delay counts into
        ``dsum=2*dcarry`` counts would silently mix incomparable
        classifications.
        """
        if other.circuit_name != self.circuit_name:
            raise ValueError("cannot merge results from different circuits")
        if other.delay_description != self.delay_description:
            raise ValueError(
                "cannot merge results from different delay models: "
                f"{self.delay_description!r} vs {other.delay_description!r}"
            )
        self.cycles += other.cycles
        for n, act in other.per_node.items():
            mine = self.per_node.get(n)
            if mine is None:
                self.per_node[n] = NodeActivity(
                    act.toggles, act.rises, act.useful, act.useless,
                    act.cycles_active,
                )
            else:
                mine.merge(act)
        self.node_names.update(other.node_names)

    def summary(self) -> Dict[str, float]:
        """Headline numbers in one dict (used by reports and benches)."""
        return summarize_counts(
            self.cycles, self.total_transitions, self.rises,
            self.useful, self.useless,
        )


def accumulate_traces(
    result: ActivityResult, traces: Iterable[CycleTrace]
) -> ActivityResult:
    """Fold raw cycle traces into *result* (in place; returned for chaining).

    The hot aggregation path runs on flat per-net arrays (grown on
    demand) with the parity classification inlined, and folds into
    :class:`NodeActivity` records once at the end — one dict lookup
    and method call per *net*, not per (net, cycle).
    """
    size = 0
    tog: List[int] = []
    ris: List[int] = []
    useful: List[int] = []
    useless: List[int] = []
    active: List[int] = []
    n_cycles = 0
    for trace in traces:
        n_cycles += 1
        rises = trace.rises
        for net, toggles in trace.toggles.items():
            if net >= size:
                grow = net + 1 - size
                tog += [0] * grow
                ris += [0] * grow
                useful += [0] * grow
                useless += [0] * grow
                active += [0] * grow
                size = net + 1
            tog[net] += toggles
            ris[net] += rises.get(net, 0)
            if toggles & 1:
                useful[net] += 1
                useless[net] += toggles - 1
            else:
                useless[net] += toggles
            active[net] += 1
    result.cycles += n_cycles
    per_node = result.per_node
    for net in range(size):
        if not tog[net]:
            continue
        act = per_node.get(net)
        if act is None:
            per_node[net] = NodeActivity(
                tog[net], ris[net], useful[net], useless[net], active[net]
            )
        else:
            act.merge(
                NodeActivity(
                    tog[net], ris[net], useful[net], useless[net],
                    active[net],
                )
            )
    return result


def _stats_to_result(
    stats: RunStats,
    circuit_name: str,
    delay_description: str,
    node_names: Dict[int, str] | None = None,
) -> ActivityResult:
    """Wrap backend :class:`RunStats` into an :class:`ActivityResult`."""
    return ActivityResult(
        circuit_name=circuit_name,
        delay_description=delay_description,
        cycles=stats.cycles,
        per_node=stats.per_node,
        node_names=node_names or {},
    )


def _stats_with_failover(
    circuit: Circuit,
    delay_model: DelayModel,
    backend_name: str,
    monitor,
    vectors,
    warmup,
    initial_values,
    initial_ff_state,
    failover: bool,
) -> Tuple[str, RunStats]:
    """Run *vectors* on *backend_name*, degrading down the chain.

    The runtime half of the ``"auto"`` policy: when the dispatched
    tier dies with ``MemoryError`` (a 100k-cell batch that doesn't
    fit), an import failure, or :class:`BackendUnavailableError`
    (numpy present at selection time, broken in the worker), the run
    is re-dispatched from scratch on the next tier of
    :func:`~repro.sim.backends.fallback_candidates` and a structured
    :class:`~repro.sim.backends.BackendDegradedWarning` is emitted.
    Backends are pure over their inputs, so the retried stats are
    bit-identical — every tier of a chain shares one result class.

    Returns ``(backend_that_ran, stats)``.  With ``failover=False``
    the first failure propagates unchanged.
    """
    # Lazy: keeps the sim layer import-independent of the service
    # layer (faults deliberately imports nothing back).
    from repro.service import faults

    name = backend_name
    if failover:
        # The stream must be replayable for a mid-run re-dispatch.
        vectors = vectors if isinstance(vectors, list) else list(vectors)
    zero = isinstance(delay_model, ZeroDelay)
    with obs.span(
        "sim.run", circuit=circuit.name, backend=backend_name
    ) as sp:
        while True:
            try:
                faults.raise_if(
                    "backend.memoryerror", key=name, exc_type=MemoryError
                )
                backend = get_backend(name, circuit, delay_model, monitor)
                sp.set(backend=name)
                return name, backend.run(
                    vectors,
                    warmup=warmup,
                    initial_values=initial_values,
                    initial_ff_state=initial_ff_state,
                )
            except (
                MemoryError, ImportError, BackendUnavailableError
            ) as exc:
                candidates = fallback_candidates(name, zero_delay=zero)
                if not failover or not candidates:
                    raise
                obs.inc("backend.degraded")
                obs.warn_event(
                    BackendDegradedWarning(
                        name, candidates[0],
                        f"{type(exc).__name__}: {exc}",
                    ),
                    from_backend=name,
                    to_backend=candidates[0],
                )
                name = candidates[0]


def _run_shard(job) -> ActivityResult:
    """Run one backend shard (module-level for multiprocessing)."""
    (
        circuit, delay_model, backend_name, monitor, vectors,
        warmup, initial_values, initial_ff_state, delay_description,
        failover,
    ) = job
    _, stats = _stats_with_failover(
        circuit, delay_model, backend_name, monitor, vectors,
        warmup, initial_values, initial_ff_state, failover,
    )
    return _stats_to_result(stats, circuit.name, delay_description)


class ActivityRun:
    """A reusable activity-analysis session for one circuit.

    Parameters
    ----------
    circuit:
        The netlist to analyse.
    delay_model:
        Intra-cycle delay regime (default
        :class:`~repro.sim.delays.UnitDelay`).  Zero-delay models are
        rejected on the event-driven backend: without intra-cycle time
        resolution no glitch can be observed, so the classification
        would be vacuously "all useful" and silently wrong.
    backend:
        ``"event"`` (exact, glitch-aware — the default),
        ``"waveform"`` (glitch-exact batch engine, bit-identical
        aggregates at a fraction of the cost), ``"bitparallel"``
        (zero-delay batch engine: fastest interpreted tier, counts
        only settled-value i.e. useful activity), ``"codegen"`` /
        ``"vector"`` (the generated-kernel tiers — dual-mode: a timed
        delay model selects glitch-exact analysis, an explicit
        :class:`~repro.sim.delays.ZeroDelay` selects settled
        zero-delay accounting; ``"vector"`` needs the ``[perf]``
        extra's numpy), or ``"auto"`` — resolve per
        :func:`repro.sim.backends.select_backend`.
        Per-cycle traces (:meth:`step_traces`) always use the
        event-driven engine — the only one that produces them.
    monitor:
        Optional net indices to restrict accounting to; defaults to all
        cell-driven nets.
    failover:
        Whether a backend that dies *mid-run* with ``MemoryError`` /
        an import failure re-dispatches on the next tier of the
        fallback chain (``vector → codegen → waveform → event``;
        settled sessions ``vector → codegen → bitparallel``) instead
        of aborting.  Results stay bit-identical — tiers in one chain
        share a result class — and each degradation emits a
        :class:`~repro.sim.backends.BackendDegradedWarning`.  Defaults
        to ``True`` for ``backend="auto"`` (auto is a *policy*, not a
        static pick) and ``False`` for an explicitly named backend.
    """

    def __init__(
        self,
        circuit: Circuit,
        delay_model: DelayModel | None = None,
        backend: str = "event",
        monitor: Iterable[int] | None = None,
        failover: bool | None = None,
    ) -> None:
        self.circuit = circuit
        if backend == AUTO_BACKEND:
            backend = select_backend(delay_model)
            if failover is None:
                failover = True
        self.failover = bool(failover)
        #: Degradations this session performed (mirrors the warnings).
        self.degraded: List[str] = []
        self.backend_name = canonical_backend(backend)
        reason = backend_unavailable_reason(self.backend_name)
        if reason is not None:
            raise BackendUnavailableError(reason)
        self.monitor = None if monitor is None else list(monitor)
        backend_cls = BACKENDS[self.backend_name]
        dual = getattr(backend_cls, "dual_mode", False)
        if not backend_cls.exact_glitches or (
            dual and isinstance(delay_model, ZeroDelay)
        ):
            # Zero-delay session: inherently settled backends, or a
            # dual-mode backend explicitly asked for its settled tier.
            if not backend_cls.exact_glitches and (
                delay_model is not None
                and not isinstance(delay_model, ZeroDelay)
            ):
                raise ValueError(
                    f"the {self.backend_name!r} backend is inherently "
                    "zero-delay and would silently ignore "
                    f"{delay_model.describe()!r}; pass delay_model=None "
                    "or use the event-driven backend"
                )
            self.delay_model = None
            self.delay_description = f"zero delay ({self.backend_name})"
        else:
            delay_model = delay_model or UnitDelay()
            if isinstance(delay_model, ZeroDelay):
                raise ValueError(
                    "activity analysis requires a delay model with >= 1 "
                    "delta per cell; ZeroDelay hides all glitches"
                )
            self.delay_model = delay_model
            self.delay_description = delay_model.describe()

    @property
    def exact_glitches(self) -> bool:
        """Whether this session classifies glitches (timed delay model).

        Per-*session*, not per-backend-class: a dual-mode backend
        constructed with an explicit ZeroDelay runs a settled
        zero-delay session even though its class can observe glitches.
        """
        return self.delay_model is not None

    # ------------------------------------------------------------------
    def _effective_delay_model(self) -> DelayModel:
        """The delay model to hand the backend constructor.

        Zero-delay sessions store ``delay_model=None``, but dual-mode
        backends interpret a ``None`` constructor argument as "default
        timed model" — so the settled tier must be requested with an
        explicit ZeroDelay instance (which the bit-parallel backend
        accepts too).
        """
        return (
            self.delay_model if self.delay_model is not None else ZeroDelay()
        )

    def _make_backend(self, monitor: Iterable[int] | None = None):
        return get_backend(
            self.backend_name,
            self.circuit,
            self._effective_delay_model(),
            self.monitor if monitor is None else monitor,
        )

    def _result_shell(self) -> ActivityResult:
        return ActivityResult(
            circuit_name=self.circuit.name,
            delay_description=self.delay_description,
            node_names={n.index: n.name for n in self.circuit.nets},
        )

    # ------------------------------------------------------------------
    def run(
        self,
        vectors: Iterable[Sequence[int] | Mapping[int, int]],
        warmup: Sequence[int] | Mapping[int, int] | None = None,
    ) -> ActivityResult:
        """Simulate *vectors* and classify every transition.

        The first vector is consumed as warm-up when *warmup* is
        ``None``, so every counted cycle has a well-defined previous
        computation.

        With :attr:`failover` enabled (the ``auto`` default), a
        mid-run ``MemoryError``/import failure re-dispatches on the
        next fallback tier; the session then *stays* on the degraded
        tier (:attr:`backend_name` is updated) so subsequent runs
        don't re-trip the same failure.
        """
        ran_on, stats = _stats_with_failover(
            self.circuit, self._effective_delay_model(),
            self.backend_name, self.monitor, vectors, warmup,
            None, None, self.failover,
        )
        if ran_on != self.backend_name:
            self.degraded.append(f"{self.backend_name}->{ran_on}")
            self.backend_name = ran_on
        return _stats_to_result(
            stats,
            self.circuit.name,
            self.delay_description,
            node_names={n.index: n.name for n in self.circuit.nets},
        )

    def run_sharded(
        self,
        vectors: Iterable[Sequence[int] | Mapping[int, int]],
        shards: int,
        warmup: Sequence[int] | Mapping[int, int] | None = None,
        processes: int | None = None,
    ) -> ActivityResult:
        """Shard the vector stream and merge per-shard results.

        The stream is materialised, split into *shards* contiguous
        slices, and each slice is simulated independently from its
        exact boundary state (settled net values + flipflop state,
        fast-forwarded with the fastest zero-delay engine).  The
        merged result is bit-identical to :meth:`run` on the same
        stream.  With *processes* > 1 the shards run under the
        supervised worker pool (:func:`repro.service.pool.run_supervised`
        — crashed/hung shard workers are respawned and the shard is
        retried); otherwise they run sequentially in-process (still
        exercising the merge path).
        """
        if shards < 1:
            raise ValueError("shards must be >= 1")
        cc_inputs = tuple(self.circuit.inputs)
        input_set = frozenset(cc_inputs)
        cur = [0] * len(cc_inputs)
        resolved = []
        it = iter(vectors)
        if warmup is None:
            first = next(it, None)
            if first is None:
                return self._result_shell()
            warmup = first
        warmup = _resolve_vector(warmup, cc_inputs, input_set, cur)
        for vec in it:
            resolved.append(_resolve_vector(vec, cc_inputs, input_set, cur))

        n = len(resolved)
        shards = max(1, min(shards, n)) if n else 1
        base, extra = divmod(n, shards)
        slices: List[List[List[int]]] = []
        start = 0
        for s in range(shards):
            size = base + (1 if s < extra else 0)
            slices.append(resolved[start:start + size])
            start += size

        # Fast-forward exact boundary states with the zero-delay engine
        # (settled event-driven values equal zero-delay evaluation).
        ff = zero_delay_backend(self.circuit, monitor=())
        effective_delay = self._effective_delay_model()
        jobs = []
        values: List[int] | None = None
        state: Dict[int, int] | None = None
        for s, seg in enumerate(slices):
            jobs.append((
                self.circuit, effective_delay, self.backend_name,
                self.monitor, seg,
                warmup if s == 0 else None,
                values, dict(state) if state is not None else None,
                self.delay_description, self.failover,
            ))
            if s < shards - 1:
                stats = ff.run(
                    seg,
                    warmup=warmup if s == 0 else None,
                    initial_values=values,
                    initial_ff_state=state,
                )
                values = stats.final_values
                state = stats.final_ff_state

        if processes and processes > 1 and shards > 1:
            # Lazy: the service layer imports core, not vice versa.
            from repro.service.pool import run_supervised

            pool_result = run_supervised(
                _run_shard, jobs,
                processes=min(processes, shards),
                keys=[f"shard-{s}/{shards}" for s in range(shards)],
                labels=[
                    f"{self.circuit.name} shard {s}" for s in range(shards)
                ],
            )
            if pool_result.interrupted:
                raise KeyboardInterrupt
            if pool_result.failures:
                first = pool_result.failures[0]
                raise RuntimeError(
                    f"{len(pool_result.failures)} shard(s) failed after "
                    f"retries; first: {first.label}: {first.error}"
                )
            shard_results = list(pool_result.payloads)
        else:
            shard_results = [_run_shard(job) for job in jobs]

        result = self._result_shell()
        for sub in shard_results:
            result.merge(sub)
        return result

    # ------------------------------------------------------------------
    def step_traces(
        self,
        vectors: Iterable[Sequence[int] | Mapping[int, int]],
        warmup: Sequence[int] | Mapping[int, int] | None = None,
        record_events: bool = False,
    ) -> List[CycleTrace]:
        """Raw per-cycle traces (always via the event-driven engine).

        For callers that need single-cycle detail — worst-case stimuli,
        VCD export — rather than aggregated statistics.  Only the
        event-driven engine produces traces, so this is the
        ``"auto"`` policy's fallback path regardless of the session
        backend (batch engines cannot, by construction).  Pass
        ``record_events=True`` when the traces are destined for a VCD
        dump (:func:`repro.sim.vcd.dump_vcd` requires it).
        """
        if self.delay_model is None:
            raise ValueError(
                "per-cycle traces require an intra-cycle delay model; "
                "the zero-delay bit-parallel session cannot produce "
                "them — construct the run with the event-driven or "
                "waveform backend"
            )
        sim = Simulator(
            self.circuit, self.delay_model, monitor=self.monitor,
            record_events=record_events,
        )
        return sim.run(vectors, warmup=warmup)

    def ff_activity(
        self,
        vectors: Iterable[Sequence[int] | Mapping[int, int]],
        warmup: Sequence[int] | Mapping[int, int] | None = None,
    ) -> Dict[str, float]:
        """Mean flipflop D-input toggle probability per cycle.

        Measured with the zero-delay engine regardless of the
        session backend: D pins sample *settled* values, which
        zero-delay evaluation reproduces exactly.  Validates the paper's
        footnote-1 assumption that flipflop inputs change ~50% of the
        time.
        """
        ff_d = [c.inputs[0] for c in self.circuit.flipflops]
        if not ff_d:
            return {"flipflops": 0, "cycles": 0, "mean_d_activity": 0.0}
        bp = zero_delay_backend(self.circuit, monitor=set(ff_d))
        stats = bp.run(vectors, warmup=warmup)
        # A net feeding several D pins counts once per pin, as a
        # per-flipflop mean should.
        multiplicity = Counter(ff_d)
        changes = sum(
            stats.per_node[n].toggles * m
            for n, m in multiplicity.items()
            if n in stats.per_node
        )
        total = len(ff_d) * stats.cycles
        return {
            "flipflops": len(ff_d),
            "cycles": stats.cycles,
            "mean_d_activity": changes / total if total else 0.0,
        }


def analyze(
    circuit: Circuit,
    vectors: Iterable[Sequence[int] | Mapping[int, int]],
    delay_model: DelayModel | None = None,
    warmup: Sequence[int] | Mapping[int, int] | None = None,
    monitor: Iterable[int] | None = None,
) -> ActivityResult:
    """Simulate *circuit* over *vectors* and classify every transition.

    One-call convenience wrapper over :class:`ActivityRun` with the
    exact, event-driven backend; parameters mirror
    :class:`~repro.sim.engine.Simulator`.
    """
    return ActivityRun(
        circuit, delay_model=delay_model, monitor=monitor
    ).run(vectors, warmup=warmup)
