"""Closed-form transition-activity model of the ripple-carry adder.

Implements paper Section 3 exactly:

* eq. (2): ``TR(C_{i+1}) = 3/4 - 3/4 * (1/2)^(i+1)``
* eq. (3): ``TR(S_i)     = 5/4 - 3/4 * (1/2)^i``
* eq. (4): ``UFTR(S_i)   = 1/2``
* eq. (5): ``ULTR(S_i)   = 3/4 - 3/4 * (1/2)^i``
* eq. (6): ``UFTR(C_{i+1}) = 1/2 - 1/2 * (1/4)^(i+1)``
* eq. (7): ``ULTR(C_{i+1}) = 1/2 * (x - 1/2) * (x - 1)`` with
  ``x = (1/2)^(i+1)`` (equivalently ``TR - UFTR``)

plus the Section 3.1 worst case: at most ``N`` transitions on ``S_{N-1}``
and ``C_N``, occurring with probability ``3 * (1/8)^N`` for random
inputs, and a constructive input pair that triggers it.

All ratios are returned as exact :class:`fractions.Fraction` so tests
can assert identities like ``TR = UFTR + ULTR`` without tolerance.
The model assumes a unit-delay full-adder stage and fresh random
operands each cycle — the paper's setting.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Sequence, Tuple

HALF = Fraction(1, 2)


def transition_ratio_carry(i: int) -> Fraction:
    """Average transitions per cycle of carry-out ``C_{i+1}`` of stage *i* (eq. 2)."""
    _check_stage(i)
    return Fraction(3, 4) - Fraction(3, 4) * HALF ** (i + 1)


def transition_ratio_sum(i: int) -> Fraction:
    """Average transitions per cycle of sum bit ``S_i`` of stage *i* (eq. 3)."""
    _check_stage(i)
    return Fraction(5, 4) - Fraction(3, 4) * HALF**i


def useful_ratio_sum(i: int) -> Fraction:
    """Average useful transitions per cycle of ``S_i`` (eq. 4): always 1/2."""
    _check_stage(i)
    return HALF


def useless_ratio_sum(i: int) -> Fraction:
    """Average useless transitions per cycle of ``S_i`` (eq. 5)."""
    _check_stage(i)
    return Fraction(3, 4) - Fraction(3, 4) * HALF**i


def useful_ratio_carry(i: int) -> Fraction:
    """Average useful transitions per cycle of ``C_{i+1}`` (eq. 6)."""
    _check_stage(i)
    return HALF - HALF * Fraction(1, 4) ** (i + 1)


def useless_ratio_carry(i: int) -> Fraction:
    """Average useless transitions per cycle of ``C_{i+1}`` (eq. 7)."""
    _check_stage(i)
    x = HALF ** (i + 1)
    return HALF * (x - HALF) * (x - 1)


def _check_stage(i: int) -> None:
    if i < 0:
        raise ValueError("stage index must be >= 0")


def rca_per_bit_table(
    n_bits: int, n_vectors: int
) -> List[Dict[str, float]]:
    """Expected per-bit counts for *n_vectors* random inputs (Figure 5).

    Returns one row per stage *i* with expected useful/useless counts
    for the sum bit ``S_i`` and the carry-out ``C_{i+1}``.
    """
    if n_bits < 1:
        raise ValueError("adder must have at least one bit")
    rows = []
    for i in range(n_bits):
        rows.append(
            {
                "bit": i,
                "sum_useful": float(useful_ratio_sum(i) * n_vectors),
                "sum_useless": float(useless_ratio_sum(i) * n_vectors),
                "carry_useful": float(useful_ratio_carry(i) * n_vectors),
                "carry_useless": float(useless_ratio_carry(i) * n_vectors),
                "sum_total": float(transition_ratio_sum(i) * n_vectors),
                "carry_total": float(transition_ratio_carry(i) * n_vectors),
            }
        )
    return rows


def rca_expected_counts(n_bits: int, n_vectors: int) -> Dict[str, float]:
    """Expected totals over all sum and carry bits (paper Section 3.3).

    For ``n_bits=16, n_vectors=4000`` this reproduces the paper's
    119002 total / 63334 useful / 55668 useless (to within the paper's
    own rounding) and L/F = 0.88.
    """
    if n_bits < 1:
        raise ValueError("adder must have at least one bit")
    total = Fraction(0)
    useful = Fraction(0)
    useless = Fraction(0)
    for i in range(n_bits):
        total += transition_ratio_sum(i) + transition_ratio_carry(i)
        useful += useful_ratio_sum(i) + useful_ratio_carry(i)
        useless += useless_ratio_sum(i) + useless_ratio_carry(i)
    return {
        "total": float(total * n_vectors),
        "useful": float(useful * n_vectors),
        "useless": float(useless * n_vectors),
        "L/F": float(useless / useful),
    }


# ----------------------------------------------------------------------
# Section 3.1 — worst case
# ----------------------------------------------------------------------
def worst_case_transitions(n_bits: int) -> int:
    """Maximum transitions of ``S_{N-1}``/``C_N`` in one cycle: exactly N."""
    if n_bits < 1:
        raise ValueError("adder must have at least one bit")
    return n_bits


def worst_case_probability(n_bits: int) -> float:
    """Probability of the worst case for random inputs: ``3 * (1/8)^N``.

    Both paper conditions must hold: the previous carries alternate
    (two patterns) and the new operands propagate through every stage.
    Already negligible for small N (paper Section 3.1).
    """
    if n_bits < 1:
        raise ValueError("adder must have at least one bit")
    return 3.0 * (1.0 / 8.0) ** n_bits


def worst_case_vectors(n_bits: int) -> Tuple[int, int, int, int]:
    """A constructive ``(prev_a, prev_b, new_a, new_b)`` worst-case pair.

    Previous operands alternate generate/kill per stage so the settled
    carries alternate 1,0,1,0,...; the new operands propagate in every
    stage (``A_i XOR B_i = 1``), so the carry-in ripples through all N
    stages and the top carry/sum toggle N times under unit stage delay.

    >>> worst_case_vectors(4)
    (5, 5, 15, 0)
    """
    if n_bits < 1:
        raise ValueError("adder must have at least one bit")
    prev = 0
    for i in range(0, n_bits, 2):
        prev |= 1 << i  # generate on even stages, kill on odd stages
    new_a = (1 << n_bits) - 1
    new_b = 0
    return prev, prev, new_a, new_b
