"""Three-component dynamic power model (paper Section 5).

Power is split exactly the way the paper splits its measurements:

1. **combinational logic** — every 0->1 transition of a logic node
   charges that node's load from the supply: the per-net rise counts
   from simulation, times per-net load capacitance from the technology
   library, times ``Vdd^2 * f / cycles``;
2. **flipflops** — flipflop count times the pre-characterised average
   single-flipflop power at 50% input activity (paper footnote 1);
3. **clock line** — the affine clock-load model charged once per cycle.

The headline equation (paper eq. 1) is also exposed directly as
:func:`dynamic_power`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.activity import ActivityResult
from repro.netlist.circuit import Circuit
from repro.tech.clock import ClockTreeModel
from repro.tech.library import TechnologyLibrary


def dynamic_power(
    transition_probability: float,
    load_capacitance: float,
    vdd: float,
    frequency: float,
) -> float:
    """Paper eq. 1: ``P = p_t * C_load * Vdd^2 * f``.

    *transition_probability* is the probability of a power-consuming
    (0->1) transition per clock cycle; it may exceed 1 for glitchy
    nodes that rise several times per cycle.
    """
    if load_capacitance < 0:
        raise ValueError("capacitance cannot be negative")
    if transition_probability < 0:
        raise ValueError("transition probability cannot be negative")
    if vdd <= 0 or frequency <= 0:
        raise ValueError("vdd and frequency must be positive")
    return transition_probability * load_capacitance * vdd**2 * frequency


@dataclass(frozen=True)
class PowerBreakdown:
    """The paper's Table 3 row: logic / flipflop / clock / total watts."""

    logic: float
    flipflop: float
    clock: float

    @property
    def total(self) -> float:
        return self.logic + self.flipflop + self.clock

    def as_milliwatts(self) -> dict[str, float]:
        """All four figures in mW, rounded for reporting."""
        return {
            "logic_mW": round(self.logic * 1e3, 3),
            "flipflop_mW": round(self.flipflop * 1e3, 3),
            "clock_mW": round(self.clock * 1e3, 3),
            "total_mW": round(self.total * 1e3, 3),
        }


def estimate_power(
    circuit: Circuit,
    activity: ActivityResult,
    frequency: float,
    tech: TechnologyLibrary | None = None,
    clock_model: ClockTreeModel | None = None,
) -> PowerBreakdown:
    """Estimate the three-component power of *circuit* at *frequency*.

    *activity* must come from a simulation of the same circuit; its
    per-net rise counts (averaged over the counted cycles) provide the
    transition probabilities of eq. 1.  Flipflop output nets are
    excluded from the logic component — their switching is billed in the
    per-flipflop figure, matching the paper's accounting ("Power
    dissipation in the combinational logic was then calculated by
    subtracting the flipflop power from the simulated main power").
    """
    if activity.cycles <= 0:
        raise ValueError("activity result contains no counted cycles")
    tech = tech or TechnologyLibrary()
    clock_model = clock_model or ClockTreeModel()

    ff_outputs = {
        c.outputs[0] for c in circuit.cells if c.is_sequential
    }
    logic = 0.0
    for net, node_activity in activity.per_node.items():
        if net in ff_outputs or node_activity.rises == 0:
            continue
        p_rise = node_activity.rises / activity.cycles
        logic += dynamic_power(
            p_rise,
            tech.net_load_capacitance(circuit, net),
            tech.vdd,
            frequency,
        )

    n_ff = circuit.num_flipflops
    flipflop = n_ff * tech.ff_average_power(frequency)
    clock = clock_model.power(n_ff, tech.vdd, frequency)
    return PowerBreakdown(logic=logic, flipflop=flipflop, clock=clock)
