"""Plain-text table rendering for experiment reports.

Benchmarks and examples print the same rows the paper's tables report;
this module renders them without third-party dependencies.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or value == int(value):
            return f"{value:,.0f}"
        return f"{value:.3g}" if abs(value) < 0.1 else f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render *rows* under *headers* as an aligned ASCII table."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
