"""Useful/useless transition classification by parity evaluation.

Paper, Section 3.3 — the two properties that define the classification:

1. if a node toggles an **odd** number of times within one clock cycle,
   exactly one of those transitions is *useful* (the settled value
   changed) and the remaining ``k - 1`` are *useless*;
2. if it toggles an **even** number of times, **all** ``k`` transitions
   are *useless* (the settled value is unchanged).

Two consecutive useless transitions constitute a **glitch**, so a cycle
contributes ``useless // 2`` full glitches on a node.

These rules only need the per-cycle toggle *count* per node — which is
exactly what the simulator's :class:`~repro.sim.engine.CycleTrace`
records — so classification is exact, not sampled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


def classify_toggle_count(count: int) -> Tuple[int, int]:
    """Split a per-cycle toggle count into ``(useful, useless)``.

    >>> classify_toggle_count(0)
    (0, 0)
    >>> classify_toggle_count(1)
    (1, 0)
    >>> classify_toggle_count(2)
    (0, 2)
    >>> classify_toggle_count(5)
    (1, 4)
    """
    if count < 0:
        raise ValueError("toggle count cannot be negative")
    if count % 2:
        return 1, count - 1
    return 0, count


def glitch_count(useless: int) -> int:
    """Number of full glitches given a useless-transition count.

    The paper defines a glitch as two consecutive useless transitions;
    an odd residue (possible on odd toggle counts) is half a glitch and
    is truncated.
    """
    if useless < 0:
        raise ValueError("useless count cannot be negative")
    return useless // 2


@dataclass
class NodeActivity:
    """Accumulated activity of one circuit node over many cycles.

    Attributes
    ----------
    toggles:
        Total number of signal transitions.
    rises:
        Total 0->1 (power-consuming) transitions; the dynamic power
        model charges the node's load capacitance once per rise.
    useful:
        Transitions classified useful by per-cycle parity.
    useless:
        Transitions classified useless (glitch activity).
    cycles_active:
        Number of cycles in which the node toggled at least once.
    """

    toggles: int = 0
    rises: int = 0
    useful: int = 0
    useless: int = 0
    cycles_active: int = 0

    def add_cycle(self, toggles: int, rises: int) -> None:
        """Fold one cycle's counts for this node into the totals."""
        if toggles == 0:
            return
        useful, useless = classify_toggle_count(toggles)
        self.toggles += toggles
        self.rises += rises
        self.useful += useful
        self.useless += useless
        self.cycles_active += 1

    @property
    def glitches(self) -> int:
        """Total full glitches (pairs of useless transitions)."""
        return glitch_count(self.useless)

    def merge(self, other: "NodeActivity") -> None:
        """Accumulate *other* into this record (for sharded runs)."""
        self.toggles += other.toggles
        self.rises += other.rises
        self.useful += other.useful
        self.useless += other.useless
        self.cycles_active += other.cycles_active

    def __add__(self, other: "NodeActivity") -> "NodeActivity":
        out = NodeActivity(
            self.toggles, self.rises, self.useful, self.useless,
            self.cycles_active,
        )
        out.merge(other)
        return out
