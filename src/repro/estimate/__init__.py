"""Probabilistic activity estimation (extension beyond the paper).

The paper measures activity by simulation; contemporaneous work (Najm's
transition density, cited lineage of the paper's refs [2-4]) estimates
it by propagating probabilities through the netlist.  This package
implements both classic estimators so the simulator can be
cross-checked and the ablation experiment can quantify where
probabilistic estimates break down (reconvergent fanout, glitches):

* :mod:`repro.estimate.probability` — exact-under-independence signal
  probabilities and zero-delay (useful-transition) switching activity;
* :mod:`repro.estimate.density` — Najm-style transition densities via
  Boolean-difference sensitisation, an upper-bound proxy that *does*
  grow with glitch activity;
* :mod:`repro.estimate.workload` — stimulus-aware input statistics
  derived from the declarative :class:`~repro.sim.vectors.StimulusSpec`
  registry, bundled into one :class:`EstimateResult` per (circuit,
  workload) — the unit the service layer caches;
* :mod:`repro.estimate.reference` — the original dict-walking
  implementations, kept as the oracle the compiled-IR estimators are
  property-tested against (1e-12 agreement).

Both production estimators run as fused passes over the compiled
circuit IR (:mod:`repro.netlist.compiled` generates per-cell
probability/density kernels at compile time, next to the simulation
kernels).
"""

from repro.estimate.probability import (
    signal_probabilities,
    switching_activity,
)
from repro.estimate.density import transition_densities
from repro.estimate.workload import (
    EstimateResult,
    estimate_workload,
    input_statistics,
    net_class,
)

__all__ = [
    "signal_probabilities",
    "switching_activity",
    "transition_densities",
    "EstimateResult",
    "estimate_workload",
    "input_statistics",
    "net_class",
]
