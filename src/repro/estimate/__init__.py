"""Probabilistic activity estimation (extension beyond the paper).

The paper measures activity by simulation; contemporaneous work (Najm's
transition density, cited lineage of the paper's refs [2-4]) estimates
it by propagating probabilities through the netlist.  This package
implements both classic estimators so the simulator can be
cross-checked and the ablation benchmarks can quantify where
probabilistic estimates break down (reconvergent fanout, glitches):

* :mod:`repro.estimate.probability` — exact-under-independence signal
  probabilities and zero-delay (useful-transition) switching activity;
* :mod:`repro.estimate.density` — Najm-style transition densities via
  Boolean-difference sensitisation, an upper-bound proxy that *does*
  grow with glitch activity.
"""

from repro.estimate.probability import (
    signal_probabilities,
    switching_activity,
)
from repro.estimate.density import transition_densities

__all__ = [
    "signal_probabilities",
    "switching_activity",
    "transition_densities",
]
