"""Najm-style transition-density propagation.

The transition density ``D(y)`` of a gate output is estimated from its
input densities through Boolean-difference sensitisation:

    D(y) = sum_i  P(dy/dx_i) * D(x_i)

where ``dy/dx_i = y|x_i=1 XOR y|x_i=0`` and the probability is taken
over the other inputs (spatial independence).  Unlike the zero-delay
switching-activity model, density propagation *is* sensitive to
multiple input changes per cycle and therefore tracks glitch-rich
circuits more closely — but it still over/under-shoots under
reconvergent fanout, which the ablation benchmark quantifies against
the simulator's exact counts.

Primary-input densities default to the random-vector value: a fresh
random bit toggles with probability 1/2 per cycle.
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Dict, Mapping

from repro.estimate.probability import signal_probabilities
from repro.netlist.cells import evaluate_kind
from repro.netlist.circuit import Circuit


def _difference_probability(
    cell_kind, arity: int, pin: int, out_pos: int, pin_probs: list[float]
) -> float:
    """P(boolean difference of output *out_pos* w.r.t. input *pin*)."""
    others = [i for i in range(arity) if i != pin]
    total = 0.0
    for combo in iter_product((0, 1), repeat=len(others)):
        weight = 1.0
        assignment = [0] * arity
        for idx, bit in zip(others, combo):
            assignment[idx] = bit
            weight *= pin_probs[idx] if bit else 1.0 - pin_probs[idx]
        assignment[pin] = 0
        low = evaluate_kind(cell_kind, assignment)[out_pos]
        assignment[pin] = 1
        high = evaluate_kind(cell_kind, assignment)[out_pos]
        if low != high:
            total += weight
    return total


def transition_densities(
    circuit: Circuit,
    input_densities: Mapping[int, float] | float = 0.5,
    input_probs: Mapping[int, float] | float = 0.5,
) -> Dict[int, float]:
    """Estimated transitions per cycle for every net.

    *input_densities* maps primary-input nets to expected transitions
    per cycle (scalar applies to all; 0.5 for fresh random vectors).
    Flipflop outputs inherit their D-net's density capped at 1.0 —
    a registered node can toggle at most once per cycle.
    """
    if isinstance(input_densities, (int, float)):
        dens: Dict[int, float] = {
            n: float(input_densities) for n in circuit.inputs
        }
    else:
        dens = {n: float(d) for n, d in input_densities.items()}
    for d in dens.values():
        if d < 0:
            raise ValueError("densities cannot be negative")

    probs = signal_probabilities(circuit, input_probs)
    densities: Dict[int, float] = dict(dens)
    for c in circuit.cells:
        if c.is_sequential:
            densities[c.outputs[0]] = 0.0  # refined below

    # Feed-forward propagation; one refinement pass settles pipelines.
    for _ in range(2 if circuit.num_flipflops else 1):
        for c in circuit.cells:
            if c.is_sequential:
                densities[c.outputs[0]] = min(
                    1.0, densities.get(c.inputs[0], 0.0)
                )
        for cell in circuit.topological_cells():
            arity = len(cell.inputs)
            pin_probs = [probs.get(n, 0.5) for n in cell.inputs]
            for pos, out in enumerate(cell.outputs):
                total = 0.0
                for pin, net in enumerate(cell.inputs):
                    d_in = densities.get(net, 0.0)
                    if d_in == 0.0:
                        continue
                    total += (
                        _difference_probability(
                            cell.kind, arity, pin, pos, pin_probs
                        )
                        * d_in
                    )
                densities[out] = total
    return densities
