"""Najm-style transition-density propagation.

The transition density ``D(y)`` of a gate output is estimated from its
input densities through Boolean-difference sensitisation:

    D(y) = sum_i  P(dy/dx_i) * D(x_i)

where ``dy/dx_i = y|x_i=1 XOR y|x_i=0`` and the probability is taken
over the other inputs (spatial independence).  Unlike the zero-delay
switching-activity model, density propagation *is* sensitive to
multiple input changes per cycle and therefore tracks glitch-rich
circuits more closely — but it still over/under-shoots under
reconvergent fanout, which the ablation experiment quantifies against
the simulator's exact counts.

Primary-input densities default to the random-vector value: a fresh
random bit toggles with probability 1/2 per cycle.  Stimulus-aware
densities (correlated / burst streams) come from
:func:`repro.estimate.workload.input_statistics`.

Like :mod:`repro.estimate.probability`, the propagation runs on the
compiled IR through the generated flat density pass
(:data:`~repro.netlist.compiled.CompiledCircuit.density_pass`): one
exec-compiled straight-line function over flat per-net float arrays
with the Boolean-difference probabilities in closed form per kind,
instead of the reference implementation's per-(cell, pin) truth-table
enumeration (:mod:`repro.estimate.reference`).  The pass emits the
per-cell fused kernels' arithmetic verbatim, so both agree bit for
bit.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.estimate.probability import (
    _as_net_dict,
    _probability_array,
    _validated_input_values,
)
from repro.netlist.circuit import Circuit
from repro.netlist.compiled import CompiledCircuit, compile_circuit
from repro.obs import trace as obs


def _density_array(
    cc: CompiledCircuit,
    probs: list,
    input_densities: Mapping[int, float],
) -> list:
    """Flat per-net transition densities via the fused kernels.

    *probs* is the flat one-probability array
    (:func:`~repro.estimate.probability._probability_array`) — taken as
    an argument so callers that already propagated probabilities (the
    workload estimator computes probabilities, activities and
    densities in one go) never pay the fixed-point pass twice.
    """
    dens = [0.0] * cc.n_nets
    for net, d in input_densities.items():
        dens[net] = d
    density_pass = cc.density_pass
    ff_d, ff_q = cc.ff_d, cc.ff_q
    # Feed-forward propagation; one refinement pass settles pipelines.
    for _ in range(2 if ff_q else 1):
        for i, q in enumerate(ff_q):
            d = dens[ff_d[i]]
            dens[q] = d if d < 1.0 else 1.0
        density_pass(probs, dens)
    return dens


def _density_array_cone(
    cc: CompiledCircuit,
    probs: list,
    input_densities: Mapping[int, float],
    base: list,
    cone_cells,
) -> list:
    """Cone-limited variant of :func:`_density_array`.

    *base* is the parent's final density array, *probs* the **child's**
    final probability array; only *cone_cells* are re-evaluated via
    the per-cell kernels (:attr:`CompiledCircuit.cell_density`).
    Bit-identical to the full pass under the same two cone conditions
    as :func:`repro.estimate.probability._probability_array_cone`.

    The full pass's trajectory is position-sensitive: in round one the
    flipflop update reads the *initial* array (zero everywhere except
    primary-input densities), not converged values — so the cone
    replay seeds cone flipflop outputs from that same initial rule
    before its first pass, then re-reads current densities for the
    second round, exactly like the full pass does.  Non-cone values
    are frozen at parent-final throughout (purely combinational
    remainder, or untouched flipflop trajectories).
    """
    dens = list(base)
    if cc.n_nets > len(dens):
        dens.extend([0.0] * (cc.n_nets - len(dens)))
    for net, d in input_densities.items():
        dens[net] = d
    kernels = cc.cell_density
    cell_outputs = cc.cell_outputs
    cone_topo = [ci for ci in cc.topo if ci in cone_cells]

    def cone_pass() -> None:
        for ci in cone_topo:
            outs = kernels[ci](probs, dens)
            for out_net, v in zip(cell_outputs[ci], outs):
                dens[out_net] = v

    ff_d, ff_q = cc.ff_d, cc.ff_q
    cone_ffs = [i for i, ci in enumerate(cc.ff_cells) if ci in cone_cells]
    if not cone_ffs:
        cone_pass()
        return dens
    # Round-one register reads see the full pass's *initial* array:
    # input densities on primary inputs, the just-updated value on Q
    # nets of flipflops earlier in the update order (register chains),
    # zero everywhere else.
    updated: Dict[int, float] = {}
    for i in cone_ffs:
        dn = ff_d[i]
        d0 = updated.get(dn)
        if d0 is None:
            d0 = input_densities.get(dn, 0.0)
        v = d0 if d0 < 1.0 else 1.0
        dens[ff_q[i]] = v
        updated[ff_q[i]] = v
    cone_pass()
    for i in cone_ffs:
        d = dens[ff_d[i]]
        dens[ff_q[i]] = d if d < 1.0 else 1.0
    cone_pass()
    return dens


def transition_densities(
    circuit: Circuit,
    input_densities: Mapping[int, float] | float = 0.5,
    input_probs: Mapping[int, float] | float = 0.5,
) -> Dict[int, float]:
    """Estimated transitions per cycle for every net.

    *input_densities* maps primary-input nets to expected transitions
    per cycle (scalar applies to all; 0.5 for fresh random vectors).
    A mapping must cover every primary input and nothing else —
    missing inputs, keys that are not primary-input nets, and
    densities outside ``[0, 1]`` raise ``ValueError`` (a primary input
    can toggle at most once per cycle; internal nets may well exceed
    1.0, which is the point of the estimator).  Flipflop outputs
    inherit their D-net's density capped at 1.0 — a registered node
    can toggle at most once per cycle.
    """
    dens_in = _validated_input_values(
        circuit, input_densities, "densities", 0.0, 1.0
    )
    probs_in = _validated_input_values(
        circuit, input_probs, "probabilities", 0.0, 1.0
    )
    with obs.span("estimate.density", circuit=circuit.name):
        cc = compile_circuit(circuit)
        probs = _probability_array(cc, probs_in)
        return _as_net_dict(cc, _density_array(cc, probs, dens_in))
