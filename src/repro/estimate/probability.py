"""Signal-probability and switching-activity propagation.

``signal_probabilities`` propagates static one-probabilities through
the netlist assuming spatial independence of every cell's inputs (the
classic zero-delay model).  ``switching_activity`` derives the
per-cycle *useful* transition probability of each net under temporal
independence of successive input vectors: a net with one-probability
``p`` settles to different values in consecutive cycles with
probability ``2 p (1 - p)``.

Both are exact for fanout-tree circuits driven by independent inputs
(verified against exhaustive enumeration in the tests) and are biased
by reconvergent fanout elsewhere — one of the reasons the paper
simulates instead.  Note these estimators see **only useful
transitions**: a zero-delay model cannot represent glitches, which is
precisely the gap the paper's simulation-based method fills (the
ablation experiment quantifies this gap).

The propagation runs on the compiled circuit IR through the *generated
flat probability pass*
(:data:`~repro.netlist.compiled.CompiledCircuit.prob_pass`, one
exec-compiled function with one straight-line statement per cell,
emitting exactly the per-cell fused kernels' arithmetic) over a flat
per-net float array — no per-cell call, kind branching or truth-table
enumeration in the loop.  The original dict walking implementation
survives as the oracle in :mod:`repro.estimate.reference`; property
tests pin agreement to 1e-12, and the generated pass is bit-equal to
the fused per-cell kernels by construction (identical expressions,
identical association order).
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.netlist.circuit import Circuit
from repro.netlist.compiled import CompiledCircuit, compile_circuit
from repro.obs import trace as obs


def _validated_input_values(
    circuit: Circuit,
    values: Mapping[int, float] | float,
    what: str,
    low: float,
    high: float,
) -> Dict[int, float]:
    """Per-primary-input values from a scalar or a mapping, validated.

    A mapping must cover **exactly** the circuit's primary inputs:
    missing inputs and keys that are not primary-input net indices are
    both rejected — a typo'd net id would otherwise be silently
    ignored (or silently seed an internal net) and skew every
    downstream number.  Values outside ``[low, high]`` are rejected.
    """
    if isinstance(values, (int, float)):
        out = {n: float(values) for n in circuit.inputs}
    else:
        out = {n: float(p) for n, p in values.items()}
        input_set = set(circuit.inputs)
        unknown = set(out) - input_set
        if unknown:
            names = sorted(
                circuit.net_name(n)
                if isinstance(n, int) and 0 <= n < len(circuit.nets)
                else repr(n)
                for n in unknown
            )
            raise ValueError(
                f"{what} keys must be primary-input net indices; "
                f"got non-input keys {names}"
            )
        missing = input_set - set(out)
        if missing:
            raise ValueError(
                f"missing {what} for inputs "
                f"{sorted(circuit.net_name(n) for n in missing)}"
            )
    for v in out.values():
        if not low <= v <= high:
            raise ValueError(f"{what} must lie in [{low:g}, {high:g}]")
    return out


def _probability_array(
    cc: CompiledCircuit, input_probs: Dict[int, float]
) -> List[float]:
    """Flat per-net one-probabilities via the fused kernels.

    Undriven non-input nets read as 0.5 (maximum uncertainty), like
    the reference implementation's ``values.get(n, 0.5)``.  Flipflop
    outputs start at 0.5 and iterate to their D-input's steady state
    (two passes settle feed-forward pipelines; loops run to
    convergence or 64 rounds).
    """
    values = [0.5] * cc.n_nets
    for net, p in input_probs.items():
        values[net] = p
    prob_pass = cc.prob_pass
    ff_d, ff_q = cc.ff_d, cc.ff_q
    for _ in range(64 if ff_q else 2):
        prob_pass(values)
        changed = False
        for i, q in enumerate(ff_q):
            new = values[ff_d[i]]
            if abs(values[q] - new) > 1e-12:
                values[q] = new
                changed = True
        if not changed:
            break
    return values


def _probability_array_cone(
    cc: CompiledCircuit,
    input_probs: Dict[int, float],
    base: List[float],
    cone_cells,
) -> List[float]:
    """Cone-limited variant of :func:`_probability_array`.

    *base* is the parent circuit's converged probability array (the
    child extends it index-aligned — see
    :mod:`repro.netlist.delta`); only cells in *cone_cells* are
    re-evaluated, through the per-cell fused kernels
    (:attr:`CompiledCircuit.cell_prob` — bit-equal to the generated
    full pass by construction).

    Bit-identical to the full pass under either exactness condition
    the caller (:func:`repro.estimate.workload.incremental_workload`)
    enforces:

    * **no flipflop lies in the cone** — every non-cone net (flipflop
      trajectories included) evolves exactly as in the parent run, so
      the cone's converged values are one kernel pass over final fanin
      values;
    * **every flipflop lies in the cone** — the non-cone remainder is
      purely combinational and thus frozen at its (parent-final)
      values from the first pass on, so the full run's fixed-point
      trajectory is replayed exactly over the cone alone: same 0.5
      initialisation of the cone flipflop outputs, same per-round
      kernel order, same 1e-12 update threshold, same break condition.

    Mixed cones (some flipflops in, some out) are not exact and must
    take the full pass.
    """
    values = list(base)
    if cc.n_nets > len(values):
        values.extend([0.5] * (cc.n_nets - len(values)))
    for net, p in input_probs.items():
        values[net] = p
    kernels = cc.cell_prob
    cell_outputs = cc.cell_outputs
    cone_topo = [ci for ci in cc.topo if ci in cone_cells]

    def cone_pass() -> None:
        for ci in cone_topo:
            outs = kernels[ci](values)
            for out_net, v in zip(cell_outputs[ci], outs):
                values[out_net] = v

    ff_d, ff_q = cc.ff_d, cc.ff_q
    cone_ffs = [i for i, ci in enumerate(cc.ff_cells) if ci in cone_cells]
    if not cone_ffs:
        cone_pass()
        return values
    for i in cone_ffs:
        values[ff_q[i]] = 0.5
    for _ in range(64):
        cone_pass()
        changed = False
        for i in cone_ffs:
            new = values[ff_d[i]]
            if abs(values[ff_q[i]] - new) > 1e-12:
                values[ff_q[i]] = new
                changed = True
        if not changed:
            break
    return values


def _as_net_dict(cc: CompiledCircuit, values: List[float]) -> Dict[int, float]:
    """Project a flat array onto the reported nets (inputs + cell outputs)."""
    out = {n: values[n] for n in cc.inputs}
    for outs in cc.cell_outputs:
        for net in outs:
            out[net] = values[net]
    return out


def signal_probabilities(
    circuit: Circuit,
    input_probs: Mapping[int, float] | float = 0.5,
) -> Dict[int, float]:
    """One-probability of every net under spatial independence.

    *input_probs* maps primary-input net indices to probabilities (a
    scalar applies to all inputs).  A mapping must cover every primary
    input and nothing else: missing inputs, keys that are not
    primary-input nets, and probabilities outside ``[0, 1]`` all raise
    ``ValueError``.  Flipflop outputs are assigned their D-input's
    steady-state probability by fixed-point iteration (two passes
    suffice for feed-forward pipelines; loops iterate to convergence
    or 64 rounds).
    """
    probs = _validated_input_values(
        circuit, input_probs, "probabilities", 0.0, 1.0
    )
    with obs.span("estimate.prob", circuit=circuit.name):
        cc = compile_circuit(circuit)
        return _as_net_dict(cc, _probability_array(cc, probs))


def switching_activity(
    circuit: Circuit,
    input_probs: Mapping[int, float] | float = 0.5,
) -> Dict[int, float]:
    """Per-cycle useful-transition probability ``2 p (1 - p)`` per net.

    Assumes successive input vectors are independent (the paper's
    random-input regime).  This equals the *useful* transition ratio —
    compare eq. (4): a sum bit with ``p = 1/2`` gets activity ``1/2``.
    """
    probs = signal_probabilities(circuit, input_probs)
    return {net: 2.0 * p * (1.0 - p) for net, p in probs.items()}
