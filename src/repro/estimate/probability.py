"""Signal-probability and switching-activity propagation.

``signal_probabilities`` propagates static one-probabilities through
the netlist assuming spatial independence of every cell's inputs (the
classic zero-delay model).  ``switching_activity`` derives the
per-cycle *useful* transition probability of each net under temporal
independence of successive input vectors: a net with one-probability
``p`` settles to different values in consecutive cycles with
probability ``2 p (1 - p)``.

Both are exact for fanout-tree circuits driven by independent inputs
(verified against exhaustive enumeration in the tests) and are biased
by reconvergent fanout elsewhere — one of the reasons the paper
simulates instead.  Note these estimators see **only useful
transitions**: a zero-delay model cannot represent glitches, which is
precisely the gap the paper's simulation-based method fills (the
ablation benchmark quantifies this gap).
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Dict, Mapping, Sequence

from repro.netlist.cells import CellKind
from repro.netlist.circuit import Circuit


def _kind_probability(
    kind: CellKind, input_probs: Sequence[float]
) -> list[float]:
    """Output one-probabilities of *kind* given independent input probs."""
    if kind is CellKind.CONST0:
        return [0.0]
    if kind is CellKind.CONST1:
        return [1.0]
    if kind in (CellKind.BUF, CellKind.DFF):
        return [input_probs[0]]
    if kind is CellKind.NOT:
        return [1.0 - input_probs[0]]
    if kind is CellKind.AND:
        p = 1.0
        for q in input_probs:
            p *= q
        return [p]
    if kind is CellKind.NAND:
        return [1.0 - _kind_probability(CellKind.AND, input_probs)[0]]
    if kind is CellKind.OR:
        p = 1.0
        for q in input_probs:
            p *= 1.0 - q
        return [1.0 - p]
    if kind is CellKind.NOR:
        return [1.0 - _kind_probability(CellKind.OR, input_probs)[0]]
    if kind in (CellKind.XOR, CellKind.XNOR):
        # P(odd parity) via the product identity.
        prod = 1.0
        for q in input_probs:
            prod *= 1.0 - 2.0 * q
        p_odd = (1.0 - prod) / 2.0
        return [p_odd if kind is CellKind.XOR else 1.0 - p_odd]
    # Small fixed-arity kinds: enumerate the truth table.
    from repro.netlist.cells import OUTPUT_COUNT, evaluate_kind

    n_out = OUTPUT_COUNT[kind]
    probs = [0.0] * n_out
    for combo in iter_product((0, 1), repeat=len(input_probs)):
        weight = 1.0
        for bit, p in zip(combo, input_probs):
            weight *= p if bit else 1.0 - p
        outs = evaluate_kind(kind, combo)
        for k in range(n_out):
            if outs[k]:
                probs[k] += weight
    return probs


def signal_probabilities(
    circuit: Circuit,
    input_probs: Mapping[int, float] | float = 0.5,
) -> Dict[int, float]:
    """One-probability of every net under spatial independence.

    *input_probs* maps primary-input net indices to probabilities (a
    scalar applies to all inputs).  Flipflop outputs are assigned their
    D-input's steady-state probability by fixed-point iteration (two
    passes suffice for feed-forward pipelines; loops iterate to
    convergence or 64 rounds).
    """
    if isinstance(input_probs, (int, float)):
        probs: Dict[int, float] = {n: float(input_probs) for n in circuit.inputs}
    else:
        probs = {n: float(p) for n, p in input_probs.items()}
        missing = set(circuit.inputs) - set(probs)
        if missing:
            raise ValueError(
                f"missing probabilities for inputs "
                f"{sorted(circuit.net_name(n) for n in missing)}"
            )
    for p in probs.values():
        if not 0.0 <= p <= 1.0:
            raise ValueError("probabilities must lie in [0, 1]")

    values: Dict[int, float] = dict(probs)
    ff_cells = [c for c in circuit.cells if c.is_sequential]
    for c in ff_cells:
        values[c.outputs[0]] = 0.5  # initial guess

    order = circuit.topological_cells()
    for _ in range(max(1, 64 if _has_state_loop(circuit) else 2)):
        for cell in order:
            ins = [values.get(n, 0.5) for n in cell.inputs]
            outs = _kind_probability(cell.kind, ins)
            for net, p in zip(cell.outputs, outs):
                values[net] = p
        changed = False
        for c in ff_cells:
            new = values.get(c.inputs[0], 0.5)
            if abs(values[c.outputs[0]] - new) > 1e-12:
                values[c.outputs[0]] = new
                changed = True
        if not changed:
            break
    return values


def _has_state_loop(circuit: Circuit) -> bool:
    """Cheap check: any DFF whose output can reach its own input?"""
    # Conservative: if there are DFFs at all we allow extra iterations;
    # pipelines converge after the first correction anyway.
    return circuit.num_flipflops > 0


def switching_activity(
    circuit: Circuit,
    input_probs: Mapping[int, float] | float = 0.5,
) -> Dict[int, float]:
    """Per-cycle useful-transition probability ``2 p (1 - p)`` per net.

    Assumes successive input vectors are independent (the paper's
    random-input regime).  This equals the *useful* transition ratio —
    compare eq. (4): a sum bit with ``p = 1/2`` gets activity ``1/2``.
    """
    probs = signal_probabilities(circuit, input_probs)
    return {net: 2.0 * p * (1.0 - p) for net, p in probs.items()}
