"""Reference (seed) estimator implementations — the executable spec.

These are the original per-cell dict-walking estimators the compiled
fused pass in :mod:`repro.estimate.probability` and
:mod:`repro.estimate.density` was rebuilt from.  They stay because they
*are* the semantics: the rebuilt estimators are property-tested to
agree with these to 1e-12 over random circuits, biased input mappings
and the whole circuit catalog.  They branch on the cell kind per
evaluation and enumerate truth tables for the compound kinds, so they
are O(cells · 2^arity) per pass — fine as an oracle, too slow as a
production path.

Do not add features here; extend the compiled estimators and pin the
behaviour with a property test against this module instead.
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Dict, Mapping, Sequence

from repro.netlist.cells import CellKind
from repro.netlist.circuit import Circuit


def _kind_probability(
    kind: CellKind, input_probs: Sequence[float]
) -> list[float]:
    """Output one-probabilities of *kind* given independent input probs."""
    if kind is CellKind.CONST0:
        return [0.0]
    if kind is CellKind.CONST1:
        return [1.0]
    if kind in (CellKind.BUF, CellKind.DFF):
        return [input_probs[0]]
    if kind is CellKind.NOT:
        return [1.0 - input_probs[0]]
    if kind is CellKind.AND:
        p = 1.0
        for q in input_probs:
            p *= q
        return [p]
    if kind is CellKind.NAND:
        return [1.0 - _kind_probability(CellKind.AND, input_probs)[0]]
    if kind is CellKind.OR:
        p = 1.0
        for q in input_probs:
            p *= 1.0 - q
        return [1.0 - p]
    if kind is CellKind.NOR:
        return [1.0 - _kind_probability(CellKind.OR, input_probs)[0]]
    if kind in (CellKind.XOR, CellKind.XNOR):
        # P(odd parity) via the product identity.
        prod = 1.0
        for q in input_probs:
            prod *= 1.0 - 2.0 * q
        p_odd = (1.0 - prod) / 2.0
        return [p_odd if kind is CellKind.XOR else 1.0 - p_odd]
    # Small fixed-arity kinds: enumerate the truth table.
    from repro.netlist.cells import OUTPUT_COUNT, evaluate_kind

    n_out = OUTPUT_COUNT[kind]
    probs = [0.0] * n_out
    for combo in iter_product((0, 1), repeat=len(input_probs)):
        weight = 1.0
        for bit, p in zip(combo, input_probs):
            weight *= p if bit else 1.0 - p
        outs = evaluate_kind(kind, combo)
        for k in range(n_out):
            if outs[k]:
                probs[k] += weight
    return probs


def signal_probabilities_reference(
    circuit: Circuit,
    input_probs: Mapping[int, float] | float = 0.5,
) -> Dict[int, float]:
    """Seed ``signal_probabilities``: per-cell dict walk, kind branch."""
    if isinstance(input_probs, (int, float)):
        probs: Dict[int, float] = {n: float(input_probs) for n in circuit.inputs}
    else:
        probs = {n: float(p) for n, p in input_probs.items()}
        missing = set(circuit.inputs) - set(probs)
        if missing:
            raise ValueError(
                f"missing probabilities for inputs "
                f"{sorted(circuit.net_name(n) for n in missing)}"
            )
    for p in probs.values():
        if not 0.0 <= p <= 1.0:
            raise ValueError("probabilities must lie in [0, 1]")

    values: Dict[int, float] = dict(probs)
    ff_cells = [c for c in circuit.cells if c.is_sequential]
    for c in ff_cells:
        values[c.outputs[0]] = 0.5  # initial guess

    order = circuit.topological_cells()
    for _ in range(max(1, 64 if circuit.num_flipflops else 2)):
        for cell in order:
            ins = [values.get(n, 0.5) for n in cell.inputs]
            outs = _kind_probability(cell.kind, ins)
            for net, p in zip(cell.outputs, outs):
                values[net] = p
        changed = False
        for c in ff_cells:
            new = values.get(c.inputs[0], 0.5)
            if abs(values[c.outputs[0]] - new) > 1e-12:
                values[c.outputs[0]] = new
                changed = True
        if not changed:
            break
    return values


def switching_activity_reference(
    circuit: Circuit,
    input_probs: Mapping[int, float] | float = 0.5,
) -> Dict[int, float]:
    """Seed ``switching_activity``: ``2 p (1 - p)`` over the reference probs."""
    probs = signal_probabilities_reference(circuit, input_probs)
    return {net: 2.0 * p * (1.0 - p) for net, p in probs.items()}


def _difference_probability(
    cell_kind, arity: int, pin: int, out_pos: int, pin_probs: list[float]
) -> float:
    """P(boolean difference of output *out_pos* w.r.t. input *pin*)."""
    from repro.netlist.cells import evaluate_kind

    others = [i for i in range(arity) if i != pin]
    total = 0.0
    for combo in iter_product((0, 1), repeat=len(others)):
        weight = 1.0
        assignment = [0] * arity
        for idx, bit in zip(others, combo):
            assignment[idx] = bit
            weight *= pin_probs[idx] if bit else 1.0 - pin_probs[idx]
        assignment[pin] = 0
        low = evaluate_kind(cell_kind, assignment)[out_pos]
        assignment[pin] = 1
        high = evaluate_kind(cell_kind, assignment)[out_pos]
        if low != high:
            total += weight
    return total


def transition_densities_reference(
    circuit: Circuit,
    input_densities: Mapping[int, float] | float = 0.5,
    input_probs: Mapping[int, float] | float = 0.5,
) -> Dict[int, float]:
    """Seed ``transition_densities``: per-(cell, pin) truth-table walk."""
    if isinstance(input_densities, (int, float)):
        dens: Dict[int, float] = {
            n: float(input_densities) for n in circuit.inputs
        }
    else:
        dens = {n: float(d) for n, d in input_densities.items()}
    for d in dens.values():
        if d < 0:
            raise ValueError("densities cannot be negative")

    probs = signal_probabilities_reference(circuit, input_probs)
    densities: Dict[int, float] = dict(dens)
    for c in circuit.cells:
        if c.is_sequential:
            densities[c.outputs[0]] = 0.0  # refined below

    # Feed-forward propagation; one refinement pass settles pipelines.
    for _ in range(2 if circuit.num_flipflops else 1):
        for c in circuit.cells:
            if c.is_sequential:
                densities[c.outputs[0]] = min(
                    1.0, densities.get(c.inputs[0], 0.0)
                )
        for cell in circuit.topological_cells():
            arity = len(cell.inputs)
            pin_probs = [probs.get(n, 0.5) for n in cell.inputs]
            for pos, out in enumerate(cell.outputs):
                total = 0.0
                for pin, net in enumerate(cell.inputs):
                    d_in = densities.get(net, 0.0)
                    if d_in == 0.0:
                        continue
                    total += (
                        _difference_probability(
                            cell.kind, arity, pin, pos, pin_probs
                        )
                        * d_in
                    )
                densities[out] = total
    return densities
