"""Stimulus-aware estimation: one estimate per (circuit, workload).

The simulators and the estimators must describe the *same* workload
for the estimate/simulate gap to mean anything.  The service layer
drives simulations from declarative
:class:`~repro.sim.vectors.StimulusSpec`\\ s; this module derives the
matching analytic input statistics — stationary one-probability and
per-cycle transition density per primary input — for every registered
stimulus kind:

* ``uniform`` — fresh random bits: ``p = 1/2``, ``D = 1/2``;
* ``correlated`` — lag-one correlated bits flipping with probability
  *f* (quantized to the generator's 2^-16 grid): ``p = 1/2``,
  ``D = f``;
* ``burst`` — two-state burst-Markov words: stationary burst
  occupancy ``p_burst / (p_burst + p_end)``, each burst cycle redraws
  uniformly, so ``p = 1/2`` and ``D = occupancy / 2``.

:func:`estimate_workload` bundles the three estimators into one
:class:`EstimateResult` over those statistics — the estimation-side
mirror of :meth:`repro.core.activity.ActivityRun.run`'s
:class:`~repro.core.activity.ActivityResult`, and the object the
service layer caches (:func:`repro.service.runner.cached_estimate`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Tuple

from repro.estimate.density import _density_array, _density_array_cone
from repro.estimate.probability import (
    _as_net_dict,
    _probability_array,
    _probability_array_cone,
)
from repro.netlist.circuit import Circuit
from repro.netlist.compiled import CompiledCircuit, compile_circuit
from repro.obs import trace as obs
from repro.sim.vectors import (
    BurstMarkovStimulus,
    CorrelatedStimulus,
    StimulusSpec,
    UniformStimulus,
    _FLIP_BITS,
)


def _uniform_statistics(spec: UniformStimulus) -> Tuple[float, float]:
    return 0.5, 0.5


def _correlated_statistics(spec: CorrelatedStimulus) -> Tuple[float, float]:
    # The generator quantizes the flip probability to the dyadic grid;
    # use the value the stream actually realizes.
    quantized = round(spec.flip_probability * (1 << _FLIP_BITS))
    return 0.5, quantized / (1 << _FLIP_BITS)


def _burst_statistics(spec: BurstMarkovStimulus) -> Tuple[float, float]:
    total = spec.p_burst + spec.p_end
    occupancy = spec.p_burst / total if total > 0.0 else 0.0
    return 0.5, 0.5 * occupancy


#: Stimulus kind -> (stationary one-probability, transition density)
#: per primary-input bit.  Register new kinds here alongside
#: :data:`repro.sim.vectors.STIMULI`.
INPUT_STATISTICS: Dict[str, Callable[[StimulusSpec], Tuple[float, float]]] = {
    UniformStimulus.kind: _uniform_statistics,
    CorrelatedStimulus.kind: _correlated_statistics,
    BurstMarkovStimulus.kind: _burst_statistics,
}


def input_statistics(spec: StimulusSpec) -> Tuple[float, float]:
    """Per-input-bit ``(one_probability, transition_density)`` of *spec*.

    Raises ``ValueError`` for stimulus kinds without registered
    analytic statistics — an estimate over unknown input statistics
    would be silently wrong, not approximately right.
    """
    fn = INPUT_STATISTICS.get(spec.kind)
    if fn is None:
        raise ValueError(
            f"no analytic input statistics registered for stimulus kind "
            f"{spec.kind!r}; known kinds: {sorted(INPUT_STATISTICS)}"
        )
    return fn(spec)


def summarize_rates(
    n_nets: int, useful: float, total: float
) -> Dict[str, float]:
    """The headline estimate-rate summary dict.

    One source of truth for every surface that reports estimated
    rates (:meth:`EstimateResult.summary`, the service store's
    payload summaries), mirroring what
    :func:`repro.core.activity.summarize_counts` is for simulated
    counts.  ``useless`` is the density excess over the zero-delay
    useful rate, clamped at zero.
    """
    useless = max(0.0, total - useful)
    return {
        "nets": n_nets,
        "total": round(total, 4),
        "useful": round(useful, 4),
        "useless": round(useless, 4),
        "L/F": round(useless / useful if useful else 0.0, 4),
    }


def net_class(circuit: Circuit, net: int) -> str:
    """Classification label of one net by its driver.

    Primary inputs are ``"input"``; cell-driven nets are labelled by
    the driving kind, with the two-output arithmetic kinds split into
    their ``sum`` / ``carry`` halves (``"FA.sum"``, ``"HA.carry"``) —
    the classes the paper's Figure 5 separates.  Undriven internal
    nets are ``"undriven"``.
    """
    drv = circuit.nets[net].driver
    if drv is None:
        return "input" if net in set(circuit.inputs) else "undriven"
    cell = circuit.cells[drv[0]]
    if len(cell.outputs) == 2:
        return f"{cell.kind.value}.{('sum', 'carry')[drv[1]]}"
    return cell.kind.value


@dataclass
class EstimateResult:
    """Analytic activity estimates for one (circuit, workload) pair.

    The estimation-side mirror of
    :class:`~repro.core.activity.ActivityResult`: per-net quantities
    keyed by net index, aggregates over the *monitored* nets (all
    cell-driven nets — the same default set the simulators count).
    Estimated quantities are per-cycle **rates**, not counts:

    * :attr:`probabilities` — stationary one-probability per net;
    * :attr:`activities` — zero-delay useful-transition rate: the iid
      ``2 p (1 - p)`` scaled by the workload's input correlation
      factor (see :func:`estimate_workload`; glitch-blind by
      construction);
    * :attr:`densities` — Najm transition density (sensitive to
      multiple transitions per cycle, so ``densities - activities``
      is the estimator's view of the glitch share).
    """

    circuit_name: str
    stimulus_description: str
    input_probability: float
    input_density: float
    probabilities: Dict[int, float] = field(default_factory=dict)
    activities: Dict[int, float] = field(default_factory=dict)
    densities: Dict[int, float] = field(default_factory=dict)
    monitored: Tuple[int, ...] = ()
    node_names: Dict[int, str] = field(default_factory=dict)

    # -- aggregates ----------------------------------------------------
    @property
    def useful_rate(self) -> float:
        """Estimated useful transitions per cycle over monitored nets."""
        return sum(self.activities.get(n, 0.0) for n in self.monitored)

    @property
    def density_rate(self) -> float:
        """Estimated total transitions per cycle over monitored nets."""
        return sum(self.densities.get(n, 0.0) for n in self.monitored)

    def summary(self) -> Dict[str, float]:
        """Headline estimate rates, shaped like the simulated summary.

        ``total`` / ``useful`` / ``useless`` are per-cycle rates (the
        simulated summary reports counts); see
        :func:`summarize_rates`.
        """
        return summarize_rates(
            len(self.monitored), self.useful_rate, self.density_rate
        )

    def restrict(self, nets: Iterable[int]) -> "EstimateResult":
        """A view aggregating only *nets* (e.g. one output word)."""
        wanted = set(nets)
        keep = tuple(n for n in self.monitored if n in wanted)
        return EstimateResult(
            circuit_name=self.circuit_name,
            stimulus_description=self.stimulus_description,
            input_probability=self.input_probability,
            input_density=self.input_density,
            probabilities=self.probabilities,
            activities=self.activities,
            densities=self.densities,
            monitored=keep,
            node_names=self.node_names,
        )

    def by_class(self, circuit: Circuit) -> Dict[str, Dict[str, float]]:
        """Aggregate estimated rates per :func:`net_class` of *circuit*."""
        classes: Dict[str, Dict[str, float]] = {}
        for n in self.monitored:
            row = classes.setdefault(
                net_class(circuit, n),
                {"nets": 0, "useful": 0.0, "density": 0.0},
            )
            row["nets"] += 1
            row["useful"] += self.activities.get(n, 0.0)
            row["density"] += self.densities.get(n, 0.0)
        return classes


def estimate_workload(
    circuit: Circuit,
    stimulus: StimulusSpec | None = None,
) -> EstimateResult:
    """Run all three estimators for *circuit* under *stimulus*.

    *stimulus* defaults to the paper's uniform random regime.  The
    stimulus seed does not matter — only the analytic statistics do —
    so estimates for differently-seeded but otherwise identical specs
    are identical (and share one cache entry in the service layer).

    The one-probability fixed point propagates once and feeds all
    three estimates.  The zero-delay *useful* activity is the iid
    formula ``2 q (1 - q)`` scaled by the inputs' lag-one correlation
    factor ``alpha = D_in / (2 p (1 - p))`` (1 for uniform inputs):
    exact for primary inputs and fanout trees, first-order elsewhere.
    Density propagation is linear in the input densities, so both
    estimates scale identically with the workload and the invariant
    shapes (e.g. density >= useful on glitchy structures) carry over
    from the uniform regime — without the scaling, a slow correlated
    workload would report a *useful* rate above its own *total* rate.
    """
    spec = stimulus if stimulus is not None else UniformStimulus()
    p, d = input_statistics(spec)
    prob_map = {n: p for n in circuit.inputs}
    dens_map = {n: d for n in circuit.inputs}
    with obs.span("estimate.workload", circuit=circuit.name):
        return _estimate_workload(circuit, spec, p, d, prob_map, dens_map)


def _estimate_workload(circuit, spec, p, d, prob_map, dens_map):
    cc = compile_circuit(circuit)
    obs.inc("estimate.full_nets", cc.n_nets)
    prob_array = _probability_array(cc, prob_map)
    dens_array = _density_array(cc, prob_array, dens_map)
    return _assemble_estimate(circuit, cc, spec, p, d, prob_array, dens_array)


def _assemble_estimate(circuit, cc, spec, p, d, prob_array, dens_array):
    """Shape flat probability/density arrays into an :class:`EstimateResult`.

    The per-net dict / aggregate assembly shared by the full and the
    cone-limited estimation paths — O(nets) either way, so only the
    array propagation itself differs between them.
    """
    probabilities = _as_net_dict(cc, prob_array)
    iid_input_activity = 2.0 * p * (1.0 - p)
    alpha = d / iid_input_activity if iid_input_activity else 0.0
    activities = {
        net: alpha * 2.0 * q * (1.0 - q)
        for net, q in probabilities.items()
    }
    densities = _as_net_dict(cc, dens_array)
    monitored: List[int] = [
        net.index for net in circuit.nets if net.driver is not None
    ]
    return EstimateResult(
        circuit_name=circuit.name,
        stimulus_description=spec.describe(),
        input_probability=p,
        input_density=d,
        probabilities=probabilities,
        activities=activities,
        densities=densities,
        monitored=tuple(monitored),
        node_names={n.index: n.name for n in circuit.nets},
    )


# ---------------------------------------------------------------------------
# Incremental (cone-limited) re-estimation
# ---------------------------------------------------------------------------

@dataclass
class WorkloadSnapshot:
    """One circuit's estimate plus the flat arrays it converged to.

    The reusable per-candidate state the explore layer carries down
    the beam-search tree: a child candidate produced by a
    pure-additive delta extends :attr:`prob_array` / :attr:`dens_array`
    index-aligned and re-propagates only its edit cone
    (:func:`incremental_workload`) instead of re-running the full
    fixed-point passes.
    """

    result: EstimateResult
    cc: CompiledCircuit
    prob_array: List[float]
    dens_array: List[float]


def workload_snapshot(
    circuit: Circuit,
    stimulus: StimulusSpec | None = None,
) -> WorkloadSnapshot:
    """:func:`estimate_workload`, also keeping the converged arrays.

    The returned estimate is identical to :func:`estimate_workload`'s
    (same passes, same assembly); the snapshot additionally exposes
    the flat arrays so descendants can reuse them.
    """
    spec = stimulus if stimulus is not None else UniformStimulus()
    p, d = input_statistics(spec)
    prob_map = {n: p for n in circuit.inputs}
    dens_map = {n: d for n in circuit.inputs}
    with obs.span("estimate.workload", circuit=circuit.name):
        cc = compile_circuit(circuit)
        obs.inc("estimate.full_nets", cc.n_nets)
        prob_array = _probability_array(cc, prob_map)
        dens_array = _density_array(cc, prob_array, dens_map)
        result = _assemble_estimate(
            circuit, cc, spec, p, d, prob_array, dens_array
        )
    return WorkloadSnapshot(
        result=result, cc=cc, prob_array=prob_array, dens_array=dens_array
    )


def incremental_workload(
    circuit: Circuit,
    cc: CompiledCircuit,
    parent: WorkloadSnapshot,
    cone_cells,
    cone_nets,
    stimulus: StimulusSpec | None = None,
) -> WorkloadSnapshot | None:
    """Re-estimate *circuit* by re-propagating only its edit cone.

    *circuit* must extend the parent's circuit index-aligned (a
    pure-additive :class:`~repro.netlist.delta.CircuitDelta` replay),
    *cc* is its compiled form, *cone_cells* /*cone_nets* the
    **register-crossing** fanout cone of the delta's touched cells
    (:func:`repro.netlist.delta.full_fanout_cone`), and *stimulus*
    must match the parent snapshot's.

    Returns a snapshot whose estimate is bit-identical to the full
    :func:`workload_snapshot` (the property suite pins it to exact
    float equality, well inside the issue's 1e-12 budget), or ``None``
    when the cone shape falls outside the exact-replay conditions —
    some but not all flipflops in the cone — in which case the caller
    runs the full pass.
    """
    ff_in_cone = [ci in cone_cells for ci in cc.ff_cells]
    if any(ff_in_cone) and not all(ff_in_cone):
        obs.inc("estimate.cone_mixed_ffs")
        return None
    spec = stimulus if stimulus is not None else UniformStimulus()
    p, d = input_statistics(spec)
    prob_map = {n: p for n in circuit.inputs}
    dens_map = {n: d for n in circuit.inputs}
    with obs.span(
        "estimate.workload_cone",
        circuit=circuit.name,
        cone=len(cone_cells),
    ):
        obs.inc("estimate.cone_nets", len(cone_nets))
        prob_array = _probability_array_cone(
            cc, prob_map, parent.prob_array, cone_cells
        )
        dens_array = _density_array_cone(
            cc, prob_array, dens_map, parent.dens_array, cone_cells
        )
        result = _assemble_estimate(
            circuit, cc, spec, p, d, prob_array, dens_array
        )
    return WorkloadSnapshot(
        result=result, cc=cc, prob_array=prob_array, dens_array=dens_array
    )
