"""Experiment drivers — one module per paper table/figure.

Each driver returns plain dict/list data (and can render a text table)
so the same code backs the benchmarks, the examples and EXPERIMENTS.md.
The mapping to the paper is catalogued in DESIGN.md Section 3:

* :mod:`repro.experiments.rca` — Figure 5 and the Section 3.1 worst
  case (E1, E6);
* :mod:`repro.experiments.multipliers` — Tables 1 and 2 plus the
  input-correlation ablation (E2, E3, A2);
* :mod:`repro.experiments.detector` — Section 4.2 direction-detector
  numbers (E4);
* :mod:`repro.experiments.retiming_power` — Table 3 / Figure 10 sweep
  and the flipflop-activity ablation (E5, A3);
* :mod:`repro.experiments.adder_sweep` — adder-architecture ablation
  (A1).
"""

from repro.experiments.rca import figure5_experiment, worst_case_experiment
from repro.experiments.multipliers import (
    table1_experiment,
    table2_experiment,
    correlation_experiment,
)
from repro.experiments.detector import section42_experiment
from repro.experiments.retiming_power import (
    table3_experiment,
    ff_activity_experiment,
)
from repro.experiments.adder_sweep import adder_architecture_experiment

__all__ = [
    "figure5_experiment",
    "worst_case_experiment",
    "table1_experiment",
    "table2_experiment",
    "correlation_experiment",
    "section42_experiment",
    "table3_experiment",
    "ff_activity_experiment",
    "adder_architecture_experiment",
]
