"""Estimator-vs-simulation ablation: the paper's "why simulate" gap.

The paper's core argument is that analytical activity estimators miss
glitch power, which only simulation captures.  This driver makes that
argument a reproducible artefact: for every catalog circuit it runs
the glitch-exact simulator *and* the analytic estimation backend over
the same declarative workload, then tabulates estimated vs. measured
transitions per net class (``FA.sum``, ``FA.carry``, ``AND``, ...) —
a Figure-5-style useful/useless profile with the estimators' view
alongside the exact counts.

Expected shape, per circuit and per class:

* zero-delay estimate ~= measured useful rate (both are glitch-blind);
* measured total rate >> zero-delay estimate where delay paths are
  unbalanced (the glitch gap — the paper's justification);
* density estimate > zero-delay estimate (it sees multiple transitions
  per cycle) but over/under-shoots under reconvergent fanout.

Both halves route through the service layer (:mod:`repro.service`),
so a warm store reproduces the whole table with zero simulation *and*
zero estimator work.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence

from repro.circuits.catalog import build_named_circuit
from repro.core.report import format_table
from repro.estimate.workload import net_class
from repro.service.runner import cached_estimate, cached_run
from repro.sim.delays import UnitDelay
from repro.sim.vectors import StimulusSpec, UniformStimulus

#: Default circuit slice of the catalog: small enough to simulate in
#: seconds, wide enough to cover both adder-chain and reconvergent
#: multiplier structure.
DEFAULT_CIRCUITS = ("rca8", "rca16", "array4", "array8", "wallace8")


def estimator_ablation_experiment(
    circuits: Sequence[str] = DEFAULT_CIRCUITS,
    n_vectors: int = 400,
    seed: int = 1995,
    stimulus: StimulusSpec | None = None,
    store=None,
) -> Dict[str, Any]:
    """Estimated vs. glitch-exact measured activity per net class.

    For each catalog circuit: simulate ``n_vectors`` vectors of the
    workload glitch-exactly under unit delay (via
    :func:`~repro.service.runner.cached_run`) and estimate the same
    workload analytically (via
    :func:`~repro.service.runner.cached_estimate`).  Returns per-circuit
    records with per-class rows (measured useful/total rates, estimated
    zero-delay activity and transition density, all in transitions per
    cycle) plus circuit totals and the headline gap factors.
    """
    spec = stimulus if stimulus is not None else UniformStimulus(seed=seed)
    records = []
    for name in circuits:
        circuit, stim = build_named_circuit(name)
        measured = cached_run(
            circuit, stim, spec, n_vectors,
            delay_model=UnitDelay(), store=store,
        )
        estimate = cached_estimate(circuit, spec, store=store)
        cycles = measured.cycles
        classes: Dict[str, Dict[str, float]] = {}
        for net in estimate.monitored:
            row = classes.setdefault(net_class(circuit, net), {
                "nets": 0,
                "measured_useful": 0.0,
                "measured_total": 0.0,
                "est_useful": 0.0,
                "est_density": 0.0,
            })
            act = measured.node(net)
            row["nets"] += 1
            row["measured_useful"] += act.useful / cycles
            row["measured_total"] += act.toggles / cycles
            row["est_useful"] += estimate.activities.get(net, 0.0)
            row["est_density"] += estimate.densities.get(net, 0.0)
        totals = {
            key: sum(row[key] for row in classes.values())
            for key in (
                "measured_useful", "measured_total",
                "est_useful", "est_density",
            )
        }
        measured_total = totals["measured_total"]
        records.append({
            "circuit": name,
            "n_vectors": n_vectors,
            "cycles": cycles,
            "classes": classes,
            "totals": totals,
            # The headline gaps: how much activity each estimator
            # fails to see (>1 means the simulator counts more).
            "gap_vs_zero_delay": (
                measured_total / totals["est_useful"]
                if totals["est_useful"] else 0.0
            ),
            "gap_vs_density": (
                measured_total / totals["est_density"]
                if totals["est_density"] else 0.0
            ),
        })
    return {
        "stimulus": spec.describe(),
        "n_vectors": n_vectors,
        "circuits": records,
    }


def format_ablation(data: Dict[str, Any], per_class: bool = True) -> str:
    """Render the ablation as text tables (per-class + summary)."""
    blocks = []
    if per_class:
        for rec in data["circuits"]:
            rows = [
                [
                    cls,
                    row["nets"],
                    round(row["measured_useful"], 2),
                    round(row["measured_total"], 2),
                    round(row["est_useful"], 2),
                    round(row["est_density"], 2),
                ]
                for cls, row in sorted(rec["classes"].items())
            ]
            totals = rec["totals"]
            rows.append([
                "TOTAL",
                sum(r["nets"] for r in rec["classes"].values()),
                round(totals["measured_useful"], 2),
                round(totals["measured_total"], 2),
                round(totals["est_useful"], 2),
                round(totals["est_density"], 2),
            ])
            blocks.append(format_table(
                [
                    "net class", "nets",
                    "sim useful/cyc", "sim TOTAL/cyc",
                    "est zero-delay", "est density",
                ],
                rows,
                title=(
                    f"{rec['circuit']} — estimators vs glitch-exact "
                    f"simulation ({rec['n_vectors']} vectors)"
                ),
            ))
    summary_rows = [
        [
            rec["circuit"],
            round(rec["totals"]["measured_total"], 1),
            round(rec["totals"]["est_useful"], 1),
            round(rec["totals"]["est_density"], 1),
            round(rec["gap_vs_zero_delay"], 2),
            round(rec["gap_vs_density"], 2),
        ]
        for rec in data["circuits"]
    ]
    blocks.append(format_table(
        [
            "circuit", "sim total/cyc", "est zero-delay", "est density",
            "total/zero-delay", "total/density",
        ],
        summary_rows,
        title=f"estimate/simulate gap — {data['stimulus']}",
    ))
    return "\n\n".join(blocks)
