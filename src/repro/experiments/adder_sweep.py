"""A1 ablation — adder-architecture glitch comparison.

The paper's conclusion prescribes "balancing delay paths and/or
introducing flipflops".  This ablation quantifies the first lever on
adders: the same 16-bit addition implemented as ripple-carry (worst
balanced), carry-select, group carry-lookahead, and Kogge–Stone prefix
(best balanced), measured with the paper's counting method.  The
expected ordering under the paper's thesis is monotone: better-balanced
architectures produce lower useless/useful ratios.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.circuits.adders import (
    carry_lookahead_adder,
    carry_select_adder,
    kogge_stone_adder,
    ripple_carry_adder,
)
from repro.core.report import format_table
from repro.netlist.circuit import Circuit
from repro.service.runner import cached_run
from repro.sim.vectors import UniformStimulus, WordStimulus


def _build(architecture: str, n_bits: int) -> tuple[Circuit, dict]:
    circuit = Circuit(f"{architecture}{n_bits}")
    a = circuit.add_input_word("a", n_bits)
    b = circuit.add_input_word("b", n_bits)
    if architecture == "ripple":
        sums, carries = ripple_carry_adder(circuit, a, b)
        cout = carries[-1]
    elif architecture == "carry-select":
        sums, cout = carry_select_adder(circuit, a, b)
    elif architecture == "lookahead":
        sums, cout = carry_lookahead_adder(circuit, a, b)
    elif architecture == "kogge-stone":
        sums, cout = kogge_stone_adder(circuit, a, b)
    else:
        raise ValueError(f"unknown adder architecture {architecture!r}")
    circuit.mark_output_word(sums, "s")
    circuit.mark_output(cout, "cout")
    return circuit, {"a": a, "b": b, "sums": sums, "cout": cout}


ARCHITECTURES = ("ripple", "carry-select", "lookahead", "kogge-stone")


def adder_architecture_experiment(
    n_bits: int = 16,
    n_vectors: int = 500,
    seed: int = 1995,
    store=None,
) -> Dict[str, Any]:
    """Activity and structure of four adder architectures.

    Returns one row per architecture with depth (levels), cell count,
    total/useful/useless transitions and L/F.
    """
    rows: List[Dict[str, Any]] = []
    for architecture in ARCHITECTURES:
        circuit, ports = _build(architecture, n_bits)
        stim = WordStimulus({"a": ports["a"], "b": ports["b"]})
        result = cached_run(
            circuit, stim, UniformStimulus(seed=seed), n_vectors,
            store=store,
        )
        summary = result.summary()
        rows.append(
            {
                "architecture": architecture,
                "cells": len(circuit.cells),
                "depth": circuit.critical_path_length(),
                "total": summary["total"],
                "useful": summary["useful"],
                "useless": summary["useless"],
                "L/F": summary["L/F"],
            }
        )
    return {"n_bits": n_bits, "n_vectors": n_vectors, "rows": rows}


def format_adder_sweep(data: Dict[str, Any]) -> str:
    headers = list(data["rows"][0].keys())
    return format_table(
        headers,
        [[r[h] for h in headers] for r in data["rows"]],
        title=(
            f"Adder architectures — {data['n_bits']} bits, "
            f"{data['n_vectors']} random vectors"
        ),
    )
