"""A4 ablation — balancing vs retiming: the paper's two levers compared.

Section 6 of the paper: "A significant reduction in power dissipation
can be achieved if the amount of glitches is reduced.  This can be done
by balancing delay paths and/or by introducing flipflops in the
circuit."  This driver pits the two levers against each other on the
same circuit with the same technology model:

* **original** — unmodified, glitchy;
* **balanced** — buffer-inserted (:func:`repro.opt.balance_paths`):
  zero useless transitions, but buffer load and buffer switching cost
  power and area;
* **pipelined** — flipflop-inserted (:func:`repro.retime.pipeline_circuit`):
  fewer glitches (not necessarily zero), flipflop + clock power cost.

The point the numbers make: balancing removes *all* glitches but pays
per-buffer switching on every cycle, while retiming converts the cost
into clocked storage — which also buys throughput.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List

from repro.core.activity import ActivityRun
from repro.core.power import estimate_power
from repro.core.report import format_table
from repro.netlist.circuit import Circuit
from repro.opt.balance import balance_paths, balancing_report
from repro.retime.pipeline import pipeline_circuit
from repro.sim.vectors import WordStimulus
from repro.tech.area import AreaModel
from repro.tech.library import TechnologyLibrary


def _measure(
    circuit: Circuit,
    vectors: List[dict],
    frequency: float,
    tech: TechnologyLibrary,
    area_model: AreaModel,
) -> Dict[str, Any]:
    activity = ActivityRun(circuit).run(iter(vectors))
    power = estimate_power(circuit, activity, frequency, tech)
    mw = power.as_milliwatts()
    return {
        "cells": len(circuit.cells),
        "flipflops": circuit.num_flipflops,
        "useful": activity.useful,
        "useless": activity.useless,
        "L/F": round(activity.useless_useful_ratio(), 3),
        "logic_mW": mw["logic_mW"],
        "total_mW": mw["total_mW"],
        "area_mm2": round(area_model.circuit_area_mm2(circuit, tech), 3),
    }


def balancing_vs_retiming_experiment(
    n_bits: int = 12,
    n_vectors: int = 300,
    stages: int = 3,
    frequency: float = 5e6,
    seed: int = 1995,
) -> Dict[str, Any]:
    """Compare the paper's two glitch levers on an n-bit RCA.

    Returns one row per variant (original / balanced / pipelined) plus
    the static skew report of the original circuit.
    """
    from repro.circuits.adders import build_rca_circuit

    base, ports = build_rca_circuit(n_bits, with_cin=False)
    stim = WordStimulus({"a": ports["a"], "b": ports["b"]})
    vectors = [dict(v) for v in stim.random(random.Random(seed), n_vectors + 1)]
    tech = TechnologyLibrary()
    area_model = AreaModel()

    balanced, stats = balance_paths(base)
    pipelined = pipeline_circuit(base, stages)

    rows = {
        "original": _measure(base, vectors, frequency, tech, area_model),
        "balanced": _measure(balanced, vectors, frequency, tech, area_model),
        "pipelined": _measure(
            pipelined.circuit, vectors, frequency, tech, area_model
        ),
    }
    return {
        "n_bits": n_bits,
        "n_vectors": n_vectors,
        "stages": stages,
        "skew_report": balancing_report(base),
        "buffers_inserted": stats.buffers_inserted,
        "rows": rows,
    }


def format_balance_comparison(data: Dict[str, Any]) -> str:
    headers = [
        "variant", "cells", "flipflops", "useful", "useless", "L/F",
        "logic_mW", "total_mW", "area_mm2",
    ]
    rows = [
        [name] + [r[h] for h in headers[1:]]
        for name, r in data["rows"].items()
    ]
    return format_table(
        headers,
        rows,
        title=(
            f"Balancing vs retiming — {data['n_bits']}-bit RCA, "
            f"{data['n_vectors']} random inputs"
        ),
    )
