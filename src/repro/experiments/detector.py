"""E4 — direction-detector transition activity (paper Section 4.2).

The paper simulated the Phideo direction detector with unit delay and
4320 random inputs, finding 272842 useful and 1033970 useless
transitions: L/F = 3.79, i.e. balancing all delay paths would cut
combinational activity by 1 + 3.79 ~= 4.8x.  This driver regenerates
those numbers on our reconstruction of the Figure 8 datapath.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.circuits.direction_detector import build_direction_detector
from repro.service.runner import cached_run
from repro.sim.delays import DelayModel, UnitDelay
from repro.sim.vectors import UniformStimulus, WordStimulus

#: The paper's measured values, for side-by-side reporting.
PAPER_USEFUL = 272842
PAPER_USELESS = 1033970
PAPER_RATIO = 3.79


def detector_stimulus(ports) -> WordStimulus:
    """Word stimulus over the six pixel inputs of the detector."""
    words = {f"a{k}": ports.a[k] for k in range(3)}
    words.update({f"b{k}": ports.b[k] for k in range(3)})
    return WordStimulus(words)


def section42_experiment(
    n_vectors: int = 4320,
    width: int = 8,
    threshold: int = 16,
    seed: int = 1995,
    delay_model: DelayModel | None = None,
    store=None,
) -> Dict[str, Any]:
    """Measure useful/useless activity of the direction detector.

    Returns the simulated summary plus the paper's reference numbers
    and the derived balanced-activity reduction bound (1 + L/F).
    Routed through the service layer, so warm-cache re-runs skip
    simulation entirely.
    """
    circuit, ports = build_direction_detector(width=width, threshold=threshold)
    stim = detector_stimulus(ports)
    result = cached_run(
        circuit, stim, UniformStimulus(seed=seed), n_vectors,
        delay_model=delay_model or UnitDelay(), store=store,
    )
    summary = result.summary()
    return {
        "n_vectors": n_vectors,
        "width": width,
        "threshold": threshold,
        "useful": summary["useful"],
        "useless": summary["useless"],
        "total": summary["total"],
        "L/F": summary["L/F"],
        "reduction_bound": summary["reduction_bound"],
        "paper": {
            "useful": PAPER_USEFUL,
            "useless": PAPER_USELESS,
            "L/F": PAPER_RATIO,
            "reduction_bound": 1 + PAPER_RATIO,
        },
        "per_stage": {
            "d_left": result.restrict(ports.d_left).summary(),
            "d_mid": result.restrict(ports.d_mid).summary(),
            "d_right": result.restrict(ports.d_right).summary(),
        },
    }
