"""E7 — estimate-guided frontier discovery across the circuit catalog.

The paper's conclusion offers two glitch-power levers — "balancing
delay paths and/or ... introducing flipflops" — and Section 4.2
derives the idealized glitch-free reduction bound ``1 + L/F``.  This
driver lets the :mod:`repro.explore` subsystem rediscover both as
points on a searched Pareto front, per catalog circuit:

* the **balanced** candidate realizes the idealized bound: it is
  glitch-free by construction (useless count exactly 0 — matching the
  balancing experiment bit for bit), so its logic transitions on the
  original nets equal the original's *useful* count, i.e. total
  activity divided by exactly ``1 + L/F``;
* the **retimed** candidate reproduces the
  :mod:`repro.experiments.retiming_power` trade: flipflop and clock
  power buy a shorter critical path and fewer glitches.

Beam search is used by default, so the table also shows how many
candidates the analytic estimate pruned away from glitch-exact
simulation and the recorded estimate-vs-sim rank agreement — the
numbers that say whether estimate-guided search was trustworthy on
each circuit.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.circuits.catalog import build_named_circuit
from repro.core.report import format_table
from repro.explore.search import Candidate, ExploreResult, explore
from repro.explore.specs import default_space
from repro.sim.vectors import UniformStimulus


def _point(result: ExploreResult, label: str) -> Candidate | None:
    try:
        candidate = result.candidate(label)
    except KeyError:
        return None
    return candidate if candidate.exact is not None else None


def explore_frontier_experiment(
    circuits: Sequence[str] = ("rca8", "array8"),
    n_vectors: int = 120,
    strategy: str = "beam",
    max_stages: int = 2,
    max_depth: int = 2,
    seed: int = 1995,
    store=None,
    processes: int | None = None,
) -> Dict[str, Any]:
    """Run the explorer over *circuits*; one row per circuit.

    Each row records the search effort (unique candidates, simulated
    candidates, front size, rank agreement) and the paper's two
    levers: the original's ``L/F`` and idealized bound ``1 + L/F``,
    the balanced point (power, glitch-free check, front membership)
    and the single-stage retimed point (power, achieved period).
    """
    rows: List[Dict[str, Any]] = []
    for name in circuits:
        circuit, _ = build_named_circuit(name)
        result = explore(
            circuit,
            space=default_space(max_stages=max_stages, max_depth=max_depth),
            strategy=strategy,
            n_vectors=n_vectors,
            stimulus=UniformStimulus(seed=seed),
            store=store,
            processes=processes,
        )
        original = _point(result, "original")
        balanced = _point(result, "balance")
        retimed = _point(result, "retime(stages=1)")
        row: Dict[str, Any] = {
            "circuit": name,
            "candidates": len(result.candidates),
            "simulated": result.n_simulated,
            "front": len([c for c in result.candidates if c.on_front]),
            "rank_agreement": result.rank_agreement,
        }
        if original is not None:
            # Beam pruning can in principle skip the original (it is
            # estimate-dominated on spaces with shrinking transforms);
            # the bound columns only exist when it was simulated.
            ratio = original.activity["L/F"]
            row.update({
                "L/F": ratio,
                "bound": round(1.0 + ratio, 4),
                "original_mW": round(original.exact.power_mw, 3),
                "original_period": original.exact.period,
            })
        if balanced is not None:
            row.update({
                "balanced_mW": round(balanced.exact.power_mw, 3),
                "balanced_useless": balanced.activity["useless"],
                "balanced_on_front": balanced.on_front,
            })
        if retimed is not None:
            row.update({
                "retimed_mW": round(retimed.exact.power_mw, 3),
                "retimed_period": retimed.exact.period,
                "retimed_on_front": retimed.on_front,
            })
        rows.append(row)
    return {
        "strategy": strategy,
        "n_vectors": n_vectors,
        "rows": rows,
    }


def format_frontier(data: Dict[str, Any]) -> str:
    """Render the sweep as one table, levers side by side."""
    headers = [
        "circuit", "candidates", "simulated", "front", "L/F", "bound",
        "original_mW", "balanced_mW", "balanced_useless",
        "retimed_mW", "retimed_period", "rank_agreement",
    ]
    rows = [
        [r.get(h, "-") for h in headers]
        for r in data["rows"]
    ]
    return format_table(
        headers,
        rows,
        title=(
            f"Frontier discovery — {data['strategy']} search, "
            f"{data['n_vectors']} random vectors "
            "(bound = idealized glitch-free reduction 1 + L/F)"
        ),
    )
