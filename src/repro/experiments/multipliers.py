"""E2/E3/A2 — multiplier transition-activity experiments (Section 4.1).

:func:`table1_experiment` regenerates paper Table 1: total / useful /
useless transitions and the L/F ratio for array and Wallace-tree
multipliers at 8x8 and 16x16 under unit delay with 500 random inputs.

:func:`table2_experiment` regenerates Table 2: the same 8x8 circuits
under the realistic ``dsum = 2 * dcarry`` full-adder timing, showing
how extra delay imbalance inflates useless activity.

:func:`correlation_experiment` is the A2 ablation probing the paper's
Section 3.2 premise that random inputs approximate multiplexed /
source-coded operands: it sweeps input correlation and reports how the
activity split responds.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.circuits.multipliers import build_multiplier_circuit
from repro.core.activity import ActivityResult
from repro.core.report import format_table
from repro.service.runner import cached_run
from repro.sim.delays import DelayModel, SumCarryDelay, UnitDelay
from repro.sim.vectors import CorrelatedStimulus, UniformStimulus, WordStimulus


def _run_multiplier(
    n_bits: int,
    architecture: str,
    n_vectors: int,
    seed: int,
    delay_model: DelayModel,
    correlation: float | None = None,
    store=None,
) -> ActivityResult:
    circuit, ports = build_multiplier_circuit(n_bits, architecture)
    stim = WordStimulus({"x": ports["x"], "y": ports["y"]})
    if correlation is None:
        spec = UniformStimulus(seed=seed)
    else:
        spec = CorrelatedStimulus(seed=seed, flip_probability=correlation)
    return cached_run(
        circuit, stim, spec, n_vectors,
        delay_model=delay_model, store=store,
    )


def table1_experiment(
    n_vectors: int = 500,
    seed: int = 1995,
    sizes: tuple[int, ...] = (8, 16),
    store=None,
) -> Dict[str, Any]:
    """Unit-delay activity of array vs Wallace multipliers (Table 1)."""
    rows: List[Dict[str, Any]] = []
    for architecture in ("array", "wallace"):
        for n_bits in sizes:
            result = _run_multiplier(
                n_bits, architecture, n_vectors, seed, UnitDelay(),
                store=store,
            )
            summary = result.summary()
            rows.append(
                {
                    "architecture": architecture,
                    "size": f"{n_bits}x{n_bits}",
                    "total": summary["total"],
                    "useful": summary["useful"],
                    "useless": summary["useless"],
                    "L/F": summary["L/F"],
                }
            )
    return {"n_vectors": n_vectors, "rows": rows}


def table2_experiment(
    n_vectors: int = 500,
    seed: int = 1995,
    n_bits: int = 8,
    sum_carry_ratio: int = 2,
    store=None,
) -> Dict[str, Any]:
    """Delay-imbalance refinement: dsum = ratio * dcarry (Table 2)."""
    rows: List[Dict[str, Any]] = []
    models = [
        ("dsum=dcarry", UnitDelay()),
        (
            f"dsum={sum_carry_ratio}*dcarry",
            SumCarryDelay(dsum=sum_carry_ratio, dcarry=1),
        ),
    ]
    for architecture in ("array", "wallace"):
        for label, model in models:
            result = _run_multiplier(
                n_bits, architecture, n_vectors, seed, model,
                store=store,
            )
            summary = result.summary()
            rows.append(
                {
                    "architecture": architecture,
                    "delay": label,
                    "useful": summary["useful"],
                    "useless": summary["useless"],
                    "L/F": summary["L/F"],
                }
            )
    return {"n_vectors": n_vectors, "n_bits": n_bits, "rows": rows}


def correlation_experiment(
    n_vectors: int = 500,
    seed: int = 1995,
    n_bits: int = 8,
    flip_probabilities: tuple[float, ...] = (0.5, 0.25, 0.1, 0.02),
    store=None,
) -> Dict[str, Any]:
    """A2 ablation: activity vs input correlation.

    ``flip_probability=0.5`` is the paper's random-input regime; lower
    values model raw (pre-multiplexing) signals.  Expectation: activity
    drops with correlation but the array/wallace ordering persists.
    """
    rows: List[Dict[str, Any]] = []
    for architecture in ("array", "wallace"):
        for fp in flip_probabilities:
            result = _run_multiplier(
                n_bits, architecture, n_vectors, seed, UnitDelay(),
                correlation=fp, store=store,
            )
            summary = result.summary()
            rows.append(
                {
                    "architecture": architecture,
                    "flip_probability": fp,
                    "total": summary["total"],
                    "useful": summary["useful"],
                    "useless": summary["useless"],
                    "L/F": summary["L/F"],
                }
            )
    return {"n_vectors": n_vectors, "n_bits": n_bits, "rows": rows}


def format_rows(data: Dict[str, Any], title: str) -> str:
    """Render any of this module's experiment results as a table."""
    rows = data["rows"]
    headers = list(rows[0].keys())
    return format_table(
        headers, [[r[h] for h in headers] for r in rows], title=title
    )
