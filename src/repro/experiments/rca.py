"""E1/E6 — ripple-carry-adder experiments (paper Section 3).

:func:`figure5_experiment` reproduces Figure 5: per-bit useful and
useless transition counts of a 16-bit RCA under 4000 random inputs,
simulated *and* predicted by the closed-form model (paper eqs. 2–7).
The paper's headline totals for this configuration are 119002 total,
63334 useful, 55668 useless, L/F = 0.88.

:func:`worst_case_experiment` exercises Section 3.1: the constructive
worst-case stimulus makes the top carry/sum toggle exactly N times in
one cycle, and the analytic probability ``3 * (1/8)^N`` of hitting it
with random inputs is reported alongside.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.circuits.adders import build_rca_circuit
from repro.core.activity import ActivityRun
from repro.core.analytical import (
    rca_expected_counts,
    rca_per_bit_table,
    worst_case_probability,
    worst_case_transitions,
    worst_case_vectors,
)
from repro.core.report import format_table
from repro.service.runner import cached_run
from repro.sim.vectors import UniformStimulus, WordStimulus


def figure5_experiment(
    n_bits: int = 16,
    n_vectors: int = 4000,
    seed: int = 1995,
    store=None,
) -> Dict[str, Any]:
    """Simulate the RCA and compare per-bit/total activity to eqs. 2–7.

    Returns a dict with ``analytic`` (expected totals), ``simulated``
    (measured summary), ``per_bit`` rows combining both, and the
    relative total error.  Routed through the service layer
    (:func:`repro.service.runner.cached_run`), so a re-run against a
    warm *store* (or ``REPRO_CACHE_DIR``) is served bit-identically
    from the cache with zero simulation work.
    """
    circuit, ports = build_rca_circuit(n_bits, with_cin=False)
    stim = WordStimulus({"a": ports["a"], "b": ports["b"]})
    monitor = ports["sums"] + ports["carries"]
    result = cached_run(
        circuit, stim, UniformStimulus(seed=seed), n_vectors,
        store=store, monitor=monitor,
    )

    analytic = rca_expected_counts(n_bits, n_vectors)
    expected_bits = rca_per_bit_table(n_bits, n_vectors)
    per_bit = []
    for i, exp in enumerate(expected_bits):
        sum_act = result.node(ports["sums"][i])
        carry_act = result.node(ports["carries"][i])
        per_bit.append(
            {
                "bit": i,
                "sum_useful_sim": sum_act.useful,
                "sum_useful_exp": exp["sum_useful"],
                "sum_useless_sim": sum_act.useless,
                "sum_useless_exp": exp["sum_useless"],
                "carry_useful_sim": carry_act.useful,
                "carry_useful_exp": exp["carry_useful"],
                "carry_useless_sim": carry_act.useless,
                "carry_useless_exp": exp["carry_useless"],
            }
        )
    simulated = result.summary()
    rel_error = abs(simulated["total"] - analytic["total"]) / analytic["total"]
    return {
        "n_bits": n_bits,
        "n_vectors": n_vectors,
        "analytic": analytic,
        "simulated": simulated,
        "per_bit": per_bit,
        "total_rel_error": rel_error,
    }


def format_figure5(data: Dict[str, Any]) -> str:
    """Render the Figure 5 per-bit profile as a text table."""
    rows = [
        [
            r["bit"],
            r["sum_useful_sim"],
            round(r["sum_useful_exp"]),
            r["sum_useless_sim"],
            round(r["sum_useless_exp"]),
            r["carry_useful_sim"],
            round(r["carry_useful_exp"]),
            r["carry_useless_sim"],
            round(r["carry_useless_exp"]),
        ]
        for r in data["per_bit"]
    ]
    return format_table(
        [
            "bit",
            "S uf sim", "S uf exp", "S ul sim", "S ul exp",
            "C uf sim", "C uf exp", "C ul sim", "C ul exp",
        ],
        rows,
        title=(
            f"Figure 5 — {data['n_bits']}-bit RCA, "
            f"{data['n_vectors']} random inputs"
        ),
    )


def worst_case_experiment(n_bits: int = 8) -> Dict[str, Any]:
    """Trigger the Section 3.1 worst case and measure it.

    Returns the measured toggle counts of the top sum/carry, the
    analytic bound N, and the random-input probability of the event.
    """
    circuit, ports = build_rca_circuit(n_bits, with_cin=False)
    prev_a, prev_b, new_a, new_b = worst_case_vectors(n_bits)
    stim = WordStimulus({"a": ports["a"], "b": ports["b"]})
    run = ActivityRun(circuit)
    (trace,) = run.step_traces(
        [stim.vector(a=new_a, b=new_b)],
        warmup=stim.vector(a=prev_a, b=prev_b),
    )
    top_sum = ports["sums"][n_bits - 1]
    top_carry = ports["carries"][n_bits - 1]
    return {
        "n_bits": n_bits,
        "bound": worst_case_transitions(n_bits),
        "probability": worst_case_probability(n_bits),
        "top_sum_toggles": trace.toggles.get(top_sum, 0),
        "top_carry_toggles": trace.toggles.get(top_carry, 0),
        "vectors": (prev_a, prev_b, new_a, new_b),
    }
