"""E5/A3 — retiming-for-power sweep (paper Section 5, Table 3, Figure 10).

The paper retimed four direction-detector layouts for increasing clock
frequencies, producing 48 / 174 / 218 / 350 flipflops, and measured a
three-way power split at 5 MHz: logic power fell ~3.6x while flipflop
and clock power grew, giving a total-power minimum at an intermediate
pipelining level ("an optimum retiming for power dissipation exists").

:func:`table3_experiment` reproduces that sweep: the detector (with
registered inputs, 6*width = 48 flipflops at width 8, matching the
paper's circuit 1) is pipelined with increasing extra stages via
minimum-period retiming, each variant is simulated with random inputs,
and the technology model converts activity into the same three power
components plus area and clock capacitance.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Sequence

from repro.circuits.direction_detector import build_direction_detector
from repro.core.activity import ActivityRun
from repro.core.power import estimate_power
from repro.core.report import format_table
from repro.experiments.detector import detector_stimulus
from repro.retime.pipeline import pipeline_circuit
from repro.service.runner import cached_run
from repro.sim.delays import DelayModel, UnitDelay
from repro.sim.vectors import UniformStimulus
from repro.tech.area import AreaModel
from repro.tech.clock import ClockTreeModel
from repro.tech.library import TechnologyLibrary


def table3_experiment(
    stages: Sequence[int] = (0, 1, 2, 4),
    n_vectors: int = 200,
    width: int = 8,
    frequency: float = 5e6,
    seed: int = 1995,
    tech: TechnologyLibrary | None = None,
    clock_model: ClockTreeModel | None = None,
    area_model: AreaModel | None = None,
    delay_model: DelayModel | None = None,
    store=None,
) -> Dict[str, Any]:
    """Pipeline-depth sweep with three-component power accounting.

    Each entry of *stages* is the number of extra pipeline register
    levels retimed into the input-registered detector (0 reproduces the
    paper's circuit 1: input registers only, fully glitchy logic).
    Returns one row per variant with flipflop count, area, clock
    capacitance and the logic/flipflop/clock/total power in mW —
    the columns of paper Table 3 — plus the index of the total-power
    minimum (Figure 10's optimum).
    """
    tech = tech or TechnologyLibrary()
    clock_model = clock_model or ClockTreeModel()
    area_model = area_model or AreaModel()
    delay_model = delay_model or UnitDelay()

    base, ports = build_direction_detector(
        width=width, register_inputs=True
    )
    stim = detector_stimulus(ports)

    rows: List[Dict[str, Any]] = []
    for k, extra in enumerate(stages):
        pipelined = pipeline_circuit(
            base, extra, delay_model=delay_model,
            name=f"detector_c{k + 1}",
        )
        activity = cached_run(
            pipelined.circuit, stim, UniformStimulus(seed=seed),
            n_vectors, delay_model=delay_model, store=store,
        )
        breakdown = estimate_power(
            pipelined.circuit, activity, frequency, tech, clock_model
        )
        milliwatts = breakdown.as_milliwatts()
        n_ff = pipelined.flipflops
        rows.append(
            {
                "circuit": k + 1,
                "extra_stages": extra,
                "period": pipelined.period,
                "flipflops": n_ff,
                "area_mm2": round(
                    area_model.circuit_area_mm2(pipelined.circuit, tech), 3
                ),
                "clock_cap_pF": round(
                    clock_model.capacitance(n_ff) * 1e12, 2
                ),
                "logic_mW": milliwatts["logic_mW"],
                "flipflop_mW": milliwatts["flipflop_mW"],
                "clock_mW": milliwatts["clock_mW"],
                "total_mW": milliwatts["total_mW"],
                "L/F": activity.useless_useful_ratio(),
            }
        )
    totals = [r["total_mW"] for r in rows]
    optimum = totals.index(min(totals))
    logic_ratio = (
        rows[0]["logic_mW"] / rows[-1]["logic_mW"]
        if rows[-1]["logic_mW"]
        else float("inf")
    )
    return {
        "frequency": frequency,
        "n_vectors": n_vectors,
        "rows": rows,
        "optimum_index": optimum,
        "logic_power_ratio_first_to_last": round(logic_ratio, 2),
        "paper": {
            "flipflops": (48, 174, 218, 350),
            "logic_mW": (21.8, 9.7, 7.5, 6.1),
            "flipflop_mW": (0.9, 3.3, 4.1, 6.6),
            "clock_mW": (0.5, 1.5, 1.8, 2.8),
            "total_mW": (23.2, 14.5, 13.4, 15.5),
            "optimum_index": 2,
            "logic_power_ratio_first_to_last": 3.6,
        },
    }


def format_table3(data: Dict[str, Any]) -> str:
    """Render the sweep as the paper's Table 3 layout."""
    headers = [
        "circuit", "extra_stages", "period", "flipflops", "area_mm2",
        "clock_cap_pF", "logic_mW", "flipflop_mW", "clock_mW", "total_mW",
    ]
    return format_table(
        headers,
        [[r[h] for h in headers] for r in data["rows"]],
        title=(
            f"Table 3 — power at {data['frequency'] / 1e6:.0f} MHz, "
            f"{data['n_vectors']} random vectors"
        ),
    )


def ff_activity_experiment(
    stages: Sequence[int] = (0, 2, 4),
    n_vectors: int = 200,
    width: int = 8,
    seed: int = 1995,
) -> Dict[str, Any]:
    """A3 ablation — validate the paper's 50% flipflop-activity assumption.

    Footnote 1 of the paper estimates flipflop power assuming each
    flipflop input is "changing for about 50% of the time".  This
    driver measures the actual mean D-input toggle probability per
    cycle across all flipflops for several pipeline depths.
    """
    base, ports = build_direction_detector(width=width, register_inputs=True)
    stim = detector_stimulus(ports)
    rows: List[Dict[str, Any]] = []
    for extra in stages:
        pipelined = pipeline_circuit(base, extra)
        circuit = pipelined.circuit
        rng = random.Random(seed)
        ff = ActivityRun(circuit).ff_activity(
            stim.random(rng, n_vectors + 1)
        )
        rows.append(
            {
                "extra_stages": extra,
                "flipflops": ff["flipflops"],
                "mean_d_activity": round(ff["mean_d_activity"], 4),
            }
        )
    return {"rows": rows, "assumed": 0.5}
