"""A5 ablation — real (synthetic) video vs random inputs on the detector.

Paper Section 4.2 justifies random stimuli: "The original video input
signal statistics and correlations are almost completely lost very
early in the circuit, immediately after the absolute differences are
taken."  This driver runs the same gate-level detector on a moving
synthetic video sequence and on uniform random inputs and compares the
activity statistics — if the paper is right, the useless/useful ratio
under video should be in the same regime as under random inputs.
"""

from __future__ import annotations

import random
from typing import Any, Dict

from repro.circuits.direction_detector import build_direction_detector
from repro.core.activity import ActivityRun
from repro.experiments.detector import detector_stimulus
from repro.video.frames import moving_sequence
from repro.video.scan import site_vectors


def video_vs_random_experiment(
    width: int = 24,
    height: int = 12,
    n_fields: int = 3,
    slope: float = 1.0,
    noise: int = 4,
    threshold: int = 16,
    seed: int = 1995,
) -> Dict[str, Any]:
    """Activity of the detector under video-like vs random stimulus.

    The video stream supplies ``n_fields * (height-1) * width`` sites;
    the random run uses the same vector count for a fair comparison.
    """
    circuit, ports = build_direction_detector(width=8, threshold=threshold)
    fields = moving_sequence(
        width, height, n_fields, slope=slope, noise=noise, seed=seed
    )

    video_vectors = []
    for field in fields:
        video_vectors.extend(site_vectors(field, ports))
    video_result = ActivityRun(circuit).run(iter(video_vectors))

    circuit2, ports2 = build_direction_detector(width=8, threshold=threshold)
    stim = detector_stimulus(ports2)
    random_result = ActivityRun(circuit2).run(
        stim.random(random.Random(seed), len(video_vectors))
    )

    return {
        "sites": len(video_vectors) - 1,  # first vector is warm-up
        "video": video_result.summary(),
        "random": random_result.summary(),
        "ratio_gap": abs(
            video_result.useless_useful_ratio()
            - random_result.useless_useful_ratio()
        ),
    }
