"""Design-space exploration: estimate-guided search for glitch reduction.

The seventh architecture layer.  The paper's conclusion names two
levers against glitch power — "balancing delay paths and/or by
introducing flipflops" — and the earlier layers provide each piece in
isolation: the transforms (:mod:`repro.opt`, :mod:`repro.retime`), a
glitch-exact oracle (:mod:`repro.sim`), cheap analytic estimates
(:mod:`repro.estimate`), and a content-addressed result service
(:mod:`repro.service`).  This package closes the loop into an
automated optimizer:

* :mod:`repro.explore.specs` — the declarative, hashable
  :class:`TransformSpec` catalog and :class:`ExploreSpace` (transform
  chains × depth × delay regime × area/latency constraints);
* :mod:`repro.explore.cost` — the multi-objective cost model: power
  (analytic fused estimate or glitch-exact simulation), area, latency,
  critical path;
* :mod:`repro.explore.pareto` — Pareto-front extraction over
  (power × area × latency);
* :mod:`repro.explore.search` — the drivers: exhaustive sweep and
  estimate-guided greedy/beam search, with candidate simulations
  fanned out and cached through the service layer and the
  estimate-vs-sim rank agreement recorded;
* :mod:`repro.explore.report` — CLI/driver table rendering.

Exposed on the CLI as ``repro explore`` and reproduced across the
circuit catalog by :mod:`repro.experiments.explore_frontier`.
"""

from repro.explore.cost import (
    CostContext,
    CostVector,
    estimated_cost,
    rank_agreement,
    simulated_cost,
    transition_instants,
)
from repro.explore.pareto import dominated_with_margin, pareto_front
from repro.explore.report import format_candidates, format_explore, format_front
from repro.explore.search import (
    Candidate,
    ExploreResult,
    explore,
    explore_key,
)
from repro.explore.specs import (
    TRANSFORMS,
    Chain,
    ExploreSpace,
    TransformSpec,
    apply_chain,
    default_space,
    describe_chain,
)

__all__ = [
    "CostContext",
    "CostVector",
    "estimated_cost",
    "rank_agreement",
    "simulated_cost",
    "transition_instants",
    "dominated_with_margin",
    "pareto_front",
    "format_candidates",
    "format_explore",
    "format_front",
    "Candidate",
    "ExploreResult",
    "explore",
    "explore_key",
    "TRANSFORMS",
    "Chain",
    "ExploreSpace",
    "TransformSpec",
    "apply_chain",
    "default_space",
    "describe_chain",
]
