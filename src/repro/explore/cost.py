"""Multi-objective candidate costing: analytic (cheap) and simulated (exact).

Every candidate is scored on three minimised objectives — dynamic
power, die area, and pipeline latency — plus the achieved clock period
as metadata.  Area, latency and period are *structural*: they come
from the netlist alone (:mod:`repro.tech.area`, critical path) and are
identical between the analytic and simulated cost paths.  Only power
differs:

* :func:`simulated_cost` bills the glitch-exact per-net rise counts of
  an :class:`~repro.core.activity.ActivityResult` through the paper's
  three-component model (:func:`repro.core.power.estimate_power`);
* :func:`estimated_cost` replaces simulation with the fused analytic
  estimate: the zero-delay useful-transition rate per net
  (:func:`repro.estimate.workload.estimate_workload`) multiplied by a
  *glitch multiplier* from :func:`transition_instants` — the number of
  distinct time instants at which the driving cell's inputs can
  arrive under the chosen delay model.  A path-balanced cell has one
  arrival instant (multiplier 1: the estimate degenerates to the
  exact useful rate), while skewed structures like a ripple-carry
  chain accumulate instants linearly — the paper's "unbalanced delay
  paths cause useless transitions" made quantitative.  This is a
  first-order ranking proxy, not a count estimate; search drivers
  therefore record the estimate-vs-simulation rank agreement
  (:func:`rank_agreement`) of every run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Sequence, Tuple

from repro.core.activity import ActivityResult
from repro.core.power import dynamic_power, estimate_power
from repro.estimate.workload import estimate_workload
from repro.netlist.circuit import Circuit
from repro.sim.delays import DelayModel
from repro.sim.vectors import StimulusSpec
from repro.tech.area import AreaModel
from repro.tech.clock import ClockTreeModel
from repro.tech.library import TechnologyLibrary


def transition_instant_sets(
    circuit: Circuit, delay_model: DelayModel
) -> Dict[int, FrozenSet[int]]:
    """Per-net set of distinct potential transition instants per cycle.

    Primary inputs and flipflop outputs switch only at the clock edge
    (one instant, t=0).  A combinational output can change at
    ``t + d`` for every distinct instant *t* at which any of its
    inputs can change, so the instant sets propagate through one
    topological pass; their sizes bound how many times each net can
    evaluate per cycle.  Constant-driven and undriven nets never
    transition (zero instants — no entry here).  Sets are bounded by
    the critical path length, so the pass is cheap even on deep
    circuits.

    The full sets (not just their sizes) are exposed so the
    incremental explore path can splice a child circuit's sets from
    its parent's (:func:`spliced_instant_state`).
    """
    empty: FrozenSet[int] = frozenset()
    edge: FrozenSet[int] = frozenset({0})
    instants: Dict[int, FrozenSet[int]] = {n: edge for n in circuit.inputs}
    for cell in circuit.cells:
        if cell.is_sequential:
            for out in cell.outputs:
                instants[out] = edge
    for cell in circuit.topological_cells():
        arrivals: FrozenSet[int] = empty
        for n in cell.inputs:
            arrivals |= instants.get(n, empty)
        for pos, out in enumerate(cell.outputs):
            d = delay_model.delay(cell, pos)
            instants[out] = frozenset(t + d for t in arrivals)
    return instants


def transition_instants(
    circuit: Circuit, delay_model: DelayModel
) -> Dict[int, int]:
    """Per-net **count** of potential transition instants per cycle.

    The size projection of :func:`transition_instant_sets` — the
    glitch multiplier :func:`estimated_cost` feeds into the analytic
    power term.
    """
    sets = transition_instant_sets(circuit, delay_model)
    return {net: len(times) for net, times in sets.items()}


def spliced_instant_state(
    parent_sets: Dict[int, FrozenSet[int]],
    parent_arrivals: Dict[int, int],
    child: Circuit,
    delay_model: DelayModel,
    cone_cells,
) -> Tuple[Dict[int, FrozenSet[int]], Dict[int, int]]:
    """Child instant sets + arrival levels from the parent's, cone only.

    *child* must extend the parent index-aligned (pure-additive delta
    replay) and *cone_cells* must contain every **combinational**
    child cell whose inputs' instant sets or arrival levels can differ
    from the parent run — the comb-fanout closure of the delta's
    touched cells, widened by the drivers of fanout-changed nets
    (load-dependent delay models re-time a cell when its output gains
    a reader, even though the cell itself was not rewired; the explore
    layer computes that widened seed set from the delta).  Sequential
    indices in *cone_cells* are ignored: register outputs pin to the
    clock edge regardless.

    Only cone cells are re-propagated, in child topological order —
    everything else keeps the parent's values, which the cone-closure
    property guarantees are identical to a from-scratch pass
    (:func:`transition_instant_sets` / :meth:`Circuit.levelize` with
    the same delay model — the property suite pins both).
    """
    empty: FrozenSet[int] = frozenset()
    edge: FrozenSet[int] = frozenset({0})
    sets = dict(parent_sets)
    arr = dict(parent_arrivals)
    for n in child.inputs:
        sets[n] = edge
        arr[n] = 0
    for cell in child.cells:
        if cell.is_sequential:
            for out in cell.outputs:
                sets[out] = edge
                arr[out] = 0
    if not cone_cells:
        return sets, arr
    for cell in child.topological_cells():
        if cell.index not in cone_cells:
            continue
        arrivals: FrozenSet[int] = empty
        for n in cell.inputs:
            arrivals |= sets.get(n, empty)
        at = max((arr.get(n, 0) for n in cell.inputs), default=0)
        for pos, out in enumerate(cell.outputs):
            d = delay_model.delay(cell, pos)
            sets[out] = frozenset(t + d for t in arrivals)
            arr[out] = at + d
    return sets, arr


def period_from_arrivals(circuit: Circuit, arrivals: Dict[int, int]) -> int:
    """Critical path from a maintained arrival-level map.

    Mirrors :meth:`Circuit.critical_path_length` exactly — max arrival
    over primary outputs and flipflop D-inputs — but reads the levels
    from the incrementally-spliced map instead of re-levelizing.  The
    levels come from a separate arrival map rather than the instant
    sets because the two disagree on constant-driven cells: a cell
    with no transitioning input has an *empty* instant set but still
    a nonzero arrival level.
    """
    endpoints = list(circuit.outputs)
    for c in circuit.cells:
        if c.is_sequential:
            endpoints.extend(c.inputs)
    return max((arrivals.get(n, 0) for n in endpoints), default=0)


@dataclass(frozen=True)
class CostVector:
    """The three minimised objectives plus pipeline-latency metadata.

    The Pareto axes are dynamic power, die area, and the critical path
    (*period*, in delay-model units — the minimum clock period, which
    is what retiming buys in exchange for flipflop and clock power).
    *latency* is the number of extra pipeline stages (added
    input-to-output clock cycles); it is constrained
    (``ExploreSpace.max_latency``) and reported, but not a dominance
    axis — a deeper pipeline at the same period, area and power is not
    a better design, it is the same point paid for twice.
    """

    power_mw: float
    area_mm2: float
    latency: int
    period: int = 0

    def objectives(self) -> Tuple[float, float, float]:
        return (self.power_mw, self.area_mm2, float(self.period))

    def dominates(self, other: "CostVector") -> bool:
        """Weak dominance: no objective worse, at least one better."""
        a, b = self.objectives(), other.objectives()
        return all(x <= y for x, y in zip(a, b)) and a != b

    def to_dict(self) -> Dict[str, float]:
        return {
            "power_mW": round(self.power_mw, 6),
            "area_mm2": round(self.area_mm2, 6),
            "latency": self.latency,
            "period": self.period,
        }

    @staticmethod
    def from_dict(doc: Dict[str, float]) -> "CostVector":
        return CostVector(
            power_mw=float(doc["power_mW"]),
            area_mm2=float(doc["area_mm2"]),
            latency=int(doc["latency"]),
            period=int(doc.get("period", 0)),
        )


@dataclass(frozen=True)
class CostContext:
    """The shared evaluation regime: technology, clock rate, models."""

    frequency: float = 5e6
    tech: TechnologyLibrary | None = None
    clock_model: ClockTreeModel | None = None
    area_model: AreaModel | None = None

    def resolved(
        self,
    ) -> Tuple[float, TechnologyLibrary, ClockTreeModel, AreaModel]:
        return (
            self.frequency,
            self.tech or TechnologyLibrary(),
            self.clock_model or ClockTreeModel(),
            self.area_model or AreaModel(),
        )

    @property
    def cacheable(self) -> bool:
        """Whether whole-exploration results under this regime may cache.

        Only the default technology/clock/area models are content-
        addressable (a custom subclass can change behaviour without
        changing any hashed field), so supplying any model instance
        disables the whole-result cache — per-candidate *simulation*
        entries are unaffected, they do not depend on the cost models.
        """
        return (
            self.tech is None
            and self.clock_model is None
            and self.area_model is None
        )

    def fingerprint_fields(self) -> Tuple:
        """The cache-identity of this regime (default models only)."""
        _, tech, clock_model, area_model = self.resolved()
        return (
            self.frequency,
            tech.name,
            tech.vdd,
            tech.ff_energy_per_cycle,
            clock_model.base_cap,
            clock_model.cap_per_ff,
            area_model.utilisation,
            area_model.overhead_mm2,
        )


def structural_metrics(
    circuit: Circuit,
    delay_model: DelayModel,
    context: CostContext,
    latency: int,
) -> Tuple[float, int]:
    """``(area_mm2, period)`` — exact, simulation-free objectives."""
    _, tech, _, area_model = context.resolved()
    return (
        area_model.circuit_area_mm2(circuit, tech),
        circuit.critical_path_length(
            lambda cell, pos: delay_model.delay(cell, pos)
        ),
    )


def estimated_cost(
    circuit: Circuit,
    delay_model: DelayModel,
    stimulus: StimulusSpec,
    context: CostContext,
    latency: int = 0,
) -> CostVector:
    """Analytic cost: fused useful-rate × glitch-multiplier power.

    Per net, estimated transitions per cycle are the workload's
    zero-delay useful rate times the net's transition-instant count;
    half of those are rises, billed through paper eq. 1.  Flipflop and
    clock power use the exact structural counts, and flipflop output
    nets are excluded from the logic component — the same accounting
    as :func:`repro.core.power.estimate_power`, so the two cost paths
    differ only in how glitches enter the logic term.
    """
    estimate = estimate_workload(circuit, stimulus)
    instants = transition_instants(circuit, delay_model)
    period = circuit.critical_path_length(
        lambda cell, pos: delay_model.delay(cell, pos)
    )
    return estimated_cost_from(
        circuit, context, latency, estimate, instants, period
    )


def _power_from_estimate(
    circuit: Circuit,
    context: CostContext,
    estimate,
    instant_counts: Dict[int, int],
) -> float:
    """Total analytic power (W) from an estimate + instant counts."""
    frequency, tech, clock_model, _ = context.resolved()
    ff_outputs = {
        c.outputs[0] for c in circuit.cells if c.is_sequential
    }
    logic = 0.0
    for net in estimate.monitored:
        if net in ff_outputs:
            continue
        rate = estimate.activities.get(net, 0.0) * instant_counts.get(net, 0)
        if rate <= 0.0:
            continue
        logic += dynamic_power(
            rate / 2.0,
            tech.net_load_capacitance(circuit, net),
            tech.vdd,
            frequency,
        )
    n_ff = circuit.num_flipflops
    return (
        logic
        + n_ff * tech.ff_average_power(frequency)
        + clock_model.power(n_ff, tech.vdd, frequency)
    )


def estimated_cost_from(
    circuit: Circuit,
    context: CostContext,
    latency: int,
    estimate,
    instant_counts: Dict[int, int],
    period: int,
) -> CostVector:
    """:func:`estimated_cost` from already-computed ingredients.

    The incremental explore path produces the workload estimate, the
    instant counts and the period by cone-limited reuse of the parent
    candidate's state; this assembles the identical
    :class:`CostVector` without recomputing any of them.  The power
    loop itself stays O(nets) — it is cheap arithmetic, and keeping
    one code path (:func:`_power_from_estimate`) is what guarantees
    the incremental and from-scratch costs are bit-identical.
    """
    _, tech, _, area_model = context.resolved()
    power = _power_from_estimate(circuit, context, estimate, instant_counts)
    area = area_model.circuit_area_mm2(circuit, tech)
    return CostVector(
        power_mw=power * 1e3, area_mm2=area, latency=latency, period=period
    )


def simulated_cost(
    circuit: Circuit,
    activity: ActivityResult,
    delay_model: DelayModel,
    context: CostContext,
    latency: int = 0,
) -> CostVector:
    """Exact cost from a glitch-exact simulation of *circuit*."""
    frequency, tech, clock_model, _ = context.resolved()
    breakdown = estimate_power(
        circuit, activity, frequency, tech, clock_model
    )
    area, period = structural_metrics(circuit, delay_model, context, latency)
    return CostVector(
        power_mw=breakdown.total * 1e3,
        area_mm2=area,
        latency=latency,
        period=period,
    )


def rank_agreement(
    estimated: Sequence[float], simulated: Sequence[float]
) -> float:
    """Kendall rank correlation between the two power orderings.

    1.0 means the analytic estimator ordered every candidate pair the
    same way glitch-exact simulation did (pruning on estimates was
    safe); values near 0 mean the estimate carried no ranking signal
    for this space and sim verification of the full space is
    mandatory.  Pairs tied on either side count as half-concordant.
    """
    if len(estimated) != len(simulated):
        raise ValueError("rank_agreement needs paired sequences")
    n = len(estimated)
    if n < 2:
        return 1.0
    concordant = 0.0
    pairs = 0
    for i in range(n):
        for j in range(i + 1, n):
            de = estimated[i] - estimated[j]
            ds = simulated[i] - simulated[j]
            pairs += 1
            if de == 0.0 or ds == 0.0:
                concordant += 0.5
            elif (de > 0.0) == (ds > 0.0):
                concordant += 1.0
    return round(2.0 * concordant / pairs - 1.0, 4)
