"""Pareto-front extraction over (power, area, latency).

All objectives are minimised.  The front keeps every non-dominated
candidate, including exact ties (two candidates with identical cost
vectors are both on the front — the caller has already merged
structurally identical candidates by circuit fingerprint, so
remaining ties are genuinely distinct design points).
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TypeVar

from repro.explore.cost import CostVector

T = TypeVar("T")


def pareto_front(
    items: Sequence[T],
    cost_of: Callable[[T], CostVector],
) -> List[T]:
    """The non-dominated subset of *items*, in input order."""
    costs = [cost_of(item) for item in items]
    front: List[T] = []
    for i, item in enumerate(items):
        if not any(
            costs[j].dominates(costs[i])
            for j in range(len(items))
            if j != i
        ):
            front.append(item)
    return front


def dominated_with_margin(
    cost: CostVector,
    others: Sequence[CostVector],
    power_margin: float = 0.05,
) -> bool:
    """Is *cost* clearly dominated, with a safety margin on power?

    Used by the estimate-guided search to decide which candidates can
    skip glitch-exact simulation: the analytic power estimate is a
    ranking proxy (see :mod:`repro.explore.cost`), so a candidate is
    pruned only when some other candidate is no worse on the *exact*
    structural objectives (area, period, pipeline latency) **and**
    better on estimated power by more than *power_margin* (relative).
    Borderline candidates survive to simulation, which keeps the
    discovered front robust against small estimate-ranking errors.
    """
    for other in others:
        if other is cost:
            continue
        if (
            other.area_mm2 <= cost.area_mm2
            and other.period <= cost.period
            and other.latency <= cost.latency
            and other.power_mw < cost.power_mw * (1.0 - power_margin)
        ):
            return True
    return False
