"""Rendering of exploration outcomes for the CLI and experiment drivers."""

from __future__ import annotations

from typing import List

from repro.core.report import format_table
from repro.explore.search import Candidate, ExploreResult


def _cost_cells(candidate: Candidate) -> List:
    est = candidate.estimate
    exact = candidate.exact
    return [
        "-" if est is None else round(est.power_mw, 3),
        "-" if exact is None else round(exact.power_mw, 3),
        "-" if exact is None else round(exact.area_mm2, 3),
        candidate.latency,
        "-" if exact is None else exact.period,
    ]


def format_candidates(result: ExploreResult) -> str:
    """The full candidate table: estimates, exact costs, front flags."""
    rows = []
    for c in sorted(
        result.candidates,
        key=lambda c: (c.exact is None, getattr(c.exact, "power_mw", 0.0)),
    ):
        status = "front" if c.on_front else (
            "simulated" if c.exact is not None else (
                "infeasible" if not c.feasible else "pruned"
            )
        )
        rows.append([c.label, *_cost_cells(c), status])
    return format_table(
        ["candidate", "est_mW", "sim_mW", "area_mm2", "latency",
         "period", "status"],
        rows,
        title=(
            f"{result.circuit_name}: {result.strategy} search, "
            f"{len(result.candidates)} unique candidate(s) "
            f"({result.n_enumerated} chains), "
            f"{result.n_simulated} simulated"
        ),
    )


def format_front(result: ExploreResult) -> str:
    """The discovered Pareto front with activity detail."""
    rows = []
    for c in result.front():
        activity = c.activity or {}
        rows.append([
            c.label,
            round(c.exact.power_mw, 3),
            round(c.exact.area_mm2, 3),
            c.exact.period,
            c.latency,
            activity.get("useful", "-"),
            activity.get("useless", "-"),
            activity.get("L/F", "-"),
        ])
    agreement = (
        "n/a" if result.rank_agreement is None else result.rank_agreement
    )
    return format_table(
        ["point", "power_mW", "area_mm2", "period", "latency", "useful",
         "useless", "L/F"],
        rows,
        title=(
            f"Pareto front — power x area x critical path "
            f"(estimate-vs-sim rank agreement {agreement})"
        ),
    )


def format_explore(result: ExploreResult) -> str:
    """Candidate table plus front, ready to print."""
    parts = [format_candidates(result), format_front(result)]
    if result.delta_reuse_frac is not None:
        parts.append(
            f"delta reuse: {result.delta_reuse_frac:.0%} of candidate "
            f"expansions served incrementally"
        )
    return "\n\n".join(parts)
