"""Search drivers: exhaustive sweep and estimate-guided greedy/beam search.

Every driver works on the same candidate representation — a chain of
:class:`~repro.explore.specs.TransformSpec`\\ s applied to the base
circuit, deduplicated by circuit fingerprint (``balance+balance`` and
``balance`` collapse to one candidate; the merged labels are kept for
reporting).  The difference is *which candidates pay for glitch-exact
simulation*:

* :func:`explore` with ``strategy="exhaustive"`` simulates every
  unique feasible candidate — the oracle, affordable for small spaces;
* ``strategy="beam"`` (or ``"greedy"``, beam width 1) expands the
  chain space guided by the fused analytic cost estimate
  (:func:`repro.explore.cost.estimated_cost`), prunes candidates that
  are clearly estimate-dominated
  (:func:`repro.explore.pareto.dominated_with_margin` — the exact
  structural objectives must be no better and the estimated power
  must be worse by a safety margin), and runs glitch-exact simulation
  only on the surviving frontier.

Candidate simulations fan out through the batch machinery
(:func:`repro.service.jobs.run_circuit_tasks`): with a result store
they resume warm — re-running an exploration, or running a larger one
that shares candidates with a previous run, does zero duplicate
simulation work.  The estimate-vs-sim power rank agreement of every
run is recorded so users can audit when estimate pruning is
trustworthy (see the README's estimation-gap guidance).
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.estimate.workload import (
    WorkloadSnapshot,
    incremental_workload,
    workload_snapshot,
)
from repro.explore.cost import (
    CostContext,
    CostVector,
    estimated_cost,
    estimated_cost_from,
    period_from_arrivals,
    rank_agreement,
    simulated_cost,
    spliced_instant_state,
    transition_instant_sets,
)
from repro.explore.pareto import dominated_with_margin, pareto_front
from repro.explore.specs import (
    Chain,
    ExploreSpace,
    TransformSpec,
    default_space,
    describe_chain,
)
from repro.netlist.circuit import Circuit
from repro.netlist.compiled import (
    compile_delta,
    content_digest,
    delay_fingerprint,
)
from repro.netlist.delta import (
    CircuitDelta,
    comb_fanout_cone,
    cone_net_indices,
    full_fanout_cone,
    timing_cone_seeds,
    touched_cell_indices,
)
from repro.obs import trace as obs
from repro.service.jobs import CircuitTask, resolve_delay, run_circuit_tasks
from repro.service.store import (
    EXPLORE,
    ResultStore,
    RunKey,
    decode_result,
    share_per_node_rows,
)
from repro.service.runner import reusable_result_nets
from repro.sim.delays import DelayModel
from repro.sim.vectors import StimulusSpec, UniformStimulus

STRATEGIES = ("exhaustive", "beam", "greedy")

#: Expand candidates through delta replay + cone-limited recompute when
#: possible.  Module-level so the bit-identity tests (and benchmarks)
#: can pin the pre-incremental reference path by monkeypatching it to
#: ``False`` — both paths must produce identical fronts.
INCREMENTAL_EXPANSION = True

#: Counters of the most recent :func:`_expand_candidates` run.  Kept as
#: a module global (cleared by :func:`explore` before expansion) rather
#: than widening the function signature, which tests monkeypatch; and
#: not derived from the obs metrics registry, which may simply be
#: disabled.  Keys: ``delta`` (cone-limited expansions), ``full``
#: (from-scratch expansions), ``collapsed`` (fingerprint-deduplicated
#: chains that skipped estimation entirely).
_EXPAND_STATS: Dict[str, int] = {}

#: Transform-application memo for the incremental expansion path,
#: keyed per parent :class:`Circuit` *object* (same weak-keyed idiom
#: as the retiming-graph memo in :mod:`repro.explore.specs`).  A
#: repeated exploration of the same netlist — a service sweep, an
#: interactive session widening the beam, the committed throughput
#: benchmark — re-applies the exact same ``(parent, spec)`` moves, and
#: the transform passes (retiming's LP in particular) dominate
#: expansion cost.  Because the cached ``replayed`` child is itself
#: the parent object of the next depth, the whole chain tree becomes
#: memo-stable after one pass.  Entries die with the parent circuit;
#: the per-circuit slot is keyed by ``Circuit.version`` so a mutated
#: netlist can never reuse stale results.
_TRANSFORM_MEMO: "weakref.WeakKeyDictionary[Circuit, Dict[tuple, tuple]]" = (
    weakref.WeakKeyDictionary()
)


def _applied_delta(
    parent: Circuit, spec: TransformSpec, delay_model: DelayModel
) -> Tuple[Circuit, Dict[str, Any], CircuitDelta, Optional[Circuit]]:
    """Memoized ``spec.apply_delta`` + fingerprint-checked replay.

    Returns ``(child, info, delta, replayed)`` where *replayed* is the
    delta re-applied onto *parent* (index-aligned with it), or ``None``
    when the delta is not pure-additive or the replay invariant does
    not hold — i.e. exactly when the caller must take the full path.
    """
    per = _TRANSFORM_MEMO.setdefault(parent, {})
    key = (parent.version, delay_model.describe(), spec)
    hit = per.get(key)
    if hit is None:
        for stale in [k for k in per if k[0] != parent.version]:
            del per[stale]
        child, info, delta = spec.apply_delta(parent, delay_model)
        replayed: Optional[Circuit] = None
        if delta.is_pure_addition:
            candidate = delta.apply(parent)
            if candidate.fingerprint() == child.fingerprint():
                replayed = candidate
            else:  # pragma: no cover - replay invariant violated
                obs.inc("explore.delta_replay_mismatch")
                obs.instant(
                    "explore.delta_replay_mismatch",
                    transform=spec.describe(),
                )
        hit = per[key] = (child, info, delta, replayed)
    return hit


@dataclass
class Candidate:
    """One unique design point: a transform chain and its evaluations."""

    chain: Chain
    label: str
    fingerprint: str
    latency: int
    circuit: Optional[Circuit] = None  # transient; absent after decode
    merged: List[str] = field(default_factory=list)
    estimate: Optional[CostVector] = None
    exact: Optional[CostVector] = None
    activity: Optional[Dict[str, Any]] = None
    feasible: bool = True
    on_front: bool = False
    # Transient incremental-expansion state — never serialized.  *state*
    # is dropped as soon as the candidate leaves the beam frontier;
    # *delta* / *parent_fp* survive so the simulate phase can reuse
    # unchanged per-net results from the parent's payload.
    state: Optional["_IncrementalState"] = None
    delta: Optional[CircuitDelta] = None
    parent_fp: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "chain": [t.to_dict() for t in self.chain],
            "label": self.label,
            "fingerprint": self.fingerprint,
            "latency": self.latency,
            "merged": list(self.merged),
            "estimate": None if self.estimate is None else self.estimate.to_dict(),
            "exact": None if self.exact is None else self.exact.to_dict(),
            "activity": self.activity,
            "feasible": self.feasible,
            "on_front": self.on_front,
        }

    @staticmethod
    def from_dict(doc: Mapping[str, Any]) -> "Candidate":
        return Candidate(
            chain=tuple(TransformSpec.from_dict(t) for t in doc["chain"]),
            label=doc["label"],
            fingerprint=doc["fingerprint"],
            latency=int(doc["latency"]),
            merged=list(doc.get("merged", [])),
            estimate=(
                None if doc.get("estimate") is None
                else CostVector.from_dict(doc["estimate"])
            ),
            exact=(
                None if doc.get("exact") is None
                else CostVector.from_dict(doc["exact"])
            ),
            activity=doc.get("activity"),
            feasible=bool(doc.get("feasible", True)),
            on_front=bool(doc.get("on_front", False)),
        )


@dataclass
class ExploreResult:
    """Outcome of one design-space exploration."""

    circuit_name: str
    strategy: str
    beam_width: int
    space: ExploreSpace
    stimulus_description: str
    n_vectors: int
    frequency: float
    candidates: List[Candidate]
    n_enumerated: int
    n_simulated: int
    rank_agreement: Optional[float]
    #: Fraction of non-root candidate expansions served by delta replay
    #: + cone-limited recompute or fingerprint collapse instead of a
    #: from-scratch estimate build; ``None`` when nothing was expanded
    #: incrementally (e.g. :data:`INCREMENTAL_EXPANSION` off).
    delta_reuse_frac: Optional[float] = None

    def front(self) -> List[Candidate]:
        """The discovered Pareto front, cheapest-power first."""
        points = [c for c in self.candidates if c.on_front]
        return sorted(points, key=lambda c: c.exact.power_mw)

    def candidate(self, label: str) -> Candidate:
        """Look up a candidate by its (or a merged) chain label."""
        for c in self.candidates:
            if c.label == label or label in c.merged:
                return c
        raise KeyError(f"no candidate labelled {label!r}")

    def summary(self) -> Dict[str, Any]:
        return {
            "candidates": len(self.candidates),
            "enumerated": self.n_enumerated,
            "simulated": self.n_simulated,
            "front": len([c for c in self.candidates if c.on_front]),
            "rank_agreement": self.rank_agreement,
        }

    def to_payload(self) -> Dict[str, Any]:
        return {
            "schema": 1,
            "kind": "explore",
            "circuit_name": self.circuit_name,
            "strategy": self.strategy,
            "beam_width": self.beam_width,
            "space": self.space.to_dict(),
            "stimulus_description": self.stimulus_description,
            "n_vectors": self.n_vectors,
            "frequency": self.frequency,
            "candidates": [c.to_dict() for c in self.candidates],
            "front": [c.label for c in self.candidates if c.on_front],
            "n_candidates": len(self.candidates),
            "n_enumerated": self.n_enumerated,
            "n_simulated": self.n_simulated,
            "rank_agreement": self.rank_agreement,
            "delta_reuse_frac": self.delta_reuse_frac,
        }

    @staticmethod
    def from_payload(payload: Mapping[str, Any]) -> "ExploreResult":
        return ExploreResult(
            circuit_name=payload["circuit_name"],
            strategy=payload["strategy"],
            beam_width=int(payload["beam_width"]),
            space=ExploreSpace.from_dict(payload["space"]),
            stimulus_description=payload["stimulus_description"],
            n_vectors=int(payload["n_vectors"]),
            frequency=float(payload["frequency"]),
            candidates=[
                Candidate.from_dict(c) for c in payload["candidates"]
            ],
            n_enumerated=int(payload["n_enumerated"]),
            n_simulated=int(payload["n_simulated"]),
            rank_agreement=payload.get("rank_agreement"),
            delta_reuse_frac=payload.get("delta_reuse_frac"),
        )


def explore_key(
    circuit: Circuit,
    space: ExploreSpace,
    stimulus: StimulusSpec,
    n_vectors: int,
    strategy: str,
    beam_width: int,
    context: CostContext,
    power_margin: float,
) -> RunKey:
    """Content-addressed identity of a whole exploration run.

    Hashes everything that determines the outcome: the base circuit,
    the delay regime, the space (transforms, depth, constraints), the
    workload, the search strategy and its pruning parameters, and the
    cost regime (frequency + default-model parameters).  Only valid
    for the default cost models — :func:`explore` checks
    :attr:`CostContext.cacheable` and skips the whole-result cache for
    custom model instances (the per-candidate simulation cache is
    still exact there).
    """
    delay_model = resolve_delay(space.delay)
    return RunKey(
        circuit_fp=circuit.fingerprint(),
        delay_fp=delay_fingerprint(circuit, delay_model),
        stimulus_fp=content_digest((
            "explore-v1",
            space.fingerprint(),
            stimulus.fingerprint(),
            strategy,
            beam_width,
            power_margin,
            context.fingerprint_fields(),
        )),
        n_vectors=n_vectors,
        result_class=EXPLORE,
    )


def _make_candidate(
    chain: Chain,
    circuit: Circuit,
    latency: int,
    space: ExploreSpace,
    delay_model: DelayModel,
    stimulus: StimulusSpec,
    context: CostContext,
) -> Candidate:
    label = describe_chain(chain)
    ct0 = time.perf_counter()
    with obs.span("explore.candidate", label=label):
        est = estimated_cost(
            circuit, delay_model, stimulus, context, latency
        )
    obs.hist("explore.candidate_s", time.perf_counter() - ct0)
    obs.inc("explore.candidates")
    feasible = True
    if space.max_area_mm2 is not None and est.area_mm2 > space.max_area_mm2:
        feasible = False
    if space.max_latency is not None and latency > space.max_latency:
        feasible = False
    return Candidate(
        chain=chain,
        label=label,
        fingerprint=circuit.fingerprint(),
        latency=latency,
        circuit=circuit,
        estimate=est,
        feasible=feasible,
    )


@dataclass
class _IncrementalState:
    """Per-candidate reusable state carried down the beam tree.

    Everything a child expansion needs to recompute only its edit
    cone: the parent's converged estimate arrays (plus delay-less
    compiled form, inside the snapshot), its transition-instant sets
    and its arrival levels.  Dropped (:data:`Candidate.state`) as soon
    as the candidate can no longer be expanded — the arrays are O(nets)
    each and the beam tree would otherwise pin every generation.
    """

    snapshot: WorkloadSnapshot
    instant_sets: Dict[int, FrozenSet[int]]
    arrivals: Dict[int, int]


def _feasibility(space: ExploreSpace, est: CostVector, latency: int) -> bool:
    if space.max_area_mm2 is not None and est.area_mm2 > space.max_area_mm2:
        return False
    if space.max_latency is not None and latency > space.max_latency:
        return False
    return True


def _make_candidate_full(
    chain: Chain,
    circuit: Circuit,
    latency: int,
    space: ExploreSpace,
    delay_model: DelayModel,
    stimulus: StimulusSpec,
    context: CostContext,
) -> Candidate:
    """From-scratch candidate build that also captures reusable state.

    Runs the same estimators :func:`estimated_cost` runs — once — and
    keeps the converged arrays, instant sets and arrival levels as
    :class:`_IncrementalState` so descendants can expand by cone
    splicing.  The produced :class:`CostVector` is identical to
    :func:`_make_candidate`'s (shared assembly via
    :func:`estimated_cost_from`).
    """
    label = describe_chain(chain)
    ct0 = time.perf_counter()
    with obs.span("explore.candidate", label=label):
        snapshot = workload_snapshot(circuit, stimulus)
        instant_sets = transition_instant_sets(circuit, delay_model)
        arrivals = circuit.levelize(
            lambda cell, pos: delay_model.delay(cell, pos)
        )
        counts = {net: len(times) for net, times in instant_sets.items()}
        est = estimated_cost_from(
            circuit, context, latency, snapshot.result, counts,
            period_from_arrivals(circuit, arrivals),
        )
    obs.hist("explore.candidate_s", time.perf_counter() - ct0)
    obs.inc("explore.candidates")
    return Candidate(
        chain=chain,
        label=label,
        fingerprint=circuit.fingerprint(),
        latency=latency,
        circuit=circuit,
        estimate=est,
        feasible=_feasibility(space, est, latency),
        state=_IncrementalState(snapshot, instant_sets, arrivals),
    )


def _make_candidate_delta(
    parent: Candidate,
    chain: Chain,
    replayed: Circuit,
    delta: CircuitDelta,
    latency: int,
    space: ExploreSpace,
    delay_model: DelayModel,
    stimulus: StimulusSpec,
    context: CostContext,
) -> Optional[Candidate]:
    """Cone-limited candidate build from the parent's carried state.

    *replayed* must be the delta's index-aligned replay of
    ``parent.circuit`` (same fingerprint as the transform's own
    output, parent-prefix net/cell numbering).  Splices the compiled
    form, re-estimates only the value cone, re-times only the timing
    cone, and assembles the identical :class:`CostVector` through the
    shared costing path.  Returns ``None`` when the cone shape is not
    exactly replayable (mixed flipflop cone) — caller falls back to
    the full build.
    """
    state = parent.state
    label = describe_chain(chain)
    ct0 = time.perf_counter()
    with obs.span("explore.candidate_delta", label=label):
        cc = compile_delta(parent.circuit, delta, replayed)
        value_cone = full_fanout_cone(
            replayed, touched_cell_indices(replayed, delta)
        )
        snapshot = incremental_workload(
            replayed, cc, state.snapshot, value_cone,
            cone_net_indices(replayed, value_cone, delta), stimulus,
        )
        if snapshot is None:
            return None
        timing_cone = comb_fanout_cone(
            replayed, timing_cone_seeds(parent.circuit, replayed, delta)
        )
        instant_sets, arrivals = spliced_instant_state(
            state.instant_sets, state.arrivals, replayed, delay_model,
            timing_cone,
        )
        counts = {net: len(times) for net, times in instant_sets.items()}
        est = estimated_cost_from(
            replayed, context, latency, snapshot.result, counts,
            period_from_arrivals(replayed, arrivals),
        )
    obs.hist("explore.candidate_s", time.perf_counter() - ct0)
    obs.inc("explore.candidates")
    return Candidate(
        chain=chain,
        label=label,
        fingerprint=replayed.fingerprint(),
        latency=latency,
        circuit=replayed,
        estimate=est,
        feasible=_feasibility(space, est, latency),
        state=_IncrementalState(snapshot, instant_sets, arrivals),
        delta=delta,
        parent_fp=parent.fingerprint,
    )


def _expand_candidates(
    circuit: Circuit,
    space: ExploreSpace,
    delay_model: DelayModel,
    stimulus: StimulusSpec,
    context: CostContext,
    beam_width: Optional[int],
) -> tuple[List[Candidate], int]:
    """Grow the candidate set chain by chain, deduplicating by fingerprint.

    With ``beam_width=None`` every unique candidate is expanded
    (exhaustive enumeration); otherwise only the *beam_width*
    estimate-cheapest new candidates of each depth are expanded
    further, which bounds the estimator work on large spaces.
    Returns ``(candidates, n_enumerated)`` where *n_enumerated* counts
    chain applications before deduplication.

    With :data:`INCREMENTAL_EXPANSION` on (the default), each
    expansion first tries the delta path — replay the transform's
    :class:`~repro.netlist.delta.CircuitDelta` onto the parent
    (index-aligned, fingerprint-checked), splice the compiled form and
    recompute only the edit cone's estimates and timing — and falls
    back to the from-scratch build whenever the delta is not
    pure-additive, the replay fingerprint mismatches, or the cone is
    not exactly replayable.  Both paths produce bit-identical
    candidates (test-enforced); counters land in
    :data:`_EXPAND_STATS`.
    """
    if not INCREMENTAL_EXPANSION:
        return _expand_candidates_full(
            circuit, space, delay_model, stimulus, context, beam_width
        )
    for key in ("delta", "full", "collapsed"):
        _EXPAND_STATS.setdefault(key, 0)
    root = _make_candidate_full(
        (), circuit, 0, space, delay_model, stimulus, context
    )
    by_fp: Dict[str, Candidate] = {root.fingerprint: root}
    candidates = [root]
    frontier = [root]
    n_enumerated = 1
    for _ in range(space.max_depth):
        fresh: List[Candidate] = []
        for parent in frontier:
            for spec in space.transforms:
                n_enumerated += 1
                child, info, delta, replayed = _applied_delta(
                    parent.circuit, spec, delay_model
                )
                latency = parent.latency + info.get("latency", 0)
                label = describe_chain(parent.chain + (spec,))
                fp = child.fingerprint()
                known = by_fp.get(fp)
                if known is not None:
                    # Fingerprint collapse: no estimate work at all.
                    if label != known.label and label not in known.merged:
                        known.merged.append(label)
                    _EXPAND_STATS["collapsed"] += 1
                    obs.inc("explore.pruned")
                    obs.instant(
                        "explore.prune", label=label,
                        decision="deduplicated",
                    )
                    continue
                cand: Optional[Candidate] = None
                if replayed is not None and parent.state is not None:
                    cand = _make_candidate_delta(
                        parent, parent.chain + (spec,), replayed,
                        delta, latency, space, delay_model,
                        stimulus, context,
                    )
                if cand is not None:
                    _EXPAND_STATS["delta"] += 1
                else:
                    _EXPAND_STATS["full"] += 1
                    cand = _make_candidate_full(
                        parent.chain + (spec,), child, latency,
                        space, delay_model, stimulus, context,
                    )
                    if delta.is_pure_addition:
                        cand.delta = delta
                        cand.parent_fp = parent.fingerprint
                by_fp[fp] = cand
                candidates.append(cand)
                fresh.append(cand)
        if beam_width is not None:
            fresh.sort(key=lambda c: c.estimate.power_mw)
            next_frontier = fresh[:beam_width]
        else:
            next_frontier = fresh
        # Carried state is only needed while a candidate can still be
        # expanded; drop it the moment a candidate leaves the frontier.
        keep = {id(c) for c in next_frontier}
        for cand in frontier:
            if id(cand) not in keep:
                cand.state = None
        for cand in fresh:
            if id(cand) not in keep:
                cand.state = None
        frontier = next_frontier
    for cand in frontier:
        cand.state = None
    return candidates, n_enumerated


def _expand_candidates_full(
    circuit: Circuit,
    space: ExploreSpace,
    delay_model: DelayModel,
    stimulus: StimulusSpec,
    context: CostContext,
    beam_width: Optional[int],
) -> tuple[List[Candidate], int]:
    """Pre-incremental expansion: every candidate built from scratch.

    The reference path for the bit-identity tests and the benchmark
    baseline; selected by monkeypatching
    :data:`INCREMENTAL_EXPANSION` to ``False``.
    """
    root = _make_candidate(
        (), circuit, 0, space, delay_model, stimulus, context
    )
    by_fp: Dict[str, Candidate] = {root.fingerprint: root}
    candidates = [root]
    frontier = [root]
    n_enumerated = 1
    for _ in range(space.max_depth):
        fresh: List[Candidate] = []
        for parent in frontier:
            for spec in space.transforms:
                n_enumerated += 1
                new_circuit, info = spec.apply(parent.circuit, delay_model)
                latency = parent.latency + info.get("latency", 0)
                label = describe_chain(parent.chain + (spec,))
                fp = new_circuit.fingerprint()
                known = by_fp.get(fp)
                if known is not None:
                    if label != known.label and label not in known.merged:
                        known.merged.append(label)
                    obs.inc("explore.pruned")
                    obs.instant(
                        "explore.prune", label=label,
                        decision="deduplicated",
                    )
                    continue
                cand = _make_candidate(
                    parent.chain + (spec,), new_circuit, latency,
                    space, delay_model, stimulus, context,
                )
                by_fp[fp] = cand
                candidates.append(cand)
                fresh.append(cand)
        if beam_width is not None:
            fresh.sort(key=lambda c: c.estimate.power_mw)
            frontier = fresh[:beam_width]
        else:
            frontier = fresh
    return candidates, n_enumerated


def explore(
    circuit: Circuit,
    space: ExploreSpace | None = None,
    strategy: str = "beam",
    beam_width: int = 4,
    n_vectors: int = 120,
    stimulus: StimulusSpec | None = None,
    context: CostContext | None = None,
    power_margin: float = 0.05,
    store: ResultStore | None = None,
    processes: int | None = None,
) -> ExploreResult:
    """Search the transform space of *circuit* for minimum glitch power.

    Ranks candidates with the fused analytic estimators and runs
    glitch-exact simulation on every candidate (``exhaustive``) or
    only on the estimate-surviving frontier (``beam`` / ``greedy``),
    then extracts the Pareto front over (power, area, latency) from
    the simulated costs.  With *store*, candidate simulations resume
    warm through the content-addressed cache and the whole exploration
    result is itself cached under the :data:`~repro.service.store.EXPLORE`
    result class — an identical re-run returns without estimating or
    simulating anything.
    """
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from {STRATEGIES}"
        )
    if beam_width < 1:
        raise ValueError("beam_width must be >= 1")
    space = space or default_space()
    stimulus = stimulus or UniformStimulus()
    context = context or CostContext()
    delay_model = resolve_delay(space.delay)
    if delay_model is None:
        raise ValueError(
            "explore needs a glitch-capable delay regime; "
            "'zero' has no useless transitions to reduce"
        )
    width = 1 if strategy == "greedy" else beam_width

    # The whole-result cache is only sound for the default cost models
    # (a custom tech/clock/area instance can change behaviour without
    # changing any hashed field); candidate *simulations* below still
    # cache either way — they do not depend on the cost models.
    key = None
    if store is not None and context.cacheable:
        key = explore_key(
            circuit, space, stimulus, n_vectors, strategy, width,
            context, power_margin,
        )
        payload = store.get(key)
        if payload is not None:
            return ExploreResult.from_payload(payload)

    _EXPAND_STATS.clear()
    _EXPAND_STATS.update(delta=0, full=0, collapsed=0)
    with obs.span(
        "explore.expand", circuit=circuit.name, strategy=strategy
    ):
        candidates, n_enumerated = _expand_candidates(
            circuit, space, delay_model, stimulus, context,
            None if strategy == "exhaustive" else width,
        )
    # Reuse accounting over non-root expansions: delta-expanded and
    # fingerprint-collapsed chains skipped the from-scratch rebuild.
    # Read from the module stats, not the metrics registry — tracing
    # may be disabled, and a monkeypatched expansion leaves all zeros.
    reused = _EXPAND_STATS["delta"] + _EXPAND_STATS["collapsed"]
    expansions = reused + _EXPAND_STATS["full"]
    delta_reuse_frac = reused / expansions if expansions else None
    if delta_reuse_frac is not None:
        obs.gauge("explore.delta_reuse_frac", round(delta_reuse_frac, 4))

    feasible = [c for c in candidates if c.feasible]
    if strategy == "exhaustive":
        to_simulate = list(feasible)
    else:
        est_costs = [c.estimate for c in feasible]
        to_simulate = []
        for c in feasible:
            pruned = dominated_with_margin(
                c.estimate, est_costs, power_margin
            )
            obs.instant(
                "explore.prune", label=c.label,
                decision="pruned" if pruned else "kept",
            )
            if pruned:
                obs.inc("explore.pruned")
            else:
                to_simulate.append(c)

    tasks = [
        CircuitTask.from_circuit(
            c.circuit, space.delay, stimulus, n_vectors, label=c.label
        )
        for c in to_simulate
    ]
    with obs.span(
        "explore.simulate", circuit=circuit.name, points=len(tasks)
    ):
        payloads = run_circuit_tasks(tasks, store=store, processes=processes)
        by_fp_sim: Dict[str, Any] = {}
        by_fp_cand = {c.fingerprint: c for c in candidates}
        for cand, payload in zip(to_simulate, payloads):
            # Per-net result reuse: outside the delta's full fanout
            # cone a child's per-net counts must equal its parent's;
            # verify and share those rows (the parents simulate first
            # — `candidates` is in expansion order).
            parent_payload = (
                by_fp_sim.get(cand.parent_fp)
                if cand.parent_fp is not None else None
            )
            if cand.delta is not None and parent_payload is not None:
                parent_cand = by_fp_cand.get(cand.parent_fp)
                if parent_cand is not None and parent_cand.circuit is not None:
                    reusable = reusable_result_nets(
                        parent_cand.circuit, cand.delta, cand.circuit
                    )
                    share_per_node_rows(
                        parent_payload, payload, reusable
                    )
            by_fp_sim[cand.fingerprint] = payload
            activity = decode_result(payload, cand.circuit)
            cand.exact = simulated_cost(
                cand.circuit, activity, delay_model, context, cand.latency
            )
            cand.activity = activity.summary()

    for cand in pareto_front(to_simulate, lambda c: c.exact):
        cand.on_front = True

    simulated = [c for c in candidates if c.exact is not None]
    agreement = None
    if len(simulated) >= 2:
        agreement = rank_agreement(
            [c.estimate.power_mw for c in simulated],
            [c.exact.power_mw for c in simulated],
        )

    result = ExploreResult(
        circuit_name=circuit.name,
        strategy=strategy,
        beam_width=width,
        space=space,
        stimulus_description=stimulus.describe(),
        n_vectors=n_vectors,
        frequency=context.frequency,
        candidates=candidates,
        n_enumerated=n_enumerated,
        n_simulated=len(to_simulate),
        rank_agreement=agreement,
        delta_reuse_frac=delta_reuse_frac,
    )
    if store is not None:
        if key is not None:
            store.put(key, result.to_payload())
        store.flush()
    return result
