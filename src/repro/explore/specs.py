"""Declarative transform catalog: the axes of the design space.

A :class:`TransformSpec` is a frozen, hashable description of one
parameterized netlist transform — the same declarative idiom the
service layer uses for stimuli (:class:`~repro.sim.vectors.StimulusSpec`)
— so a search candidate is just a *chain* (tuple) of specs and the
whole space is content-addressable.  The registry (:data:`TRANSFORMS`
/ :meth:`TransformSpec.apply`) wraps the existing optimisation passes:

* ``balance`` — buffer-insertion path balancing
  (:func:`repro.opt.balance.balance_paths`): provably glitch-free at
  the cost of buffer area and switching;
* ``retime`` — pipelining via seeded registers + Leiserson–Saxe
  minimum-period retiming
  (:func:`repro.retime.pipeline.pipeline_circuit`), parameterized by
  the number of extra stages (``stages=0`` is plain min-period
  retiming);
* ``cleanup`` — constant propagation + dead-cell elimination
  (:func:`repro.opt.transform.propagate_constants`), which keeps
  optimised variants honest and collapses constant-fed structures;
* ``strip_buffers`` — buffer removal
  (:func:`repro.opt.transform.strip_buffers`), the inverse of
  ``balance`` (available for spaces that explore un-balancing).

An :class:`ExploreSpace` bundles the available transforms, the chain
depth, the delay-model choice, and the area/latency constraints the
search must respect.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Tuple

from repro.netlist.circuit import Circuit
from repro.netlist.compiled import content_digest
from repro.netlist.delta import CircuitDelta, diff_circuits
from repro.opt.balance import balance_paths, balance_paths_delta
from repro.opt.transform import (
    propagate_constants,
    propagate_constants_delta,
    strip_buffers,
    strip_buffers_delta,
)
from repro.retime.graph import RetimingGraph
from repro.retime.pipeline import pipeline_circuit
from repro.sim.delays import DelayModel

#: A candidate is a chain of transforms applied left to right; the
#: empty chain is the unmodified circuit.
Chain = Tuple["TransformSpec", ...]

#: Retiming-graph memo: building ``RetimingGraph.from_circuit`` is the
#: dominant cost of expanding several ``retime(stages=k)`` candidates
#: from one parent, so graphs are shared per (circuit, delay regime).
#: Keyed by ``Circuit.version`` inside the per-circuit slot so a
#: mutated netlist never reuses a stale graph.
_GRAPH_MEMO: "weakref.WeakKeyDictionary[Circuit, Dict[Tuple[int, str], RetimingGraph]]" = (
    weakref.WeakKeyDictionary()
)


def _shared_graph(circuit: Circuit, delay_model: DelayModel) -> RetimingGraph:
    per_delay = _GRAPH_MEMO.setdefault(circuit, {})
    key = (circuit.version, delay_model.describe())
    graph = per_delay.get(key)
    if graph is None:
        for stale in [k for k in per_delay if k[0] != circuit.version]:
            del per_delay[stale]
        graph = per_delay[key] = RetimingGraph.from_circuit(
            circuit, delay_model
        )
    return graph


def _apply_balance(
    circuit: Circuit, delay_model: DelayModel
) -> Tuple[Circuit, Dict[str, Any]]:
    balanced, stats = balance_paths(circuit, delay_model)
    return balanced, {"buffers_inserted": stats.buffers_inserted}


def _apply_retime(
    circuit: Circuit, delay_model: DelayModel, stages: int = 1
) -> Tuple[Circuit, Dict[str, Any]]:
    if not isinstance(stages, int) or stages < 0:
        raise ValueError(f"retime stages must be an int >= 0, got {stages!r}")
    result = pipeline_circuit(
        circuit, stages, delay_model=delay_model,
        graph=_shared_graph(circuit, delay_model),
    )
    return result.circuit, {
        "period": result.period,
        "flipflops": result.flipflops,
        "latency": stages,
    }


def _apply_cleanup(
    circuit: Circuit, delay_model: DelayModel
) -> Tuple[Circuit, Dict[str, Any]]:
    cleaned = propagate_constants(circuit)
    return cleaned, {"cells_removed": len(circuit.cells) - len(cleaned.cells)}


def _apply_strip_buffers(
    circuit: Circuit, delay_model: DelayModel
) -> Tuple[Circuit, Dict[str, Any]]:
    stripped = strip_buffers(circuit)
    return stripped, {"cells_removed": len(circuit.cells) - len(stripped.cells)}


#: Transform kind -> apply function ``(circuit, delay_model, **params)
#: -> (new_circuit, info)``.  Register new transforms here to make
#: them reachable from specs, spaces and the CLI.
TRANSFORMS: Dict[str, Callable[..., Tuple[Circuit, Dict[str, Any]]]] = {
    "balance": _apply_balance,
    "retime": _apply_retime,
    "cleanup": _apply_cleanup,
    "strip_buffers": _apply_strip_buffers,
}


def _apply_balance_delta(
    circuit: Circuit, delay_model: DelayModel
) -> Tuple[Circuit, Dict[str, Any], CircuitDelta]:
    balanced, stats, delta = balance_paths_delta(circuit, delay_model)
    return balanced, {"buffers_inserted": stats.buffers_inserted}, delta


def _apply_retime_delta(
    circuit: Circuit, delay_model: DelayModel, stages: int = 1
) -> Tuple[Circuit, Dict[str, Any], CircuitDelta]:
    retimed, info = _apply_retime(circuit, delay_model, stages)
    return retimed, info, diff_circuits(circuit, retimed)


def _apply_cleanup_delta(
    circuit: Circuit, delay_model: DelayModel
) -> Tuple[Circuit, Dict[str, Any], CircuitDelta]:
    cleaned, delta = propagate_constants_delta(circuit)
    return (
        cleaned,
        {"cells_removed": len(circuit.cells) - len(cleaned.cells)},
        delta,
    )


def _apply_strip_buffers_delta(
    circuit: Circuit, delay_model: DelayModel
) -> Tuple[Circuit, Dict[str, Any], CircuitDelta]:
    stripped, delta = strip_buffers_delta(circuit)
    return (
        stripped,
        {"cells_removed": len(circuit.cells) - len(stripped.cells)},
        delta,
    )


#: Delta-producing companions to :data:`TRANSFORMS`: ``(circuit,
#: delay_model, **params) -> (new_circuit, info, delta)``.  Kinds
#: absent here fall back to apply-then-diff in
#: :meth:`TransformSpec.apply_delta`.
TRANSFORMS_DELTA: Dict[
    str, Callable[..., Tuple[Circuit, Dict[str, Any], CircuitDelta]]
] = {
    "balance": _apply_balance_delta,
    "retime": _apply_retime_delta,
    "cleanup": _apply_cleanup_delta,
    "strip_buffers": _apply_strip_buffers_delta,
}


@dataclass(frozen=True)
class TransformSpec:
    """One parameterized transform: a registry kind plus frozen params."""

    kind: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in TRANSFORMS:
            raise ValueError(
                f"unknown transform kind {self.kind!r}; "
                f"choose from {sorted(TRANSFORMS)}"
            )
        object.__setattr__(
            self, "params", tuple(sorted(tuple(p) for p in self.params))
        )

    @staticmethod
    def make(kind: str, **params: Any) -> "TransformSpec":
        return TransformSpec(kind, tuple(sorted(params.items())))

    def apply(
        self, circuit: Circuit, delay_model: DelayModel
    ) -> Tuple[Circuit, Dict[str, Any]]:
        """Apply this transform, returning ``(new_circuit, info)``.

        The input circuit is never mutated (all wrapped passes rebuild).
        *info* carries transform-specific metadata — notably
        ``latency`` for transforms that add pipeline stages.
        """
        return TRANSFORMS[self.kind](circuit, delay_model, **dict(self.params))

    def apply_delta(
        self, circuit: Circuit, delay_model: DelayModel
    ) -> Tuple[Circuit, Dict[str, Any], CircuitDelta]:
        """Apply this transform, also returning the structural delta.

        Same contract as :meth:`apply` plus the
        :class:`~repro.netlist.delta.CircuitDelta` from *circuit* to
        the result — the handle the incremental compile/estimate paths
        key on.  Kinds without a registered delta variant fall back to
        apply-then-diff, so external registrations keep working.
        """
        fn = TRANSFORMS_DELTA.get(self.kind)
        if fn is not None:
            return fn(circuit, delay_model, **dict(self.params))
        child, info = self.apply(circuit, delay_model)
        return child, info, diff_circuits(circuit, child)

    def describe(self) -> str:
        if not self.params:
            return self.kind
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.kind}({inner})"

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}

    @staticmethod
    def from_dict(doc: Mapping[str, Any]) -> "TransformSpec":
        return TransformSpec.make(doc["kind"], **doc.get("params", {}))


def describe_chain(chain: Chain) -> str:
    """Human label of a candidate chain (``"original"`` for empty)."""
    if not chain:
        return "original"
    return "+".join(t.describe() for t in chain)


def apply_chain(
    circuit: Circuit, chain: Chain, delay_model: DelayModel
) -> Tuple[Circuit, Dict[str, Any]]:
    """Apply *chain* left to right; info dicts merge (latency sums)."""
    merged: Dict[str, Any] = {"latency": 0}
    current = circuit
    for spec in chain:
        current, info = spec.apply(current, delay_model)
        latency = info.pop("latency", 0)
        merged.update(info)
        merged["latency"] += latency
    return current, merged


@dataclass(frozen=True)
class ExploreSpace:
    """The searchable space: transforms × chain depth × constraints.

    *transforms* are the atomic moves; candidates are all chains up to
    *max_depth* (the empty chain — the original circuit — is always a
    candidate).  *delay* names the delay regime
    (:data:`repro.service.jobs.DELAY_MODELS`) every candidate is
    padded for and evaluated under.  *max_area_mm2* / *max_latency*
    are hard constraints: violating candidates are still recorded but
    excluded from the Pareto front.
    """

    transforms: Tuple[TransformSpec, ...]
    max_depth: int = 2
    delay: str = "unit"
    max_area_mm2: float | None = None
    max_latency: int | None = None

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if not self.transforms:
            raise ValueError("the space needs at least one transform")

    def fingerprint(self) -> str:
        return content_digest(("explore-space-v1", self.to_dict()))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "transforms": [t.to_dict() for t in self.transforms],
            "max_depth": self.max_depth,
            "delay": self.delay,
            "max_area_mm2": self.max_area_mm2,
            "max_latency": self.max_latency,
        }

    @staticmethod
    def from_dict(doc: Mapping[str, Any]) -> "ExploreSpace":
        return ExploreSpace(
            transforms=tuple(
                TransformSpec.from_dict(t) for t in doc["transforms"]
            ),
            max_depth=int(doc.get("max_depth", 2)),
            delay=doc.get("delay", "unit"),
            max_area_mm2=doc.get("max_area_mm2"),
            max_latency=doc.get("max_latency"),
        )


def default_space(
    delay: str = "unit",
    max_stages: int = 2,
    max_depth: int = 2,
    max_area_mm2: float | None = None,
    max_latency: int | None = None,
) -> ExploreSpace:
    """The standard glitch-reduction space: the paper's two levers.

    Balancing, pipelining depths ``1..max_stages``, and constant /
    dead-cell cleanup, combinable up to *max_depth* transforms deep.
    """
    transforms = [TransformSpec.make("balance")]
    transforms += [
        TransformSpec.make("retime", stages=k)
        for k in range(1, max_stages + 1)
    ]
    transforms.append(TransformSpec.make("cleanup"))
    return ExploreSpace(
        transforms=tuple(transforms),
        max_depth=max_depth,
        delay=delay,
        max_area_mm2=max_area_mm2,
        max_latency=max_latency,
    )
