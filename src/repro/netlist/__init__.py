"""Gate/cell-level netlist data model.

A :class:`~repro.netlist.circuit.Circuit` is a flat network of
multi-output cells connected by single-driver nets, with designated
primary inputs, primary outputs and D-flipflops.  This is the substrate
on which the event-driven simulator (:mod:`repro.sim`), the retiming
engine (:mod:`repro.retime`) and the transition-activity analysis
(:mod:`repro.core`) operate.
"""

from repro.netlist.cells import (
    CellKind,
    Cell,
    COMBINATIONAL_KINDS,
    SEQUENTIAL_KINDS,
    evaluate_kind,
)
from repro.netlist.circuit import Circuit, Net
from repro.netlist.compiled import (
    CompiledCircuit,
    circuit_fingerprint,
    compile_circuit,
    delay_fingerprint,
)
from repro.netlist.validate import ValidationIssue, ValidationError, validate
from repro.netlist.io import circuit_to_json, circuit_from_json, circuit_to_dot

__all__ = [
    "CellKind",
    "Cell",
    "Circuit",
    "CompiledCircuit",
    "circuit_fingerprint",
    "compile_circuit",
    "delay_fingerprint",
    "Net",
    "COMBINATIONAL_KINDS",
    "SEQUENTIAL_KINDS",
    "evaluate_kind",
    "ValidationIssue",
    "ValidationError",
    "validate",
    "circuit_to_json",
    "circuit_from_json",
    "circuit_to_dot",
]
