"""Cell kinds and their Boolean evaluation semantics.

Cells are the atomic units of a netlist.  Most kinds are simple gates
with one output; two compound arithmetic kinds — half adder (``HA``)
and full adder (``FA``) — have two outputs (*sum*, *carry*) so that a
full adder can be simulated as a single stage with independent sum and
carry delays, exactly as the paper's "unit delay model for every full
adder stage" (Section 3) and its ``dsum = 2*dcarry`` refinement
(Table 2) require.

The ``DFF`` kind is the only sequential cell: it samples its ``d``
input at the active clock edge and presents it on ``q`` at the start of
the next cycle.  Clocking is implicit (single global clock), which
matches the paper's synchronous single-clock networks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Sequence, Tuple


class CellKind(enum.Enum):
    """Enumeration of supported cell kinds."""

    CONST0 = "CONST0"
    CONST1 = "CONST1"
    BUF = "BUF"
    NOT = "NOT"
    AND = "AND"
    OR = "OR"
    NAND = "NAND"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    MUX2 = "MUX2"  # inputs: (sel, a, b) -> a if sel == 0 else b
    HA = "HA"  # inputs: (a, b) -> (sum, carry)
    FA = "FA"  # inputs: (a, b, cin) -> (sum, carry)
    DFF = "DFF"  # inputs: (d,) -> (q,); sequential


#: Kinds evaluated combinationally by the simulator.
COMBINATIONAL_KINDS = frozenset(k for k in CellKind if k is not CellKind.DFF)

#: Kinds with clocked (edge-triggered) semantics.
SEQUENTIAL_KINDS = frozenset({CellKind.DFF})

#: Number of outputs per kind.
OUTPUT_COUNT = {
    CellKind.CONST0: 1,
    CellKind.CONST1: 1,
    CellKind.BUF: 1,
    CellKind.NOT: 1,
    CellKind.AND: 1,
    CellKind.OR: 1,
    CellKind.NAND: 1,
    CellKind.NOR: 1,
    CellKind.XOR: 1,
    CellKind.XNOR: 1,
    CellKind.MUX2: 1,
    CellKind.HA: 2,
    CellKind.FA: 2,
    CellKind.DFF: 1,
}

#: Fixed input arity per kind (``None`` means n-ary, >= 1).
INPUT_ARITY = {
    CellKind.CONST0: 0,
    CellKind.CONST1: 0,
    CellKind.BUF: 1,
    CellKind.NOT: 1,
    CellKind.AND: None,
    CellKind.OR: None,
    CellKind.NAND: None,
    CellKind.NOR: None,
    CellKind.XOR: None,
    CellKind.XNOR: None,
    CellKind.MUX2: 3,
    CellKind.HA: 2,
    CellKind.FA: 3,
    CellKind.DFF: 1,
}


def _eval_const0(values: Sequence[int]) -> Tuple[int, ...]:
    return (0,)


def _eval_const1(values: Sequence[int]) -> Tuple[int, ...]:
    return (1,)


def _eval_buf(values: Sequence[int]) -> Tuple[int, ...]:
    return (values[0],)


def _eval_not(values: Sequence[int]) -> Tuple[int, ...]:
    return (values[0] ^ 1,)


def _eval_and(values: Sequence[int]) -> Tuple[int, ...]:
    out = 1
    for v in values:
        out &= v
    return (out,)


def _eval_or(values: Sequence[int]) -> Tuple[int, ...]:
    out = 0
    for v in values:
        out |= v
    return (out,)


def _eval_nand(values: Sequence[int]) -> Tuple[int, ...]:
    return (_eval_and(values)[0] ^ 1,)


def _eval_nor(values: Sequence[int]) -> Tuple[int, ...]:
    return (_eval_or(values)[0] ^ 1,)


def _eval_xor(values: Sequence[int]) -> Tuple[int, ...]:
    out = 0
    for v in values:
        out ^= v
    return (out,)


def _eval_xnor(values: Sequence[int]) -> Tuple[int, ...]:
    return (_eval_xor(values)[0] ^ 1,)


def _eval_mux2(values: Sequence[int]) -> Tuple[int, ...]:
    sel, a, b = values
    return (b if sel else a,)


def _eval_ha(values: Sequence[int]) -> Tuple[int, ...]:
    a, b = values
    return (a ^ b, a & b)


def _eval_fa(values: Sequence[int]) -> Tuple[int, ...]:
    a, b, cin = values
    p = a ^ b
    return (p ^ cin, (a & b) | (cin & p))


def _eval_dff(values: Sequence[int]) -> Tuple[int, ...]:
    # Combinational view of a DFF is transparent; the simulator never
    # calls this during intra-cycle propagation.  It is used only by
    # zero-delay functional evaluation helpers that unroll state.
    return (values[0],)


_EVALUATORS: dict[CellKind, Callable[[Sequence[int]], Tuple[int, ...]]] = {
    CellKind.CONST0: _eval_const0,
    CellKind.CONST1: _eval_const1,
    CellKind.BUF: _eval_buf,
    CellKind.NOT: _eval_not,
    CellKind.AND: _eval_and,
    CellKind.OR: _eval_or,
    CellKind.NAND: _eval_nand,
    CellKind.NOR: _eval_nor,
    CellKind.XOR: _eval_xor,
    CellKind.XNOR: _eval_xnor,
    CellKind.MUX2: _eval_mux2,
    CellKind.HA: _eval_ha,
    CellKind.FA: _eval_fa,
    CellKind.DFF: _eval_dff,
}


def evaluate_kind(kind: CellKind, values: Sequence[int]) -> Tuple[int, ...]:
    """Evaluate the Boolean function of *kind* on input *values*.

    Values are ints in {0, 1}; the result is a tuple with one entry per
    output of the kind (see :data:`OUTPUT_COUNT`).
    """
    return _EVALUATORS[kind](values)


@dataclass
class Cell:
    """A netlist cell instance.

    Attributes
    ----------
    name:
        Unique instance name within its circuit.
    kind:
        The :class:`CellKind` selecting the evaluation function.
    inputs:
        Net indices feeding the cell, in kind-defined order.
    outputs:
        Net indices driven by the cell, in kind-defined order
        (e.g. ``(sum, carry)`` for ``FA``).
    delay_hint:
        Optional per-output delay override, honoured by delay models
        that opt in (e.g. :class:`repro.sim.delays.HintedDelay`).
    """

    name: str
    kind: CellKind
    inputs: Tuple[int, ...]
    outputs: Tuple[int, ...]
    delay_hint: Tuple[int, ...] | None = None
    index: int = field(default=-1)

    @property
    def is_sequential(self) -> bool:
        """True for clocked cells (DFF)."""
        return self.kind in SEQUENTIAL_KINDS

    def evaluate(self, values: Sequence[int]) -> Tuple[int, ...]:
        """Evaluate this cell's combinational function on *values*."""
        return evaluate_kind(self.kind, values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cell({self.name!r}, {self.kind.value}, "
            f"in={self.inputs}, out={self.outputs})"
        )


def check_arity(kind: CellKind, n_inputs: int, n_outputs: int) -> None:
    """Raise ``ValueError`` if the input/output counts are illegal for *kind*."""
    arity = INPUT_ARITY[kind]
    if arity is None:
        if n_inputs < 1:
            raise ValueError(f"{kind.value} needs at least one input")
    elif n_inputs != arity:
        raise ValueError(
            f"{kind.value} takes exactly {arity} inputs, got {n_inputs}"
        )
    expected_out = OUTPUT_COUNT[kind]
    if n_outputs != expected_out:
        raise ValueError(
            f"{kind.value} drives exactly {expected_out} outputs, got {n_outputs}"
        )
