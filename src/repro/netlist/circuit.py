"""The flat circuit container: nets, cells, ports and word helpers.

A :class:`Circuit` is a single-clock synchronous network.  Nets have at
most one driver (a cell output or a primary input).  Words (buses) are
plain Python lists of net indices, least-significant bit first; helper
methods create and register them under dotted names such as ``a[3]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

from repro.netlist.cells import (
    Cell,
    CellKind,
    OUTPUT_COUNT,
    check_arity,
)


@dataclass
class Net:
    """A single-driver signal node.

    Attributes
    ----------
    name:
        Unique net name within the circuit.
    index:
        Position in ``circuit.nets``.
    driver:
        ``(cell_index, output_position)`` or ``None`` for primary
        inputs / undriven nets.
    fanout:
        Indices of cells reading this net (duplicates possible when a
        cell reads the same net on several pins).
    """

    name: str
    index: int
    driver: Tuple[int, int] | None = None
    fanout: List[int] = field(default_factory=list)

    @property
    def is_driven(self) -> bool:
        return self.driver is not None


class Circuit:
    """A flat, single-clock, cell-level netlist.

    Typical construction::

        c = Circuit("rca4")
        a = c.add_input_word("a", 4)
        b = c.add_input_word("b", 4)
        s, cout = ripple_carry_adder(c, a, b)   # from repro.circuits
        c.mark_output_word(s, "s")
        c.mark_output(cout, "cout")
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self.nets: List[Net] = []
        self.cells: List[Cell] = []
        self._net_by_name: dict[str, int] = {}
        self._cell_by_name: dict[str, int] = {}
        self.inputs: List[int] = []
        self.outputs: List[int] = []
        self._anon_net = 0
        self._anon_cell = 0
        self._version = 0
        self._fingerprint: Tuple[int, str] | None = None

    @property
    def version(self) -> int:
        """Mutation counter; bumped by every structural change.

        Consumers that cache derived structure (notably the compiled IR
        in :mod:`repro.netlist.compiled`) compare this to detect
        staleness instead of hashing the whole netlist.
        """
        return self._version

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def new_net(self, name: str | None = None) -> int:
        """Create a new undriven net and return its index."""
        if name is None:
            name = f"n{self._anon_net}"
            self._anon_net += 1
            while name in self._net_by_name:
                name = f"n{self._anon_net}"
                self._anon_net += 1
        if name in self._net_by_name:
            raise ValueError(f"duplicate net name {name!r}")
        net = Net(name=name, index=len(self.nets))
        self.nets.append(net)
        self._net_by_name[name] = net.index
        self._version += 1
        return net.index

    def new_net_word(self, name: str, width: int) -> List[int]:
        """Create *width* nets named ``name[0] .. name[width-1]`` (LSB first)."""
        return [self.new_net(f"{name}[{i}]") for i in range(width)]

    def add_input(self, name: str | None = None) -> int:
        """Create a primary-input net."""
        idx = self.new_net(name)
        self.inputs.append(idx)
        return idx

    def add_input_word(self, name: str, width: int) -> List[int]:
        """Create a *width*-bit primary-input word, LSB first."""
        return [self.add_input(f"{name}[{i}]") for i in range(width)]

    def mark_output(self, net: int, alias: str | None = None) -> int:
        """Register *net* as a primary output (optionally aliasing its name)."""
        if not 0 <= net < len(self.nets):
            raise ValueError(f"no such net index {net}")
        if alias is not None and alias not in self._net_by_name:
            self._net_by_name[alias] = net
        self.outputs.append(net)
        self._version += 1
        return net

    def mark_output_word(self, nets: Sequence[int], name: str | None = None) -> None:
        """Register a word of nets as primary outputs, LSB first."""
        for i, n in enumerate(nets):
            self.mark_output(n, f"{name}[{i}]" if name is not None else None)

    def add_cell(
        self,
        kind: CellKind,
        inputs: Sequence[int],
        outputs: Sequence[int] | None = None,
        name: str | None = None,
        delay_hint: Sequence[int] | None = None,
    ) -> Cell:
        """Instantiate a cell.

        If *outputs* is ``None``, fresh anonymous nets are created for
        every output.  Returns the :class:`Cell` (its ``outputs`` carry
        the driven net indices).
        """
        if outputs is None:
            outputs = [self.new_net() for _ in range(OUTPUT_COUNT[kind])]
        check_arity(kind, len(inputs), len(outputs))
        if name is None:
            name = f"u{self._anon_cell}_{kind.value.lower()}"
            self._anon_cell += 1
            while name in self._cell_by_name:
                name = f"u{self._anon_cell}_{kind.value.lower()}"
                self._anon_cell += 1
        if name in self._cell_by_name:
            raise ValueError(f"duplicate cell name {name!r}")
        for n in list(inputs) + list(outputs):
            if not 0 <= n < len(self.nets):
                raise ValueError(f"cell {name!r}: no such net index {n}")
        cell = Cell(
            name=name,
            kind=kind,
            inputs=tuple(inputs),
            outputs=tuple(outputs),
            delay_hint=tuple(delay_hint) if delay_hint is not None else None,
            index=len(self.cells),
        )
        for pos, out in enumerate(cell.outputs):
            net = self.nets[out]
            if net.driver is not None:
                raise ValueError(
                    f"net {net.name!r} already driven by "
                    f"{self.cells[net.driver[0]].name!r}"
                )
            net.driver = (cell.index, pos)
        for inp in cell.inputs:
            self.nets[inp].fanout.append(cell.index)
        self.cells.append(cell)
        self._cell_by_name[name] = cell.index
        self._version += 1
        return cell

    # convenience single-output gate constructors -----------------------
    def gate(
        self,
        kind: CellKind,
        *inputs: int,
        output: int | None = None,
        name: str | None = None,
    ) -> int:
        """Add a single-output gate and return its output net index."""
        outs = None if output is None else [output]
        cell = self.add_cell(kind, list(inputs), outs, name=name)
        return cell.outputs[0]

    def add_dff(self, d: int, q: int | None = None, name: str | None = None) -> int:
        """Add a D-flipflop from net *d*; returns the ``q`` net index."""
        outs = None if q is None else [q]
        cell = self.add_cell(CellKind.DFF, [d], outs, name=name)
        return cell.outputs[0]

    def add_dff_word(self, word: Sequence[int], name: str | None = None) -> List[int]:
        """Register every bit of *word* through a DFF; returns the q word."""
        qs = []
        for i, d in enumerate(word):
            cell_name = f"{name}[{i}]" if name is not None else None
            qs.append(self.add_dff(d, name=cell_name))
        return qs

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def net(self, name: str) -> int:
        """Return the index of the net called *name*."""
        return self._net_by_name[name]

    def net_name(self, index: int) -> str:
        return self.nets[index].name

    def cell(self, name: str) -> Cell:
        """Return the cell called *name*."""
        return self.cells[self._cell_by_name[name]]

    def __contains__(self, name: str) -> bool:
        return name in self._net_by_name

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable content hash of this circuit's structure.

        Canonical over topology, cell kinds and net names —
        insertion-order independent, port-order sensitive (see
        :func:`repro.netlist.compiled.circuit_fingerprint`).  The
        service layer uses this as the circuit half of its
        content-addressed result keys; the compiled-IR memo shares the
        same identity notion via :attr:`version` invalidation.
        Memoized per version, so repeated calls are free.
        """
        from repro.netlist.compiled import circuit_fingerprint

        cached = self._fingerprint
        if cached is not None and cached[0] == self._version:
            return cached[1]
        digest = circuit_fingerprint(self)
        self._fingerprint = (self._version, digest)
        return digest

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    @property
    def flipflops(self) -> List[Cell]:
        """All sequential cells, in creation order."""
        return [c for c in self.cells if c.is_sequential]

    @property
    def num_flipflops(self) -> int:
        return sum(1 for c in self.cells if c.is_sequential)

    @property
    def combinational_cells(self) -> List[Cell]:
        return [c for c in self.cells if not c.is_sequential]

    def kind_histogram(self) -> dict[str, int]:
        """Cell count per kind name (useful in reports and tests)."""
        hist: dict[str, int] = {}
        for c in self.cells:
            hist[c.kind.value] = hist.get(c.kind.value, 0) + 1
        return hist

    def topological_cells(self) -> List[Cell]:
        """Combinational cells in topological order.

        DFF outputs and primary inputs are sources; DFF inputs are
        sinks (the clock edge cuts those arcs).  Raises ``ValueError``
        on a combinational cycle.
        """
        indeg: dict[int, int] = {}
        for c in self.cells:
            if c.is_sequential:
                continue
            deg = 0
            for n in c.inputs:
                drv = self.nets[n].driver
                if drv is not None and not self.cells[drv[0]].is_sequential:
                    deg += 1
            indeg[c.index] = deg
        ready = [i for i, d in indeg.items() if d == 0]
        order: List[Cell] = []
        while ready:
            ci = ready.pop()
            cell = self.cells[ci]
            order.append(cell)
            for out in cell.outputs:
                for succ in self.nets[out].fanout:
                    if succ in indeg:
                        indeg[succ] -= 1
                        if indeg[succ] == 0:
                            ready.append(succ)
        if len(order) != len(indeg):
            raise ValueError(
                f"{self.name}: combinational cycle among "
                f"{len(indeg) - len(order)} cells"
            )
        return order

    def levelize(self, delay_of=None) -> dict[int, int]:
        """Arrival level per net under a per-cell-output delay function.

        *delay_of(cell, output_position)* defaults to unit delay for
        every combinational cell output.  Primary inputs and DFF outputs
        are at level 0.  Returns ``{net_index: level}`` for every driven
        or primary-input net.
        """
        if delay_of is None:
            delay_of = lambda cell, pos: 1  # noqa: E731 - tiny default
        level: dict[int, int] = {n: 0 for n in self.inputs}
        for c in self.cells:
            if c.is_sequential:
                for out in c.outputs:
                    level[out] = 0
        for cell in self.topological_cells():
            at = max((level.get(n, 0) for n in cell.inputs), default=0)
            for pos, out in enumerate(cell.outputs):
                level[out] = at + delay_of(cell, pos)
        return level

    def critical_path_length(self, delay_of=None) -> int:
        """Longest register-to-register / input-to-output delay."""
        level = self.levelize(delay_of)
        endpoints = list(self.outputs)
        for c in self.cells:
            if c.is_sequential:
                endpoints.extend(c.inputs)
        return max((level.get(n, 0) for n in endpoints), default=0)

    # ------------------------------------------------------------------
    # functional evaluation (zero delay, single cycle)
    # ------------------------------------------------------------------
    def evaluate(
        self,
        input_values: Sequence[int],
        state: dict[int, int] | None = None,
    ) -> tuple[dict[int, int], dict[int, int]]:
        """Zero-delay functional evaluation of one clock cycle.

        *input_values* are the primary-input values in ``self.inputs``
        order; *state* maps DFF cell index -> stored bit (missing
        entries default to 0).  Returns ``(net_values, next_state)``.

        This is the golden reference the event-driven simulator is
        checked against: after any cycle the settled simulator values
        must equal this function's result.

        Evaluation runs on the memoized compiled IR
        (:func:`repro.netlist.compiled.compile_circuit`), so repeated
        calls do not re-run the topological sort.
        """
        from repro.netlist.compiled import compile_circuit

        compiled = compile_circuit(self)
        flat, next_state = compiled.evaluate_flat(input_values, state)
        values: dict[int, int] = {net: flat[net] for net in self.inputs}
        for i, ci in enumerate(compiled.ff_cells):
            values[compiled.ff_q[i]] = flat[compiled.ff_q[i]]
        for ci in compiled.topo:
            for out_net in compiled.cell_outputs[ci]:
                values[out_net] = flat[out_net]
        return values, next_state

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Circuit({self.name!r}: {len(self.cells)} cells, "
            f"{len(self.nets)} nets, {len(self.inputs)} in, "
            f"{len(self.outputs)} out, {self.num_flipflops} FFs)"
        )


def word_value(values: dict[int, int], word: Iterable[int]) -> int:
    """Assemble an unsigned integer from per-net *values* of *word* (LSB first)."""
    out = 0
    for i, net in enumerate(word):
        out |= (values.get(net, 0) & 1) << i
    return out


def int_to_bits(value: int, width: int) -> List[int]:
    """Split an unsigned integer into *width* bits, LSB first."""
    if value < 0:
        raise ValueError("value must be non-negative")
    return [(value >> i) & 1 for i in range(width)]
