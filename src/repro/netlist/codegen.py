"""Codegen layer: flat specialized kernels emitted per compiled circuit.

The compiled IR (:mod:`repro.netlist.compiled`) already fuses each
cell's evaluator over captured net indices, but every pass still pays
one Python call, one returned tuple and one ``zip`` per cell.  This
module eliminates that dispatch entirely by *emitting source code* for
a whole circuit pass — one straight-line statement per cell, in the
cached topological order — and ``exec``-compiling it into a single
flat function (chunked for very large netlists, see
:data:`CHUNK_CELLS`).

Four passes are generated per compiled circuit, each mirroring one of
the fused kernel families **expression for expression** so results are
bit-identical (ints) or float-identical (the estimators' closed forms
keep the same association order, so no rounding step can differ):

* :func:`build_settle_pass` — zero-delay bitmask settle, the body of
  :func:`repro.netlist.compiled.settle_lanes`'s inner loop;
* :func:`build_waveform_pass` — the waveform backend's timed lane
  propagation, with each output's transport delay baked in as a
  literal shift;
* :func:`build_prob_pass` / :func:`build_density_pass` — the
  signal-probability and transition-density topological passes used by
  :mod:`repro.estimate`.

It is also home to the structural *levelization* used by the numpy
tier (:mod:`repro.sim.vector`): :func:`level_groups` buckets the topo
order into ``(level, kind, arity, delays)`` groups whose members can
be evaluated as one vectorized ndarray operation.

Everything here is pure Python — numpy is only touched by the vector
backend that consumes :func:`level_groups`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.netlist.cells import CellKind
from repro.obs import trace as obs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.netlist.compiled import CompiledCircuit


#: Cells per exec-compiled chunk.  CPython compiles huge flat function
#: bodies fine but slows superlinearly; chunking keeps compile latency
#: proportional to circuit size while the runtime cost of chaining a
#: handful of chunk calls is noise.
CHUNK_CELLS = 2000


def _compile_blocks(
    blocks: List[List[str]], params: str, tag: str
) -> Callable:
    """``exec``-compile per-cell statement *blocks* into one callable.

    Each block is the statement list for one cell (relative
    indentation included).  Oversized bodies are split into
    :data:`CHUNK_CELLS`-cell chunk functions called in order.
    """
    if not blocks:
        def _noop(*args):
            return None
        return _noop
    funcs = []
    with obs.span("codegen.exec", tag=tag, cells=len(blocks)):
        for start in range(0, len(blocks), CHUNK_CELLS):
            lines = [f"def _kernel({params}):"]
            for block in blocks[start:start + CHUNK_CELLS]:
                for stmt in block:
                    lines.append("    " + stmt)
            src = "\n".join(lines) + "\n"
            ns: Dict[str, object] = {}
            exec(compile(src, f"<codegen {tag} #{start // CHUNK_CELLS}>", "exec"), ns)
            funcs.append(ns["_kernel"])
    if len(funcs) == 1:
        return funcs[0]

    def _chained(*args, _funcs=tuple(funcs)):
        for f in _funcs:
            f(*args)
    return _chained


# ---------------------------------------------------------------------------
# Per-kind expression emitters
# ---------------------------------------------------------------------------
#
# Each emitter returns ``(prelude_statements, output_expressions)``.
# The expressions are *exactly* the fused-kernel arithmetic from
# repro.netlist.compiled with the captured indices inlined as literals;
# any deviation (operand order, association, an extra mask) would break
# the bit-identity contract the backends are tested against.

def _bits_exprs(
    kind: CellKind, ins: Tuple[int, ...], arr: str, mask: str
) -> Tuple[List[str], List[str]]:
    v = [f"{arr}[{n}]" for n in ins]
    if kind is CellKind.CONST0:
        return [], ["0"]
    if kind is CellKind.CONST1:
        return [], [mask]
    if kind in (CellKind.BUF, CellKind.DFF):
        return [], [v[0]]
    if kind is CellKind.NOT:
        return [], [f"{v[0]} ^ {mask}"]
    if kind is CellKind.MUX2:
        s, a, b = v
        return [], [f"{a} ^ (({a} ^ {b}) & {s})"]
    if kind is CellKind.HA:
        a, b = v
        return [], [f"{a} ^ {b}", f"{a} & {b}"]
    if kind is CellKind.FA:
        a, b, c = v
        return (
            [f"_p = {a} ^ {b}"],
            [f"_p ^ {c}", f"({a} & {b}) | ({c} & _p)"],
        )
    if kind in (CellKind.AND, CellKind.NAND):
        core = " & ".join(v)
        if kind is CellKind.NAND:
            return [], [f"({core}) ^ {mask}"]
        return [], [core]
    if kind in (CellKind.OR, CellKind.NOR):
        core = " | ".join(v)
        if kind is CellKind.NOR:
            return [], [f"({core}) ^ {mask}"]
        return [], [core]
    if kind in (CellKind.XOR, CellKind.XNOR):
        core = " ^ ".join(v)
        if kind is CellKind.XNOR:
            return [], [f"{core} ^ {mask}"]
        return [], [core]
    raise NotImplementedError(f"no codegen lowering for {kind}")


def _prob_exprs(
    kind: CellKind, ins: Tuple[int, ...]
) -> Tuple[List[str], List[str]]:
    p = [f"p[{n}]" for n in ins]
    if kind is CellKind.CONST0:
        return [], ["0.0"]
    if kind is CellKind.CONST1:
        return [], ["1.0"]
    if kind in (CellKind.BUF, CellKind.DFF):
        return [], [p[0]]
    if kind is CellKind.NOT:
        return [], [f"1.0 - {p[0]}"]
    if kind is CellKind.MUX2:
        s, a, b = p
        return [], [f"(1.0 - {s}) * {a} + {s} * {b}"]
    if kind is CellKind.HA:
        a, b = p
        return [], [f"{a} * (1.0 - {b}) + {b} * (1.0 - {a})", f"{a} * {b}"]
    if kind is CellKind.FA:
        a, b, c = p
        pre = [
            f"_t = (1.0 - 2.0 * {a}) * (1.0 - 2.0 * {b}) * (1.0 - 2.0 * {c})"
        ]
        return pre, [
            "(1.0 - _t) / 2.0",
            f"{a} * {b} + {c} * ({a} * (1.0 - {b}) + {b} * (1.0 - {a}))",
        ]
    if kind in (CellKind.AND, CellKind.NAND):
        core = " * ".join(p)
        if kind is CellKind.NAND:
            return [], [f"1.0 - {core}"]
        return [], [core]
    if kind in (CellKind.OR, CellKind.NOR):
        core = " * ".join(f"(1.0 - {x})" for x in p)
        if kind is CellKind.NOR:
            return [], [core]
        return [], [f"1.0 - {core}"]
    if kind in (CellKind.XOR, CellKind.XNOR):
        pre = ["_t = " + " * ".join(f"(1.0 - 2.0 * {x})" for x in p)]
        if kind is CellKind.XNOR:
            return pre, ["1.0 - (1.0 - _t) / 2.0"]
        return pre, ["(1.0 - _t) / 2.0"]
    raise NotImplementedError(f"no codegen probability rule for {kind}")


def _density_exprs(
    kind: CellKind, ins: Tuple[int, ...]
) -> Tuple[List[str], List[str]]:
    p = [f"p[{n}]" for n in ins]
    d = [f"d[{n}]" for n in ins]
    if kind in (CellKind.CONST0, CellKind.CONST1):
        return [], ["0.0"]
    if kind in (CellKind.BUF, CellKind.DFF, CellKind.NOT):
        return [], [d[0]]
    if kind in (CellKind.XOR, CellKind.XNOR):
        return [], [" + ".join(d)]
    if kind is CellKind.MUX2:
        ps, pa, pb = p
        ds, da, db = d
        return [], [
            f"({pa} * (1.0 - {pb}) + {pb} * (1.0 - {pa})) * {ds}"
            f" + (1.0 - {ps}) * {da} + {ps} * {db}"
        ]
    if kind is CellKind.HA:
        pa, pb = p
        da, db = d
        return [], [f"{da} + {db}", f"{pb} * {da} + {pa} * {db}"]
    if kind is CellKind.FA:
        pa, pb, pc = p
        da, db, dc = d
        return [], [
            f"{da} + {db} + {dc}",
            f"({pb} * (1.0 - {pc}) + {pc} * (1.0 - {pb})) * {da}"
            f" + ({pa} * (1.0 - {pc}) + {pc} * (1.0 - {pa})) * {db}"
            f" + ({pa} * (1.0 - {pb}) + {pb} * (1.0 - {pa})) * {dc}",
        ]
    if kind in (CellKind.AND, CellKind.NAND):
        if len(ins) == 2:
            return [], [f"{p[1]} * {d[0]} + {p[0]} * {d[1]}"]
        terms = []
        for pin in range(len(ins)):
            w = " * ".join(p[j] for j in range(len(ins)) if j != pin)
            terms.append(f"{w} * {d[pin]}")
        return [], [" + ".join(terms)]
    if kind in (CellKind.OR, CellKind.NOR):
        if len(ins) == 2:
            return [], [
                f"(1.0 - {p[1]}) * {d[0]} + (1.0 - {p[0]}) * {d[1]}"
            ]
        terms = []
        for pin in range(len(ins)):
            w = " * ".join(
                f"(1.0 - {p[j]})" for j in range(len(ins)) if j != pin
            )
            terms.append(f"{w} * {d[pin]}")
        return [], [" + ".join(terms)]
    raise NotImplementedError(f"no codegen density rule for {kind}")


# ---------------------------------------------------------------------------
# Pass builders
# ---------------------------------------------------------------------------

def _settle_blocks(cc: "CompiledCircuit") -> List[List[str]]:
    blocks = []
    for ci in cc.topo:
        pre, outs = _bits_exprs(cc.cell_kinds[ci], cc.cell_inputs[ci], "v", "M")
        block = list(pre)
        for out_net, expr in zip(cc.cell_outputs[ci], outs):
            block.append(f"v[{out_net}] = {expr}")
        blocks.append(block)
    return blocks


def build_settle_pass(cc: "CompiledCircuit") -> Callable:
    """One flat ``f(v, M)`` zero-delay bitmask pass over the topo order.

    Drop-in replacement for the per-cell kernel loop inside
    :func:`repro.netlist.compiled.settle_lanes` (pass it as
    ``comb_pass``); writes settled lane masks into ``v`` in place.
    """
    return _compile_blocks(_settle_blocks(cc), "v, M", f"settle {cc.name}")


def _waveform_blocks(cc: "CompiledCircuit") -> List[List[str]]:
    if cc.out_specs is None:
        raise ValueError(
            "waveform codegen needs a delay-compiled circuit "
            "(compile_circuit(circuit, delay_model))"
        )
    blocks = []
    for ci in cc.topo:
        pre, outs = _bits_exprs(cc.cell_kinds[ci], cc.cell_inputs[ci], "w", "F")
        block = list(pre)
        for (out_net, dly), expr in zip(cc.out_specs[ci], outs):
            dmask = (1 << dly) - 1
            block.append(f"_r = {expr}")
            block.append(f"if vals[{out_net}]:")
            block.append(f"    _m = ((_r << {dly}) | {dmask}) & F")
            block.append("    ch[%d] = _m ^ (((_m << 1) | 1) & F)" % out_net)
            block.append("else:")
            block.append(f"    _m = (_r << {dly}) & F")
            block.append("    ch[%d] = _m ^ ((_m << 1) & F)" % out_net)
            block.append(f"w[{out_net}] = _m")
        blocks.append(block)
    return blocks


def build_waveform_pass(cc: "CompiledCircuit") -> Callable:
    """One flat ``f(w, ch, vals, F)`` timed waveform-lane pass.

    ``w`` holds per-net waveform lane masks (every net pre-filled with
    its pre-batch constant, edges already seeded), ``vals`` the settled
    pre-batch values, ``F`` the full lane mask.  Each cell's transport
    delay is a literal shift; ``w[out]`` receives the delayed output
    waveform and ``ch[out]`` its applied-transition mask — the same
    ``om``/``changed`` arithmetic as the waveform backend's inner loop.
    """
    return _compile_blocks(
        _waveform_blocks(cc), "w, ch, vals, F", f"wave {cc.name}"
    )


def _estimator_blocks(cc: "CompiledCircuit", which: str) -> List[List[str]]:
    blocks = []
    for ci in cc.topo:
        if which == "prob":
            pre, outs = _prob_exprs(cc.cell_kinds[ci], cc.cell_inputs[ci])
            target = "p"
        else:
            pre, outs = _density_exprs(cc.cell_kinds[ci], cc.cell_inputs[ci])
            target = "d"
        block = list(pre)
        for out_net, expr in zip(cc.cell_outputs[ci], outs):
            block.append(f"{target}[{out_net}] = {expr}")
        blocks.append(block)
    return blocks


def build_prob_pass(cc: "CompiledCircuit") -> Callable:
    """One flat ``f(p)`` signal-probability topo pass (in place)."""
    return _compile_blocks(
        _estimator_blocks(cc, "prob"), "p", f"prob {cc.name}"
    )


def build_density_pass(cc: "CompiledCircuit") -> Callable:
    """One flat ``f(p, d)`` transition-density topo pass (in place)."""
    return _compile_blocks(
        _estimator_blocks(cc, "density"), "p, d", f"density {cc.name}"
    )


def kernel_source(cc: "CompiledCircuit", which: str = "settle") -> str:
    """The generated source text of one pass, for docs and inspection."""
    if which == "settle":
        blocks, params = _settle_blocks(cc), "v, M"
    elif which == "waveform":
        blocks, params = _waveform_blocks(cc), "w, ch, vals, F"
    elif which == "prob":
        blocks, params = _estimator_blocks(cc, "prob"), "p"
    elif which == "density":
        blocks, params = _estimator_blocks(cc, "density"), "p, d"
    else:
        raise ValueError(
            f"unknown pass {which!r}; choose from settle, waveform, "
            "prob, density"
        )
    lines = [f"def _kernel({params}):"]
    for block in blocks:
        for stmt in block:
            lines.append("    " + stmt)
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Levelization / grouping for the vectorized (numpy) tier
# ---------------------------------------------------------------------------

def levelize_cells(cc: "CompiledCircuit") -> List[int]:
    """Unit-depth level per cell (primary inputs and ff outputs at 0).

    Structural depth only — independent of the delay model; used to
    batch cells whose inputs are all ready into one vectorized op.
    """
    net_level = [0] * cc.n_nets
    cell_level = [0] * len(cc.cell_kinds)
    for ci in cc.topo:
        lvl = 0
        for n in cc.cell_inputs[ci]:
            if net_level[n] > lvl:
                lvl = net_level[n]
        cell_level[ci] = lvl
        for out in cc.cell_outputs[ci]:
            if lvl + 1 > net_level[out]:
                net_level[out] = lvl + 1
    return cell_level


def levelize_cells_delta(
    parent_cc: "CompiledCircuit",
    child_cc: "CompiledCircuit",
    cone_cells,
) -> List[int]:
    """Splice :func:`levelize_cells` results across a delta compile.

    Parent levels are reused verbatim for cells outside the edit cone
    (their transitive fanin is unchanged, so their structural depth
    is too); only cells at or downstream of the edit frontier —
    *cone_cells*, the combinational fanout cone of the touched cells —
    are recomputed, in the child's topo order.  Identical to running
    :func:`levelize_cells` on the child from scratch.
    """
    n_cells = len(child_cc.cell_kinds)
    levels = list(parent_cc.cell_levels)
    levels.extend([0] * (n_cells - len(levels)))
    if not cone_cells:
        return levels
    # Driver of each combinational-cell output net, for on-demand net
    # levels: a net is level 0 at a source (PI, ff output, undriven)
    # and driver level + 1 otherwise — the same arithmetic the full
    # pass applies, evaluated only where the cone reads it.
    driver: Dict[int, int] = {}
    cell_is_seq = child_cc.cell_is_seq
    for ci, outs in enumerate(child_cc.cell_outputs):
        if not cell_is_seq[ci]:
            for out in outs:
                driver[out] = ci
    cell_inputs = child_cc.cell_inputs
    for ci in child_cc.topo:
        if ci not in cone_cells:
            continue
        lvl = 0
        for n in cell_inputs[ci]:
            drv = driver.get(n)
            if drv is not None and levels[drv] + 1 > lvl:
                lvl = levels[drv] + 1
        levels[ci] = lvl
    return levels


@dataclass(frozen=True)
class CellGroup:
    """Cells sharing (level, kind, arity, per-output delays).

    ``pins[i]`` is the tuple of input nets on pin *i*, one entry per
    member cell; ``outs[k]`` is ``(delay, out_nets)`` for output
    position *k* (*delay* is ``None`` when compiled without a delay
    model).  All members are evaluable as one array operation once
    every earlier level has been applied.
    """

    level: int
    kind: CellKind
    pins: Tuple[Tuple[int, ...], ...]
    outs: Tuple[Tuple[Optional[int], Tuple[int, ...]], ...]


def level_groups(cc: "CompiledCircuit") -> Tuple[CellGroup, ...]:
    """Bucket the topo order into vectorizable :class:`CellGroup`\\ s."""
    with obs.span("codegen.levelize", circuit=cc.name, cells=len(cc.cell_kinds)):
        return _level_groups(cc)


def _level_groups(cc: "CompiledCircuit") -> Tuple[CellGroup, ...]:
    cell_level = cc.cell_levels
    buckets: Dict[tuple, List[int]] = {}
    for ci in cc.topo:
        delays = (
            None
            if cc.out_specs is None
            else tuple(dly for _, dly in cc.out_specs[ci])
        )
        key = (
            cell_level[ci],
            cc.cell_kinds[ci],
            len(cc.cell_inputs[ci]),
            delays,
        )
        buckets.setdefault(key, []).append(ci)
    groups = []
    for key in sorted(
        buckets, key=lambda k: (k[0], k[1].value, k[2], k[3] or ())
    ):
        level, kind, arity, _delays = key
        members = buckets[key]
        pins = tuple(
            tuple(cc.cell_inputs[ci][pin] for ci in members)
            for pin in range(arity)
        )
        n_out = len(cc.cell_outputs[members[0]])
        outs = []
        for pos in range(n_out):
            dly = (
                None
                if cc.out_specs is None
                else cc.out_specs[members[0]][pos][1]
            )
            outs.append(
                (dly, tuple(cc.cell_outputs[ci][pos] for ci in members))
            )
        groups.append(CellGroup(level, kind, pins, tuple(outs)))
    return tuple(groups)


def static_event_horizon(
    cc: "CompiledCircuit", circuit, delay_model, backend_label: str
) -> int:
    """``W``: 1 + the latest possible intra-cycle event time.

    Levelizes the delay-resolved topo order and rejects sub-unit
    combinational delays with the standard backend error message —
    shared by the waveform, codegen and vector glitch engines.  The
    successful result is memoized on the compiled snapshot (one value
    per (circuit, delay model) pair by construction), so repeated
    backend construction skips the levelization.
    """
    cached = cc.__dict__.get("_static_event_horizon")
    if cached is not None:
        return cached
    level = [0] * cc.n_nets
    for ci in cc.topo:
        arrival = 0
        for n in cc.cell_inputs[ci]:
            if level[n] > arrival:
                arrival = level[n]
        for out_net, dly in cc.out_specs[ci]:
            if dly < 1:
                raise ValueError(
                    f"the {backend_label} backend requires combinational "
                    f"delays >= 1, but {delay_model.describe()!r} "
                    f"gives cell {circuit.cells[ci].name!r} a delay of "
                    f"{dly}; use the bit-parallel backend for "
                    "zero-delay simulation"
                )
            if arrival + dly > level[out_net]:
                level[out_net] = arrival + dly
    W = (max(level) if level else 0) + 1
    cc.__dict__["_static_event_horizon"] = W
    return W
