"""Compiled circuit IR: flat, cache-friendly arrays built once per netlist.

A :class:`Circuit` is convenient to build and query but expensive to
simulate directly: every :meth:`Circuit.evaluate` re-runs a topological
sort, and every simulator instance used to re-resolve cells, delays and
fanout into private lists.  :func:`compile_circuit` performs that
flattening exactly once per ``(Circuit, DelayModel)`` pair and memoizes
the result, so constructing simulators and evaluating circuits becomes
O(nets) instead of O(cells·outputs) with repeated delay-model calls.

The :class:`CompiledCircuit` holds:

* per-cell flat tuples — input nets, output nets, kind, evaluator,
  sequential flag;
* ``out_specs`` — per combinational cell, ``((out_net, delay), ...)``
  pairs pre-resolved through the delay model (``None`` when compiled
  without one, e.g. for purely functional evaluation);
* ``comb_fanout`` — per net, the combinational cells reading it (the
  event-driven hot loop never needs sequential readers);
* a cached topological order of the combinational cells;
* the flipflop wiring (cell, D net, Q net) as parallel tuples.

Memoization is keyed on the circuit object (weakly, so compiled forms
die with their circuits) plus :meth:`DelayModel.cache_token`, and
invalidated by :attr:`Circuit.version`, which every netlist mutation
bumps.  All simulation backends (:mod:`repro.sim.backends`) and
:meth:`Circuit.evaluate` share this cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Hashable, List, Mapping, Sequence, Tuple
from weakref import WeakKeyDictionary

from repro.netlist.cells import CellKind, _EVALUATORS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.netlist.circuit import Circuit
    from repro.sim.delays import DelayModel


@dataclass(frozen=True)
class CompiledCircuit:
    """Flat arrays mirroring one :class:`Circuit` at one version.

    Instances are immutable snapshots; obtain them via
    :func:`compile_circuit`, never by mutating an existing one.
    """

    name: str
    version: int
    n_nets: int
    inputs: Tuple[int, ...]
    input_set: frozenset
    outputs: Tuple[int, ...]
    driven: Tuple[bool, ...]
    cell_kinds: Tuple[CellKind, ...]
    cell_inputs: Tuple[Tuple[int, ...], ...]
    cell_outputs: Tuple[Tuple[int, ...], ...]
    cell_eval: Tuple[Callable[[Sequence[int]], Tuple[int, ...]], ...]
    cell_is_seq: Tuple[bool, ...]
    comb_fanout: Tuple[Tuple[int, ...], ...]
    topo: Tuple[int, ...]
    ff_cells: Tuple[int, ...]
    ff_d: Tuple[int, ...]
    ff_q: Tuple[int, ...]
    out_specs: Tuple[Tuple[Tuple[int, int], ...], ...] | None
    max_delay: int

    # ------------------------------------------------------------------
    def evaluate_flat(
        self,
        input_values: Sequence[int],
        state: Mapping[int, int] | None = None,
    ) -> Tuple[List[int], Dict[int, int]]:
        """Zero-delay functional evaluation of one clock cycle.

        *input_values* are bits in ``inputs`` order; *state* maps DFF
        cell index -> stored bit (missing entries default to 0).
        Returns ``(values, next_state)`` where *values* is a flat list
        indexed by net (undriven non-input nets read 0).
        """
        if len(input_values) != len(self.inputs):
            raise ValueError(
                f"expected {len(self.inputs)} input values, "
                f"got {len(input_values)}"
            )
        state = state or {}
        values = [0] * self.n_nets
        for net, v in zip(self.inputs, input_values):
            values[net] = int(bool(v))
        for i, ci in enumerate(self.ff_cells):
            values[self.ff_q[i]] = state.get(ci, 0)
        cell_inputs = self.cell_inputs
        cell_outputs = self.cell_outputs
        cell_eval = self.cell_eval
        for ci in self.topo:
            ins = [values[n] for n in cell_inputs[ci]]
            outs = cell_eval[ci](ins)
            for out_net, v in zip(cell_outputs[ci], outs):
                values[out_net] = v
        next_state = {
            ci: values[self.ff_d[i]] for i, ci in enumerate(self.ff_cells)
        }
        return values, next_state


#: circuit -> {delay cache token -> CompiledCircuit}
_CACHE: "WeakKeyDictionary" = WeakKeyDictionary()


def compile_circuit(
    circuit: "Circuit", delay_model: "DelayModel | None" = None
) -> CompiledCircuit:
    """Return the (memoized) compiled form of *circuit*.

    With *delay_model* ``None`` the compiled form carries no delay
    information (``out_specs is None``) — enough for functional
    evaluation and the bit-parallel backend.  Each distinct delay
    model (by :meth:`DelayModel.cache_token`) gets its own entry;
    mutating the circuit invalidates all of them.
    """
    key: Hashable = None if delay_model is None else delay_model.cache_token()
    per_circuit = _CACHE.get(circuit)
    if per_circuit is None:
        per_circuit = _CACHE[circuit] = {}
    cached = per_circuit.get(key)
    if cached is not None and cached.version == circuit.version:
        return cached
    if per_circuit and next(iter(per_circuit.values())).version != circuit.version:
        per_circuit.clear()  # the whole snapshot generation is stale
    compiled = _build(circuit, delay_model)
    per_circuit[key] = compiled
    return compiled


def _build(
    circuit: "Circuit", delay_model: "DelayModel | None"
) -> CompiledCircuit:
    n_nets = len(circuit.nets)
    cell_kinds = []
    cell_inputs = []
    cell_outputs = []
    cell_eval = []
    cell_is_seq = []
    ff_cells: List[int] = []
    ff_d: List[int] = []
    ff_q: List[int] = []
    out_specs: List[Tuple[Tuple[int, int], ...]] | None = (
        None if delay_model is None else []
    )
    max_delay = 0
    for cell in circuit.cells:
        cell_kinds.append(cell.kind)
        cell_inputs.append(cell.inputs)
        cell_outputs.append(cell.outputs)
        cell_eval.append(_EVALUATORS[cell.kind])
        seq = cell.is_sequential
        cell_is_seq.append(seq)
        if seq:
            ff_cells.append(cell.index)
            ff_d.append(cell.inputs[0])
            ff_q.append(cell.outputs[0])
            if out_specs is not None:
                out_specs.append(((cell.outputs[0], 0),))
        elif out_specs is not None:
            spec = tuple(
                (out, delay_model.delay(cell, pos))
                for pos, out in enumerate(cell.outputs)
            )
            out_specs.append(spec)
            for _, d in spec:
                if d > max_delay:
                    max_delay = d
    comb_fanout: List[Tuple[int, ...]] = [
        tuple(ci for ci in net.fanout if not cell_is_seq[ci])
        for net in circuit.nets
    ]
    return CompiledCircuit(
        name=circuit.name,
        version=circuit.version,
        n_nets=n_nets,
        inputs=tuple(circuit.inputs),
        input_set=frozenset(circuit.inputs),
        outputs=tuple(circuit.outputs),
        driven=tuple(net.driver is not None for net in circuit.nets),
        cell_kinds=tuple(cell_kinds),
        cell_inputs=tuple(cell_inputs),
        cell_outputs=tuple(cell_outputs),
        cell_eval=tuple(cell_eval),
        cell_is_seq=tuple(cell_is_seq),
        comb_fanout=tuple(comb_fanout),
        topo=tuple(c.index for c in circuit.topological_cells()),
        ff_cells=tuple(ff_cells),
        ff_d=tuple(ff_d),
        ff_q=tuple(ff_q),
        out_specs=None if out_specs is None else tuple(out_specs),
        max_delay=max_delay,
    )
