"""Compiled circuit IR: flat, cache-friendly arrays built once per netlist.

A :class:`Circuit` is convenient to build and query but expensive to
simulate directly: every :meth:`Circuit.evaluate` re-runs a topological
sort, and every simulator instance used to re-resolve cells, delays and
fanout into private lists.  :func:`compile_circuit` performs that
flattening exactly once per ``(Circuit, DelayModel)`` pair and memoizes
the result, so constructing simulators and evaluating circuits becomes
O(nets) instead of O(cells·outputs) with repeated delay-model calls.

The :class:`CompiledCircuit` holds:

* per-cell flat tuples — input nets, output nets, kind, evaluator,
  sequential flag;
* ``out_specs`` — per combinational cell, ``((out_net, delay), ...)``
  pairs pre-resolved through the delay model (``None`` when compiled
  without one, e.g. for purely functional evaluation);
* ``comb_fanout`` — per net, the combinational cells reading it (the
  event-driven hot loop never needs sequential readers);
* a cached topological order of the combinational cells;
* the flipflop wiring (cell, D net, Q net) as parallel tuples.

Memoization is keyed on the circuit object (weakly, so compiled forms
die with their circuits) plus :meth:`DelayModel.cache_token`, and
invalidated by :attr:`Circuit.version`, which every netlist mutation
bumps.  Per circuit, at most :data:`MEMO_DELAY_MODELS` delay-model
entries are retained (least-recently-used eviction), so a long-lived
service process sweeping many delay models cannot grow the memo
without bound.  All simulation backends (:mod:`repro.sim.backends`)
and :meth:`Circuit.evaluate` share this cache.

This module is also the home of **canonical fingerprinting**
(:func:`circuit_fingerprint`, :func:`delay_fingerprint`): stable
content hashes over the same structural facts the compiled IR is built
from, used by the service layer (:mod:`repro.service`) to address
cached analysis results.  Fingerprints are insertion-order independent
— nets and cells are canonicalized by *name*, not index — so two
builds of the same netlist hash identically no matter the construction
order.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Callable, Dict, Hashable, List, Mapping, Sequence, Tuple
from weakref import WeakKeyDictionary

from repro.netlist.cells import CellKind, _EVALUATORS
from repro.obs import trace as obs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.netlist.circuit import Circuit
    from repro.sim.delays import DelayModel


# ---------------------------------------------------------------------------
# Kind-specialized fused evaluators
# ---------------------------------------------------------------------------
#
# The generic evaluation pattern — ``ins = [values[n] for n in nets];
# outs = evaluator(ins)`` — allocates one throwaway list per cell per
# evaluation, which the timed backends pay millions of times per run.
# A *fused* evaluator captures the cell's input net indices at compile
# time and reads the flat ``values`` array directly, with a branch-free
# bitop body specialized per (kind, arity).  Cells outside the
# specialization table fall back to the generic list-building form, so
# every kind keeps working.

def _fuse_generic(evaluator, nets):
    def f(values, _e=evaluator, _n=nets):
        return _e([values[n] for n in _n])
    return f


def _fuse_cell(
    kind: CellKind, nets: Tuple[int, ...]
) -> Callable[[Sequence[int]], Tuple[int, ...]]:
    """Build the fused evaluator for one cell instance."""
    n = len(nets)
    if kind is CellKind.CONST0:
        return lambda values: (0,)
    if kind is CellKind.CONST1:
        return lambda values: (1,)
    if kind is CellKind.BUF:
        a, = nets
        return lambda values, _a=a: (values[_a],)
    if kind is CellKind.NOT:
        a, = nets
        return lambda values, _a=a: (values[_a] ^ 1,)
    if kind is CellKind.MUX2:
        s, a, b = nets
        # 0/1-domain branch-free select: a when s == 0, b when s == 1.
        return lambda values, _s=s, _a=a, _b=b: (
            values[_a] ^ ((values[_a] ^ values[_b]) & values[_s]),
        )
    if kind is CellKind.HA:
        a, b = nets
        def f_ha(values, _a=a, _b=b):
            x, y = values[_a], values[_b]
            return (x ^ y, x & y)
        return f_ha
    if kind is CellKind.FA:
        a, b, c = nets
        def f_fa(values, _a=a, _b=b, _c=c):
            x, y, z = values[_a], values[_b], values[_c]
            p = x ^ y
            return (p ^ z, (x & y) | (z & p))
        return f_fa
    if kind in (CellKind.AND, CellKind.NAND):
        inv = 1 if kind is CellKind.NAND else 0
        if n == 2:
            a, b = nets
            return lambda values, _a=a, _b=b, _i=inv: (
                (values[_a] & values[_b]) ^ _i,
            )
        if n == 3:
            a, b, c = nets
            return lambda values, _a=a, _b=b, _c=c, _i=inv: (
                (values[_a] & values[_b] & values[_c]) ^ _i,
            )
        def f_and(values, _n=nets, _i=inv):
            out = 1
            for net in _n:
                out &= values[net]
            return (out ^ _i,)
        return f_and
    if kind in (CellKind.OR, CellKind.NOR):
        inv = 1 if kind is CellKind.NOR else 0
        if n == 2:
            a, b = nets
            return lambda values, _a=a, _b=b, _i=inv: (
                (values[_a] | values[_b]) ^ _i,
            )
        if n == 3:
            a, b, c = nets
            return lambda values, _a=a, _b=b, _c=c, _i=inv: (
                (values[_a] | values[_b] | values[_c]) ^ _i,
            )
        def f_or(values, _n=nets, _i=inv):
            out = 0
            for net in _n:
                out |= values[net]
            return (out ^ _i,)
        return f_or
    if kind in (CellKind.XOR, CellKind.XNOR):
        inv = 1 if kind is CellKind.XNOR else 0
        if n == 2:
            a, b = nets
            return lambda values, _a=a, _b=b, _i=inv: (
                values[_a] ^ values[_b] ^ _i,
            )
        if n == 3:
            a, b, c = nets
            return lambda values, _a=a, _b=b, _c=c, _i=inv: (
                values[_a] ^ values[_b] ^ values[_c] ^ _i,
            )
        def f_xor(values, _n=nets, _i=inv):
            out = _i
            for net in _n:
                out ^= values[net]
            return (out,)
        return f_xor
    return _fuse_generic(_EVALUATORS[kind], nets)


# ---------------------------------------------------------------------------
# Fused bitwise (lane-packed) kernels
# ---------------------------------------------------------------------------
#
# The same fusion idea applied to *bitmask* evaluation: one integer per
# net, each bit one independent lane, inversions against an explicit
# lane mask.  The bit-parallel backend packs one clock cycle per lane;
# the waveform backend packs one intra-cycle event time per lane — both
# evaluate every cell exactly once per batch through these kernels.

def _bits_const0(ins, mask):
    return (0,)


def _bits_const1(ins, mask):
    return (mask,)


def _bits_buf(ins, mask):
    return (ins[0],)


def _bits_not(ins, mask):
    return (ins[0] ^ mask,)


def _bits_and(ins, mask):
    out = mask
    for v in ins:
        out &= v
    return (out,)


def _bits_or(ins, mask):
    out = 0
    for v in ins:
        out |= v
    return (out,)


def _bits_nand(ins, mask):
    return (_bits_and(ins, mask)[0] ^ mask,)


def _bits_nor(ins, mask):
    return (_bits_or(ins, mask)[0] ^ mask,)


def _bits_xor(ins, mask):
    out = 0
    for v in ins:
        out ^= v
    return (out,)


def _bits_xnor(ins, mask):
    return (_bits_xor(ins, mask)[0] ^ mask,)


def _bits_mux2(ins, mask):
    sel, a, b = ins
    return (a ^ ((a ^ b) & sel),)


def _bits_ha(ins, mask):
    a, b = ins
    return (a ^ b, a & b)


def _bits_fa(ins, mask):
    a, b, cin = ins
    p = a ^ b
    return (p ^ cin, (a & b) | (cin & p))


#: Generic bitwise evaluators by kind (fallback for the fused forms).
#: ``DFF`` maps to its transparent (buffer) view; neither backend ever
#: evaluates a sequential cell through these.
_BIT_EVALUATORS = {
    CellKind.CONST0: _bits_const0,
    CellKind.CONST1: _bits_const1,
    CellKind.BUF: _bits_buf,
    CellKind.NOT: _bits_not,
    CellKind.AND: _bits_and,
    CellKind.OR: _bits_or,
    CellKind.NAND: _bits_nand,
    CellKind.NOR: _bits_nor,
    CellKind.XOR: _bits_xor,
    CellKind.XNOR: _bits_xnor,
    CellKind.MUX2: _bits_mux2,
    CellKind.HA: _bits_ha,
    CellKind.FA: _bits_fa,
    CellKind.DFF: _bits_buf,
}


def _fuse_bits_generic(evaluator, nets):
    def f(bits, mask, _e=evaluator, _n=nets):
        return _e([bits[n] for n in _n], mask)
    return f


def _fuse_bits(
    kind: CellKind, nets: Tuple[int, ...]
) -> Callable[[Sequence[int], int], Tuple[int, ...]]:
    """Build the fused bitmask kernel for one cell instance."""
    n = len(nets)
    if kind is CellKind.CONST0:
        return lambda bits, mask: (0,)
    if kind is CellKind.CONST1:
        return lambda bits, mask: (mask,)
    if kind in (CellKind.BUF, CellKind.DFF):
        a, = nets
        return lambda bits, mask, _a=a: (bits[_a],)
    if kind is CellKind.NOT:
        a, = nets
        return lambda bits, mask, _a=a: (bits[_a] ^ mask,)
    if kind is CellKind.MUX2:
        s, a, b = nets
        return lambda bits, mask, _s=s, _a=a, _b=b: (
            bits[_a] ^ ((bits[_a] ^ bits[_b]) & bits[_s]),
        )
    if kind is CellKind.HA:
        a, b = nets
        def f_ha(bits, mask, _a=a, _b=b):
            x, y = bits[_a], bits[_b]
            return (x ^ y, x & y)
        return f_ha
    if kind is CellKind.FA:
        a, b, c = nets
        def f_fa(bits, mask, _a=a, _b=b, _c=c):
            x, y, z = bits[_a], bits[_b], bits[_c]
            p = x ^ y
            return (p ^ z, (x & y) | (z & p))
        return f_fa
    if kind in (CellKind.AND, CellKind.NAND):
        invert = kind is CellKind.NAND
        if n == 2:
            a, b = nets
            if invert:
                return lambda bits, mask, _a=a, _b=b: (
                    (bits[_a] & bits[_b]) ^ mask,
                )
            return lambda bits, mask, _a=a, _b=b: (bits[_a] & bits[_b],)
        if n == 3:
            a, b, c = nets
            if invert:
                return lambda bits, mask, _a=a, _b=b, _c=c: (
                    (bits[_a] & bits[_b] & bits[_c]) ^ mask,
                )
            return lambda bits, mask, _a=a, _b=b, _c=c: (
                bits[_a] & bits[_b] & bits[_c],
            )
    if kind in (CellKind.OR, CellKind.NOR):
        invert = kind is CellKind.NOR
        if n == 2:
            a, b = nets
            if invert:
                return lambda bits, mask, _a=a, _b=b: (
                    (bits[_a] | bits[_b]) ^ mask,
                )
            return lambda bits, mask, _a=a, _b=b: (bits[_a] | bits[_b],)
        if n == 3:
            a, b, c = nets
            if invert:
                return lambda bits, mask, _a=a, _b=b, _c=c: (
                    (bits[_a] | bits[_b] | bits[_c]) ^ mask,
                )
            return lambda bits, mask, _a=a, _b=b, _c=c: (
                bits[_a] | bits[_b] | bits[_c],
            )
    if kind in (CellKind.XOR, CellKind.XNOR):
        invert = kind is CellKind.XNOR
        if n == 2:
            a, b = nets
            if invert:
                return lambda bits, mask, _a=a, _b=b: (
                    bits[_a] ^ bits[_b] ^ mask,
                )
            return lambda bits, mask, _a=a, _b=b: (bits[_a] ^ bits[_b],)
        if n == 3:
            a, b, c = nets
            if invert:
                return lambda bits, mask, _a=a, _b=b, _c=c: (
                    bits[_a] ^ bits[_b] ^ bits[_c] ^ mask,
                )
            return lambda bits, mask, _a=a, _b=b, _c=c: (
                bits[_a] ^ bits[_b] ^ bits[_c],
            )
    return _fuse_bits_generic(_BIT_EVALUATORS[kind], nets)


# ---------------------------------------------------------------------------
# Fused probability / transition-density kernels
# ---------------------------------------------------------------------------
#
# The estimation layer (:mod:`repro.estimate`) propagates *floats* —
# signal one-probabilities and Najm transition densities — through the
# same netlist the simulators evaluate.  The seed estimators branched
# on the cell kind and enumerated truth tables per evaluation; these
# kernels instead specialize the closed-form propagation rule per cell
# instance, reading flat per-net float arrays via captured indices,
# exactly like :func:`_fuse_cell` does for bits.  They are part of the
# compiled snapshot (memoized with it), built lazily on first
# estimator access — see :attr:`CompiledCircuit.cell_prob`.
#
# A probability kernel maps the flat ``probs`` array to the cell's
# output one-probabilities under spatial independence of its inputs.
# A density kernel maps ``(probs, dens)`` to the cell's output
# transition densities through Boolean-difference sensitisation:
# ``D(y) = sum_i P(dy/dx_i) * D(x_i)`` with the difference probability
# taken over the other inputs.  Kinds outside the closed-form tables
# fall back to truth-table enumeration (the seed semantics), so every
# kind keeps working; the fallback matches the specialized forms to
# float rounding.

def _prob_table_generic(kind: CellKind, nets):
    """Truth-table probability fallback (seed enumeration order)."""
    from itertools import product as iter_product

    from repro.netlist.cells import OUTPUT_COUNT

    evaluator = _EVALUATORS[kind]
    n_out = OUTPUT_COUNT[kind]
    combos = tuple(iter_product((0, 1), repeat=len(nets)))

    def f(probs, _nets=nets, _combos=combos, _e=evaluator, _n_out=n_out):
        out = [0.0] * _n_out
        for combo in _combos:
            weight = 1.0
            for bit, net in zip(combo, _nets):
                p = probs[net]
                weight *= p if bit else 1.0 - p
            outs = _e(combo)
            for k in range(_n_out):
                if outs[k]:
                    out[k] += weight
        return tuple(out)

    return f


def _fuse_prob(kind: CellKind, nets: Tuple[int, ...]):
    """Build the fused signal-probability kernel for one cell."""
    n = len(nets)
    if kind is CellKind.CONST0:
        return lambda probs: (0.0,)
    if kind is CellKind.CONST1:
        return lambda probs: (1.0,)
    if kind in (CellKind.BUF, CellKind.DFF):
        a, = nets
        return lambda probs, _a=a: (probs[_a],)
    if kind is CellKind.NOT:
        a, = nets
        return lambda probs, _a=a: (1.0 - probs[_a],)
    if kind is CellKind.MUX2:
        s, a, b = nets
        return lambda probs, _s=s, _a=a, _b=b: (
            (1.0 - probs[_s]) * probs[_a] + probs[_s] * probs[_b],
        )
    if kind is CellKind.HA:
        a, b = nets
        def f_ha(probs, _a=a, _b=b):
            pa, pb = probs[_a], probs[_b]
            return (pa * (1.0 - pb) + pb * (1.0 - pa), pa * pb)
        return f_ha
    if kind is CellKind.FA:
        a, b, c = nets
        def f_fa(probs, _a=a, _b=b, _c=c):
            pa, pb, pc = probs[_a], probs[_b], probs[_c]
            prod = (1.0 - 2.0 * pa) * (1.0 - 2.0 * pb) * (1.0 - 2.0 * pc)
            carry = pa * pb + pc * (pa * (1.0 - pb) + pb * (1.0 - pa))
            return ((1.0 - prod) / 2.0, carry)
        return f_fa
    if kind in (CellKind.AND, CellKind.NAND):
        inv = kind is CellKind.NAND
        if n == 2:
            a, b = nets
            if inv:
                return lambda probs, _a=a, _b=b: (
                    1.0 - probs[_a] * probs[_b],
                )
            return lambda probs, _a=a, _b=b: (probs[_a] * probs[_b],)
        def f_and(probs, _n=nets, _inv=inv):
            p = 1.0
            for net in _n:
                p *= probs[net]
            return (1.0 - p,) if _inv else (p,)
        return f_and
    if kind in (CellKind.OR, CellKind.NOR):
        inv = kind is CellKind.NOR
        if n == 2:
            a, b = nets
            if inv:
                return lambda probs, _a=a, _b=b: (
                    (1.0 - probs[_a]) * (1.0 - probs[_b]),
                )
            return lambda probs, _a=a, _b=b: (
                1.0 - (1.0 - probs[_a]) * (1.0 - probs[_b]),
            )
        def f_or(probs, _n=nets, _inv=inv):
            q = 1.0
            for net in _n:
                q *= 1.0 - probs[net]
            return (q,) if _inv else (1.0 - q,)
        return f_or
    if kind in (CellKind.XOR, CellKind.XNOR):
        inv = kind is CellKind.XNOR
        def f_xor(probs, _n=nets, _inv=inv):
            prod = 1.0
            for net in _n:
                prod *= 1.0 - 2.0 * probs[net]
            p_odd = (1.0 - prod) / 2.0
            return (1.0 - p_odd,) if _inv else (p_odd,)
        return f_xor
    return _prob_table_generic(kind, nets)


def _density_table_generic(kind: CellKind, nets):
    """Truth-table Boolean-difference fallback (seed enumeration order)."""
    from itertools import product as iter_product

    from repro.netlist.cells import OUTPUT_COUNT

    evaluator = _EVALUATORS[kind]
    n_out = OUTPUT_COUNT[kind]
    arity = len(nets)

    def f(probs, dens, _nets=nets, _e=evaluator, _n_out=n_out, _ar=arity):
        totals = [0.0] * _n_out
        for pin in range(_ar):
            d_in = dens[_nets[pin]]
            if d_in == 0.0:
                continue
            others = [i for i in range(_ar) if i != pin]
            diff = [0.0] * _n_out
            for combo in iter_product((0, 1), repeat=len(others)):
                weight = 1.0
                assignment = [0] * _ar
                for idx, bit in zip(others, combo):
                    assignment[idx] = bit
                    p = probs[_nets[idx]]
                    weight *= p if bit else 1.0 - p
                assignment[pin] = 0
                low = _e(assignment)
                assignment[pin] = 1
                high = _e(assignment)
                for k in range(_n_out):
                    if low[k] != high[k]:
                        diff[k] += weight
            for k in range(_n_out):
                totals[k] += diff[k] * d_in
        return tuple(totals)

    return f


def _fuse_density(kind: CellKind, nets: Tuple[int, ...]):
    """Build the fused transition-density kernel for one cell."""
    n = len(nets)
    if kind in (CellKind.CONST0, CellKind.CONST1):
        return lambda probs, dens: (0.0,)
    if kind in (CellKind.BUF, CellKind.DFF, CellKind.NOT):
        a, = nets
        return lambda probs, dens, _a=a: (dens[_a],)
    if kind in (CellKind.XOR, CellKind.XNOR):
        # Every pin is always sensitised: D(y) = sum_i D(x_i).
        def f_xor(probs, dens, _n=nets):
            total = 0.0
            for net in _n:
                total += dens[net]
            return (total,)
        return f_xor
    if kind is CellKind.MUX2:
        s, a, b = nets
        def f_mux(probs, dens, _s=s, _a=a, _b=b):
            ps, pa, pb = probs[_s], probs[_a], probs[_b]
            return (
                (pa * (1.0 - pb) + pb * (1.0 - pa)) * dens[_s]
                + (1.0 - ps) * dens[_a]
                + ps * dens[_b],
            )
        return f_mux
    if kind is CellKind.HA:
        a, b = nets
        def f_ha(probs, dens, _a=a, _b=b):
            da, db = dens[_a], dens[_b]
            return (da + db, probs[_b] * da + probs[_a] * db)
        return f_ha
    if kind is CellKind.FA:
        a, b, c = nets
        def f_fa(probs, dens, _a=a, _b=b, _c=c):
            pa, pb, pc = probs[_a], probs[_b], probs[_c]
            da, db, dc = dens[_a], dens[_b], dens[_c]
            # d(carry)/dx = XOR of the other two inputs (majority).
            return (
                da + db + dc,
                (pb * (1.0 - pc) + pc * (1.0 - pb)) * da
                + (pa * (1.0 - pc) + pc * (1.0 - pa)) * db
                + (pa * (1.0 - pb) + pb * (1.0 - pa)) * dc,
            )
        return f_fa
    if kind in (CellKind.AND, CellKind.NAND):
        # dy/dx_i = AND of the other inputs (inversion cancels out).
        if n == 2:
            a, b = nets
            return lambda probs, dens, _a=a, _b=b: (
                probs[_b] * dens[_a] + probs[_a] * dens[_b],
            )
        def f_and(probs, dens, _n=nets):
            total = 0.0
            for pin, net in enumerate(_n):
                d_in = dens[net]
                if d_in == 0.0:
                    continue
                w = 1.0
                for j, other in enumerate(_n):
                    if j != pin:
                        w *= probs[other]
                total += w * d_in
            return (total,)
        return f_and
    if kind in (CellKind.OR, CellKind.NOR):
        if n == 2:
            a, b = nets
            return lambda probs, dens, _a=a, _b=b: (
                (1.0 - probs[_b]) * dens[_a]
                + (1.0 - probs[_a]) * dens[_b],
            )
        def f_or(probs, dens, _n=nets):
            total = 0.0
            for pin, net in enumerate(_n):
                d_in = dens[net]
                if d_in == 0.0:
                    continue
                w = 1.0
                for j, other in enumerate(_n):
                    if j != pin:
                        w *= 1.0 - probs[other]
                total += w * d_in
            return (total,)
        return f_or
    return _density_table_generic(kind, nets)


@dataclass(frozen=True)
class CompiledCircuit:
    """Flat arrays mirroring one :class:`Circuit` at one version.

    Instances are immutable snapshots; obtain them via
    :func:`compile_circuit`, never by mutating an existing one.
    """

    name: str
    version: int
    n_nets: int
    inputs: Tuple[int, ...]
    input_set: frozenset
    outputs: Tuple[int, ...]
    driven: Tuple[bool, ...]
    cell_kinds: Tuple[CellKind, ...]
    cell_inputs: Tuple[Tuple[int, ...], ...]
    cell_outputs: Tuple[Tuple[int, ...], ...]
    cell_eval: Tuple[Callable[[Sequence[int]], Tuple[int, ...]], ...]
    #: Per-cell fused kernels (see :func:`_fuse_cell`): read the flat
    #: ``values`` array directly via captured net indices — no
    #: per-evaluation input-list allocation.  Shared by both timed
    #: backends and :meth:`evaluate_flat`.
    cell_eval_fused: Tuple[Callable[[Sequence[int]], Tuple[int, ...]], ...]
    #: Per-cell fused bitmask kernels (see :func:`_fuse_bits`): same
    #: fusion over a per-net integer-bitmask array, one independent
    #: lane per bit.  The bit-parallel backend packs clock cycles into
    #: lanes; the waveform backend packs intra-cycle event times.
    cell_eval_bits: Tuple[Callable[[Sequence[int], int], Tuple[int, ...]], ...]
    cell_is_seq: Tuple[bool, ...]
    comb_fanout: Tuple[Tuple[int, ...], ...]
    topo: Tuple[int, ...]
    ff_cells: Tuple[int, ...]
    ff_d: Tuple[int, ...]
    ff_q: Tuple[int, ...]
    out_specs: Tuple[Tuple[Tuple[int, int], ...], ...] | None
    max_delay: int

    # ------------------------------------------------------------------
    # The estimator kernel tables are built lazily on first access:
    # compiles on the simulation path (every backend, every shard
    # worker) never pay for them, while the one compiled snapshot per
    # (circuit, delay model) still amortizes them across estimator
    # calls.  ``cached_property`` writes straight into the instance
    # ``__dict__``, which the frozen dataclass permits.

    @cached_property
    def cell_prob(
        self,
    ) -> Tuple[Callable[[Sequence[float]], Tuple[float, ...]], ...]:
        """Per-cell fused signal-probability kernels (:func:`_fuse_prob`).

        Flat per-net float array in, output one-probabilities out.
        The estimation layer (:mod:`repro.estimate`) runs one pass
        over these instead of branching on kinds per cell per
        evaluation.
        """
        return tuple(
            _fuse_prob(kind, nets)
            for kind, nets in zip(self.cell_kinds, self.cell_inputs)
        )

    @cached_property
    def cell_density(
        self,
    ) -> Tuple[
        Callable[[Sequence[float], Sequence[float]], Tuple[float, ...]], ...
    ]:
        """Per-cell fused transition-density kernels (:func:`_fuse_density`).

        ``(probs, dens)`` flat arrays in, output Najm transition
        densities out.
        """
        return tuple(
            _fuse_density(kind, nets)
            for kind, nets in zip(self.cell_kinds, self.cell_inputs)
        )

    # ------------------------------------------------------------------
    # Generated flat passes (see repro.netlist.codegen): whole-circuit
    # straight-line kernels exec-compiled on first access and memoized
    # with the snapshot, exactly like the estimator kernel tables.

    @cached_property
    def settle_pass(self):
        """Generated ``f(v, M)`` zero-delay bitmask pass (codegen tier).

        Statement-for-statement equivalent to running every
        :attr:`cell_eval_bits` kernel over the topo order; accepted by
        :func:`settle_lanes` as ``comb_pass``.
        """
        from repro.netlist import codegen

        return codegen.build_settle_pass(self)

    @cached_property
    def waveform_pass(self):
        """Generated ``f(w, ch, vals, F)`` timed waveform-lane pass.

        Only available on delay-compiled snapshots (``out_specs`` not
        ``None``); transport delays are baked in as literal shifts.
        """
        from repro.netlist import codegen

        return codegen.build_waveform_pass(self)

    @cached_property
    def prob_pass(self):
        """Generated ``f(p)`` signal-probability topo pass (in place)."""
        from repro.netlist import codegen

        return codegen.build_prob_pass(self)

    @cached_property
    def density_pass(self):
        """Generated ``f(p, d)`` transition-density topo pass (in place)."""
        from repro.netlist import codegen

        return codegen.build_density_pass(self)

    @cached_property
    def cell_levels(self):
        """Per-cell structural levels (:func:`repro.netlist.codegen.levelize_cells`).

        Delta-compiled snapshots pre-seed this by splicing the parent's
        levels and recomputing only at/downstream of the edit frontier
        (:func:`repro.netlist.codegen.levelize_cells_delta`).
        """
        from repro.netlist import codegen

        return codegen.levelize_cells(self)

    @cached_property
    def cell_groups(self):
        """Levelized vectorization groups (:func:`repro.netlist.codegen.level_groups`)."""
        from repro.netlist import codegen

        return codegen.level_groups(self)

    # ------------------------------------------------------------------
    def evaluate_flat(
        self,
        input_values: Sequence[int],
        state: Mapping[int, int] | None = None,
    ) -> Tuple[List[int], Dict[int, int]]:
        """Zero-delay functional evaluation of one clock cycle.

        *input_values* are bits in ``inputs`` order; *state* maps DFF
        cell index -> stored bit (missing entries default to 0).
        Returns ``(values, next_state)`` where *values* is a flat list
        indexed by net (undriven non-input nets read 0).
        """
        if len(input_values) != len(self.inputs):
            raise ValueError(
                f"expected {len(self.inputs)} input values, "
                f"got {len(input_values)}"
            )
        state = state or {}
        values = [0] * self.n_nets
        for net, v in zip(self.inputs, input_values):
            values[net] = int(bool(v))
        for i, ci in enumerate(self.ff_cells):
            values[self.ff_q[i]] = state.get(ci, 0)
        cell_outputs = self.cell_outputs
        fused = self.cell_eval_fused
        for ci in self.topo:
            outs = fused[ci](values)
            for out_net, v in zip(cell_outputs[ci], outs):
                values[out_net] = v
        next_state = {
            ci: values[self.ff_d[i]] for i, ci in enumerate(self.ff_cells)
        }
        return values, next_state


def settle_lanes(
    cc: CompiledCircuit,
    net_bits: List[int],
    mask: int,
    base_values: Sequence[int],
    comb_pass: Callable[[List[int], int], None] | None = None,
) -> List[int]:
    """Zero-delay settle of a lane-packed batch, in place.

    *net_bits* holds one integer bitmask per net with the primary-input
    lanes already filled (bit *k* = value in lane *k*); *mask* selects
    the active lanes; *base_values* are the settled values before the
    batch (used to seed flipflop outputs).  On return every driven
    net's mask holds its settled value per lane, including flipflop
    ``q`` nets, whose cross-lane dependency ``q[k] = d[k-1]`` is
    resolved by fixpoint iteration (each pass extends the correct
    prefix by at least one register stage).

    *comb_pass* overrides the combinational pass — pass
    :attr:`CompiledCircuit.settle_pass` to run the generated flat
    kernel instead of the per-cell fused-kernel loop (bit-identical by
    construction).

    Returns the converged ``q`` lane masks, parallel to
    :attr:`CompiledCircuit.ff_cells`.  Shared by the bit-parallel
    backend (lane = clock cycle) and the waveform/codegen backends'
    settled pre-pass.
    """
    if comb_pass is None:
        kernels = cc.cell_eval_bits
        cell_outputs = cc.cell_outputs
        topo = cc.topo

        def comb_pass(bits, m):
            for ci in topo:
                outs = kernels[ci](bits, m)
                for out_net, v in zip(cell_outputs[ci], outs):
                    bits[out_net] = v

    ff_cells, ff_d, ff_q = cc.ff_cells, cc.ff_d, cc.ff_q
    if not ff_cells:
        comb_pass(net_bits, mask)
        return []
    nbits = mask.bit_length()
    q_init = [base_values[d] & 1 for d in ff_d]
    q_bits = list(q_init)
    for _ in range(nbits + 1):
        for i, qn in enumerate(ff_q):
            net_bits[qn] = q_bits[i]
        comb_pass(net_bits, mask)
        new_q = [
            ((net_bits[ff_d[i]] << 1) | q_init[i]) & mask
            for i in range(len(ff_cells))
        ]
        if new_q == q_bits:
            return q_bits
        q_bits = new_q
    raise RuntimeError(  # pragma: no cover - mathematically unreachable
        "flipflop fixpoint did not converge"
    )


#: circuit -> OrderedDict{delay cache token -> CompiledCircuit} (LRU)
_CACHE: "WeakKeyDictionary" = WeakKeyDictionary()

#: Per-circuit bound on memoized (delay model -> compiled form)
#: entries.  Small on purpose: a run touches a handful of delay models
#: at a time, while a long-lived service process may sweep hundreds —
#: without a cap the memo would retain all of them for as long as the
#: circuit lives.
MEMO_DELAY_MODELS = 8


def compile_circuit(
    circuit: "Circuit", delay_model: "DelayModel | None" = None
) -> CompiledCircuit:
    """Return the (memoized) compiled form of *circuit*.

    With *delay_model* ``None`` the compiled form carries no delay
    information (``out_specs is None``) — enough for functional
    evaluation and the bit-parallel backend.  Each distinct delay
    model (by :meth:`DelayModel.cache_token`) gets its own entry, up
    to :data:`MEMO_DELAY_MODELS` per circuit (least-recently-used
    eviction beyond that); mutating the circuit invalidates all of
    them.
    """
    key: Hashable = None if delay_model is None else delay_model.cache_token()
    per_circuit = _CACHE.get(circuit)
    if per_circuit is None:
        per_circuit = _CACHE[circuit] = OrderedDict()
    cached = per_circuit.get(key)
    if cached is not None and cached.version == circuit.version:
        per_circuit.move_to_end(key)
        return cached
    if per_circuit and next(iter(per_circuit.values())).version != circuit.version:
        per_circuit.clear()  # the whole snapshot generation is stale
    with obs.span(
        "compile",
        circuit=getattr(circuit, "name", "?"),
        delay=key is not None,
    ):
        obs.inc("compile.full")
        compiled = _build(circuit, delay_model)
    per_circuit[key] = compiled
    per_circuit.move_to_end(key)
    while len(per_circuit) > MEMO_DELAY_MODELS:
        per_circuit.popitem(last=False)
    return compiled


# ---------------------------------------------------------------------------
# Canonical fingerprints
# ---------------------------------------------------------------------------

def content_digest(doc: object) -> str:
    """SHA-256 over the canonical ``repr`` of a pure-literal document.

    *doc* must be built only from str / int / float / tuple so that
    ``repr`` is deterministic across processes and Python versions.
    The one digest primitive every fingerprint in the system uses
    (circuit/delay here, stimulus specs, run keys), so the determinism
    contract lives in exactly one place.
    """
    return hashlib.sha256(repr(doc).encode("utf-8")).hexdigest()


_digest = content_digest


def circuit_fingerprint(circuit: "Circuit") -> str:
    """Stable content hash of a circuit's structure.

    Covers topology, cell kinds and net names; port order (which is
    semantically significant — input vectors are positional, output
    words are LSB-first) is preserved, while net and cell *insertion*
    order is canonicalized away by sorting name-based records.  Any
    change to connectivity, a cell kind, a net name, or the port lists
    changes the hash; re-building the identical netlist in a different
    order does not.

    Prefer :meth:`Circuit.fingerprint`, which memoizes this per
    circuit version.
    """
    nets = circuit.nets
    cells = tuple(sorted(
        (
            cell.kind.value,
            tuple(nets[n].name for n in cell.inputs),
            tuple(nets[n].name for n in cell.outputs),
        )
        for cell in circuit.cells
    ))
    doc = (
        "circuit-v1",
        tuple(nets[n].name for n in circuit.inputs),
        tuple(nets[n].name for n in circuit.outputs),
        tuple(sorted(net.name for net in nets)),
        cells,
    )
    return _digest(doc)


#: Fingerprint shared by every zero-delay regime (``delay_model is
#: None``, :class:`~repro.sim.delays.ZeroDelay`): no intra-cycle time
#: resolution exists, so all of them produce identical results.
ZERO_DELAY_FINGERPRINT = _digest(("delay-v1", "zero"))


def delay_fingerprint(
    circuit: "Circuit", delay_model: "DelayModel | None"
) -> str:
    """Stable content hash of a delay model *as applied to* a circuit.

    Hashing the resolved per-cell-output delays (rather than the model
    object) makes the fingerprint exact for stateful models such as
    :class:`~repro.sim.delays.LoadDelay`, and makes differently-named
    models that assign identical delays hash identically.  Records are
    keyed by net names, so the hash is insertion-order independent
    like :func:`circuit_fingerprint`.
    """
    from repro.sim.delays import ZeroDelay

    if delay_model is None or isinstance(delay_model, ZeroDelay):
        return ZERO_DELAY_FINGERPRINT
    cc = compile_circuit(circuit, delay_model)
    nets = circuit.nets
    rows = tuple(sorted(
        (
            cell.kind.value,
            tuple(nets[n].name for n in cell.inputs),
            tuple((nets[out].name, d) for out, d in spec),
        )
        for cell, spec in zip(circuit.cells, cc.out_specs)
    ))
    return _digest(("delay-v1", rows))


def _build(
    circuit: "Circuit", delay_model: "DelayModel | None"
) -> CompiledCircuit:
    n_nets = len(circuit.nets)
    cell_kinds = []
    cell_inputs = []
    cell_outputs = []
    cell_eval = []
    cell_eval_fused = []
    cell_eval_bits = []
    cell_is_seq = []
    ff_cells: List[int] = []
    ff_d: List[int] = []
    ff_q: List[int] = []
    out_specs: List[Tuple[Tuple[int, int], ...]] | None = (
        None if delay_model is None else []
    )
    max_delay = 0
    for cell in circuit.cells:
        cell_kinds.append(cell.kind)
        cell_inputs.append(cell.inputs)
        cell_outputs.append(cell.outputs)
        cell_eval.append(_EVALUATORS[cell.kind])
        cell_eval_fused.append(_fuse_cell(cell.kind, cell.inputs))
        cell_eval_bits.append(_fuse_bits(cell.kind, cell.inputs))
        seq = cell.is_sequential
        cell_is_seq.append(seq)
        if seq:
            ff_cells.append(cell.index)
            ff_d.append(cell.inputs[0])
            ff_q.append(cell.outputs[0])
            if out_specs is not None:
                out_specs.append(((cell.outputs[0], 0),))
        elif out_specs is not None:
            spec = tuple(
                (out, delay_model.delay(cell, pos))
                for pos, out in enumerate(cell.outputs)
            )
            out_specs.append(spec)
            for _, d in spec:
                if d > max_delay:
                    max_delay = d
    comb_fanout: List[Tuple[int, ...]] = [
        tuple(ci for ci in net.fanout if not cell_is_seq[ci])
        for net in circuit.nets
    ]
    return CompiledCircuit(
        name=circuit.name,
        version=circuit.version,
        n_nets=n_nets,
        inputs=tuple(circuit.inputs),
        input_set=frozenset(circuit.inputs),
        outputs=tuple(circuit.outputs),
        driven=tuple(net.driver is not None for net in circuit.nets),
        cell_kinds=tuple(cell_kinds),
        cell_inputs=tuple(cell_inputs),
        cell_outputs=tuple(cell_outputs),
        cell_eval=tuple(cell_eval),
        cell_eval_fused=tuple(cell_eval_fused),
        cell_eval_bits=tuple(cell_eval_bits),
        cell_is_seq=tuple(cell_is_seq),
        comb_fanout=tuple(comb_fanout),
        topo=tuple(c.index for c in circuit.topological_cells()),
        ff_cells=tuple(ff_cells),
        ff_d=tuple(ff_d),
        ff_q=tuple(ff_q),
        out_specs=None if out_specs is None else tuple(out_specs),
        max_delay=max_delay,
    )


# ---------------------------------------------------------------------------
# Delta compilation: patch the parent snapshot instead of rebuilding
# ---------------------------------------------------------------------------

def compile_delta(
    parent: "Circuit",
    delta,
    child: "Circuit",
    delay_model: "DelayModel | None" = None,
) -> CompiledCircuit:
    """Compile *child* by patching *parent*'s compiled snapshot.

    *delta* is the :class:`~repro.netlist.delta.CircuitDelta` from
    *parent* to *child* (which must be index-aligned with the parent —
    the shape :meth:`CircuitDelta.apply` produces).  Fused kernels are
    reused for every untouched parent cell, the topological order is
    spliced (only the combinational fanout cone of the touched cells
    is re-sorted), and the structural levelization is recomputed only
    at/downstream of the edit frontier.  The result is inserted into
    the ordinary ``(Circuit, DelayModel)`` memo, so later
    :func:`compile_circuit` calls on *child* hit it.

    Bit-identical to a from-scratch :func:`_build` — the property
    suite pins evaluation, probability and density behaviour.  When
    the delta is not pure-additive (indices shifted) or does not match
    *parent*, this transparently falls back to :func:`compile_circuit`.
    """
    key: Hashable = None if delay_model is None else delay_model.cache_token()
    per_circuit = _CACHE.get(child)
    if per_circuit is not None:
        cached = per_circuit.get(key)
        if cached is not None and cached.version == child.version:
            per_circuit.move_to_end(key)
            return cached
    if (
        not delta.is_pure_addition
        or len(parent.nets) != delta.parent_n_nets
        or len(parent.cells) != delta.parent_n_cells
        or parent.fingerprint() != delta.parent_fingerprint
    ):
        obs.inc("compile.delta_fallback")
        return compile_circuit(child, delay_model)
    parent_cc = compile_circuit(parent, delay_model)
    with obs.span(
        "compile.delta",
        circuit=getattr(child, "name", "?"),
        delay=key is not None,
        touched=len(delta.touched_cells),
    ):
        obs.inc("compile.delta")
        compiled = _build_delta(parent_cc, delta, child, delay_model)
    if per_circuit is None:
        per_circuit = _CACHE[child] = OrderedDict()
    elif per_circuit and next(
        iter(per_circuit.values())
    ).version != child.version:
        per_circuit.clear()
    per_circuit[key] = compiled
    per_circuit.move_to_end(key)
    while len(per_circuit) > MEMO_DELAY_MODELS:
        per_circuit.popitem(last=False)
    return compiled


def _cone_topo(child: "Circuit", cone) -> List[int]:
    """Kahn sub-sort of the (combinational) cone cells of *child*."""
    cells = child.cells
    nets = child.nets
    indeg: Dict[int, int] = {}
    ready: List[int] = []
    for ci in cone:
        deg = 0
        for n in cells[ci].inputs:
            drv = nets[n].driver
            if drv is not None and drv[0] in cone:
                deg += 1
        indeg[ci] = deg
        if deg == 0:
            ready.append(ci)
    order: List[int] = []
    while ready:
        ci = ready.pop()
        order.append(ci)
        for out in cells[ci].outputs:
            for reader in nets[out].fanout:
                deg = indeg.get(reader)
                if deg is not None:
                    indeg[reader] = deg - 1
                    if deg == 1:
                        ready.append(reader)
    if len(order) != len(cone):
        raise ValueError(
            f"combinational cycle through the edit cone of {child.name!r}"
        )
    return order


def _build_delta(
    parent_cc: CompiledCircuit,
    delta,
    child: "Circuit",
    delay_model: "DelayModel | None",
) -> CompiledCircuit:
    from repro.netlist import codegen
    from repro.netlist.delta import comb_fanout_cone

    touched_names = delta.touched_cells
    parent_n_cells = delta.parent_n_cells
    cells = child.cells
    nets = child.nets

    cell_kinds = []
    cell_inputs = []
    cell_outputs = []
    cell_eval = []
    cell_eval_fused = []
    cell_eval_bits = []
    cell_is_seq = []
    reused: List[bool] = []
    touched_idx: List[int] = []
    ff_cells: List[int] = []
    ff_d: List[int] = []
    ff_q: List[int] = []
    out_specs: List[Tuple[Tuple[int, int], ...]] | None = (
        None if delay_model is None else []
    )
    max_delay = 0
    parent_fused = parent_cc.cell_eval_fused
    parent_bits = parent_cc.cell_eval_bits
    for cell in cells:
        ci = cell.index
        reuse = ci < parent_n_cells and cell.name not in touched_names
        reused.append(reuse)
        cell_kinds.append(cell.kind)
        cell_inputs.append(cell.inputs)
        cell_outputs.append(cell.outputs)
        cell_eval.append(_EVALUATORS[cell.kind])
        if reuse:
            # Index alignment makes the parent's closures (which
            # captured net indices) valid verbatim in the child.
            cell_eval_fused.append(parent_fused[ci])
            cell_eval_bits.append(parent_bits[ci])
        else:
            touched_idx.append(ci)
            cell_eval_fused.append(_fuse_cell(cell.kind, cell.inputs))
            cell_eval_bits.append(_fuse_bits(cell.kind, cell.inputs))
        seq = cell.is_sequential
        cell_is_seq.append(seq)
        if seq:
            ff_cells.append(ci)
            ff_d.append(cell.inputs[0])
            ff_q.append(cell.outputs[0])
            if out_specs is not None:
                out_specs.append(((cell.outputs[0], 0),))
        elif out_specs is not None:
            # Delays are re-resolved for every cell, not spliced: a
            # load-dependent model may change an untouched cell's
            # delay when its fanout gained a reader.
            spec = tuple(
                (out, delay_model.delay(cell, pos))
                for pos, out in enumerate(cell.outputs)
            )
            out_specs.append(spec)
            for _, d in spec:
                if d > max_delay:
                    max_delay = d

    cone = comb_fanout_cone(child, touched_idx)
    if cone:
        prefix = [ci for ci in parent_cc.topo if ci not in cone]
        topo = tuple(prefix + _cone_topo(child, cone))
    else:
        topo = parent_cc.topo

    compiled = CompiledCircuit(
        name=child.name,
        version=child.version,
        n_nets=len(nets),
        inputs=tuple(child.inputs),
        input_set=frozenset(child.inputs),
        outputs=tuple(child.outputs),
        driven=tuple(net.driver is not None for net in nets),
        cell_kinds=tuple(cell_kinds),
        cell_inputs=tuple(cell_inputs),
        cell_outputs=tuple(cell_outputs),
        cell_eval=tuple(cell_eval),
        cell_eval_fused=tuple(cell_eval_fused),
        cell_eval_bits=tuple(cell_eval_bits),
        cell_is_seq=tuple(cell_is_seq),
        comb_fanout=tuple(
            tuple(ci for ci in net.fanout if not cell_is_seq[ci])
            for net in nets
        ),
        topo=topo,
        ff_cells=tuple(ff_cells),
        ff_d=tuple(ff_d),
        ff_q=tuple(ff_q),
        out_specs=None if out_specs is None else tuple(out_specs),
        max_delay=max_delay,
    )
    # Pre-seed the lazy tables that splice cheaply.  Levelization only
    # recomputes the cone; the estimator kernel tables reuse parent
    # closures for untouched cells, but only when the parent has (or
    # will plausibly need) them — sim-only snapshots never pay.
    compiled.__dict__["cell_levels"] = codegen.levelize_cells_delta(
        parent_cc, compiled, cone
    )
    if delay_model is None or "cell_prob" in parent_cc.__dict__:
        parent_prob = parent_cc.cell_prob
        compiled.__dict__["cell_prob"] = tuple(
            parent_prob[ci] if reused[ci]
            else _fuse_prob(cell_kinds[ci], cell_inputs[ci])
            for ci in range(len(cells))
        )
    if delay_model is None or "cell_density" in parent_cc.__dict__:
        parent_density = parent_cc.cell_density
        compiled.__dict__["cell_density"] = tuple(
            parent_density[ci] if reused[ci]
            else _fuse_density(cell_kinds[ci], cell_inputs[ci])
            for ci in range(len(cells))
        )
    return compiled
