"""First-class circuit edit deltas: what a transform changed, by name.

A :class:`CircuitDelta` records the structural difference between a
parent :class:`~repro.netlist.circuit.Circuit` and a transformed child
— cells added / removed / rewired, nets added / removed — in purely
*name-based* records, the same canonical identity the fingerprints use
(:func:`repro.netlist.compiled.circuit_fingerprint`).  Two consumers
build on it:

* :meth:`CircuitDelta.apply` replays the delta onto the parent and
  reconstructs the child **index-aligned**: parent nets and cells keep
  their parent indices (for pure-additive deltas), additions append at
  the end.  The replayed circuit is fingerprint-identical to the
  transform-built child (the property suite pins this), which makes it
  the canonical candidate object downstream — compiled-form patching
  (:func:`repro.netlist.compiled.compile_delta`) and cone-limited
  re-estimation (:mod:`repro.estimate`) splice parent arrays by index
  and rely on this alignment.
* The fanout-cone helpers bound *what can have changed*: every net
  outside the transitive fanout cone of the touched cells has an
  identical transitive fanin in parent and child, so any per-net
  analysis result (probability, density, arrival, simulated counts)
  is provably identical there and can be reused from the parent.

A delta is **pure-additive** (:attr:`CircuitDelta.is_pure_addition`)
when nothing was removed; rewired pins are fine.  Balancing and
retiming-from-combinational produce pure-additive deltas; the removal
passes (cleanup, buffer stripping, retiming circuits that already hold
registers) do not, and their consumers fall back to whole-circuit
recompilation — the pre-existing ``_rebuild`` path stays correct for
every edit, deltas only accelerate the common local ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.netlist.cells import Cell, CellKind
from repro.netlist.circuit import Circuit

__all__ = [
    "CellRecord",
    "CircuitDelta",
    "comb_fanout_cone",
    "cone_net_indices",
    "diff_circuits",
    "full_fanout_cone",
    "touched_cell_indices",
]

#: One cell, canonically: (name, kind value, input net names, output
#: net names, delay hint).  Matches what the circuit fingerprint hashes
#: plus the delay hint (which the fingerprint ignores but rebuilding
#: must preserve).
CellRecord = Tuple[
    str, str, Tuple[str, ...], Tuple[str, ...], Optional[Tuple[int, ...]]
]


def _cell_record(circuit: Circuit, cell: Cell) -> CellRecord:
    nets = circuit.nets
    return (
        cell.name,
        cell.kind.value,
        tuple(nets[n].name for n in cell.inputs),
        tuple(nets[n].name for n in cell.outputs),
        cell.delay_hint,
    )


@dataclass(frozen=True)
class CircuitDelta:
    """The edit taking one parent circuit to one child circuit."""

    parent_fingerprint: str
    parent_n_nets: int
    parent_n_cells: int
    child_name: str
    #: Parent net / cell names absent from the child.
    removed_nets: Tuple[str, ...]
    removed_cells: Tuple[str, ...]
    #: Child-only nets, in child creation order.
    added_nets: Tuple[str, ...]
    #: Child-only cells, in child creation order.
    added_cells: Tuple[CellRecord, ...]
    #: Cells present in both whose record (kind, pins, hint) changed.
    rewired_cells: Tuple[CellRecord, ...]
    #: Child primary-input net names, in port order.
    inputs: Tuple[str, ...]
    #: Child primary-output net names, in port order.
    outputs: Tuple[str, ...]
    #: Child name aliases: (alias, canonical net name).  Transforms do
    #: not create aliases today; recorded for external edits.
    aliases: Tuple[Tuple[str, str], ...] = ()

    @property
    def is_pure_addition(self) -> bool:
        """No removals: replay preserves every parent net/cell index."""
        return not self.removed_nets and not self.removed_cells

    @property
    def is_identity(self) -> bool:
        """Nothing changed structurally (ports may still differ)."""
        return (
            not self.removed_nets
            and not self.removed_cells
            and not self.added_nets
            and not self.added_cells
            and not self.rewired_cells
        )

    @property
    def touched_cells(self) -> FrozenSet[str]:
        """Names of cells whose pins or kind differ from the parent."""
        return frozenset(
            rec[0] for rec in self.rewired_cells + self.added_cells
        )

    # ------------------------------------------------------------------
    def apply(self, parent: Circuit) -> Circuit:
        """Replay this delta onto *parent*, reconstructing the child.

        The result is fingerprint-identical to the circuit the delta
        was diffed from.  For pure-additive deltas the replay is also
        **index-preserving**: parent net *k* is child net *k* and
        parent cell *k* is child cell *k*, with additions appended —
        the alignment every incremental consumer splices on.

        Raises ``ValueError`` if *parent* does not match the recorded
        parent fingerprint.
        """
        if parent.fingerprint() != self.parent_fingerprint:
            raise ValueError(
                f"delta was taken against a different parent "
                f"(fingerprint mismatch for {parent.name!r})"
            )
        removed_nets = set(self.removed_nets)
        removed_cells = set(self.removed_cells)
        rewired = {rec[0]: rec for rec in self.rewired_cells}

        child = Circuit(self.child_name)
        for net in parent.nets:
            if net.name not in removed_nets:
                child.new_net(net.name)
        for name in self.added_nets:
            child.new_net(name)
        for name in self.inputs:
            child.inputs.append(child.net(name))

        pure = self.is_pure_addition
        parent_nets = parent.nets
        for cell in parent.cells:
            if cell.name in removed_cells:
                continue
            rec = rewired.get(cell.name)
            if rec is None:
                if pure:
                    # Index-preserving fast path: net indices coincide.
                    ins: List[int] = list(cell.inputs)
                    outs: List[int] = list(cell.outputs)
                else:
                    ins = [
                        child.net(parent_nets[n].name) for n in cell.inputs
                    ]
                    outs = [
                        child.net(parent_nets[n].name) for n in cell.outputs
                    ]
                child.add_cell(
                    cell.kind, ins, outs,
                    name=cell.name, delay_hint=cell.delay_hint,
                )
            else:
                _, kind_value, in_names, out_names, hint = rec
                child.add_cell(
                    CellKind(kind_value),
                    [child.net(n) for n in in_names],
                    [child.net(n) for n in out_names],
                    name=cell.name, delay_hint=hint,
                )
        for name, kind_value, in_names, out_names, hint in self.added_cells:
            child.add_cell(
                CellKind(kind_value),
                [child.net(n) for n in in_names],
                [child.net(n) for n in out_names],
                name=name, delay_hint=hint,
            )
        for name in self.outputs:
            child.mark_output(child.net(name))
        for alias, target in self.aliases:
            if alias not in child._net_by_name:
                child._net_by_name[alias] = child.net(target)
        return child


def diff_circuits(parent: Circuit, child: Circuit) -> CircuitDelta:
    """The name-based structural delta taking *parent* to *child*.

    A post-hoc diff over canonical cell records — O(nets + cells) and
    independent of how the transform built the child, so every
    transform (and any external edit) gets a correct delta for free.
    """
    parent_net_names = {net.name for net in parent.nets}
    child_net_names = {net.name for net in child.nets}
    parent_cells: Dict[str, CellRecord] = {
        cell.name: _cell_record(parent, cell) for cell in parent.cells
    }
    child_cell_names = {cell.name for cell in child.cells}

    added_cells: List[CellRecord] = []
    rewired_cells: List[CellRecord] = []
    for cell in child.cells:
        rec = _cell_record(child, cell)
        old = parent_cells.get(cell.name)
        if old is None:
            added_cells.append(rec)
        elif rec != old:
            rewired_cells.append(rec)

    return CircuitDelta(
        parent_fingerprint=parent.fingerprint(),
        parent_n_nets=len(parent.nets),
        parent_n_cells=len(parent.cells),
        child_name=child.name,
        removed_nets=tuple(
            net.name for net in parent.nets
            if net.name not in child_net_names
        ),
        removed_cells=tuple(
            cell.name for cell in parent.cells
            if cell.name not in child_cell_names
        ),
        added_nets=tuple(
            net.name for net in child.nets
            if net.name not in parent_net_names
        ),
        added_cells=tuple(added_cells),
        rewired_cells=tuple(rewired_cells),
        inputs=tuple(child.net_name(n) for n in child.inputs),
        outputs=tuple(child.net_name(n) for n in child.outputs),
        aliases=tuple(_alias_pairs(child)),
    )


def _alias_pairs(circuit: Circuit) -> List[Tuple[str, str]]:
    """(alias, canonical name) entries of a circuit's name table."""
    nets = circuit.nets
    return [
        (alias, nets[idx].name)
        for alias, idx in circuit._net_by_name.items()
        if nets[idx].name != alias
    ]


# ---------------------------------------------------------------------------
# Fanout cones: the reach of an edit
# ---------------------------------------------------------------------------

def touched_cell_indices(child: Circuit, delta: CircuitDelta) -> List[int]:
    """Indices (in *child*) of the delta's rewired and added cells."""
    return sorted(child.cell(name).index for name in delta.touched_cells)


def comb_fanout_cone(
    child: Circuit, seed_cells: Iterable[int]
) -> FrozenSet[int]:
    """Transitive combinational fanout closure of *seed_cells*.

    Registers cut the propagation (their outputs switch at the clock
    edge regardless of input timing) — the cone that bounds what the
    topological order, levelization and transition-instant analysis
    must recompute.  Sequential seed cells are excluded.
    """
    cone: set[int] = set()
    cells = child.cells
    nets = child.nets
    work = [ci for ci in seed_cells if not cells[ci].is_sequential]
    while work:
        ci = work.pop()
        if ci in cone:
            continue
        cone.add(ci)
        for out in cells[ci].outputs:
            for reader in nets[out].fanout:
                if reader not in cone and not cells[reader].is_sequential:
                    work.append(reader)
    return frozenset(cone)


def full_fanout_cone(
    child: Circuit, seed_cells: Iterable[int]
) -> FrozenSet[int]:
    """Transitive fanout closure through *all* cells, registers included.

    A register whose D input lies in the cone carries the change to
    its Q output, so value-level analyses (probabilities, densities,
    simulated waveforms) must treat its downstream as changed too —
    this is the cone that bounds per-net *value* reuse.
    """
    cone: set[int] = set()
    cells = child.cells
    nets = child.nets
    work = list(seed_cells)
    while work:
        ci = work.pop()
        if ci in cone:
            continue
        cone.add(ci)
        for out in cells[ci].outputs:
            for reader in nets[out].fanout:
                if reader not in cone:
                    work.append(reader)
    return frozenset(cone)


def timing_cone_seeds(
    parent: Circuit, child: Circuit, delta: CircuitDelta
) -> List[int]:
    """Seed cells for *timing* cones: touched cells + disturbed drivers.

    Value analyses (compile, probability, density) only need the
    touched cells as cone seeds — a cell whose pins did not change
    computes the same function.  Timing analyses (arrival levels,
    transition instants) additionally depend on the delay model, and a
    *load-dependent* model can re-time an untouched cell when one of
    its output nets gains or loses a reader.  So the timing seed set
    widens to the drivers of every fanout-changed net: nets read by
    added cells, plus the old and new input pins of rewired cells.

    *delta* must be pure-additive and *child* its index-aligned replay
    of *parent* — old parent pin indices are then valid child indices.
    Sequential drivers are skipped (register outputs pin to the clock
    edge under every delay model).
    """
    if not delta.is_pure_addition:
        raise ValueError("timing_cone_seeds requires a pure-additive delta")
    changed_nets: set[int] = set()
    for record in delta.added_cells:
        for pin in record[2]:
            changed_nets.add(child.net(pin))
    for record in delta.rewired_cells:
        for pin in record[2]:
            changed_nets.add(child.net(pin))
        changed_nets.update(parent.cell(record[0]).inputs)
    seeds = set(touched_cell_indices(child, delta))
    cells = child.cells
    for n in changed_nets:
        drv = child.nets[n].driver
        if drv is not None and not cells[drv[0]].is_sequential:
            seeds.add(drv[0])
    return sorted(seeds)


def cone_net_indices(
    child: Circuit,
    cone_cells: Iterable[int],
    delta: CircuitDelta | None = None,
) -> FrozenSet[int]:
    """Net indices whose value may differ from the parent's.

    Outputs of every cone cell, plus (with *delta*) the added nets —
    an added net with no driver still did not exist in the parent, so
    nothing can be reused for it.
    """
    nets: set[int] = set()
    cells = child.cells
    for ci in cone_cells:
        nets.update(cells[ci].outputs)
    if delta is not None:
        for name in delta.added_nets:
            nets.add(child.net(name))
    return frozenset(nets)
