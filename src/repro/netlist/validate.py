"""Structural validation of circuits.

``validate(circuit)`` returns a list of :class:`ValidationIssue`;
``validate(circuit, strict=True)`` raises :class:`ValidationError` if
any issue of severity ``"error"`` is present.  Checks:

* every cell input net is driven (by a cell or a primary input);
* no net has more than one driver (enforced at construction, re-checked);
* no combinational cycles;
* primary outputs reference existing nets;
* floating cell outputs (no fanout, not a primary output) — warning;
* primary inputs that are also driven — error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.netlist.circuit import Circuit


@dataclass(frozen=True)
class ValidationIssue:
    """A single finding from :func:`validate`."""

    severity: str  # "error" | "warning"
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code}: {self.message}"


class ValidationError(ValueError):
    """Raised by ``validate(..., strict=True)`` when errors are present."""

    def __init__(self, issues: List[ValidationIssue]):
        self.issues = issues
        super().__init__(
            "; ".join(str(i) for i in issues if i.severity == "error")
        )


def validate(circuit: Circuit, strict: bool = False) -> List[ValidationIssue]:
    """Run all structural checks on *circuit*."""
    issues: List[ValidationIssue] = []
    input_set = set(circuit.inputs)
    output_set = set(circuit.outputs)

    for net in circuit.nets:
        if net.driver is not None and net.index in input_set:
            issues.append(
                ValidationIssue(
                    "error",
                    "driven-input",
                    f"primary input {net.name!r} is also driven by "
                    f"{circuit.cells[net.driver[0]].name!r}",
                )
            )

    for cell in circuit.cells:
        for n in cell.inputs:
            net = circuit.nets[n]
            if net.driver is None and n not in input_set:
                issues.append(
                    ValidationIssue(
                        "error",
                        "undriven",
                        f"cell {cell.name!r} reads undriven net {net.name!r}",
                    )
                )
        unused = [
            out
            for out in cell.outputs
            if not circuit.nets[out].fanout and out not in output_set
        ]
        # A multi-output cell with at least one used output may leave
        # the others unconnected (e.g. an unused carry-out) — that is
        # normal datapath practice, not a modelling error.
        if unused and len(unused) == len(cell.outputs):
            for out in unused:
                issues.append(
                    ValidationIssue(
                        "warning",
                        "floating",
                        f"net {circuit.nets[out].name!r} driven by "
                        f"{cell.name!r} has no fanout and is not an output",
                    )
                )

    for out in circuit.outputs:
        if not 0 <= out < len(circuit.nets):
            issues.append(
                ValidationIssue(
                    "error", "bad-output", f"output net index {out} out of range"
                )
            )
        else:
            net = circuit.nets[out]
            if net.driver is None and out not in input_set:
                issues.append(
                    ValidationIssue(
                        "warning",
                        "undriven-output",
                        f"primary output {net.name!r} is undriven",
                    )
                )

    try:
        circuit.topological_cells()
    except ValueError as exc:
        issues.append(ValidationIssue("error", "comb-cycle", str(exc)))

    if strict and any(i.severity == "error" for i in issues):
        raise ValidationError(issues)
    return issues
