"""repro.obs — observability: spans, metrics, and run manifests.

Instrumentation hooks (:func:`span`, :func:`instant`, :func:`inc`,
:func:`warn_event`) are safe to call unconditionally from every layer:
while tracing is disabled they cost one global load and return the
shared null span.  Arm tracing with :func:`enable` (or the CLI's
``--trace`` / ``--metrics`` flags, or ``REPRO_TRACE=1`` in the
environment — workers adopt it automatically, mirroring
``REPRO_FAULTS``), then export the buffer as Chrome-trace JSON
(:func:`write_chrome_trace`), a human tree (:func:`format_tree`), or a
per-run manifest (:func:`build_manifest`).
"""

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    ENV_VAR,
    NULL_SPAN,
    Recorder,
    TRACE_SCHEMA,
    active,
    capture,
    chrome_trace,
    disable,
    enable,
    enabled,
    format_tree,
    inc,
    instant,
    span,
    validate_chrome_trace,
    warn_event,
    write_chrome_trace,
)
from repro.obs.manifest import (
    build_manifest,
    environment,
    phase_times,
    span_coverage,
    write_manifest,
)

__all__ = [
    "ENV_VAR",
    "MetricsRegistry",
    "NULL_SPAN",
    "Recorder",
    "TRACE_SCHEMA",
    "active",
    "build_manifest",
    "capture",
    "chrome_trace",
    "disable",
    "enable",
    "enabled",
    "environment",
    "format_tree",
    "inc",
    "instant",
    "phase_times",
    "span",
    "span_coverage",
    "validate_chrome_trace",
    "warn_event",
    "write_chrome_trace",
]
