"""repro.obs — observability: spans, metrics, histograms, manifests.

Instrumentation hooks (:func:`span`, :func:`instant`, :func:`inc`,
:func:`gauge`, :func:`hist`, :func:`warn_event`) are safe to call
unconditionally from every layer: while tracing is disabled they cost
one global load and return the shared null span.  Arm tracing with
:func:`enable` (or the CLI's ``--trace`` / ``--metrics`` flags, or
``REPRO_TRACE=1`` in the environment — workers adopt it automatically,
mirroring ``REPRO_FAULTS``), then export the buffer as Chrome-trace
JSON (:func:`write_chrome_trace`), a human tree (:func:`format_tree`),
or a per-run manifest (:func:`build_manifest`).

Beyond spans and counters: :class:`Histogram` latency distributions
merge exactly across the worker pool; :mod:`repro.obs.log` correlates
every event to a per-run ``run_id`` in a JSONL file; the
:class:`ResourceSampler` records RSS/CPU/GC/queue-depth counter tracks
into the trace; :mod:`repro.obs.ledger` renders and diffs the
committed perf trajectory.
"""

from repro.obs.hist import Histogram
from repro.obs.metrics import MetricsRegistry
from repro.obs.sampler import ResourceSampler, register_probe, unregister_probe
from repro.obs.trace import (
    ENV_VAR,
    NULL_SPAN,
    Recorder,
    TRACE_SCHEMA,
    active,
    capture,
    chrome_trace,
    disable,
    enable,
    enabled,
    format_tree,
    gauge,
    hist,
    inc,
    instant,
    set_event_sink,
    span,
    validate_chrome_trace,
    warn_event,
    write_chrome_trace,
)
from repro.obs.manifest import (
    build_manifest,
    environment,
    phase_times,
    span_coverage,
    write_manifest,
)

__all__ = [
    "ENV_VAR",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Recorder",
    "ResourceSampler",
    "TRACE_SCHEMA",
    "active",
    "build_manifest",
    "capture",
    "chrome_trace",
    "disable",
    "enable",
    "enabled",
    "environment",
    "format_tree",
    "gauge",
    "hist",
    "inc",
    "instant",
    "phase_times",
    "register_probe",
    "set_event_sink",
    "span",
    "span_coverage",
    "unregister_probe",
    "validate_chrome_trace",
    "warn_event",
    "write_chrome_trace",
]
