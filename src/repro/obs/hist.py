"""Log-bucketed latency histograms for the metrics registry.

A :class:`Histogram` keeps exact ``count`` / ``sum`` / ``min`` / ``max``
plus a sparse map of logarithmic buckets: each power of two is split
into :data:`SUBBUCKETS` sub-buckets, so every bucket spans a constant
*relative* width of ``2 ** (1 / SUBBUCKETS)`` (~9%).  That makes one
histogram cover nanoseconds to hours in a few dozen occupied buckets
while :meth:`percentile` stays within one bucket of the true
sorted-data percentile.

Merging is bucket-wise addition — exact, associative and commutative —
so worker registries fold into the supervisor's in any arrival order
(the property tests in ``tests/test_obs_hist.py`` pin this).  Zero
values get a dedicated bucket (log of zero is not a bucket index) and
negative observations are rejected: every recorded series is a
duration, size or cost.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Histogram", "SUBBUCKETS", "bucket_bounds", "bucket_index"]

#: Sub-buckets per power-of-two octave.  Relative bucket width is
#: ``2**(1/8) - 1`` ≈ 9.05%, the worst-case percentile error.
SUBBUCKETS = 8

_LOG2_SCALE = SUBBUCKETS


def bucket_index(value: float) -> int:
    """Bucket index for a positive value: ``floor(log2(v) * SUBBUCKETS)``."""
    return math.floor(math.log2(value) * _LOG2_SCALE)


def bucket_bounds(index: int) -> Tuple[float, float]:
    """The ``[lo, hi)`` value range bucket *index* covers."""
    return (
        2.0 ** (index / _LOG2_SCALE),
        2.0 ** ((index + 1) / _LOG2_SCALE),
    )


def _representative(index: int) -> float:
    """Geometric midpoint of a bucket — the value :meth:`percentile` reports."""
    return 2.0 ** ((index + 0.5) / _LOG2_SCALE)


class Histogram:
    """Mergeable log-bucketed distribution with exact count/sum/min/max."""

    __slots__ = ("count", "total", "min", "max", "zeros", "buckets")

    def __init__(self) -> None:
        self.count: int = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.zeros: int = 0
        self.buckets: Dict[int, int] = {}

    # -- recording -------------------------------------------------

    def observe(self, value: float) -> None:
        """Record one non-negative observation."""
        if value < 0:
            raise ValueError(f"histogram value must be >= 0, got {value!r}")
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value == 0:
            self.zeros += 1
            return
        idx = bucket_index(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    # -- merge -----------------------------------------------------

    def merge(self, other: "Histogram") -> None:
        """Fold *other* in by bucket addition (associative, commutative)."""
        self.count += other.count
        self.total += other.total
        self.zeros += other.zeros
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n

    # -- queries ---------------------------------------------------

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def percentile(self, p: float) -> Optional[float]:
        """Approximate p-th percentile (``p`` in [0, 100]).

        Returns the geometric midpoint of the bucket holding the
        ``ceil(count * p / 100)``-th smallest observation, clamped to
        the exact recorded ``min`` / ``max`` — so the result is within
        one bucket's relative width (``2**(1/SUBBUCKETS)``) of the true
        sorted-data percentile, and exact at the extremes.
        """
        if not self.count:
            return None
        rank = max(1, math.ceil(self.count * p / 100.0))
        rank = min(rank, self.count)
        if rank <= self.zeros:
            return 0.0
        if rank == self.count:
            return self.max
        if rank == 1:
            return self.min
        cum = self.zeros
        for idx in sorted(self.buckets):
            cum += self.buckets[idx]
            if cum >= rank:
                rep = _representative(idx)
                if self.min is not None:
                    rep = max(rep, self.min)
                if self.max is not None:
                    rep = min(rep, self.max)
                return rep
        return self.max  # float-boundary stragglers land in the top bucket

    def summary(self) -> Dict[str, Any]:
        """Count plus the headline percentiles, JSON-ready."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    # -- serialization ---------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form; carries headline percentiles for consumers."""
        doc = self.summary()
        doc["zeros"] = self.zeros
        doc["sub"] = SUBBUCKETS
        doc["buckets"] = [
            [idx, self.buckets[idx]] for idx in sorted(self.buckets)
        ]
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Histogram":
        if doc.get("sub", SUBBUCKETS) != SUBBUCKETS:
            raise ValueError(
                f"histogram sub-bucket mismatch: {doc.get('sub')} != {SUBBUCKETS}"
            )
        h = cls()
        h.count = int(doc.get("count", 0))
        h.total = float(doc.get("sum", 0.0))
        h.min = doc.get("min")
        h.max = doc.get("max")
        h.zeros = int(doc.get("zeros", 0))
        h.buckets = {int(idx): int(n) for idx, n in doc.get("buckets", [])}
        return h

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts: List[str] = [f"count={self.count}"]
        if self.count:
            parts.append(f"p50={self.percentile(50):.4g}")
            parts.append(f"p99={self.percentile(99):.4g}")
        return f"Histogram({', '.join(parts)})"
