"""The perf-trajectory ledger: inspect and diff ``BENCH_sim.json``.

The committed benchmark snapshot is the repo's perf history — one row
per (backend, workload) with the median wall time, derived rate and
speedup vs the family reference.  This module makes that history a
first-class observable instead of a blob only CI reads:

* :func:`validate_snapshot` — stdlib schema check (same walker style as
  :data:`repro.obs.trace.TRACE_SCHEMA`; no jsonschema dependency);
* :func:`format_ledger` — render the trajectory as a table;
* :func:`diff_rows` / :func:`format_diff` — per-row deltas between two
  snapshots (new/removed rows called out, medians and rates compared);
* :func:`compare_snapshots` — the regression gate
  (``benchmarks/run_benchmarks.py --compare`` delegates here, and
  ``repro bench report --diff`` reproduces the same verdict).

Exposed on the CLI as ``repro bench report``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.trace import validate_chrome_trace as _validate_with_schema

__all__ = [
    "BENCH_SCHEMA",
    "compare_snapshots",
    "diff_rows",
    "format_diff",
    "format_ledger",
    "load_snapshot",
    "validate_snapshot",
]

#: Schema for the committed benchmark snapshot, validated with the same
#: stdlib walker the trace schema uses.
BENCH_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["schema", "results"],
    "properties": {
        "schema": {"type": "integer", "enum": [1]},
        "source": {"type": "string"},
        "python": {"type": "string"},
        "machine": {"type": "string"},
        "results": {"type": "object"},
    },
}

#: Schema for one result row.
ROW_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["backend", "workload", "median_s"],
    "properties": {
        "backend": {"type": "string"},
        "workload": {"type": "string"},
        "median_s": {"type": "number"},
    },
}

#: Rate keys a row may carry, in display-preference order.
RATE_KEYS = ("cycles_per_s", "passes_per_s", "ops_per_s", "candidates_per_s")

#: Speedup keys a row may carry.
SPEEDUP_KEYS = (
    "speedup_vs_event",
    "speedup_vs_reference",
    "speedup_vs_sim_everything",
    "speedup_vs_full",
)


def load_snapshot(path: str) -> Dict[str, Any]:
    """Load a benchmark snapshot file; raises on unreadable/invalid JSON."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def validate_snapshot(doc: Any) -> List[str]:
    """Schema-check a snapshot; returns error strings (empty = valid)."""
    errors = _validate_with_schema(doc, BENCH_SCHEMA)
    if errors:
        return errors
    for key, row in doc.get("results", {}).items():
        errors.extend(
            _validate_with_schema(row, ROW_SCHEMA, f"$.results[{key!r}]")
        )
        if isinstance(row, dict):
            median = row.get("median_s")
            if isinstance(median, (int, float)) and median <= 0:
                errors.append(
                    f"$.results[{key!r}].median_s: must be > 0, "
                    f"got {median!r}"
                )
    return errors


def _rate(row: Dict[str, Any]) -> Optional[str]:
    for key in RATE_KEYS:
        if key in row:
            unit = key[: -len("_per_s")]
            return f"{row[key]:.1f} {unit}/s"
    return None


def _speedup(row: Dict[str, Any]) -> Optional[str]:
    for key in SPEEDUP_KEYS:
        if key in row:
            ref = key[len("speedup_vs_"):].replace("_", "-")
            return f"{row[key]}x vs {ref}"
    return None


def format_ledger(doc: Dict[str, Any]) -> str:
    """Render the trajectory as an aligned table, one row per workload."""
    results = doc.get("results", {})
    if not results:
        return "(no benchmark rows)"
    lines = []
    meta = [
        f"python {doc['python']}" if doc.get("python") else None,
        doc.get("machine"),
        f"{len(results)} rows",
    ]
    lines.append("perf trajectory: " + ", ".join(m for m in meta if m))
    width = max(len(k) for k in results)
    for key in sorted(results):
        row = results[key]
        cells = [f"{row['median_s'] * 1000:9.3f} ms median"]
        rate = _rate(row)
        if rate:
            cells.append(f"{rate:>22}")
        speedup = _speedup(row)
        if speedup:
            cells.append(speedup)
        lines.append(f"  {key:<{width}}  " + "  ".join(cells))
    return "\n".join(lines)


def compare_snapshots(
    reference: Dict[str, Any], current: Dict[str, Any], threshold: float
) -> List[str]:
    """Workloads whose median regressed by more than *threshold*.

    Only keys present in both snapshots are compared — new workloads
    gate nothing, removed ones just stop being checked.  This is the
    single regression gate shared by ``run_benchmarks.py --compare``
    and ``repro bench report --diff``.
    """
    regressions = []
    ref_results = reference.get("results", {})
    for key, entry in current.get("results", {}).items():
        ref = ref_results.get(key)
        if ref is None or not ref.get("median_s"):
            continue
        ratio = entry["median_s"] / ref["median_s"]
        if ratio > 1.0 + threshold:
            regressions.append(
                f"{key}: {ref['median_s'] * 1000:.3f} ms -> "
                f"{entry['median_s'] * 1000:.3f} ms "
                f"({(ratio - 1) * 100:+.1f}%)"
            )
    return regressions


def diff_rows(
    reference: Dict[str, Any], current: Dict[str, Any]
) -> List[Dict[str, Any]]:
    """Per-row deltas between two snapshots.

    Each dict has ``key``, ``status`` (``"common"`` / ``"new"`` /
    ``"removed"``) and, for common rows, ``ref_median_s`` /
    ``cur_median_s`` / ``delta_frac`` (positive = slower now).
    """
    ref_results = reference.get("results", {})
    cur_results = current.get("results", {})
    rows: List[Dict[str, Any]] = []
    for key in sorted(set(ref_results) | set(cur_results)):
        ref = ref_results.get(key)
        cur = cur_results.get(key)
        if ref is None:
            rows.append({"key": key, "status": "new",
                         "cur_median_s": cur["median_s"]})
        elif cur is None:
            rows.append({"key": key, "status": "removed",
                         "ref_median_s": ref["median_s"]})
        else:
            delta = cur["median_s"] / ref["median_s"] - 1.0
            rows.append({
                "key": key,
                "status": "common",
                "ref_median_s": ref["median_s"],
                "cur_median_s": cur["median_s"],
                "delta_frac": round(delta, 4),
            })
    return rows


def format_diff(
    reference: Dict[str, Any],
    current: Dict[str, Any],
    threshold: float = 0.25,
) -> str:
    """Human table of :func:`diff_rows` plus the regression verdict."""
    rows = diff_rows(reference, current)
    if not rows:
        return "(no rows to diff)"
    width = max(len(r["key"]) for r in rows)
    lines = []
    for r in rows:
        if r["status"] == "new":
            lines.append(
                f"  {r['key']:<{width}}  "
                f"{'(new)':>12}  {r['cur_median_s'] * 1000:9.3f} ms"
            )
        elif r["status"] == "removed":
            lines.append(
                f"  {r['key']:<{width}}  "
                f"{r['ref_median_s'] * 1000:9.3f} ms  (removed)"
            )
        else:
            marker = " <-- regressed" if r["delta_frac"] > threshold else ""
            lines.append(
                f"  {r['key']:<{width}}  "
                f"{r['ref_median_s'] * 1000:9.3f} ms -> "
                f"{r['cur_median_s'] * 1000:9.3f} ms  "
                f"{r['delta_frac'] * 100:+6.1f}%{marker}"
            )
    regressions = compare_snapshots(reference, current, threshold)
    if regressions:
        lines.append(
            f"FAIL: {len(regressions)} workload(s) regressed "
            f">{threshold * 100:.0f}%"
        )
    else:
        lines.append(
            f"no workload regressed >{threshold * 100:.0f}%"
        )
    return "\n".join(lines)
