"""Structured JSONL event log correlated by a per-run id.

Arming the log (:func:`enable`, or the CLI's ``--log FILE``) assigns the
run a ``run_id``, exports ``REPRO_LOG`` / ``REPRO_RUN_ID`` to the
environment — the same propagation pattern as ``REPRO_TRACE`` and
``REPRO_FAULTS`` — and installs a sink on the trace recorder: every
span, instant, warning, fault firing and quarantine is appended to the
file as one JSON line the moment it is recorded, stamped with the run
id and the emitting pid.

Worker processes adopt the log lazily from the environment (see
:func:`repro.obs.trace.adopt_in_worker`), opening their own
append-mode handle on the same file.  Each line is a single
``write()`` of well under ``PIPE_BUF`` bytes, so lines from concurrent
pids interleave without tearing and ``grep <run_id> file.jsonl``
reassembles one run across the whole pool.

Line shape::

    {"run_id": "...", "pid": 1234, "name": "pool.task", "ph": "X",
     "ts": <ns since epoch>, "dur": <ns>, "sid": 7, "parent": 3,
     "args": {...}}

``sid`` / ``parent`` are per-pid span ids (see :mod:`repro.obs.trace`);
``(run_id, pid, sid)`` uniquely names a span across the run.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Optional

from repro.obs import trace

ENV_LOG = "REPRO_LOG"
ENV_RUN_ID = "REPRO_RUN_ID"

__all__ = [
    "ENV_LOG",
    "ENV_RUN_ID",
    "EventLog",
    "adopt_in_process",
    "current_run_id",
    "disable",
    "enable",
    "new_run_id",
    "read_events",
]


def new_run_id() -> str:
    """A fresh run id: wall-clock stamp plus random suffix.

    Sortable by start time, unique across concurrent runs (64 random
    bits), and short enough to grep comfortably.
    """
    stamp = time.strftime("%Y%m%dT%H%M%S")
    return f"{stamp}-{os.urandom(8).hex()}"


def current_run_id() -> Optional[str]:
    """The armed run id (from this process or inherited env), if any."""
    if _LOG is not None:
        return _LOG.run_id
    return os.environ.get(ENV_RUN_ID) or None


class EventLog:
    """An append-only JSONL sink bound to one run id."""

    def __init__(self, path: str, run_id: str):
        self.path = path
        self.run_id = run_id
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._fh = open(path, "a", encoding="utf-8")
        self._pid = os.getpid()

    def emit(self, event: Dict[str, Any]) -> None:
        """Append one recorder event as a single JSON line."""
        line = {
            "run_id": self.run_id,
            "pid": event.get("pid", self._pid),
            "name": event["name"],
            "ph": event["ph"],
            "ts": event["ts"],
        }
        if event.get("dur"):
            line["dur"] = event["dur"]
        if event.get("sid") is not None:
            line["sid"] = event["sid"]
        if event.get("parent") is not None:
            line["parent"] = event["parent"]
        if event.get("args"):
            line["args"] = event["args"]
        # One write per line: atomic interleave across pids on POSIX
        # append-mode files (lines stay < PIPE_BUF in practice).
        self._fh.write(json.dumps(line, default=str) + "\n")
        self._fh.flush()

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - close failures are benign
            pass


_LOG: Optional[EventLog] = None


def enable(
    path: str, run_id: Optional[str] = None, *, set_env: bool = True
) -> EventLog:
    """Arm the event log (and tracing, which feeds it); returns the log.

    With *set_env* (the default) exports ``REPRO_LOG`` and
    ``REPRO_RUN_ID`` so pool workers adopt the same file and run id.
    """
    global _LOG
    if _LOG is not None:
        _LOG.close()
    if run_id is None:
        run_id = current_run_id() or new_run_id()
    _LOG = EventLog(path, run_id)
    if set_env:
        os.environ[ENV_LOG] = path
        os.environ[ENV_RUN_ID] = run_id
    if not trace.enabled():
        trace.enable(set_env=set_env)
    trace.set_event_sink(_LOG.emit)
    return _LOG


def adopt_in_process() -> Optional[EventLog]:
    """Open the env-announced log in this process; ``None`` if unset.

    Called from :mod:`repro.obs.trace` when it arms a recorder and
    finds ``REPRO_LOG`` exported — both in freshly spawned workers and
    in forked ones (which must drop the inherited parent handle state
    and open their own).
    """
    global _LOG
    path = os.environ.get(ENV_LOG)
    if not path:
        return None
    run_id = os.environ.get(ENV_RUN_ID) or new_run_id()
    if (
        _LOG is None
        or _LOG.path != path
        or _LOG.run_id != run_id
        or _LOG._pid != os.getpid()  # forked child: drop inherited handle
    ):
        _LOG = EventLog(path, run_id)
    trace.set_event_sink(_LOG.emit)
    return _LOG


def disable() -> None:
    """Close the log, detach the sink, clear the env announcements."""
    global _LOG
    if _LOG is not None:
        _LOG.close()
        _LOG = None
    trace.set_event_sink(None)
    os.environ.pop(ENV_LOG, None)
    os.environ.pop(ENV_RUN_ID, None)


def read_events(path: str, run_id: Optional[str] = None) -> list:
    """Parse a JSONL log back into dicts, optionally filtered by run id."""
    out = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            doc = json.loads(line)
            if run_id is None or doc.get("run_id") == run_id:
                out.append(doc)
    return out
