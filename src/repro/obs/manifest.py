"""Per-run manifests: what ran, on what, and where the time went.

A manifest is one JSON document summarising a traced run — code
version (``git describe``), interpreter and numpy versions, the backend
that was chosen plus any degradation chain, circuit fingerprints and
seed, wall/CPU time aggregated per top-level phase, the full metrics
snapshot, and the armed fault plan if chaos injection was on.  The CLI
persists it next to the job records in the result store
(``<store>/manifests/``) so every cached result has a durable record
of how it was produced.
"""

from __future__ import annotations

import itertools
import json
import os
import platform
import subprocess
import sys
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.trace import Recorder

__all__ = [
    "build_manifest",
    "environment",
    "phase_times",
    "span_coverage",
    "write_manifest",
]

MANIFEST_SCHEMA_VERSION = 1


def environment() -> Dict[str, Any]:
    """Versions of everything that can change a result."""
    try:
        git = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        git = None
    try:
        import numpy

        numpy_version: Optional[str] = numpy.__version__
    except Exception:
        numpy_version = None
    return {
        "git": git,
        "python": platform.python_version(),
        "numpy": numpy_version,
        "platform": platform.platform(),
        "pid": os.getpid(),
        "argv": list(sys.argv),
    }


def _top_spans(
    events: Iterable[Dict[str, Any]]
) -> List[Tuple[int, int, Dict[str, Any]]]:
    """(start, end, event) for every depth-0 complete span."""
    return [
        (e["ts"], e["ts"] + e["dur"], e)
        for e in events
        if e["ph"] == "X" and e["depth"] == 0
    ]


def phase_times(events: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate depth-0 spans by name into per-phase wall/CPU totals."""
    phases: Dict[str, Dict[str, Any]] = {}
    for _, _, e in _top_spans(events):
        agg = phases.setdefault(
            e["name"], {"count": 0, "wall_s": 0.0, "cpu_s": 0.0}
        )
        agg["count"] += 1
        agg["wall_s"] += e["dur"] / 1e9
        agg["cpu_s"] += e.get("cpu", 0) / 1e9
    for agg in phases.values():
        agg["wall_s"] = round(agg["wall_s"], 6)
        agg["cpu_s"] = round(agg["cpu_s"], 6)
    return dict(sorted(phases.items()))


def span_coverage(events: Iterable[Dict[str, Any]]) -> float:
    """Fraction of the traced extent covered by top-level spans.

    The extent is first-span-start to last-span-end across all
    processes; coverage is the merged-interval union of depth-0 spans
    over it.  The fig5 acceptance test pins this at ≥ 0.95 — time the
    trace cannot attribute to a phase is the analogue of the paper's
    "useless transitions" and should stay marginal.
    """
    spans = sorted((s, e) for s, e, _ in _top_spans(events))
    if not spans:
        return 0.0
    extent = max(e for _, e in spans) - spans[0][0]
    if extent <= 0:
        return 1.0
    covered = 0
    cur_start, cur_end = spans[0]
    for s, e in spans[1:]:
        if s > cur_end:
            covered += cur_end - cur_start
            cur_start, cur_end = s, e
        else:
            cur_end = max(cur_end, e)
    covered += cur_end - cur_start
    return covered / extent


def build_manifest(
    recorder: Recorder,
    *,
    command: str,
    backend: Optional[str] = None,
    degraded: Optional[List[Dict[str, Any]]] = None,
    fingerprints: Optional[Dict[str, str]] = None,
    seed: Optional[int] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the manifest dict for a finished traced run."""
    from repro.obs import log as _log

    events = recorder.events
    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA_VERSION,
        "command": command,
        "run_id": _log.current_run_id(),
        "created": time.time(),
        "environment": environment(),
        "backend": backend,
        "degraded": degraded or [],
        "fingerprints": fingerprints or {},
        "seed": seed,
        "phases": phase_times(events),
        "span_coverage": round(span_coverage(events), 4),
        "n_events": len(events),
        "metrics": recorder.metrics.snapshot(),
    }
    # Armed fault plans are part of the run's identity: a manifest from
    # a chaos run must say so.  Lazy import keeps obs free of package
    # dependencies when faults never armed.
    try:
        from repro.service import faults

        plan = faults.active_plan()
        manifest["fault_plan"] = plan.to_dict() if plan else None
    except Exception:
        manifest["fault_plan"] = None
    if extra:
        manifest.update(extra)
    return manifest


# Monotonic per-process sequence for manifest filenames: a second-
# resolution stamp plus pid alone collides when one process writes two
# manifests within the same second, silently overwriting the first.
_SEQ = itertools.count()


def write_manifest(directory: str, manifest: Dict[str, Any]) -> str:
    """Persist *manifest* under *directory* (atomic tmp+rename).

    Returns the path written.  Callers pass ``<store root>/manifests``
    so manifests live next to the job records they describe.  Filenames
    are ``<command>-<stamp>-<pid>-<seq>.json``; the per-process
    sequence keeps same-second writes distinct.
    """
    os.makedirs(directory, exist_ok=True)
    stamp = time.strftime("%Y%m%dT%H%M%S")
    base = f"{manifest.get('command', 'run')}-{stamp}-{os.getpid()}"
    while True:
        path = os.path.join(directory, f"{base}-{next(_SEQ):03d}.json")
        if not os.path.exists(path):
            break
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=False, default=str)
    os.replace(tmp, path)
    return path
