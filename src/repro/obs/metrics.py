"""Counters, gauges and histograms for a traced run.

A :class:`MetricsRegistry` holds three flat string-keyed maps: integer
**counters** (monotonic within a run — store hits, pool retries, cells
evaluated), float **gauges** (point-in-time values — queue depth, cache
bytes, reuse fractions) and log-bucketed **histograms**
(:class:`repro.obs.hist.Histogram` — task latencies, store I/O times,
per-candidate cost).  Each :class:`repro.obs.trace.Recorder` owns one;
worker processes accumulate into their local registry and the parent
merges the deltas when results return.

Merge semantics (exact across the pool, whatever the arrival order):

* **counters** add — totals are exact;
* **histograms** add bucket-wise — distributions are exact in count
  and sum, associative and commutative;
* **gauges** follow a per-gauge policy set at record time:

  - ``"last"`` (default) — the incoming value overwrites.  Inherently
    arrival-order dependent under the pool, so only fit for gauges
    where any single worker's value is representative (a fraction every
    worker computes identically, a final configuration value).
  - ``"max"`` — high-water mark; merge keeps the larger value.  Gauges
    whose name ends in ``depth`` (queue depth and friends) default to
    this, so concurrent workers can't understate the peak.
  - ``"sum"`` — merge adds; for gauges that are really per-worker
    contributions (bytes buffered per worker).

Naming follows ``layer.event`` dotted lowercase: ``store.hit``,
``pool.retry``, ``sim.cell_evals``, ``backend.degraded``; histogram
names carry a unit suffix (``pool.task_latency_s``).  See the README
taxonomy tables for the full catalogue.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from repro.obs.hist import Histogram

__all__ = ["MetricsRegistry", "GAUGE_POLICIES"]

#: Valid gauge merge policies.
GAUGE_POLICIES = ("last", "max", "sum")


def _default_policy(name: str) -> str:
    """Queue-depth-style gauges default to high-water-mark merging."""
    return "max" if name.endswith("depth") else "last"


class MetricsRegistry:
    """Process-local counters, gauges and histograms with snapshot/merge."""

    __slots__ = ("counters", "gauges", "gauge_policies", "hists")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.gauge_policies: Dict[str, str] = {}
        self.hists: Dict[str, Histogram] = {}

    def inc(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float, policy: Optional[str] = None) -> None:
        """Set a gauge; *policy* fixes its merge rule on first use.

        Locally a gauge always takes the newest value (a gauge *is* the
        current reading); the policy only governs how values from other
        registries fold in via :meth:`merge`.
        """
        if policy is None:
            policy = self.gauge_policies.get(name) or _default_policy(name)
        elif policy not in GAUGE_POLICIES:
            raise ValueError(f"unknown gauge policy {policy!r}")
        self.gauge_policies[name] = policy
        if policy == "max" and name in self.gauges:
            self.gauges[name] = max(self.gauges[name], value)
        else:
            self.gauges[name] = value

    def hist(self, name: str, value: float) -> None:
        """Record one observation into the named histogram."""
        h = self.hists.get(name)
        if h is None:
            h = self.hists[name] = Histogram()
        h.observe(value)

    def get(self, name: str) -> int:
        """Current value of a counter (0 if never bumped)."""
        return self.counters.get(name, 0)

    def get_hist(self, name: str) -> Optional[Histogram]:
        """The named histogram, or ``None`` if nothing was recorded."""
        return self.hists.get(name)

    def merge(
        self,
        counters: Optional[Dict[str, int]] = None,
        gauges: Optional[Dict[str, float]] = None,
        hists: Optional[Dict[str, Union[Histogram, Dict[str, Any]]]] = None,
        gauge_policies: Optional[Dict[str, str]] = None,
    ) -> None:
        """Fold a worker snapshot in.

        Counters add, histograms add bucket-wise, gauges resolve by
        their per-name policy (``last`` overwrite / ``max`` high-water
        / ``sum`` add — see the module docstring).  A policy shipped in
        *gauge_policies* fills in names this registry hasn't seen;
        where both sides named a policy, the local one wins so a run's
        semantics can't be flipped mid-merge by a stale worker.
        """
        if counters:
            for name, n in counters.items():
                self.counters[name] = self.counters.get(name, 0) + n
        if gauges:
            incoming_policy = gauge_policies or {}
            for name, value in gauges.items():
                policy = (
                    self.gauge_policies.get(name)
                    or incoming_policy.get(name)
                    or _default_policy(name)
                )
                self.gauge_policies.setdefault(name, policy)
                if name not in self.gauges:
                    self.gauges[name] = value
                elif policy == "max":
                    self.gauges[name] = max(self.gauges[name], value)
                elif policy == "sum":
                    self.gauges[name] += value
                else:
                    self.gauges[name] = value
        if hists:
            for name, incoming in hists.items():
                if isinstance(incoming, dict):
                    incoming = Histogram.from_dict(incoming)
                h = self.hists.get(name)
                if h is None:
                    h = self.hists[name] = Histogram()
                h.merge(incoming)

    def snapshot(self) -> Dict[str, Any]:
        """Sorted, JSON-ready copy of the current state."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "gauge_policies": dict(sorted(self.gauge_policies.items())),
            "hists": {
                name: self.hists[name].to_dict()
                for name in sorted(self.hists)
            },
        }

    def format_table(self) -> str:
        """Sectioned text rendering for ``--metrics`` CLI output."""
        sections = []
        if self.counters:
            rows = [(k, str(v)) for k, v in sorted(self.counters.items())]
            sections.append(("counters", rows))
        if self.gauges:
            rows = [
                (k, f"{v:g} ({self.gauge_policies.get(k, 'last')})")
                for k, v in sorted(self.gauges.items())
            ]
            sections.append(("gauges", rows))
        if self.hists:
            rows = []
            for k, h in sorted(self.hists.items()):
                s = h.summary()
                rows.append((
                    k,
                    "count={count}  p50={p50:.6g}  p90={p90:.6g}  "
                    "p99={p99:.6g}  max={max:.6g}".format(**s)
                    if h.count
                    else "count=0",
                ))
            sections.append(("histograms", rows))
        if not sections:
            return "(no metrics recorded)"
        width = max(
            len(k) for _, rows in sections for k, _ in rows
        )
        lines = []
        for title, rows in sections:
            lines.append(f"-- {title} --")
            lines.extend(f"{k:<{width}}  {v}" for k, v in rows)
        return "\n".join(lines)
