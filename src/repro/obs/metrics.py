"""Counters and gauges for a traced run.

A :class:`MetricsRegistry` is a pair of flat string-keyed maps: integer
**counters** (monotonic within a run — store hits, pool retries, cells
evaluated) and float **gauges** (last-write-wins — queue depth, cache
bytes).  Each :class:`repro.obs.trace.Recorder` owns one; worker
processes accumulate into their local registry and the parent merges
the deltas when results return, so totals are exact across the pool.

Naming follows ``layer.event`` dotted lowercase: ``store.hit``,
``pool.retry``, ``sim.cell_evals``, ``backend.degraded``.  See the
README span-taxonomy table for the full catalogue.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Process-local counters and gauges with snapshot/merge support."""

    __slots__ = ("counters", "gauges")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}

    def inc(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def get(self, name: str) -> int:
        """Current value of a counter (0 if never bumped)."""
        return self.counters.get(name, 0)

    def merge(
        self,
        counters: Optional[Dict[str, int]] = None,
        gauges: Optional[Dict[str, float]] = None,
    ) -> None:
        """Fold a worker snapshot in: counters add, gauges overwrite."""
        if counters:
            for name, n in counters.items():
                self.counters[name] = self.counters.get(name, 0) + n
        if gauges:
            self.gauges.update(gauges)

    def snapshot(self) -> Dict[str, Any]:
        """Sorted, JSON-ready copy of the current state."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
        }

    def format_table(self) -> str:
        """Two-column text rendering for ``--metrics`` CLI output."""
        rows = [(k, str(v)) for k, v in sorted(self.counters.items())]
        rows += [(k, f"{v:g}") for k, v in sorted(self.gauges.items())]
        if not rows:
            return "(no metrics recorded)"
        width = max(len(k) for k, _ in rows)
        return "\n".join(f"{k:<{width}}  {v}" for k, v in rows)
