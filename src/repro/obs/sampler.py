"""Opt-in background resource sampler exported as Chrome counter tracks.

A :class:`ResourceSampler` runs a daemon thread that periodically
records process vitals into the active trace recorder as phase-``C``
counter samples (:meth:`repro.obs.trace.Recorder.counter_sample`):

* ``proc.rss_mb`` — resident set size from ``/proc/self/status``
  (peak RSS via :mod:`resource` where procfs is unavailable);
* ``proc.cpu_pct`` — process CPU time over wall time since the last
  sample, in percent (can exceed 100 with busy worker threads);
* ``proc.gc_collections`` — cumulative stdlib GC collections across
  all generations;
* any **probes** registered with :func:`register_probe` — live values
  owned by other layers, e.g. the pool supervisor publishes
  ``pool.queue_depth`` while a batch is in flight.

The Chrome trace viewer renders each series as a counter track under
the process, so RSS ramps, GC storms and queue backlogs line up
against the span timeline.  Arm it with the CLI's ``--sample HZ`` or
programmatically::

    with obs.capture() as rec, ResourceSampler(interval_s=0.02):
        run_workload()

Sampling is strictly additive: with no recorder active each tick is a
no-op, and :meth:`stop` joins the thread so no samples land after the
run's trace is exported.
"""

from __future__ import annotations

import gc
import threading
import time
from typing import Any, Callable, Dict, Optional

from repro.obs import trace

__all__ = [
    "ResourceSampler",
    "register_probe",
    "rss_bytes",
    "unregister_probe",
]

#: Live-value callbacks sampled alongside process vitals; name -> fn.
_PROBES: Dict[str, Callable[[], Optional[float]]] = {}


def register_probe(name: str, fn: Callable[[], Optional[float]]) -> None:
    """Expose a live value (e.g. queue depth) to any running sampler.

    *fn* is called from the sampler thread; it must be cheap and may
    return ``None`` to skip a tick.
    """
    _PROBES[name] = fn


def unregister_probe(name: str) -> None:
    _PROBES.pop(name, None)


def rss_bytes() -> Optional[int]:
    """Current resident set size, best effort.

    Reads ``VmRSS`` from ``/proc/self/status`` on Linux; falls back to
    the peak RSS from ``resource.getrusage`` elsewhere; ``None`` when
    neither source exists.
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF)
        # ru_maxrss is KiB on Linux, bytes on macOS; both are fine as
        # a trend line, which is all the counter track promises.
        return int(usage.ru_maxrss) * 1024
    except (ImportError, ValueError):  # pragma: no cover - exotic platform
        return None


class ResourceSampler:
    """Daemon thread recording resource counter samples at a fixed rate."""

    def __init__(
        self,
        interval_s: float = 0.05,
        recorder: Optional["trace.Recorder"] = None,
    ):
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.interval_s = interval_s
        self._recorder = recorder
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._last_cpu = 0.0
        self._last_wall = 0.0
        self.samples_taken = 0

    # -- lifecycle -------------------------------------------------

    def start(self) -> "ResourceSampler":
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._last_cpu = time.process_time()
        self._last_wall = time.perf_counter()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc: Any) -> bool:
        self.stop()
        return False

    # -- sampling --------------------------------------------------

    def _loop(self) -> None:
        # Take one sample immediately so even sub-interval runs get a
        # data point, then tick until stopped.
        while True:
            self.sample_once()
            if self._stop.wait(self.interval_s):
                return

    def sample_once(self) -> None:
        """Record one round of counter samples (no-op without a recorder)."""
        rec = self._recorder or trace.active()
        if rec is None:
            return
        rss = rss_bytes()
        if rss is not None:
            rec.counter_sample("proc.rss_mb", round(rss / 1e6, 3))
        cpu = time.process_time()
        wall = time.perf_counter()
        dt = wall - self._last_wall
        if dt > 0:
            pct = 100.0 * (cpu - self._last_cpu) / dt
            rec.counter_sample("proc.cpu_pct", round(pct, 1))
        self._last_cpu = cpu
        self._last_wall = wall
        rec.counter_sample(
            "proc.gc_collections",
            sum(s["collections"] for s in gc.get_stats()),
        )
        for name, fn in list(_PROBES.items()):
            try:
                value = fn()
            except Exception:  # probe owner's bug must not kill sampling
                continue
            if value is not None:
                rec.counter_sample(name, value)
        self.samples_taken += 1
