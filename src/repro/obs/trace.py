"""Hierarchical span tracing with a zero-cost disabled path.

The recorder collects two kinds of events into an in-process buffer:

* **complete spans** (Chrome-trace phase ``"X"``) — a named interval
  with wall duration, CPU duration and nesting depth, opened with
  :func:`span` as a context manager or closed manually with
  :meth:`Recorder.complete` around hot loops;
* **instants** (phase ``"i"``) — point events such as a cache miss, a
  pruned explore candidate or an injected fault firing;
* **counter samples** (phase ``"C"``) — timestamped gauge readings from
  :class:`repro.obs.sampler.ResourceSampler`, rendered as counter
  tracks by the Chrome trace viewer.

Every span carries a per-process span id (``sid``) and its enclosing
span's id (``parent``); instants carry ``parent`` only.  Combined with
the run id from :mod:`repro.obs.log`, that is enough to correlate any
event back to the run and call tree that emitted it, across pids.

Timestamps come from :func:`time.perf_counter_ns` and are re-anchored
to the epoch at record time so events from different processes merge
onto one timeline.  Worker processes adopt tracing lazily from the
``REPRO_TRACE`` environment variable (the same propagation pattern as
``REPRO_FAULTS`` in :mod:`repro.service.faults`), buffer locally, and
the pool supervisor absorbs their buffers when results return.

When tracing is disabled — the default — every module-level hook
returns the shared :data:`NULL_SPAN` or does nothing after a single
``None`` check, so instrumented code pays one global load per call
site.  This module deliberately imports nothing from the rest of the
package so every layer can import it without cycles.
"""

from __future__ import annotations

import json
import os
import sys
import time
import warnings
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.metrics import MetricsRegistry

ENV_VAR = "REPRO_TRACE"

__all__ = [
    "ENV_VAR",
    "NULL_SPAN",
    "Recorder",
    "TRACE_SCHEMA",
    "active",
    "adopt_in_worker",
    "chrome_trace",
    "capture",
    "disable",
    "enable",
    "enabled",
    "events_from_chrome",
    "format_tree",
    "gauge",
    "hist",
    "inc",
    "instant",
    "set_event_sink",
    "span",
    "validate_chrome_trace",
    "warn_event",
    "write_chrome_trace",
]


class _NullSpan:
    """Shared no-op span returned by every hook while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _SpanCtx:
    """A live span; records a complete event when the block exits."""

    __slots__ = (
        "_rec", "name", "attrs", "_t0", "_cpu0", "_depth", "_sid", "_parent"
    )

    def __init__(self, rec: "Recorder", name: str, attrs: Dict[str, Any]):
        self._rec = rec
        self.name = name
        self.attrs = attrs

    def set(self, **attrs: Any) -> "_SpanCtx":
        """Attach attributes discovered mid-span (e.g. chosen backend)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_SpanCtx":
        rec = self._rec
        self._depth = rec._depth
        rec._depth = self._depth + 1
        self._sid = rec._next_sid
        rec._next_sid = self._sid + 1
        stack = rec._sid_stack
        self._parent = stack[-1] if stack else None
        stack.append(self._sid)
        self._cpu0 = time.process_time_ns()
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        t1 = time.perf_counter_ns()
        cpu1 = time.process_time_ns()
        rec = self._rec
        rec._depth = self._depth
        if rec._sid_stack and rec._sid_stack[-1] == self._sid:
            rec._sid_stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        event = {
            "name": self.name,
            "ph": "X",
            "ts": rec._epoch_ns + (self._t0 - rec._perf0),
            "dur": t1 - self._t0,
            "cpu": cpu1 - self._cpu0,
            "depth": self._depth,
            "pid": rec.pid,
            "sid": self._sid,
            "parent": self._parent,
            "args": self.attrs,
        }
        rec._events.append(event)
        if _SINK is not None:
            _SINK(event)
        return False


class Recorder:
    """In-process trace buffer plus the run's :class:`MetricsRegistry`."""

    def __init__(self) -> None:
        self.pid = os.getpid()
        self._events: List[Dict[str, Any]] = []
        self._depth = 0
        self._next_sid = 1
        self._sid_stack: List[int] = []
        self._epoch_ns = time.time_ns()
        self._perf0 = time.perf_counter_ns()
        self.metrics = MetricsRegistry()

    # -- recording -------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _SpanCtx:
        return _SpanCtx(self, name, attrs)

    def now(self) -> int:
        """Raw ``perf_counter_ns`` start mark for :meth:`complete`."""
        return time.perf_counter_ns()

    def complete(self, name: str, start_ns: int, **attrs: Any) -> int:
        """Record a span opened at *start_ns* (from :meth:`now`) ending now.

        This is the loop-friendly form: no context-manager object per
        batch, just one timestamp before and one call after.  Returns
        the wall duration in nanoseconds so callers can feed the same
        measurement into a histogram without a second clock read.
        """
        t1 = time.perf_counter_ns()
        sid = self._next_sid
        self._next_sid = sid + 1
        stack = self._sid_stack
        event = {
            "name": name,
            "ph": "X",
            "ts": self._epoch_ns + (start_ns - self._perf0),
            "dur": t1 - start_ns,
            "cpu": 0,
            "depth": self._depth,
            "pid": self.pid,
            "sid": sid,
            "parent": stack[-1] if stack else None,
            "args": attrs,
        }
        self._events.append(event)
        if _SINK is not None:
            _SINK(event)
        return t1 - start_ns

    def instant(self, name: str, **attrs: Any) -> None:
        stack = self._sid_stack
        event = {
            "name": name,
            "ph": "i",
            "ts": self._epoch_ns + (time.perf_counter_ns() - self._perf0),
            "dur": 0,
            "cpu": 0,
            "depth": self._depth,
            "pid": self.pid,
            "parent": stack[-1] if stack else None,
            "args": attrs,
        }
        self._events.append(event)
        if _SINK is not None:
            _SINK(event)

    def counter_sample(self, name: str, value: float) -> None:
        """Record a timestamped gauge reading (Chrome-trace phase ``C``).

        Samples render as counter tracks in the trace viewer; the
        resource sampler emits RSS / CPU% / GC / queue-depth series
        through this.
        """
        event = {
            "name": name,
            "ph": "C",
            "ts": self._epoch_ns + (time.perf_counter_ns() - self._perf0),
            "dur": 0,
            "cpu": 0,
            "depth": 0,
            "pid": self.pid,
            "args": {"value": value},
        }
        self._events.append(event)
        if _SINK is not None:
            _SINK(event)

    # -- access ----------------------------------------------------

    @property
    def events(self) -> List[Dict[str, Any]]:
        return self._events

    def find(self, name: str) -> List[Dict[str, Any]]:
        """All buffered events with the given *name* (spans and instants)."""
        return [e for e in self._events if e["name"] == name]

    # -- cross-process merge ---------------------------------------

    def drain_blob(self) -> Optional[Dict[str, Any]]:
        """Detach and return everything buffered so far, resetting state.

        Workers call this after each task; the returned blob travels on
        the result queue and the parent feeds it to :meth:`absorb`.
        Returns ``None`` when there is nothing to ship.
        """
        snap = self.metrics.snapshot()
        if (
            not self._events
            and not snap["counters"]
            and not snap["gauges"]
            and not snap["hists"]
        ):
            return None
        blob = {"events": self._events, **snap}
        self._events = []
        self.metrics = MetricsRegistry()
        return blob

    def absorb(self, blob: Optional[Dict[str, Any]]) -> None:
        """Merge a worker's :meth:`drain_blob` output into this buffer.

        Worker events land in the parent buffer verbatim (they already
        carry the worker pid) without re-emitting to the event-log sink
        — the worker's own sink wrote them as they happened.
        """
        if not blob:
            return
        self._events.extend(blob.get("events", ()))
        self.metrics.merge(
            blob.get("counters"),
            blob.get("gauges"),
            blob.get("hists"),
            blob.get("gauge_policies"),
        )


# -- process-global enablement ------------------------------------------

_RECORDER: Optional[Recorder] = None
_ENV_CHECKED = False

#: Optional per-event callback (the JSONL event log).  Called with each
#: event dict right after it is buffered; installed/cleared by
#: :mod:`repro.obs.log` via :func:`set_event_sink`.
_SINK = None


def set_event_sink(sink) -> None:
    """Install (or clear, with ``None``) the per-event callback."""
    global _SINK
    _SINK = sink


def _maybe_adopt_log() -> None:
    """Arm the JSONL event log if ``REPRO_LOG`` is exported.

    Lazy import: :mod:`repro.obs.log` imports this module at top level,
    so the dependency must point one way only.
    """
    if os.environ.get("REPRO_LOG"):
        from repro.obs import log as _log

        _log.adopt_in_process()


def _adopt_from_env() -> Optional[Recorder]:
    global _RECORDER, _ENV_CHECKED
    _ENV_CHECKED = True
    if os.environ.get(ENV_VAR) or os.environ.get("REPRO_LOG"):
        _RECORDER = Recorder()
        _maybe_adopt_log()
    return _RECORDER


def active() -> Optional[Recorder]:
    """The process recorder, or ``None`` while tracing is disabled.

    Adopts ``REPRO_TRACE`` from the environment on first call so worker
    processes spawned by an armed parent start recording without any
    explicit handshake.
    """
    rec = _RECORDER
    if rec is None and not _ENV_CHECKED:
        return _adopt_from_env()
    return rec


def enabled() -> bool:
    return active() is not None


def enable(*, set_env: bool = True) -> Recorder:
    """Arm tracing with a fresh recorder; returns it.

    With *set_env* (the default) also exports ``REPRO_TRACE=1`` so
    worker processes spawned later adopt their own local recorder.
    """
    global _RECORDER, _ENV_CHECKED
    _RECORDER = Recorder()
    _ENV_CHECKED = True
    if set_env:
        os.environ[ENV_VAR] = "1"
    return _RECORDER


def adopt_in_worker() -> Optional[Recorder]:
    """A fresh recorder for a worker process; ``None`` if tracing is off.

    A *forked* worker inherits the parent's recorder object verbatim —
    the wrong ``pid`` and a buffer of parent events that would ship
    back and duplicate on merge.  A *spawned* worker starts clean but
    must adopt ``REPRO_TRACE``.  Both cases collapse to: replace the
    global with a brand-new recorder whenever tracing is armed.
    """
    global _RECORDER, _ENV_CHECKED
    _ENV_CHECKED = True
    if (
        _RECORDER is not None
        or os.environ.get(ENV_VAR)
        or os.environ.get("REPRO_LOG")
    ):
        _RECORDER = Recorder()
        _maybe_adopt_log()
    else:
        _RECORDER = None
    return _RECORDER


def disable() -> None:
    """Disarm tracing and drop the buffer; clears ``REPRO_TRACE``.

    Also shuts down the JSONL event log if one is armed (closing its
    file and clearing ``REPRO_LOG`` / ``REPRO_RUN_ID``) so a single
    ``disable()`` returns the process to the fully-dark state tests
    expect.
    """
    global _RECORDER, _ENV_CHECKED, _SINK
    _log = sys.modules.get("repro.obs.log")
    if _log is not None:
        _log.disable()
    _RECORDER = None
    _ENV_CHECKED = False
    _SINK = None
    os.environ.pop(ENV_VAR, None)
    os.environ.pop("REPRO_LOG", None)
    os.environ.pop("REPRO_RUN_ID", None)


class capture:
    """``with obs.capture() as rec:`` — scoped tracing for tests.

    Restores the previous recorder/environment state on exit, so a
    failing assertion cannot leak an armed recorder into later tests.
    """

    def __enter__(self) -> Recorder:
        self._prev = _RECORDER
        self._prev_env = os.environ.get(ENV_VAR)
        return enable()

    def __exit__(self, *exc: Any) -> bool:
        global _RECORDER, _ENV_CHECKED
        _RECORDER = self._prev
        _ENV_CHECKED = _RECORDER is not None
        if self._prev_env is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = self._prev_env
        return False


# -- module-level hooks (the instrumentation surface) -------------------


def span(name: str, **attrs: Any):
    """Open a span; the shared :data:`NULL_SPAN` when tracing is off."""
    rec = active()
    if rec is None:
        return NULL_SPAN
    return rec.span(name, **attrs)


def instant(name: str, **attrs: Any) -> None:
    """Record a point event; no-op when tracing is off."""
    rec = active()
    if rec is not None:
        rec.instant(name, **attrs)


def inc(name: str, n: int = 1) -> None:
    """Bump a counter; no-op when tracing is off."""
    rec = active()
    if rec is not None:
        rec.metrics.inc(name, n)


def gauge(name: str, value: float, policy: Optional[str] = None) -> None:
    """Set a gauge (optionally fixing its merge policy); no-op when off."""
    rec = active()
    if rec is not None:
        rec.metrics.gauge(name, value, policy)


def hist(name: str, value: float) -> None:
    """Record one histogram observation; no-op when tracing is off."""
    rec = active()
    if rec is not None:
        rec.metrics.hist(name, value)


def warn_event(warning: Warning, *, stacklevel: int = 2, **attrs: Any) -> None:
    """Emit *warning* through ``warnings.warn`` AND the event stream.

    The structured twin carries the category name, the message and any
    extra attributes, so chaos tests can assert on events instead of
    string-matching ``pytest.warns``.  The ordinary warning still fires
    with its original category, preserving filter behaviour.
    """
    rec = active()
    if rec is not None:
        cat = type(warning).__name__
        rec.instant("warning", category=cat, message=str(warning), **attrs)
        rec.metrics.inc(f"warning.{cat}")
    warnings.warn(warning, stacklevel=stacklevel + 1)


# -- Chrome-trace export ------------------------------------------------


def chrome_trace(events: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Render buffered events as a Chrome-trace / Perfetto JSON object.

    Load the result via ``chrome://tracing`` or https://ui.perfetto.dev.
    Timestamps convert from nanoseconds to the microseconds the format
    expects; nesting is reconstructed by the viewer from intervals.
    """
    out: List[Dict[str, Any]] = []
    pids = set()
    for e in events:
        pids.add(e["pid"])
        ev: Dict[str, Any] = {
            "name": e["name"],
            "cat": e["name"].split(".", 1)[0],
            "ph": e["ph"],
            "ts": e["ts"] / 1000.0,
            "pid": e["pid"],
            "tid": e["pid"],
            "args": dict(e["args"]),
        }
        if e["ph"] == "X":
            ev["dur"] = e["dur"] / 1000.0
            if e.get("cpu"):
                ev["args"]["cpu_ms"] = round(e["cpu"] / 1e6, 3)
        elif e["ph"] == "i":
            ev["s"] = "t"
        # ph "C" counter samples pass through with args={"value": v},
        # which the viewer renders as a counter track per name.
        out.append(ev)
    for pid in sorted(pids):
        out.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": pid,
                "args": {"name": f"repro[{pid}]"},
            }
        )
    out.sort(key=lambda ev: (ev["ph"] != "M", ev["ts"]))
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, events: Iterable[Dict[str, Any]]) -> None:
    doc = chrome_trace(events)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    os.replace(tmp, path)


def events_from_chrome(doc: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Reconstruct internal-format events from a Chrome-trace document.

    The inverse of :func:`chrome_trace` up to precision: microsecond
    timestamps widen back to nanoseconds and nesting depth — which the
    Chrome format leaves implicit — is rebuilt per process from
    interval containment.  This is what lets ``repro trace FILE``
    render a tree from a file written by an earlier run.
    """
    evs: List[Dict[str, Any]] = []
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") not in ("X", "i"):
            continue
        evs.append(
            {
                "name": ev["name"],
                "ph": ev["ph"],
                "ts": int(ev["ts"] * 1000),
                "dur": int(ev.get("dur", 0) * 1000),
                "cpu": 0,
                "depth": 0,
                "pid": ev.get("pid", 0),
                "args": dict(ev.get("args", {})),
            }
        )
    evs.sort(key=lambda e: (e["ts"], -e["dur"]))
    stacks: Dict[int, List[int]] = {}
    for e in evs:
        stack = stacks.setdefault(e["pid"], [])
        while stack and e["ts"] >= stack[-1]:
            stack.pop()
        e["depth"] = len(stack)
        if e["ph"] == "X":
            stack.append(e["ts"] + e["dur"])
    return evs


# -- checked-in schema + stdlib validator -------------------------------

#: Minimal JSON-Schema-shaped description of the traces we emit.  CI's
#: `trace` smoke job validates `--trace` output against this with the
#: stdlib walker below — no jsonschema dependency.
TRACE_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["traceEvents"],
    "properties": {
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "ph", "ts", "pid", "tid"],
                "properties": {
                    "name": {"type": "string"},
                    "ph": {"enum": ["X", "i", "M", "C"]},
                    "ts": {"type": "number"},
                    "dur": {"type": "number"},
                    "pid": {"type": "integer"},
                    "tid": {"type": "integer"},
                    "args": {"type": "object"},
                },
            },
        },
        "displayTimeUnit": {"type": "string"},
    },
}

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
}


def validate_chrome_trace(
    doc: Any, schema: Optional[Dict[str, Any]] = None, _path: str = "$"
) -> List[str]:
    """Validate *doc* against :data:`TRACE_SCHEMA`; returns error strings.

    Supports the subset of JSON Schema the trace schema uses — ``type``,
    ``required``, ``properties``, ``items`` and ``enum`` — with plain
    stdlib recursion.  An empty list means the document conforms.
    """
    schema = TRACE_SCHEMA if schema is None else schema
    errors: List[str] = []
    typ = schema.get("type")
    if typ is not None:
        expect = _TYPES[typ]
        ok = isinstance(doc, expect)
        if ok and typ in ("number", "integer") and isinstance(doc, bool):
            ok = False
        if not ok:
            return [f"{_path}: expected {typ}, got {type(doc).__name__}"]
    if "enum" in schema and doc not in schema["enum"]:
        return [f"{_path}: {doc!r} not in {schema['enum']}"]
    if isinstance(doc, dict):
        for key in schema.get("required", ()):
            if key not in doc:
                errors.append(f"{_path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in doc:
                errors.extend(
                    validate_chrome_trace(doc[key], sub, f"{_path}.{key}")
                )
    if isinstance(doc, list) and "items" in schema:
        for i, item in enumerate(doc):
            errors.extend(
                validate_chrome_trace(item, schema["items"], f"{_path}[{i}]")
            )
    return errors


# -- human-readable tree ------------------------------------------------


def format_tree(
    events: Iterable[Dict[str, Any]], *, min_ms: float = 0.0
) -> str:
    """Render spans as an indented tree with durations, instants as dots.

    Events from every process interleave on one timeline; each line is
    ``<indent><name> <dur>ms [pid N] key=value ...``.  Spans shorter
    than *min_ms* are folded away (their children too).
    """
    evs = [e for e in events if e["ph"] in ("X", "i")]
    evs.sort(key=lambda e: (e["ts"], -e["dur"]))
    pids = {e["pid"] for e in evs}
    lines: List[str] = []
    hidden_below: Dict[int, int] = {}
    for e in evs:
        depth = e["depth"]
        cut = hidden_below.get(e["pid"])
        if cut is not None and depth > cut:
            continue
        hidden_below.pop(e["pid"], None)
        dur_ms = e["dur"] / 1e6
        if e["ph"] == "X" and dur_ms < min_ms:
            hidden_below[e["pid"]] = depth
            continue
        indent = "  " * depth
        tag = f" [pid {e['pid']}]" if len(pids) > 1 else ""
        attrs = " ".join(f"{k}={v}" for k, v in e["args"].items())
        attrs = f"  {attrs}" if attrs else ""
        if e["ph"] == "i":
            lines.append(f"{indent}· {e['name']}{tag}{attrs}")
        else:
            lines.append(f"{indent}{e['name']} {dur_ms:.3f}ms{tag}{attrs}")
    return "\n".join(lines)
