"""Netlist optimisation passes.

The paper's conclusion names two glitch-reduction levers:

1. *"balancing delay paths"* — implemented by
   :func:`repro.opt.balance.balance_paths`, which pads every
   combinational cell input with delay buffers until all of a cell's
   inputs arrive simultaneously.  Under integer delays this provably
   eliminates **all** useless transitions (each net then toggles at
   most once per cycle), realising the paper's ``1 + L/F`` reduction
   bound at the cost of buffer area and buffer switching power.
2. *"introducing flipflops in the circuit"* — implemented by
   :mod:`repro.retime`.

:mod:`repro.opt.transform` provides the supporting netlist clean-up
passes (dead-cell elimination, constant propagation, buffer removal)
used when comparing optimised variants fairly.
"""

from repro.opt.balance import balance_paths, balancing_report
from repro.opt.transform import (
    dead_cell_elimination,
    propagate_constants,
    strip_buffers,
)

__all__ = [
    "balance_paths",
    "balancing_report",
    "dead_cell_elimination",
    "propagate_constants",
    "strip_buffers",
]
