"""Delay-path balancing by buffer insertion.

For every combinational cell, all input pins are padded with unit-delay
buffer chains so they share the latest arrival time among the cell's
inputs.  By induction over topological order every net then makes at
most one transition per clock cycle (primary inputs and flipflop
outputs switch once at cycle start, and a cell whose inputs all switch
at one instant evaluates exactly once), so *all* useless transitions
disappear — the idealised limit the paper's Section 4.2 reduction bound
``1 + L/F`` describes.

The price is buffer cells: their area and their (useful) switching
power partially offset the glitch savings, which is exactly the
trade-off the balancing-vs-retiming ablation benchmark measures.

Only unit-buffer delay models are supported (the buffer must have a
known integer delay to realise a given skew); the pass asks the delay
model for the buffer delay and raises if it cannot pad exact skews.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.netlist.cells import Cell, CellKind
from repro.netlist.circuit import Circuit
from repro.netlist.delta import CircuitDelta, diff_circuits
from repro.sim.delays import DelayModel, UnitDelay


@dataclass(frozen=True)
class BalanceStats:
    """Outcome summary of :func:`balance_paths`."""

    buffers_inserted: int
    max_skew_padded: int
    original_cells: int

    @property
    def overhead_ratio(self) -> float:
        """Buffers added per original cell."""
        if self.original_cells == 0:
            return 0.0
        return self.buffers_inserted / self.original_cells


def _buffer_delay(delay_model: DelayModel) -> int:
    probe = Cell("probe", CellKind.BUF, (0,), (1,))
    d = delay_model.delay(probe, 0)
    if d < 1:
        raise ValueError(
            "balance_paths needs buffers with delay >= 1 "
            f"(delay model gives {d})"
        )
    return d


def balance_paths(
    circuit: Circuit,
    delay_model: DelayModel | None = None,
    name: str | None = None,
) -> Tuple[Circuit, BalanceStats]:
    """Return a functionally identical circuit with balanced arrivals.

    Flipflops are preserved; their outputs count as time-zero sources
    (they switch at the clock edge like primary inputs) and their D
    inputs are not padded (a registered node ignores pre-edge skew).

    Returns ``(balanced_circuit, stats)``.
    """
    delay_model = delay_model or UnitDelay()
    d_buf = _buffer_delay(delay_model)

    level = circuit.levelize(
        lambda cell, pos: delay_model.delay(cell, pos)
    )

    new = Circuit(name or f"{circuit.name}_balanced")
    net_map: Dict[int, int] = {}
    for pi in circuit.inputs:
        net_map[pi] = new.add_input(circuit.net_name(pi))
    for cell in circuit.cells:
        for out in cell.outputs:
            net_map[out] = new.new_net(circuit.net_name(out))

    chains: Dict[Tuple[int, int], int] = {}
    buffers = 0
    max_skew = 0

    def delayed(old_net: int, skew: int) -> int:
        """New net carrying *old_net* delayed by *skew* time units."""
        nonlocal buffers
        if skew == 0:
            return net_map[old_net]
        if skew % d_buf:
            raise ValueError(
                f"skew {skew} not a multiple of the buffer delay {d_buf}"
            )
        key = (old_net, skew)
        if key not in chains:
            prev = delayed(old_net, skew - d_buf)
            src_name = circuit.net_name(old_net)
            src_name = src_name.replace("[", "_").replace("]", "")
            chains[key] = new.gate(
                CellKind.BUF, prev, name=f"bal_{src_name}_{skew}"
            )
            buffers += 1
        return chains[key]

    for cell in circuit.cells:
        if cell.is_sequential:
            new.add_cell(
                cell.kind,
                [net_map[n] for n in cell.inputs],
                [net_map[out] for out in cell.outputs],
                name=cell.name,
                delay_hint=cell.delay_hint,
            )
            continue
        arrivals = [level.get(n, 0) for n in cell.inputs]
        latest = max(arrivals, default=0)
        new_inputs = []
        for n, at in zip(cell.inputs, arrivals):
            skew = latest - at
            max_skew = max(max_skew, skew)
            new_inputs.append(delayed(n, skew))
        new.add_cell(
            cell.kind,
            new_inputs,
            [net_map[out] for out in cell.outputs],
            name=cell.name,
            delay_hint=cell.delay_hint,
        )

    for out in circuit.outputs:
        new.mark_output(net_map[out])

    stats = BalanceStats(
        buffers_inserted=buffers,
        max_skew_padded=max_skew,
        original_cells=len(circuit.cells),
    )
    return new, stats


def balance_paths_delta(
    circuit: Circuit,
    delay_model: DelayModel | None = None,
    name: str | None = None,
) -> Tuple[Circuit, BalanceStats, CircuitDelta]:
    """:func:`balance_paths` plus the delta it performed.

    Balancing only inserts buffer chains and rewires combinational
    input pins, so the delta is always pure-additive: every parent net
    and cell keeps its index in the child.
    """
    new, stats = balance_paths(circuit, delay_model, name)
    return new, stats, diff_circuits(circuit, new)


def balancing_report(
    circuit: Circuit, delay_model: DelayModel | None = None
) -> Dict[str, float]:
    """Static skew profile of *circuit* (how unbalanced is it?).

    Reports the mean and maximum input-arrival skew over all
    combinational cells — the structural quantity that predicts glitch
    activity (paper Section 4: "decreasing the number of unbalanced
    delay paths ... significantly reduces the number of useless
    transitions").
    """
    delay_model = delay_model or UnitDelay()
    level = circuit.levelize(
        lambda cell, pos: delay_model.delay(cell, pos)
    )
    skews = []
    for cell in circuit.cells:
        if cell.is_sequential or len(cell.inputs) < 2:
            continue
        arrivals = [level.get(n, 0) for n in cell.inputs]
        skews.append(max(arrivals) - min(arrivals))
    if not skews:
        return {"cells": 0, "mean_skew": 0.0, "max_skew": 0, "skewed_fraction": 0.0}
    return {
        "cells": len(skews),
        "mean_skew": sum(skews) / len(skews),
        "max_skew": max(skews),
        "skewed_fraction": sum(1 for s in skews if s) / len(skews),
    }
