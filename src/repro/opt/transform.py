"""Netlist clean-up transforms.

These passes keep optimised variants honest in comparisons:

* :func:`dead_cell_elimination` — drop cells whose outputs reach no
  primary output or flipflop (their activity would otherwise inflate
  counts for free);
* :func:`propagate_constants` — fold CONST0/CONST1 through gates,
  shrinking e.g. carry-select blocks fed by constant carry-in;
* :func:`strip_buffers` — remove BUF cells (the inverse of
  :func:`repro.opt.balance.balance_paths`, used to recover the
  original netlist shape in tests).

All passes return a fresh circuit; the input is never mutated.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.netlist.cells import CellKind, evaluate_kind
from repro.netlist.circuit import Circuit
from repro.netlist.delta import CircuitDelta, diff_circuits


def _rebuild(
    circuit: Circuit,
    keep_cell,
    replace_input,
    name_suffix: str,
) -> Circuit:
    """Copy *circuit*, dropping cells and rewiring inputs via callbacks.

    ``keep_cell(cell) -> bool`` decides survival; ``replace_input(net)
    -> net`` redirects any consumer pin (applied transitively before
    the copy).
    """
    new = Circuit(f"{circuit.name}{name_suffix}")
    net_map: Dict[int, int] = {}
    for pi in circuit.inputs:
        net_map[pi] = new.add_input(circuit.net_name(pi))
    for cell in circuit.cells:
        if not keep_cell(cell):
            continue
        for out in cell.outputs:
            net_map[out] = new.new_net(circuit.net_name(out))

    def resolve(old_net: int) -> int:
        seen = set()
        while True:
            replacement = replace_input(old_net)
            if replacement == old_net or replacement in seen:
                break
            seen.add(replacement)
            old_net = replacement
        mapped = net_map.get(old_net)
        if mapped is None:
            # Undriven internal nets (legal: they read as constant 0)
            # are materialized on demand so consumers and outputs can
            # still reference them instead of crashing the rebuild.
            mapped = net_map[old_net] = new.new_net(
                circuit.net_name(old_net)
            )
        return mapped

    for cell in circuit.cells:
        if not keep_cell(cell):
            continue
        new.add_cell(
            cell.kind,
            [resolve(n) for n in cell.inputs],
            [net_map[out] for out in cell.outputs],
            name=cell.name,
            delay_hint=cell.delay_hint,
        )
    for out in circuit.outputs:
        new.mark_output(resolve(out))
    return new


def dead_cell_elimination(circuit: Circuit) -> Circuit:
    """Remove cells that cannot influence any output or flipflop."""
    live_nets = set(circuit.outputs)
    for cell in circuit.cells:
        if cell.is_sequential:
            live_nets.update(cell.inputs)
    # Walk backwards until fixpoint.
    live_cells: set[int] = set()
    frontier = list(live_nets)
    while frontier:
        net = frontier.pop()
        driver = circuit.nets[net].driver
        if driver is None:
            continue
        ci = driver[0]
        if ci in live_cells:
            continue
        live_cells.add(ci)
        for n in circuit.cells[ci].inputs:
            frontier.append(n)

    return _rebuild(
        circuit,
        keep_cell=lambda cell: cell.index in live_cells,
        replace_input=lambda net: net,
        name_suffix="_dce",
    )


def propagate_constants(circuit: Circuit) -> Circuit:
    """Fold constants through combinational logic.

    Rules applied (then dead cells are swept):

    * any cell with all-constant inputs becomes a CONST cell
      (single-output kinds) or two CONST cells (FA/HA);
    * n-ary AND with a constant-0 input / OR with a constant-1 input is
      forced to a constant;
    * ``FA(a, b, 0) -> HA(a, b)`` and
      ``FA(a, b, 1) -> (XNOR(a, b), OR(a, b))`` — the carry-select
      adder's pre-computed carry hypotheses simplify this way;
    * ``HA(a, 0) -> (BUF(a), 0)``, ``HA(a, 1) -> (NOT(a), BUF(a))``;
    * ``MUX2`` with a constant select becomes a BUF of the taken leg.
    """
    const_value: Dict[int, int] = {}
    for cell in circuit.cells:
        if cell.kind is CellKind.CONST0:
            const_value[cell.outputs[0]] = 0
        elif cell.kind is CellKind.CONST1:
            const_value[cell.outputs[0]] = 1

    # Pass 1: decide replacements on the original circuit.
    # replacement: cell index -> list of (kind, input nets, output nets)
    replacement: Dict[int, list] = {}
    for cell in circuit.topological_cells():
        if cell.kind in (CellKind.CONST0, CellKind.CONST1, CellKind.DFF):
            continue
        values: list[Optional[int]] = [const_value.get(n) for n in cell.inputs]
        if all(v is not None for v in values):
            outs = evaluate_kind(cell.kind, values)  # type: ignore[arg-type]
            replacement[cell.index] = [
                (
                    CellKind.CONST1 if bit else CellKind.CONST0,
                    [],
                    [out_net],
                )
                for bit, out_net in zip(outs, cell.outputs)
            ]
            for bit, out_net in zip(outs, cell.outputs):
                const_value[out_net] = bit
            continue
        kind = cell.kind
        if kind is CellKind.AND and any(v == 0 for v in values):
            replacement[cell.index] = [(CellKind.CONST0, [], [cell.outputs[0]])]
            const_value[cell.outputs[0]] = 0
        elif kind is CellKind.OR and any(v == 1 for v in values):
            replacement[cell.index] = [(CellKind.CONST1, [], [cell.outputs[0]])]
            const_value[cell.outputs[0]] = 1
        elif kind is CellKind.FA and sum(v is not None for v in values) == 1:
            free = [n for n, v in zip(cell.inputs, values) if v is None]
            fixed = next(v for v in values if v is not None)
            s_net, c_net = cell.outputs
            if fixed == 0:
                replacement[cell.index] = [
                    (CellKind.HA, free, [s_net, c_net])
                ]
            else:
                replacement[cell.index] = [
                    (CellKind.XNOR, free, [s_net]),
                    (CellKind.OR, free, [c_net]),
                ]
        elif kind is CellKind.HA and sum(v is not None for v in values) == 1:
            free = next(n for n, v in zip(cell.inputs, values) if v is None)
            fixed = next(v for v in values if v is not None)
            s_net, c_net = cell.outputs
            if fixed == 0:
                replacement[cell.index] = [
                    (CellKind.BUF, [free], [s_net]),
                    (CellKind.CONST0, [], [c_net]),
                ]
                const_value[c_net] = 0
            else:
                replacement[cell.index] = [
                    (CellKind.NOT, [free], [s_net]),
                    (CellKind.BUF, [free], [c_net]),
                ]
        elif kind is CellKind.MUX2 and values[0] is not None:
            taken = cell.inputs[2] if values[0] else cell.inputs[1]
            replacement[cell.index] = [
                (CellKind.BUF, [taken], [cell.outputs[0]])
            ]

    # Pass 2: rebuild.
    new = Circuit(f"{circuit.name}_cp")
    net_map: Dict[int, int] = {}
    for pi in circuit.inputs:
        net_map[pi] = new.add_input(circuit.net_name(pi))
    for cell in circuit.cells:
        for out in cell.outputs:
            net_map[out] = new.new_net(circuit.net_name(out))
    for net in circuit.nets:
        # Undriven internal nets (constant-0 reads) survive the copy.
        if net.index not in net_map:
            net_map[net.index] = new.new_net(net.name)
    for cell in circuit.cells:
        pieces = replacement.get(cell.index)
        if pieces is None:
            new.add_cell(
                cell.kind,
                [net_map[n] for n in cell.inputs],
                [net_map[out] for out in cell.outputs],
                name=cell.name,
                delay_hint=cell.delay_hint,
            )
            continue
        for k, (kind, ins, outs) in enumerate(pieces):
            new.add_cell(
                kind,
                [net_map[n] for n in ins],
                [net_map[out] for out in outs],
                name=cell.name if len(pieces) == 1 else f"{cell.name}__{k}",
            )
    for out in circuit.outputs:
        new.mark_output(net_map[out])
    return dead_cell_elimination(new)


def strip_buffers(circuit: Circuit) -> Circuit:
    """Remove every BUF cell, rewiring consumers to the buffer input."""
    forward: Dict[int, int] = {}
    for cell in circuit.cells:
        if cell.kind is CellKind.BUF:
            forward[cell.outputs[0]] = cell.inputs[0]

    return _rebuild(
        circuit,
        keep_cell=lambda cell: cell.kind is not CellKind.BUF,
        replace_input=lambda net: forward.get(net, net),
        name_suffix="_nobuf",
    )


# ---------------------------------------------------------------------------
# Delta-producing variants
# ---------------------------------------------------------------------------
# The clean-up passes remove cells and (through ``_rebuild``) drop
# unreferenced nets, so their deltas are rarely pure-additive — but the
# diff is cheap and uniform, and downstream consumers decide per delta
# whether the incremental paths apply or the full rebuild runs.

def dead_cell_elimination_delta(
    circuit: Circuit,
) -> tuple[Circuit, CircuitDelta]:
    """:func:`dead_cell_elimination` plus the delta it performed."""
    new = dead_cell_elimination(circuit)
    return new, diff_circuits(circuit, new)


def propagate_constants_delta(
    circuit: Circuit,
) -> tuple[Circuit, CircuitDelta]:
    """:func:`propagate_constants` plus the delta it performed."""
    new = propagate_constants(circuit)
    return new, diff_circuits(circuit, new)


def strip_buffers_delta(circuit: Circuit) -> tuple[Circuit, CircuitDelta]:
    """:func:`strip_buffers` plus the delta it performed."""
    new = strip_buffers(circuit)
    return new, diff_circuits(circuit, new)
