"""Retiming and pipelining (paper Section 5).

The paper inserts flipflops "by using retiming [7][8]" to balance delay
paths and eliminate glitches.  This package implements the classical
Leiserson–Saxe framework the cited tools derive from:

* :mod:`repro.retime.graph` — extract the retiming graph
  ``G = (V, E, d, w)`` from a netlist (combinational cells as vertices,
  flipflop counts as edge weights, a host vertex for I/O);
* :mod:`repro.retime.leiserson_saxe` — the FEAS feasibility algorithm
  and binary-search minimum-period retiming;
* :mod:`repro.retime.pipeline` — pipelining: seed extra register
  stages on the output edges, then retime them into the fabric;
* :mod:`repro.retime.apply` — rebuild a netlist from a retiming
  assignment, sharing flipflop chains per driving net.
"""

from repro.retime.graph import RetimingGraph, HOST, HOST_OUT
from repro.retime.leiserson_saxe import (
    combinational_delays,
    feas,
    minimum_period,
    retime_for_period,
)
from repro.retime.pipeline import pipeline_circuit, PipelineResult
from repro.retime.apply import apply_retiming

__all__ = [
    "RetimingGraph",
    "HOST",
    "HOST_OUT",
    "combinational_delays",
    "feas",
    "minimum_period",
    "retime_for_period",
    "pipeline_circuit",
    "PipelineResult",
    "apply_retiming",
]
