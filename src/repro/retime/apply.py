"""Rebuild a netlist from a retiming assignment.

Given the retiming graph of a circuit and a legal retiming ``r``, the
rebuilt circuit places ``w_r(e)`` flipflops on every connection.
Flipflops are shared: connections driven by the same net tap a single
DFF chain at their respective depths, so a net fanning out to several
consumers never duplicates registers (this mirrors what retiming tools
emit and keeps the Table 3 flipflop counts honest).

Initial states are all-zero; for the paper's experiments (random-input
power measurement after a warm-up) initial-state equivalence is
irrelevant, only steady-state functional equivalence matters — which
holds by the Leiserson–Saxe correctness theorem and is verified by the
integration tests (pipelined output == combinational output delayed by
the added stages).
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from repro.netlist.circuit import Circuit
from repro.netlist.delta import CircuitDelta, diff_circuits
from repro.retime.graph import HOST_OUT, RetimingGraph


def apply_retiming(
    graph: RetimingGraph,
    r: Mapping[int, int],
    name: str | None = None,
) -> Circuit:
    """Construct the retimed circuit for assignment *r*.

    Raises ``ValueError`` if *r* is illegal (negative retimed weight).
    The new circuit preserves primary-input names, combinational cell
    names and output order; inserted flipflops are named
    ``rt_<source-net>_<depth>``.
    """
    old = graph.circuit
    if not graph.is_legal(dict(r)):
        raise ValueError("illegal retiming (negative edge weight or host lag)")
    new = Circuit(name or f"{old.name}_retimed")

    # Primary inputs, preserving names and order.
    net_map: Dict[int, int] = {}
    for pi in old.inputs:
        net_map[pi] = new.add_input(old.net_name(pi))

    # Fresh output nets for every combinational cell, preserving names.
    for ci in graph.vertices:
        cell = old.cells[ci]
        for out in cell.outputs:
            net_map[out] = new.new_net(old.net_name(out))

    # Shared DFF chains per source net.
    chains: Dict[Tuple[int, int], int] = {}

    def registered(src_net: int, depth: int) -> int:
        """New net carrying *src_net* delayed by *depth* flipflops."""
        if depth == 0:
            return net_map[src_net]
        key = (src_net, depth)
        if key not in chains:
            prev = registered(src_net, depth - 1)
            src_name = old.net_name(src_net).replace("[", "_").replace("]", "")
            chains[key] = new.add_dff(prev, name=f"rt_{src_name}_{depth}")
        return chains[key]

    conn_map = graph.connection_map()

    # Combinational cells in a dependency-safe order is not required
    # (nets pre-exist), so original order keeps names stable.
    for ci in graph.vertices:
        cell = old.cells[ci]
        new_inputs = []
        for pin in range(len(cell.inputs)):
            conn = conn_map[(ci, pin)]
            w = graph.retimed_weight(conn, r)
            new_inputs.append(registered(conn.src_net, w))
        new.add_cell(
            cell.kind,
            new_inputs,
            [net_map[out] for out in cell.outputs],
            name=cell.name,
            delay_hint=cell.delay_hint,
        )

    # Primary outputs, preserving order.
    for slot in range(len(old.outputs)):
        conn = conn_map[(HOST_OUT, slot)]
        w = graph.retimed_weight(conn, r)
        new.mark_output(registered(conn.src_net, w))
    return new


def apply_retiming_delta(
    graph: RetimingGraph,
    r: Mapping[int, int],
    name: str | None = None,
) -> Tuple[Circuit, CircuitDelta]:
    """:func:`apply_retiming` plus the delta it performed.

    Retiming a purely combinational circuit only adds DFF chains, so
    its delta is pure-additive; retiming a circuit that already holds
    registers rebuilds them at new depths (the old ones are removed),
    which downstream incremental consumers treat as a full rebuild.
    """
    new = apply_retiming(graph, r, name)
    return new, diff_circuits(graph.circuit, new)
