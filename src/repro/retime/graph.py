"""Retiming-graph extraction.

The Leiserson–Saxe model views a synchronous circuit as a directed
multigraph ``G = (V, E, d, w)``: vertices are combinational cells with
propagation delay ``d(v)``, edges are signal paths carrying ``w(e)``
registers, and a zero-delay *host* vertex closes the graph through the
primary inputs and outputs.  A retiming ``r: V -> Z`` (with
``r(host) = 0``) relocates registers: the retimed edge weight is
``w_r(e) = w(e) + r(dst) - r(src)``, which must stay non-negative.

:class:`RetimingGraph` extracts this model from a
:class:`~repro.netlist.circuit.Circuit` by collapsing DFF chains on
every cell-input and primary-output path into edge weights, remembering
enough provenance (source net, destination pin) for
:func:`repro.retime.apply.apply_retiming` to rebuild a netlist.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Tuple

from repro.netlist.circuit import Circuit
from repro.sim.delays import DelayModel, UnitDelay

#: Vertex ids of the host (I/O) vertices; real vertices are cell indices.
#: The host is split into a source side (primary inputs) and a sink side
#: (primary outputs) so that purely combinational circuits do not form a
#: spurious zero-register cycle through the environment.  Both halves
#: are pinned at lag 0, so input-to-output latency is preserved exactly
#: by any legal retiming.
HOST = -1  # source side: drives the primary inputs
HOST_OUT = -2  # sink side: consumes the primary outputs


@dataclass(frozen=True)
class Connection:
    """One edge instance of the retiming graph.

    ``src``/``dst`` are vertices (combinational cell indices or
    :data:`HOST`); ``src_net`` is the original net that carries the
    signal at the source side (a combinational cell output or a primary
    input); ``dst_pin`` is the input-pin position on the destination
    cell, or the primary-output slot index when ``dst`` is the host;
    ``weight`` counts the D-flipflops collapsed from the original path.
    """

    src: int
    src_net: int
    dst: int
    dst_pin: int
    weight: int


class RetimingGraph:
    """The extracted graph plus vertex delays."""

    def __init__(
        self,
        circuit: Circuit,
        vertices: List[int],
        delay: Dict[int, int],
        connections: List[Connection],
    ) -> None:
        self.circuit = circuit
        self.vertices = vertices
        self.delay = delay
        self.connections = connections

    # ------------------------------------------------------------------
    @classmethod
    def from_circuit(
        cls, circuit: Circuit, delay_model: DelayModel | None = None
    ) -> "RetimingGraph":
        """Extract the retiming graph of *circuit*.

        Vertex delay is the maximum per-output delay of the cell under
        *delay_model* (default unit delay).  Every DFF must lie on a
        path between combinational cells / ports; cyclic FF-only loops
        are rejected.
        """
        delay_model = delay_model or UnitDelay()
        vertices = [c.index for c in circuit.cells if not c.is_sequential]
        delay: Dict[int, int] = {HOST: 0}
        for ci in vertices:
            cell = circuit.cells[ci]
            delay[ci] = max(
                delay_model.delay(cell, pos) for pos in range(len(cell.outputs))
            )

        input_set = set(circuit.inputs)

        def trace_back(net: int) -> Tuple[int, int, int]:
            """Walk through DFF drivers; return (src_vertex, src_net, weight)."""
            weight = 0
            seen = set()
            while True:
                driver = circuit.nets[net].driver
                if driver is None:
                    if net not in input_set:
                        raise ValueError(
                            f"net {circuit.net_name(net)!r} is undriven and "
                            "not a primary input"
                        )
                    return HOST, net, weight
                cell = circuit.cells[driver[0]]
                if not cell.is_sequential:
                    return cell.index, net, weight
                if cell.index in seen:
                    raise ValueError(
                        "flipflop-only cycle detected at "
                        f"{cell.name!r}; retiming graph undefined"
                    )
                seen.add(cell.index)
                weight += 1
                net = cell.inputs[0]

        connections: List[Connection] = []
        for ci in vertices:
            cell = circuit.cells[ci]
            for pin, net in enumerate(cell.inputs):
                src, src_net, weight = trace_back(net)
                connections.append(
                    Connection(src, src_net, ci, pin, weight)
                )
        for slot, net in enumerate(circuit.outputs):
            src, src_net, weight = trace_back(net)
            connections.append(Connection(src, src_net, HOST_OUT, slot, weight))
        delay[HOST_OUT] = 0
        return cls(circuit, vertices, delay, connections)

    # ------------------------------------------------------------------
    def with_output_stages(self, stages: int) -> "RetimingGraph":
        """A copy with *stages* extra registers on every edge into the host.

        This seeds pipelining: the FEAS retiming then pulls the seeded
        registers backwards into the combinational fabric to meet the
        target period (paper Section 5's "introducing flipflops using
        retiming and pipelining").
        """
        if stages < 0:
            raise ValueError("stage count cannot be negative")
        connections = [
            replace(c, weight=c.weight + stages) if c.dst == HOST_OUT else c
            for c in self.connections
        ]
        return RetimingGraph(self.circuit, self.vertices, self.delay, connections)

    # ------------------------------------------------------------------
    def retimed_weight(self, conn: Connection, r: Mapping[int, int]) -> int:
        """``w_r(e) = w(e) + r(dst) - r(src)`` for one connection."""
        return conn.weight + r.get(conn.dst, 0) - r.get(conn.src, 0)

    def is_legal(self, r: Mapping[int, int]) -> bool:
        """True iff host lags are 0 and every retimed weight is non-negative."""
        if r.get(HOST, 0) != 0 or r.get(HOST_OUT, 0) != 0:
            return False
        return all(self.retimed_weight(c, r) >= 0 for c in self.connections)

    def count_flipflops(self, r: Mapping[int, int] | None = None) -> int:
        """Flipflop count after retiming *r*, with chain sharing.

        Flipflops on connections that share a driving net are merged
        into a single chain tapped at different depths (what
        :func:`~repro.retime.apply.apply_retiming` builds), so each
        distinct source net costs ``max`` — not ``sum`` — of its
        connection weights.
        """
        r = r or {}
        depth_by_net: Dict[int, int] = {}
        for c in self.connections:
            w = self.retimed_weight(c, r)
            if w < 0:
                raise ValueError("illegal retiming: negative edge weight")
            depth_by_net[c.src_net] = max(depth_by_net.get(c.src_net, 0), w)
        return sum(depth_by_net.values())

    def connection_map(self) -> Dict[Tuple[int, int], Connection]:
        """``{(dst_vertex, dst_pin): connection}`` for netlist rebuild."""
        return {(c.dst, c.dst_pin): c for c in self.connections}
