"""Leiserson–Saxe FEAS retiming and minimum-period search.

``FEAS(G, c)`` decides whether clock period *c* is achievable by
retiming and produces a legal retiming when it is:

1. start with ``r(v) = 0``;
2. repeat ``|V| - 1`` times: compute the combinational arrival time
   ``Delta(v)`` in the retimed graph (longest zero-weight path ending
   at *v*, including ``d(v)``); increment ``r(v)`` for every vertex
   with ``Delta(v) > c``;
3. feasible iff afterwards ``max Delta <= c``.

This is O(|V| * |E|) per candidate period; the minimum period is found
by binary search between the largest single-vertex delay and the
unretimed critical path.  Exact for the integer delays used throughout
this library.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.netlist.circuit import Circuit
from repro.retime.graph import HOST, HOST_OUT, RetimingGraph
from repro.sim.delays import DelayModel, UnitDelay


def combinational_delays(
    circuit: Circuit, delay_model: DelayModel | None = None
) -> Dict[int, int]:
    """Per-combinational-cell delay = max over its outputs' delays."""
    delay_model = delay_model or UnitDelay()
    return {
        c.index: max(
            delay_model.delay(c, pos) for pos in range(len(c.outputs))
        )
        for c in circuit.cells
        if not c.is_sequential
    }


def _arrival_times(
    graph: RetimingGraph, r: Dict[int, int]
) -> Optional[Dict[int, int]]:
    """Longest-path arrival per vertex over zero-weight retimed edges.

    Returns ``None`` when the zero-weight subgraph has a cycle (i.e.
    the retiming leaves a register-free loop — infeasible).
    """
    vertices = [HOST, HOST_OUT] + list(graph.vertices)
    zero_in: Dict[int, list[int]] = {v: [] for v in vertices}
    out_edges: Dict[int, list[int]] = {v: [] for v in vertices}
    indeg: Dict[int, int] = {v: 0 for v in vertices}
    for conn in graph.connections:
        w = graph.retimed_weight(conn, r)
        if w < 0:
            return None
        if w == 0 and conn.src != conn.dst:
            zero_in[conn.dst].append(conn.src)
            out_edges[conn.src].append(conn.dst)
            indeg[conn.dst] += 1
        elif w == 0 and conn.src == conn.dst:
            return None  # zero-weight self loop
    arrival: Dict[int, int] = {}
    ready = [v for v in vertices if indeg[v] == 0]
    processed = 0
    order: list[int] = []
    while ready:
        v = ready.pop()
        order.append(v)
        processed += 1
        for succ in out_edges[v]:
            indeg[succ] -= 1
            if indeg[succ] == 0:
                ready.append(succ)
    if processed != len(vertices):
        return None  # zero-weight cycle
    for v in order:
        incoming = zero_in[v]
        base = max((arrival[u] for u in incoming), default=0)
        arrival[v] = base + graph.delay[v]
    return arrival


def feas(
    graph: RetimingGraph, period: int
) -> Optional[Dict[int, int]]:
    """Return a legal retiming achieving *period*, or ``None``.

    ``r`` maps vertices to integer lags; the host is pinned at 0.
    """
    if period < max(graph.delay.values(), default=0):
        return None
    r: Dict[int, int] = {v: 0 for v in graph.vertices}
    r[HOST] = 0
    r[HOST_OUT] = 0
    for _ in range(max(len(graph.vertices) - 1, 0)):
        arrival = _arrival_times(graph, r)
        if arrival is None:
            return None
        changed = False
        for v in graph.vertices:
            if arrival[v] > period:
                r[v] += 1
                changed = True
        if not changed:
            break
    arrival = _arrival_times(graph, r)
    if arrival is None or max(arrival.values()) > period:
        return None
    if not graph.is_legal(r):
        return None
    return r


def retime_for_period(
    graph: RetimingGraph, period: int
) -> Dict[int, int]:
    """Like :func:`feas` but raises ``ValueError`` when infeasible."""
    r = feas(graph, period)
    if r is None:
        raise ValueError(f"no retiming achieves period {period}")
    return r


def minimum_period(
    graph: RetimingGraph,
) -> Tuple[int, Dict[int, int]]:
    """Binary-search the smallest achievable period; returns ``(c, r)``."""
    arrival0 = _arrival_times(graph, {v: 0 for v in graph.vertices})
    if arrival0 is None:
        raise ValueError("circuit has a register-free cycle; no legal period")
    hi = max(arrival0.values())
    lo = max(graph.delay.values(), default=0)
    best_r = feas(graph, hi)
    assert best_r is not None, "unretimed period must be feasible"
    best_c = hi
    while lo < hi:
        mid = (lo + hi) // 2
        r = feas(graph, mid)
        if r is not None:
            best_c, best_r = mid, r
            hi = mid
        else:
            lo = mid + 1
    return best_c, best_r
