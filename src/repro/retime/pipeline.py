"""Pipelining = seeded registers + minimum-period retiming.

The paper's Table 3 circuits are "each retimed for a different clock
frequency, resulting in more or less pipeline flipflops".
:func:`pipeline_circuit` reproduces that flow: seed *stages* extra
register levels on the primary-output edges of the retiming graph,
then run FEAS to pull them back into the combinational fabric at the
minimum achievable period (or a caller-specified target period).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.netlist.circuit import Circuit
from repro.retime.apply import apply_retiming
from repro.retime.graph import RetimingGraph
from repro.retime.leiserson_saxe import feas, minimum_period
from repro.sim.delays import DelayModel, UnitDelay


@dataclass
class PipelineResult:
    """Outcome of :func:`pipeline_circuit`.

    Attributes
    ----------
    circuit:
        The pipelined netlist.
    period:
        The clock period (in delay-model units) the retiming achieves.
    latency:
        Extra clock cycles of input-to-output latency added by the
        seeded stages (equal to the requested *stages*).
    retiming:
        The vertex lag assignment that produced the circuit.
    flipflops:
        Flipflop count of the pipelined circuit (with chain sharing).
    """

    circuit: Circuit
    period: int
    latency: int
    retiming: Dict[int, int]
    flipflops: int


def pipeline_circuit(
    circuit: Circuit,
    stages: int,
    delay_model: DelayModel | None = None,
    period: int | None = None,
    name: str | None = None,
    graph: RetimingGraph | None = None,
) -> PipelineResult:
    """Pipeline *circuit* with *stages* additional register levels.

    With ``stages=0`` and ``period=None`` this degenerates to plain
    minimum-period retiming of the existing registers.  When *period*
    is given, FEAS must achieve it with the seeded registers or a
    ``ValueError`` is raised; otherwise the minimum feasible period is
    found by binary search.

    *graph* lets callers that pipeline the same circuit at several
    depths (the design-space explorer expands ``retime(stages=k)`` for
    a range of *k*) reuse one extracted
    :meth:`RetimingGraph.from_circuit` instead of re-walking the
    netlist per depth; it must have been built from *circuit* under
    *delay_model*.
    """
    if stages < 0:
        raise ValueError("stage count cannot be negative")
    delay_model = delay_model or UnitDelay()
    if graph is None:
        graph = RetimingGraph.from_circuit(circuit, delay_model)
    elif graph.circuit is not circuit:
        raise ValueError("graph was built from a different circuit")
    graph = graph.with_output_stages(stages)
    if period is None:
        achieved, r = minimum_period(graph)
    else:
        r = feas(graph, period)
        if r is None:
            raise ValueError(
                f"period {period} infeasible with {stages} pipeline stages"
            )
        achieved = period
    new_circuit = apply_retiming(
        graph, r, name=name or f"{circuit.name}_p{stages}"
    )
    return PipelineResult(
        circuit=new_circuit,
        period=achieved,
        latency=stages,
        retiming=r,
        flipflops=new_circuit.num_flipflops,
    )
