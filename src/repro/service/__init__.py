"""Analysis service: exact result reuse and batch scheduling.

The sixth architecture layer, on top of the session API
(:mod:`repro.core.activity`).  Identical analysis requests — the
common case when many users sweep the same paper artefacts — are
served from a persistent, content-addressed cache instead of
recomputing, and large parameter sweeps become declarative batch jobs
with partial-hit resume:

* :mod:`repro.service.store` — :class:`ResultStore`: on-disk,
  LRU-bounded, atomic-write cache of serialized activity results,
  keyed by canonical fingerprints of (circuit, delay model, stimulus,
  vector count, result class).  Hits are bit-identical to
  recomputation by construction.
* :mod:`repro.service.runner` — :func:`cached_run`, the front door
  every cached consumer routes through, plus the process-default
  store (``REPRO_CACHE_DIR``) and :func:`cached_estimate`, the same
  front door for the analytic estimation backend
  (:mod:`repro.estimate`; entries keyed by derived input statistics,
  shared across stimulus seeds).
* :mod:`repro.service.jobs` — :class:`JobSpec` sweeps expanded into
  :class:`JobPoint`\\ s and executed by the :class:`BatchScheduler`
  over the supervised worker pool; only cache-missing points
  simulate.
* :mod:`repro.service.pool` — :func:`run_supervised`: the fan-out
  primitive all batch paths use.  Worker death and hangs are detected
  and the task retried with deterministic backoff
  (:class:`RetryPolicy`); tasks that exhaust the budget become
  structured :class:`TaskFailure` quarantine records; an interrupt
  salvages every completed payload.
* :mod:`repro.service.faults` — the deterministic fault-injection
  harness behind the chaos suite: a seeded :class:`FaultPlan` arms
  named injection points (worker crash/hang, torn or failing store
  writes, backend ``MemoryError``) whose firing is a pure function of
  (seed, site identity), so any chaos run replays exactly.

The CLI exposes the service as ``repro.cli submit / status / cache``
(including ``cache verify|repair``) and via ``--cache DIR`` on
``analyze`` and ``experiment``.
"""

from repro.service.store import (
    ESTIMATE,
    GLITCH_EXACT,
    SETTLED,
    ResultStore,
    RunKey,
    decode_estimate,
    decode_result,
    encode_estimate,
    encode_result,
    payload_summary,
)
from repro.service.runner import (
    cached_estimate,
    cached_run,
    configure_default_store,
    default_store,
    estimate_key,
    run_key,
    word_layout,
)
from repro.service.jobs import (
    BatchReport,
    BatchScheduler,
    JobPoint,
    JobSpec,
    PointOutcome,
    load_job_records,
    resolve_delay,
)
from repro.service.faults import FaultPlan, FaultSpec
from repro.service.pool import (
    PoolResult,
    RetryPolicy,
    TaskFailure,
    run_supervised,
)
from repro.service.store import StoreWriteWarning

__all__ = [
    "ESTIMATE",
    "GLITCH_EXACT",
    "SETTLED",
    "ResultStore",
    "RunKey",
    "decode_estimate",
    "decode_result",
    "encode_estimate",
    "encode_result",
    "payload_summary",
    "cached_estimate",
    "cached_run",
    "configure_default_store",
    "default_store",
    "estimate_key",
    "run_key",
    "word_layout",
    "BatchReport",
    "BatchScheduler",
    "JobPoint",
    "JobSpec",
    "PointOutcome",
    "load_job_records",
    "resolve_delay",
    "FaultPlan",
    "FaultSpec",
    "PoolResult",
    "RetryPolicy",
    "StoreWriteWarning",
    "TaskFailure",
    "run_supervised",
]
