"""Deterministic fault injection for the execution layer.

Chaos testing is only useful when a failing run can be replayed
exactly, so every injection decision here is a **pure function of a
seed and the injection site's identity** — never of wall-clock time,
pool scheduling, or process ids.  A :class:`FaultPlan` names the
active injection points (:data:`POINTS`) and, per point, a
:class:`FaultSpec` describing *when* it fires:

* ``rate`` — the fraction of matching sites that fire, decided by
  hashing ``(seed, point, site key)`` into ``[0, 1)``.  The site key
  is a stable content identity (a run-key digest, an object digest, a
  backend name), so the same plan fires at the same sites no matter
  how tasks are scheduled across workers or retries are interleaved.
* ``keys`` — optional whitelist: the site key must contain one of
  these substrings (e.g. fire ``backend.memoryerror`` only for the
  ``vector`` tier).
* ``max_attempt`` — worker faults fire only while the task's attempt
  number is below this (default 1: crash the first attempt, let the
  retry succeed — which is what makes chaos sweeps bit-identical to
  fault-free runs).
* ``max_fires`` — per-process cap on total firings of the point.

Arming is process-global (:func:`arm` / :func:`disarm` /
:func:`armed`) and propagates to worker processes through the
``REPRO_FAULTS`` environment variable, so a forked *or* spawned pool
worker sees the same plan.  Worker-lifecycle faults (``worker.crash``,
``worker.hang``) additionally require :func:`enter_worker` context —
they never fire in the parent process, where an ``os._exit`` would
take the whole run down instead of simulating a lost worker.

The injection points and the layers that consult them:

========================  ==================================================
``worker.crash``          supervised-pool worker loop: ``os._exit(66)``
``worker.hang``           supervised-pool worker loop: sleep past the
                          task timeout (``duration_s``)
``store.write_oserror``   :func:`repro.service.store._atomic_write`:
                          raise ``OSError`` before writing
``store.torn_write``      :meth:`ResultStore.put`: truncate the payload
                          mid-write (simulates a torn page)
``store.bitflip``         :meth:`ResultStore.put`: flip one payload byte
                          (simulates silent media corruption)
``backend.memoryerror``   :class:`repro.core.activity.ActivityRun`:
                          raise ``MemoryError`` when dispatching the
                          named backend tier
========================  ==================================================

This module deliberately imports nothing from the rest of the package
(stdlib only), so any layer can consult it lazily without import
cycles.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

#: Environment variable carrying the serialized plan into workers.
ENV_VAR = "REPRO_FAULTS"

#: The injection points the execution layer consults.
POINTS = (
    "worker.crash",
    "worker.hang",
    "store.write_oserror",
    "store.torn_write",
    "store.bitflip",
    "backend.memoryerror",
)

#: Exit code a crash-injected worker dies with (distinguishable from
#: a real bug's traceback-and-exit-1 in test assertions).
CRASH_EXIT_CODE = 66


def _fraction(seed: int, point: str, key: str) -> float:
    """Deterministic hash of an injection site into ``[0, 1)``."""
    digest = hashlib.sha256(
        f"repro-fault-v1|{seed}|{point}|{key}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultSpec:
    """When one injection point fires (see the module docstring)."""

    rate: float = 1.0
    keys: Tuple[str, ...] | None = None
    max_attempt: int = 1
    max_fires: int | None = None
    #: Sleep length for ``worker.hang`` (long enough that any sane
    #: task timeout expires first).
    duration_s: float = 3600.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.rate <= 1.0):
            raise ValueError("rate must be in [0, 1]")
        if self.max_attempt < 0:
            raise ValueError("max_attempt must be >= 0")
        if self.keys is not None:
            object.__setattr__(self, "keys", tuple(self.keys))

    def matches(self, key: str) -> bool:
        if self.keys is None:
            return True
        return any(k in key for k in self.keys)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rate": self.rate,
            "keys": None if self.keys is None else list(self.keys),
            "max_attempt": self.max_attempt,
            "max_fires": self.max_fires,
            "duration_s": self.duration_s,
        }

    @staticmethod
    def from_dict(doc: Mapping[str, Any]) -> "FaultSpec":
        keys = doc.get("keys")
        return FaultSpec(
            rate=float(doc.get("rate", 1.0)),
            keys=None if keys is None else tuple(keys),
            max_attempt=int(doc.get("max_attempt", 1)),
            max_fires=doc.get("max_fires"),
            duration_s=float(doc.get("duration_s", 3600.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, named set of armed injection points."""

    seed: int = 0
    faults: Mapping[str, FaultSpec] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for point in self.faults:
            if point not in POINTS:
                raise ValueError(
                    f"unknown injection point {point!r}; "
                    f"choose from {POINTS}"
                )
        object.__setattr__(self, "faults", dict(self.faults))

    def spec(self, point: str) -> Optional[FaultSpec]:
        return self.faults.get(point)

    def decides(self, point: str, key: str, attempt: int = 0) -> bool:
        """The pure (seed, site) decision — no per-process state.

        :func:`fired` layers the per-process ``max_fires`` counter on
        top; everything else is decided here, deterministically.
        """
        spec = self.faults.get(point)
        if spec is None:
            return False
        if attempt >= spec.max_attempt:
            return False
        if not spec.matches(key):
            return False
        return _fraction(self.seed, point, key) < spec.rate

    # -- serialization (for the REPRO_FAULTS env propagation) ----------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": {p: s.to_dict() for p, s in self.faults.items()},
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @staticmethod
    def from_dict(doc: Mapping[str, Any]) -> "FaultPlan":
        return FaultPlan(
            seed=int(doc.get("seed", 0)),
            faults={
                p: FaultSpec.from_dict(s)
                for p, s in doc.get("faults", {}).items()
            },
        )

    @staticmethod
    def from_json(text: str) -> "FaultPlan":
        return FaultPlan.from_dict(json.loads(text))


# ---------------------------------------------------------------------------
# Process-global arming
# ---------------------------------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None
_ACTIVE_INIT = False
#: Per-process firing counters (point -> fires so far).
_FIRES: Dict[str, int] = {}
#: Worker context: set inside supervised-pool workers only.
_IN_WORKER = False


def arm(plan: FaultPlan, propagate: bool = True) -> None:
    """Activate *plan* for this process (and, via env, its children)."""
    global _ACTIVE, _ACTIVE_INIT
    _ACTIVE = plan
    _ACTIVE_INIT = True
    _FIRES.clear()
    if propagate:
        os.environ[ENV_VAR] = plan.to_json()


def disarm() -> None:
    """Deactivate fault injection and clear the env propagation."""
    global _ACTIVE, _ACTIVE_INIT
    _ACTIVE = None
    _ACTIVE_INIT = True
    _FIRES.clear()
    os.environ.pop(ENV_VAR, None)


@contextmanager
def armed(plan: FaultPlan, propagate: bool = True) -> Iterator[FaultPlan]:
    """Scoped arming: guarantees a disarm on exit (chaos tests)."""
    arm(plan, propagate=propagate)
    try:
        yield plan
    finally:
        disarm()


def active_plan() -> Optional[FaultPlan]:
    """The armed plan, if any.

    A process that never called :func:`arm`/:func:`disarm` (a spawned
    pool worker) lazily adopts the plan serialized in ``REPRO_FAULTS``;
    forked workers inherit the parent's global directly.
    """
    global _ACTIVE, _ACTIVE_INIT
    if not _ACTIVE_INIT:
        text = os.environ.get(ENV_VAR)
        if text:
            try:
                _ACTIVE = FaultPlan.from_json(text)
            except (ValueError, KeyError, TypeError):
                _ACTIVE = None
        _ACTIVE_INIT = True
    return _ACTIVE


def enter_worker(reset_counters: bool = True) -> None:
    """Mark this process as a supervised-pool worker.

    Worker-lifecycle faults (crash / hang) fire only after this is
    called; a fresh worker also resets the per-process fire counters
    so respawned workers behave like their predecessors.
    """
    global _IN_WORKER
    _IN_WORKER = True
    if reset_counters:
        _FIRES.clear()


def in_worker() -> bool:
    return _IN_WORKER


# ---------------------------------------------------------------------------
# Decision + effect helpers (the layers call these)
# ---------------------------------------------------------------------------

def fired(point: str, key: str, attempt: int = 0) -> bool:
    """Whether *point* fires at this site; counts the firing if so."""
    plan = active_plan()
    if plan is None:
        return False
    if not plan.decides(point, key, attempt):
        return False
    spec = plan.spec(point)
    count = _FIRES.get(point, 0)
    if spec.max_fires is not None and count >= spec.max_fires:
        return False
    _FIRES[point] = count + 1
    # Every firing is an observable event: chaos tests assert the trace
    # records exactly the injected faults.  Lazy import keeps faults
    # importable without the obs package (and free of cycles).
    from repro.obs import trace as obs

    obs.instant("fault.fired", point=point, key=key, attempt=attempt)
    obs.inc(f"fault.{point}")
    return True


def raise_if(point: str, key: str, exc_type: type = OSError) -> None:
    """Raise *exc_type* when *point* fires at this site."""
    if fired(point, key):
        raise exc_type(
            f"injected fault {point} at {key!r} "
            f"(seed {active_plan().seed})"
        )


def corrupt_payload(data: str, key: str) -> str:
    """Apply armed storage-corruption faults to *data* before writing.

    ``store.torn_write`` truncates the payload mid-way (a torn page:
    the rename survived the crash, the data didn't); ``store.bitflip``
    deterministically flips one character (silent media corruption).
    Both leave the caller believing the write succeeded — detection is
    the store's checksum/recovery machinery's job.
    """
    plan = active_plan()
    if plan is None:
        return data
    if fired("store.torn_write", key):
        data = data[: max(1, len(data) // 2)]
    if fired("store.bitflip", key) and data:
        pos = int(_fraction(plan.seed, "store.bitflip.pos", key) * len(data))
        pos = min(pos, len(data) - 1)
        data = data[:pos] + chr(ord(data[pos]) ^ 1) + data[pos + 1:]
    return data


def worker_faults(key: str, attempt: int) -> None:
    """Apply armed worker-lifecycle faults (call from the worker loop).

    ``worker.crash`` kills the process bypassing all cleanup
    (``os._exit``) — exactly what an OOM kill or segfault looks like
    to the supervisor.  ``worker.hang`` sleeps far past any task
    timeout.  Both are no-ops outside worker processes.
    """
    if not _IN_WORKER:
        return
    if fired("worker.crash", key, attempt):
        os._exit(CRASH_EXIT_CODE)
    if fired("worker.hang", key, attempt):
        time.sleep(active_plan().spec("worker.hang").duration_s)
