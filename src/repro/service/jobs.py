"""Declarative batch jobs: sweep specs fanned out over a worker pool.

A :class:`JobSpec` names everything a run needs declaratively — a
catalog circuit (:func:`repro.circuits.catalog.build_named_circuit`),
a delay regime, a :class:`~repro.sim.vectors.StimulusSpec`, a vector
count — plus *sweep axes* (lists of values for any of those fields),
which expand via Cartesian product into independent
:class:`JobPoint`\\ s.

The :class:`BatchScheduler` resolves each point against the result
store first (**partial-hit resume**: re-submitting an overlapping
sweep simulates only the cache-missing points), fans the misses out
over the supervised worker pool
(:func:`repro.service.pool.run_supervised` — crashed or hung workers
are respawned and their tasks retried with deterministic backoff),
and writes every computed result back.  Workers never touch the
store — they return serialized payloads and the parent performs all
index mutations — so there is a single writer per store by
construction.

Failure semantics: a point that keeps failing past the retry budget
is **quarantined** — recorded as a ``"failed"``
:class:`PointOutcome` with its :class:`~repro.service.pool.TaskFailure`
persisted on the job record — while every other point's result is
kept.  A ``KeyboardInterrupt`` mid-batch persists all
already-completed points (and the partial job record) before
re-raising, so an interrupted sweep resumes from where it stopped.

Job records are persisted under ``<store>/jobs/<job_id>.json`` so
``repro.cli status`` can report past batches.
"""

from __future__ import annotations

import itertools
import json
import sys
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.circuits.catalog import build_named_circuit, validate_name
from repro.obs import trace as obs
from repro.obs.hist import Histogram
from repro.service.pool import RetryPolicy, TaskFailure, run_supervised
from repro.service.runner import estimate_key, run_key
from repro.service.store import (
    ResultStore,
    _atomic_write,
    encode_estimate,
    encode_result,
    payload_summary,
)
from repro.sim.delays import DelayModel, SumCarryDelay, UnitDelay
from repro.sim.vectors import StimulusSpec, UniformStimulus, stimulus_from_dict

#: Delay regimes a declarative job may name.
DELAY_MODELS = {
    "unit": lambda: UnitDelay(),
    "sumcarry": lambda: SumCarryDelay(dsum=2, dcarry=1),
    "zero": lambda: None,
}

#: Sweep axes :meth:`JobSpec.points` understands.  The ``estimate``
#: axis toggles between simulated activity (False) and the analytic
#: estimation backend (True), so one sweep can produce the
#: estimate/simulate pair for every point.
SWEEP_AXES = ("circuit", "delay", "n_vectors", "seed", "estimate")


def _as_estimate_flag(value) -> bool:
    """Coerce a sweep/CLI value for the ``estimate`` axis to a bool."""
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return bool(value)
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("1", "true", "yes", "est", "estimate"):
            return True
        if lowered in ("0", "false", "no", "sim", "simulate"):
            return False
    raise ValueError(
        f"bad estimate axis value {value!r}; use 0/1, sim/est or "
        "true/false"
    )


def resolve_delay(name: str) -> DelayModel | None:
    """Build the delay model a job names (``None`` for zero delay)."""
    factory = DELAY_MODELS.get(name)
    if factory is None:
        raise ValueError(
            f"unknown delay model {name!r}; choose from {sorted(DELAY_MODELS)}"
        )
    return factory()


@dataclass(frozen=True)
class JobPoint:
    """One concrete, dependency-free unit of work in a batch."""

    circuit: str
    delay: str
    stimulus: StimulusSpec
    n_vectors: int
    backend: str = "auto"
    estimate: bool = False

    def label(self) -> str:
        if self.estimate:
            return f"{self.circuit} estimate {self.stimulus.describe()}"
        return (
            f"{self.circuit} Δ{self.delay} "
            f"{self.stimulus.describe()} x{self.n_vectors}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "circuit": self.circuit,
            "delay": self.delay,
            "stimulus": self.stimulus.to_dict(),
            "n_vectors": self.n_vectors,
            "backend": self.backend,
            "estimate": self.estimate,
        }

    @staticmethod
    def from_dict(doc: Mapping[str, Any]) -> "JobPoint":
        return JobPoint(
            circuit=doc["circuit"],
            delay=doc["delay"],
            stimulus=stimulus_from_dict(doc["stimulus"]),
            n_vectors=int(doc["n_vectors"]),
            backend=doc.get("backend", "auto"),
            estimate=bool(doc.get("estimate", False)),
        )


@dataclass
class JobSpec:
    """Declarative description of a batch of activity runs.

    *sweep* maps axis names (:data:`SWEEP_AXES`) to value lists; the
    base fields provide the value for every axis not swept.  The
    ``seed`` axis re-seeds the stimulus spec via ``replace``.
    """

    circuit: str = "array8"
    delay: str = "unit"
    stimulus: StimulusSpec = field(default_factory=UniformStimulus)
    n_vectors: int = 500
    backend: str = "auto"
    estimate: bool = False
    sweep: Dict[str, Sequence[Any]] = field(default_factory=dict)

    def points(self) -> List[JobPoint]:
        """Expand the sweep axes into concrete points (product order)."""
        for axis in self.sweep:
            if axis not in SWEEP_AXES:
                raise ValueError(
                    f"unknown sweep axis {axis!r}; "
                    f"choose from {SWEEP_AXES}"
                )
            if not self.sweep[axis]:
                raise ValueError(f"sweep axis {axis!r} has no values")
        axes = [a for a in SWEEP_AXES if a in self.sweep]
        base = {
            "circuit": self.circuit,
            "delay": self.delay,
            "n_vectors": self.n_vectors,
            "seed": self.stimulus.seed,
            "estimate": self.estimate,
        }
        points = []
        for combo in itertools.product(*(self.sweep[a] for a in axes)):
            vals = dict(base)
            vals.update(zip(axes, combo))
            # Validate early, in the parent, before anything simulates.
            resolve_delay(vals["delay"])
            validate_name(vals["circuit"])
            points.append(JobPoint(
                circuit=vals["circuit"],
                delay=vals["delay"],
                stimulus=replace(self.stimulus, seed=int(vals["seed"])),
                n_vectors=int(vals["n_vectors"]),
                backend=self.backend,
                estimate=_as_estimate_flag(vals["estimate"]),
            ))
        return points

    def to_dict(self) -> Dict[str, Any]:
        return {
            "circuit": self.circuit,
            "delay": self.delay,
            "stimulus": self.stimulus.to_dict(),
            "n_vectors": self.n_vectors,
            "backend": self.backend,
            "estimate": self.estimate,
            "sweep": {k: list(v) for k, v in self.sweep.items()},
        }


def _zero_summary() -> Dict[str, float]:
    """The headline summary shape with every aggregate zeroed.

    Quarantined points report this so every surface that tabulates
    summaries (CLI tables read ``total``/``useful``/``useless``/
    ``L/F`` unconditionally) renders failed rows without special
    cases.
    """
    return {"total": 0, "useful": 0, "useless": 0, "L/F": 0.0}


@dataclass
class PointOutcome:
    """What happened to one point: cache hit, simulated, or quarantined."""

    point: JobPoint
    status: str  # "hit" | "computed" | "failed"
    summary: Dict[str, float]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "point": self.point.to_dict(),
            "status": self.status,
            "summary": self.summary,
        }


@dataclass
class BatchReport:
    """Outcome of one scheduler batch.

    *failures* holds the structured quarantine records
    (:class:`~repro.service.pool.TaskFailure`) for every ``"failed"``
    outcome; *interrupted* marks a batch cut short by
    ``KeyboardInterrupt`` after its completed points were persisted.
    """

    job_id: str
    outcomes: List[PointOutcome]
    elapsed_s: float
    failures: List[TaskFailure] = field(default_factory=list)
    interrupted: bool = False

    @property
    def n_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "hit")

    @property
    def n_computed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "computed")

    @property
    def n_failed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "failed")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "outcomes": [o.to_dict() for o in self.outcomes],
            "hits": self.n_hits,
            "computed": self.n_computed,
            "failed": self.n_failed,
            "interrupted": self.interrupted,
            "failures": [f.to_dict() for f in self.failures],
            "elapsed_s": round(self.elapsed_s, 3),
        }


def _compute_point(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Simulate one point (module-level so worker pools can pickle it).

    Builds the circuit from the catalog, runs the session API directly
    — never through a store, not even a ``REPRO_CACHE_DIR`` default:
    the parent is the store's single writer by construction — and
    returns the serialized payload.
    """
    from repro.core.activity import ActivityRun

    point = JobPoint.from_dict(doc)
    circuit, stim = build_named_circuit(point.circuit)
    if point.estimate:
        from repro.estimate.workload import estimate_workload

        return encode_estimate(estimate_workload(circuit, point.stimulus))
    run = ActivityRun(
        circuit,
        delay_model=resolve_delay(point.delay),
        backend=point.backend,
    )
    result = run.run(point.stimulus.vectors(stim, point.n_vectors + 1))
    return encode_result(result)


@dataclass
class CircuitTask:
    """One explicit-circuit unit of work for :func:`run_circuit_tasks`.

    Unlike a :class:`JobPoint`, which names a *catalog* circuit, a
    task ships the netlist itself as schema-v1 JSON
    (:func:`repro.netlist.io.circuit_to_json`) so worker processes can
    rebuild arbitrary circuits — the design-space explorer's transform
    candidates are not catalog entries.  The word stimulus is derived
    from the primary-input names
    (:func:`repro.netlist.io.words_from_inputs`), which every library
    circuit and transform pass preserves.
    """

    label: str
    circuit_json: str
    delay: str
    stimulus: StimulusSpec
    n_vectors: int
    backend: str = "auto"
    #: Transient parent-side cache of ``(circuit, word_stimulus)``;
    #: never serialized (workers always rebuild from the JSON).
    _materialized: Any = field(default=None, repr=False, compare=False)

    @staticmethod
    def from_circuit(
        circuit,
        delay: str,
        stimulus: StimulusSpec,
        n_vectors: int,
        backend: str = "auto",
        label: str | None = None,
    ) -> "CircuitTask":
        from repro.netlist.io import circuit_to_json, words_from_inputs
        from repro.sim.vectors import WordStimulus

        task = CircuitTask(
            label=label or circuit.name,
            circuit_json=circuit_to_json(circuit),
            delay=delay,
            stimulus=stimulus,
            n_vectors=n_vectors,
            backend=backend,
        )
        # The caller already holds the live circuit: keep it so the
        # parent-side key computation does not re-parse the JSON.
        task._materialized = (
            circuit, WordStimulus(words_from_inputs(circuit))
        )
        return task

    def materialize(self):
        """``(circuit, word_stimulus)``, rebuilt from the payload once."""
        if self._materialized is None:
            from repro.netlist.io import circuit_from_json, words_from_inputs
            from repro.sim.vectors import WordStimulus

            circuit = circuit_from_json(self.circuit_json)
            self._materialized = (
                circuit, WordStimulus(words_from_inputs(circuit))
            )
        return self._materialized

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "circuit_json": self.circuit_json,
            "delay": self.delay,
            "stimulus": self.stimulus.to_dict(),
            "n_vectors": self.n_vectors,
            "backend": self.backend,
        }

    @staticmethod
    def from_dict(doc: Mapping[str, Any]) -> "CircuitTask":
        return CircuitTask(
            label=doc["label"],
            circuit_json=doc["circuit_json"],
            delay=doc["delay"],
            stimulus=stimulus_from_dict(doc["stimulus"]),
            n_vectors=int(doc["n_vectors"]),
            backend=doc.get("backend", "auto"),
        )


def _simulate_circuit_task(task: "CircuitTask") -> Dict[str, Any]:
    """Simulate one task against its (possibly cached) live circuit."""
    from repro.core.activity import ActivityRun

    circuit, stim = task.materialize()
    run = ActivityRun(
        circuit,
        delay_model=resolve_delay(task.delay),
        backend=task.backend,
    )
    result = run.run(task.stimulus.vectors(stim, task.n_vectors + 1))
    return encode_result(result)


def _compute_circuit_task(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Simulate one serialized :class:`CircuitTask` (worker entry point;
    module-level for pickling).

    Like :func:`_compute_point`, workers never touch a store — the
    parent is the single writer.
    """
    return _simulate_circuit_task(CircuitTask.from_dict(doc))


def run_circuit_tasks(
    tasks: Sequence[CircuitTask],
    store: ResultStore | None = None,
    processes: int | None = None,
    policy: RetryPolicy | None = None,
) -> List[Dict[str, Any]]:
    """Execute explicit-circuit tasks with cache resume and fan-out.

    Returns one serialized activity payload per task, in order.  Tasks
    already in *store* are served without simulating (warm-cache
    resume — re-running an exploration whose candidates were simulated
    before does zero simulation work); key-identical misses (distinct
    labels, fingerprint-identical circuits) are computed once; the
    rest fan out over the supervised pool
    (:func:`repro.service.pool.run_supervised`, governed by *policy*)
    when *processes* > 1.  All computed results are written back
    through the parent.

    Every completed payload is persisted **before** error reporting:
    a ``KeyboardInterrupt`` re-raises after the write-back, and tasks
    quarantined past the retry budget raise ``RuntimeError`` after it
    — either way a re-run resumes from the cache instead of redoing
    finished work.
    """
    payloads: List[Any] = [None] * len(tasks)
    misses: List[Tuple[int, Any]] = []
    for i, task in enumerate(tasks):
        key = None
        if store is not None:
            circuit, stim = task.materialize()
            key = run_key(
                circuit, stim, task.stimulus, task.n_vectors,
                delay_model=resolve_delay(task.delay),
                backend=task.backend,
            )
            payload = store.get(key)
            if payload is not None:
                payloads[i] = payload
                obs.instant(
                    "jobs.task", label=task.label, outcome="hit"
                )
                continue
        misses.append((i, key))

    # Collapse key-identical misses to one computation each.
    unique: List[Tuple[int, Any]] = []
    slot_of: List[int] = []
    slot_by_digest: Dict[str, int] = {}
    for i, key in misses:
        digest = None if key is None else key.digest()
        if digest is not None and digest in slot_by_digest:
            slot_of.append(slot_by_digest[digest])
            continue
        if digest is not None:
            slot_by_digest[digest] = len(unique)
        slot_of.append(len(unique))
        unique.append((i, key))

    # Site keys identify a task by content (its run-key digest) where
    # possible: retry jitter and fault-injection decisions then follow
    # the task across workers, attempts, and re-runs.
    site_keys = [
        key.digest() if key is not None else f"task-{i}:{tasks[i].label}"
        for i, key in unique
    ]
    labels = [tasks[i].label for i, _ in unique]
    if processes and processes > 1 and len(unique) > 1:
        docs = [tasks[i].to_dict() for i, _ in unique]
        pool_result = run_supervised(
            _compute_circuit_task, docs,
            processes=min(processes, len(docs)),
            policy=policy, keys=site_keys, labels=labels,
        )
    else:
        # In-process: simulate against the parent's live circuits —
        # no JSON round-trip, and the compile memo stays warm.
        pool_result = run_supervised(
            _simulate_circuit_task, [tasks[i] for i, _ in unique],
            processes=None, policy=policy, keys=site_keys, labels=labels,
        )
    computed = pool_result.payloads
    # Salvage first: persist whatever finished, *then* report trouble.
    if store is not None and unique:
        with store.deferred():  # one index write for the batch
            for (_, key), payload in zip(unique, computed):
                if payload is not None:
                    store.put(key, payload)
    if pool_result.interrupted:
        raise KeyboardInterrupt
    if pool_result.failures:
        first = pool_result.failures[0]
        raise RuntimeError(
            f"{len(pool_result.failures)} circuit task(s) quarantined "
            f"after retries; first: {first.label}: {first.error}"
        )
    for (i, _), slot in zip(misses, slot_of):
        payloads[i] = computed[slot]
    return payloads


class Heartbeat:
    """Periodic one-line progress report for a long sweep.

    Owns its own :class:`~repro.obs.hist.Histogram` of per-task
    latencies, so it works (and prints meaningful p50/p99) whether or
    not tracing is armed.  Wire :meth:`record` in as the pool's
    ``on_progress`` callback; cache hits are credited with
    :meth:`record_hit` at plan time.  Emission is interval-gated
    (``interval_s=0`` prints on every resolution) and goes to *out*
    (default ``sys.stderr``) so it never corrupts piped stdout.

    The ETA is the remaining-point count times the mean observed task
    latency, divided by the worker count — a deliberately simple
    model that is exact for homogeneous points and an honest rough cut
    for mixed sweeps.
    """

    def __init__(
        self,
        total: int,
        interval_s: float = 10.0,
        out=None,
        workers: int | None = None,
    ) -> None:
        self.total = total
        self.interval_s = interval_s
        self.out = out if out is not None else sys.stderr
        self.workers = max(1, workers or 1)
        self.done = 0
        self.hits = 0
        self.failed = 0
        self.latency = Histogram()
        self._last_emit: float | None = None

    def record_hit(self) -> None:
        """Credit one cache hit (resolved with zero compute)."""
        self.hits += 1
        self.done += 1
        self._maybe_emit()

    def record(self, status: str, latency_s: float | None = None) -> None:
        """Pool ``on_progress`` hook: one task resolved.

        *status* is ``"done"`` or ``"failed"``; *latency_s*, when
        known, feeds the latency histogram behind p50/p99 and the ETA.
        """
        self.done += 1
        if status == "failed":
            self.failed += 1
        if latency_s is not None and latency_s >= 0.0:
            self.latency.observe(latency_s)
        self._maybe_emit()

    def line(self) -> str:
        """The current progress line (without emitting it)."""
        parts = [f"[heartbeat] {self.done}/{self.total} points"]
        warm = (self.hits / self.done) if self.done else 0.0
        parts.append(f"warm-hit {warm * 100:.0f}%")
        if self.latency.count:
            parts.append(
                f"p50 {self.latency.percentile(50):.3f}s"
                f"/p99 {self.latency.percentile(99):.3f}s task"
            )
            remaining = max(0, self.total - self.done)
            mean = self.latency.total / self.latency.count
            parts.append(
                f"ETA {remaining * mean / self.workers:.1f}s"
            )
        if self.failed:
            parts.append(f"{self.failed} failed")
        return ", ".join(parts)

    def _maybe_emit(self, force: bool = False) -> None:
        now = time.monotonic()
        if (
            not force
            and self._last_emit is not None
            and (now - self._last_emit) < self.interval_s
        ):
            return
        self._last_emit = now
        print(self.line(), file=self.out, flush=True)

    def finish(self, done: int | None = None) -> None:
        """Force a final line; *done* corrects the resolved count.

        Key-shared sweeps resolve several points per computed slot, so
        the per-slot ticks undercount mid-run; the scheduler passes the
        exact outcome count here for the closing line.
        """
        if done is not None:
            self.done = done
        self._maybe_emit(force=True)


class BatchScheduler:
    """Fan a :class:`JobSpec`'s points out over workers, through the store.

    Parameters
    ----------
    store:
        Result store for hit checks and write-back (``None`` disables
        caching: every point simulates).
    processes:
        Worker processes for cache-missing points; ``None`` or ``1``
        runs them sequentially in-process.
    policy:
        Retry/timeout/quarantine budget for the supervised pool
        (default :class:`~repro.service.pool.RetryPolicy`).
    """

    def __init__(
        self,
        store: ResultStore | None = None,
        processes: int | None = None,
        policy: RetryPolicy | None = None,
    ) -> None:
        self.store = store
        self.processes = processes
        self.policy = policy

    # ------------------------------------------------------------------
    def plan(
        self, spec: JobSpec
    ) -> Tuple[List[Tuple[JobPoint, Dict]], List[Tuple[JobPoint, Any]]]:
        """Split *spec*'s points into hits and misses.

        Hits carry their stored payloads; misses carry their
        precomputed :class:`~repro.service.store.RunKey` (``None``
        when no store is configured), so :meth:`run` never rebuilds or
        re-fingerprints a circuit the plan already resolved.
        """
        return self._plan(spec.points())

    def _plan(self, points: List[JobPoint]):
        hits: List[Tuple[JobPoint, Dict]] = []
        misses: List[Tuple[JobPoint, Any]] = []
        # One netlist build per distinct circuit name: reusing the
        # object lets the fingerprint and compile memos hit across the
        # (typically many) points sharing a circuit axis value.
        builds: Dict[str, Tuple] = {}
        for point in points:
            key = None
            payload = None
            if self.store is not None:
                built = builds.get(point.circuit)
                if built is None:
                    built = builds[point.circuit] = build_named_circuit(
                        point.circuit
                    )
                circuit, stim = built
                if point.estimate:
                    key = estimate_key(circuit, point.stimulus)
                else:
                    key = run_key(
                        circuit, stim, point.stimulus, point.n_vectors,
                        delay_model=resolve_delay(point.delay),
                        backend=point.backend,
                    )
                payload = self.store.get(key)
            if payload is None:
                misses.append((point, key))
            else:
                hits.append((point, payload))
        return hits, misses

    def run(
        self,
        spec: JobSpec,
        job_id: str | None = None,
        heartbeat_s: float | None = None,
        heartbeat_out=None,
    ) -> BatchReport:
        """Execute *spec*: serve hits, simulate misses, persist results.

        *heartbeat_s* (when not ``None``) prints an interval-gated
        :class:`Heartbeat` progress line — done/total, warm-hit ratio,
        p50/p99 task latency, ETA — to *heartbeat_out* (default
        ``sys.stderr``); ``0`` prints on every resolved point.

        Partial-hit resume falls out of the plan: only points missing
        from the store reach the worker pool.  Misses that share one
        run key — estimate points, whose key ignores the seed / delay /
        vector-count axes — are computed once and fanned back out to
        every point, so a sweep cannot redo identical work within a
        batch either.  The job record (spec, per-point status,
        aggregates) is written under the store's ``jobs/`` directory
        when a store is configured.

        Fault tolerance: points that exhaust the retry budget come
        back as ``"failed"`` outcomes with zeroed summaries and their
        quarantine records on the report — the batch itself succeeds.
        ``KeyboardInterrupt`` persists every completed point and a
        partial job record (``interrupted: true``) before re-raising.
        """
        start = time.monotonic()
        points = spec.points()
        with obs.span(
            "jobs.batch",
            circuit=getattr(spec, "circuit", "?"),
            points=len(points),
        ):
            return self._run_planned(
                spec, job_id, start, points,
                heartbeat_s=heartbeat_s, heartbeat_out=heartbeat_out,
            )

    def _run_planned(
        self,
        spec: JobSpec,
        job_id: str | None,
        start: float,
        points: List[JobPoint],
        heartbeat_s: float | None = None,
        heartbeat_out=None,
    ) -> BatchReport:
        with obs.span("jobs.plan", points=len(points)):
            hits, misses = self._plan(points)
        heartbeat = None
        if heartbeat_s is not None:
            heartbeat = Heartbeat(
                total=len(points), interval_s=heartbeat_s,
                out=heartbeat_out, workers=self.processes,
            )
        outcomes: Dict[JobPoint, PointOutcome] = {}
        for point, payload in hits:
            outcomes[point] = PointOutcome(
                point, "hit", payload_summary(payload)
            )
            obs.instant("jobs.point", label=point.label(), outcome="hit")
        if heartbeat is not None:
            for _ in hits:
                heartbeat.record_hit()

        # Collapse key-identical misses to one computation each (keys
        # exist only when a store is configured; without one every
        # point is its own unit of work).
        unique: List[Tuple[JobPoint, Any]] = []
        slot_of: List[int] = []
        slot_by_digest: Dict[str, int] = {}
        for point, key in misses:
            digest = None if key is None else key.digest()
            if digest is not None and digest in slot_by_digest:
                slot_of.append(slot_by_digest[digest])
                continue
            if digest is not None:
                slot_by_digest[digest] = len(unique)
            slot_of.append(len(unique))
            unique.append((point, key))

        docs = [p.to_dict() for p, _ in unique]
        site_keys = [
            key.digest() if key is not None else f"point-{j}"
            for j, (_, key) in enumerate(unique)
        ]
        labels = [p.label() for p, _ in unique]
        processes = None
        if self.processes and self.processes > 1 and len(docs) > 1:
            processes = min(self.processes, len(docs))
        pool_result = run_supervised(
            _compute_point, docs,
            processes=processes, policy=self.policy,
            keys=site_keys, labels=labels,
            on_progress=heartbeat.record if heartbeat is not None else None,
        )
        computed = pool_result.payloads
        # Salvage first: persist everything that finished before any
        # outcome accounting or interrupt re-raise.
        if self.store is not None and unique:
            with self.store.deferred():  # one index write for the batch
                for (_, key), payload in zip(unique, computed):
                    if payload is not None:
                        self.store.put(key, payload)
        failed_slots = {f.index for f in pool_result.failures}
        for (point, _), slot in zip(misses, slot_of):
            if computed[slot] is not None:
                outcomes[point] = PointOutcome(
                    point, "computed", payload_summary(computed[slot])
                )
                obs.instant(
                    "jobs.point", label=point.label(), outcome="computed"
                )
            elif slot in failed_slots:
                outcomes[point] = PointOutcome(
                    point, "failed", _zero_summary()
                )
                obs.instant(
                    "jobs.point", label=point.label(), outcome="failed"
                )
            # else: unresolved at interrupt time — not part of the
            # (partial) report at all.

        if heartbeat is not None:
            heartbeat.finish(done=len(outcomes))
        report = BatchReport(
            job_id=job_id or _new_job_id(spec, self.store),
            outcomes=[outcomes[p] for p in points if p in outcomes],
            elapsed_s=time.monotonic() - start,
            failures=list(pool_result.failures),
            interrupted=pool_result.interrupted,
        )
        if self.store is not None:
            _write_job_record(self.store, spec, report)
            self.store.flush()  # persist hit recency for LRU fairness
        if pool_result.interrupted:
            raise KeyboardInterrupt
        return report


# ---------------------------------------------------------------------------
# Job records
# ---------------------------------------------------------------------------

def _new_job_id(spec: JobSpec, store: ResultStore | None) -> str:
    from repro.netlist.compiled import content_digest

    digest = content_digest(repr(sorted(spec.to_dict().items())))[:8]
    seq = 0
    if store is not None and store.jobs_dir.exists():
        seq = len(list(store.jobs_dir.glob("*.json")))
        # Re-runs of a spec after deletions (or racing submitters) can
        # land on an existing id; bump rather than overwrite history.
        while (store.jobs_dir / f"job-{seq:04d}-{digest}.json").exists():
            seq += 1
    return f"job-{seq:04d}-{digest}"


def _write_job_record(
    store: ResultStore, spec: JobSpec, report: BatchReport
) -> Path:
    from repro.service.store import StoreWriteWarning

    store.jobs_dir.mkdir(parents=True, exist_ok=True)
    path = store.jobs_dir / f"{report.job_id}.json"
    record = {
        "job_id": report.job_id,
        "created": time.time(),
        "spec": spec.to_dict(),
        **report.to_dict(),
    }
    try:
        _atomic_write(
            path, json.dumps(record, sort_keys=True, indent=1) + "\n"
        )
    except OSError as exc:
        # The batch's results are already persisted (or returned);
        # losing the job record is not worth aborting over.
        obs.warn_event(
            StoreWriteWarning(
                f"job record {report.job_id} not written ({exc})"
            ),
            job_id=report.job_id,
        )
    return path


def load_job_records(store: ResultStore) -> List[Dict[str, Any]]:
    """All persisted job records in *store*, oldest first."""
    if not store.jobs_dir.exists():
        return []
    records = []
    for path in sorted(store.jobs_dir.glob("*.json")):
        try:
            with open(path) as fh:
                records.append(json.load(fh))
        except (OSError, json.JSONDecodeError):
            continue
    records.sort(key=lambda r: r.get("created", 0.0))
    return records
