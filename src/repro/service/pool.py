"""Supervised worker pool: fan-out that survives dying workers.

``multiprocessing.Pool`` treats a dead worker as a protocol error: one
OOM-killed or segfaulted child can deadlock or abort a whole sweep,
a hung task stalls it forever, and a ``KeyboardInterrupt`` tears the
pool down with every completed-but-unreturned result lost.  This
module replaces it for all service fan-out paths with an explicitly
supervised pool:

* **worker death is detected** by watching each child's ``exitcode``;
  the in-flight task is attributed a ``"crash"`` failure and the
  worker is respawned;
* **per-task wall-clock timeouts**: a task that exceeds
  :attr:`RetryPolicy.timeout_s` gets its worker killed (``"hang"``)
  and respawned;
* **bounded retry with deterministic jitter**: failed/hung/crashed
  tasks are retried up to :attr:`RetryPolicy.max_attempts` times with
  exponential backoff whose jitter is a pure hash of (seed, task key,
  attempt) — a replayed chaos run backs off identically;
* **quarantine**: a task that exhausts its attempts becomes a
  structured :class:`TaskFailure` (persisted on the job record by the
  scheduler) instead of an exception that aborts the batch;
* **interrupt salvage**: on ``KeyboardInterrupt`` the supervisor
  terminates its workers and *returns* every completed payload with
  ``interrupted=True``, so callers can persist finished work before
  re-raising.

Because every task in this codebase is pure (content-addressed in,
serialized payload out), a retried task returns a bit-identical
payload — which is what lets the chaos suite assert that sweeps under
injected faults equal fault-free runs exactly.

Workers run :func:`_worker_main`: a dispatch loop fed by a dedicated
pipe per worker (so the supervisor always knows which task a dead
worker held) reporting into one shared result queue.  Fault-injection
hooks (:mod:`repro.service.faults`) live in the worker loop, not in
task functions.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import queue as queue_mod
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.obs import sampler as obs_sampler
from repro.obs import trace as obs
from repro.service import faults

#: Histogram names the pool feeds (see the README taxonomy table).
#: ``task_latency_s`` is supervisor-side dispatch→result (includes IPC
#: and pickling); ``exec_s`` is the worker-side wall around the task
#: function; ``queue_wait_s`` is ready→dispatch; ``retry_backoff_s``
#: is every computed backoff delay.
HIST_TASK_LATENCY = "pool.task_latency_s"
HIST_EXEC = "pool.exec_s"
HIST_QUEUE_WAIT = "pool.queue_wait_s"
HIST_RETRY_BACKOFF = "pool.retry_backoff_s"


@contextmanager
def observe_task(key: str, **attrs: Any):
    """Charge one in-process unit of work with pool task telemetry.

    Single-run paths that never reach the pool (``cached_run`` misses,
    direct experiment drivers) wrap their compute step with this so a
    run's manifest carries the same ``pool.task`` span and task-latency
    histogram a sweep would — one taxonomy for "how long did a unit of
    work take", whether it fanned out or ran inline.
    """
    rec = obs.active()
    if rec is None:
        yield
        return
    t0 = time.perf_counter()
    with rec.span("pool.task", key=key, attempt=0, **attrs):
        yield
    wall = time.perf_counter() - t0
    rec.metrics.hist(HIST_TASK_LATENCY, wall)
    rec.metrics.hist(HIST_EXEC, wall)


def _jitter_fraction(seed: int, key: str, attempt: int) -> float:
    """Deterministic backoff jitter in ``[0, 1)`` (replayable runs)."""
    digest = hashlib.sha256(
        f"repro-backoff-v1|{seed}|{key}|{attempt}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor retries, times out and quarantines tasks."""

    #: Total attempts per task (1 = never retry).
    max_attempts: int = 3
    #: Per-task wall-clock limit; ``None`` disables hang detection.
    timeout_s: Optional[float] = 300.0
    #: Exponential backoff: ``base * 2**attempt`` capped at ``cap``.
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    #: Extra deterministic jitter as a fraction of the backoff.
    jitter: float = 0.5
    #: Seed for the jitter hash (chaos runs pin this).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff must be >= 0")

    def backoff_s(self, key: str, attempt: int) -> float:
        """Delay before retrying *key* after failed attempt *attempt*."""
        base = min(
            self.backoff_base_s * (2 ** attempt), self.backoff_cap_s
        )
        return base * (1.0 + self.jitter * _jitter_fraction(
            self.seed, key, attempt
        ))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "max_attempts": self.max_attempts,
            "timeout_s": self.timeout_s,
            "backoff_base_s": self.backoff_base_s,
            "backoff_cap_s": self.backoff_cap_s,
            "jitter": self.jitter,
            "seed": self.seed,
        }


@dataclass
class TaskFailure:
    """A quarantined task: every attempt failed.

    ``kind`` is the *last* failure mode — ``"crash"`` (worker died),
    ``"hang"`` (task timeout), or ``"error"`` (the task function
    raised); ``history`` records every attempt for the job record.
    """

    index: int
    key: str
    label: str
    attempts: int
    kind: str
    error: str
    history: List[Dict[str, str]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "key": self.key,
            "label": self.label,
            "attempts": self.attempts,
            "kind": self.kind,
            "error": self.error,
            "history": list(self.history),
        }


@dataclass
class PoolResult:
    """Everything a supervised fan-out produced.

    ``payloads`` is index-aligned with the submitted items;
    quarantined or (on interrupt) unfinished slots hold ``None``.
    """

    payloads: List[Any]
    failures: List[TaskFailure] = field(default_factory=list)
    interrupted: bool = False
    n_retries: int = 0

    @property
    def completed(self) -> int:
        return sum(1 for p in self.payloads if p is not None)


@dataclass
class _TaskState:
    index: int
    key: str
    label: str
    attempt: int = 0
    history: List[Dict[str, str]] = field(default_factory=list)

    def record(self, kind: str, error: str) -> None:
        self.history.append(
            {"attempt": str(self.attempt), "kind": kind, "error": error}
        )


def _worker_main(worker_id: int, func: Callable, conn, result_q) -> None:
    """Dispatch loop for one supervised worker process.

    Receives ``(index, attempt, key, item)`` on its private pipe,
    reports ``(worker_id, index, attempt, ok, payload_or_error,
    obs_blob)`` on the shared queue.  Armed worker faults (crash/hang)
    fire here — between receipt and execution — so a "crashed" worker
    really does die holding the task, exactly like the failure being
    simulated.  When tracing is armed (``REPRO_TRACE`` propagated from
    the supervisor) the worker buffers spans/counters locally and ships
    them as ``obs_blob`` with each report; the supervisor absorbs them
    into the parent recorder — the same worker-buffers/parent-merges
    pattern as store writes.
    """
    faults.enter_worker()
    # Fork-safe: drop any recorder inherited from the parent (wrong pid,
    # parent events would duplicate on merge) and start a local buffer.
    obs.adopt_in_worker()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if msg is None:
            break
        index, attempt, key, item = msg
        rec = obs.active()
        try:
            faults.worker_faults(key, attempt)
            if rec is not None:
                t0 = time.perf_counter()
                with rec.span(
                    "pool.task", key=key, attempt=attempt,
                    worker=worker_id,
                ):
                    payload = func(item)
                rec.metrics.hist(HIST_EXEC, time.perf_counter() - t0)
            else:
                payload = func(item)
        except KeyboardInterrupt:
            break
        except BaseException as exc:  # noqa: BLE001 - reported, not hidden
            try:
                result_q.put((
                    worker_id, index, attempt, False,
                    f"{type(exc).__name__}: {exc}",
                    rec.drain_blob() if rec is not None else None,
                ))
            except (OSError, ValueError):
                break
        else:
            try:
                result_q.put((
                    worker_id, index, attempt, True, payload,
                    rec.drain_blob() if rec is not None else None,
                ))
            except (OSError, ValueError):
                break


class _Worker:
    """Supervisor-side handle: process + task pipe + current task."""

    def __init__(self, worker_id: int, func: Callable, result_q) -> None:
        self.id = worker_id
        recv_end, self.conn = multiprocessing.Pipe(duplex=False)
        self.proc = multiprocessing.Process(
            target=_worker_main,
            args=(worker_id, func, recv_end, result_q),
            daemon=True,
        )
        self.proc.start()
        recv_end.close()  # child's end; the parent only sends
        self.busy: Optional[_TaskState] = None
        self.deadline: Optional[float] = None
        self.dispatched_at: Optional[float] = None

    def dispatch(
        self, state: _TaskState, item: Any, timeout_s: Optional[float]
    ) -> bool:
        try:
            self.conn.send((state.index, state.attempt, state.key, item))
        except (BrokenPipeError, OSError):
            return False
        self.busy = state
        self.dispatched_at = time.monotonic()
        self.deadline = (
            None if timeout_s is None else self.dispatched_at + timeout_s
        )
        return True

    def idle(self) -> None:
        self.busy = None
        self.deadline = None
        self.dispatched_at = None

    def alive(self) -> bool:
        return self.proc.is_alive()

    def kill(self) -> None:
        try:
            self.proc.kill()
        except (OSError, AttributeError):  # pragma: no cover - defensive
            pass
        self.proc.join(timeout=5.0)

    def shutdown(self) -> None:
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout=1.0)
        if self.proc.is_alive():
            self.kill()
        self.conn.close()


def _default_keys(items: Sequence[Any]) -> List[str]:
    """Stable per-item site keys when the caller provides none."""
    keys = []
    for i, item in enumerate(items):
        try:
            text = repr(sorted(item.items())) if isinstance(item, dict) \
                else repr(item)
        except Exception:  # pragma: no cover - exotic reprs
            text = f"item-{i}"
        digest = hashlib.sha256(text.encode(errors="replace")).hexdigest()
        keys.append(f"task-{digest[:16]}")
    return keys


def run_supervised(
    func: Callable[[Any], Any],
    items: Sequence[Any],
    processes: Optional[int] = None,
    policy: Optional[RetryPolicy] = None,
    keys: Optional[Sequence[str]] = None,
    labels: Optional[Sequence[str]] = None,
    on_progress: Optional[Callable[[str, Optional[float]], None]] = None,
) -> PoolResult:
    """Run ``func(item)`` for every item under supervision.

    With ``processes`` <= 1 (or a single item) the tasks run
    sequentially in-process — same retry/quarantine semantics, no
    workers, and a ``KeyboardInterrupt`` still salvages completed
    payloads.  Otherwise tasks fan out over ``processes`` supervised
    worker processes (*func* and every item must be picklable).

    *keys* are stable site identities used for deterministic backoff
    jitter and fault-injection decisions (defaults to a content hash
    of each item); *labels* are human-readable names for failure
    records.

    *on_progress*, if given, is called in the supervisor once per task
    resolution with ``("done", latency_s)`` when a payload lands or
    ``("failed", None)`` when a task quarantines — the scheduler's
    heartbeat line is driven from this, independent of tracing.
    """
    policy = policy or RetryPolicy()
    items = list(items)
    n = len(items)
    if keys is None:
        keys = _default_keys(items)
    elif len(keys) != n:
        raise ValueError("keys must align with items")
    if labels is None:
        labels = [str(k) for k in keys]
    elif len(labels) != n:
        raise ValueError("labels must align with items")
    if n == 0:
        return PoolResult(payloads=[])

    if not processes or processes <= 1 or n == 1:
        return _run_sequential(
            func, items, policy, keys, labels, on_progress
        )
    return _run_pool(
        func, items, min(processes, n), policy, keys, labels, on_progress
    )


def _run_sequential(
    func, items, policy: RetryPolicy, keys, labels, on_progress=None
) -> PoolResult:
    result = PoolResult(payloads=[None] * len(items))
    for i, item in enumerate(items):
        state = _TaskState(index=i, key=keys[i], label=labels[i])
        while True:
            try:
                t0 = time.perf_counter()
                with obs.span(
                    "pool.task", key=state.key, attempt=state.attempt
                ):
                    result.payloads[i] = func(item)
                wall = time.perf_counter() - t0
                obs.hist(HIST_TASK_LATENCY, wall)
                obs.hist(HIST_EXEC, wall)
                if on_progress is not None:
                    on_progress("done", wall)
                break
            except KeyboardInterrupt:
                result.interrupted = True
                return result
            except Exception as exc:
                state.record("error", f"{type(exc).__name__}: {exc}")
                state.attempt += 1
                obs.inc("pool.error")
                if state.attempt >= policy.max_attempts:
                    result.failures.append(TaskFailure(
                        index=i, key=state.key, label=state.label,
                        attempts=state.attempt, kind="error",
                        error=state.history[-1]["error"],
                        history=state.history,
                    ))
                    obs.inc("pool.quarantine")
                    obs.instant(
                        "pool.quarantine", key=state.key, kind="error",
                        attempts=state.attempt,
                    )
                    if on_progress is not None:
                        on_progress("failed", None)
                    break
                result.n_retries += 1
                obs.inc("pool.retry")
                obs.instant(
                    "pool.retry", key=state.key, kind="error",
                    attempt=state.attempt,
                )
                delay = policy.backoff_s(state.key, state.attempt - 1)
                obs.hist(HIST_RETRY_BACKOFF, delay)
                if delay > 0:
                    try:
                        time.sleep(delay)
                    except KeyboardInterrupt:
                        result.interrupted = True
                        return result
    return result


def _run_pool(
    func, items, n_workers: int, policy: RetryPolicy, keys, labels,
    on_progress=None,
) -> PoolResult:
    result = PoolResult(payloads=[None] * len(items))
    result_q: multiprocessing.Queue = multiprocessing.Queue()
    workers: List[_Worker] = []
    next_worker_id = 0

    def spawn() -> _Worker:
        nonlocal next_worker_id
        w = _Worker(next_worker_id, func, result_q)
        next_worker_id += 1
        workers.append(w)
        return w

    start = time.monotonic()
    #: (ready_at, _TaskState) waiting to be dispatched.
    pending: List[tuple] = [
        (start, _TaskState(index=i, key=keys[i], label=labels[i]))
        for i in range(len(items))
    ]
    #: index -> attempt currently outstanding (stale results ignored).
    outstanding: Dict[int, int] = {}
    unresolved = len(items)

    # Backlog = tasks waiting to dispatch plus tasks in flight; gauged
    # as a high-water mark and exposed live to the resource sampler.
    def _depth() -> int:
        return len(pending) + len(outstanding)

    obs_sampler.register_probe("pool.queue_depth", _depth)

    def fail_or_retry(state: _TaskState, kind: str, error: str) -> None:
        nonlocal unresolved
        state.record(kind, error)
        state.attempt += 1
        obs.inc(f"pool.{kind}")
        if state.attempt >= policy.max_attempts:
            result.failures.append(TaskFailure(
                index=state.index, key=state.key, label=state.label,
                attempts=state.attempt, kind=kind, error=error,
                history=state.history,
            ))
            obs.inc("pool.quarantine")
            obs.instant(
                "pool.quarantine", key=state.key, kind=kind,
                attempts=state.attempt,
            )
            unresolved -= 1
            if on_progress is not None:
                on_progress("failed", None)
            return
        result.n_retries += 1
        obs.inc("pool.retry")
        obs.instant(
            "pool.retry", key=state.key, kind=kind, attempt=state.attempt,
        )
        backoff = policy.backoff_s(state.key, state.attempt - 1)
        obs.hist(HIST_RETRY_BACKOFF, backoff)
        pending.append((time.monotonic() + backoff, state))

    try:
        for _ in range(n_workers):
            spawn()
        while unresolved > 0:
            now = time.monotonic()
            obs.gauge("pool.queue_depth", _depth())
            # Dispatch every ready pending task to an idle live worker.
            idle = [w for w in workers if w.busy is None and w.alive()]
            pending.sort(key=lambda rs: rs[0])
            while idle and pending and pending[0][0] <= now:
                ready_at, state = pending.pop(0)
                w = idle.pop()
                if not w.dispatch(
                    state, items[state.index], policy.timeout_s
                ):
                    # Pipe already broken: treat as an instant crash.
                    pending.insert(0, (now, state))
                    continue
                outstanding[state.index] = state.attempt
                obs.inc("pool.dispatch")
                obs.hist(
                    HIST_QUEUE_WAIT, max(0.0, w.dispatched_at - ready_at)
                )
                obs.instant(
                    "pool.dispatch", key=state.key,
                    attempt=state.attempt, worker=w.id,
                )

            # Wait for a result, bounded by the nearest deadline/retry.
            wait = 0.05
            deadlines = [
                w.deadline for w in workers if w.deadline is not None
            ]
            if deadlines:
                wait = min(wait, max(0.0, min(deadlines) - now))
            if pending:
                wait = min(wait, max(0.0, pending[0][0] - now))
            try:
                msg = result_q.get(timeout=max(wait, 0.005))
            except queue_mod.Empty:
                msg = None

            if msg is not None:
                worker_id, index, attempt, ok, payload, blob = msg
                rec = obs.active()
                if rec is not None:
                    rec.absorb(blob)
                w = next(
                    (x for x in workers if x.id == worker_id), None
                )
                if w is not None and w.busy is not None \
                        and w.busy.index == index:
                    state = w.busy
                    latency = (
                        None if w.dispatched_at is None
                        else time.monotonic() - w.dispatched_at
                    )
                    w.idle()
                else:
                    state = None
                    latency = None
                if outstanding.get(index) == attempt:
                    del outstanding[index]
                    if ok:
                        result.payloads[index] = payload
                        unresolved -= 1
                        if latency is not None:
                            obs.hist(HIST_TASK_LATENCY, latency)
                        if on_progress is not None:
                            on_progress("done", latency)
                    elif state is not None:
                        fail_or_retry(state, "error", str(payload))
                    else:  # pragma: no cover - crash right after report
                        fail_or_retry(
                            _TaskState(
                                index=index, key=keys[index],
                                label=labels[index], attempt=attempt,
                            ),
                            "error", str(payload),
                        )
                # else: stale report from a killed/raced worker; drop.

            # Reap dead workers and time out hung ones.
            now = time.monotonic()
            for w in list(workers):
                if not w.alive():
                    exitcode = w.proc.exitcode
                    state = w.busy
                    workers.remove(w)
                    w.conn.close()
                    w.proc.join(timeout=1.0)
                    if state is not None \
                            and outstanding.get(state.index) \
                            == state.attempt:
                        del outstanding[state.index]
                        fail_or_retry(
                            state, "crash",
                            f"worker died (exitcode {exitcode})",
                        )
                    if unresolved > 0:
                        spawn()
                elif w.deadline is not None and now > w.deadline:
                    state = w.busy
                    workers.remove(w)
                    obs.instant(
                        "pool.kill", worker=w.id, reason="hang",
                        key=None if state is None else state.key,
                    )
                    w.kill()
                    w.conn.close()
                    if state is not None \
                            and outstanding.get(state.index) \
                            == state.attempt:
                        del outstanding[state.index]
                        fail_or_retry(
                            state, "hang",
                            f"task exceeded {policy.timeout_s}s "
                            "wall-clock timeout",
                        )
                    if unresolved > 0:
                        spawn()
    except KeyboardInterrupt:
        result.interrupted = True
        # Drain any results that arrived before the interrupt so the
        # caller can persist every finished point.
        while True:
            try:
                worker_id, index, attempt, ok, payload, blob = result_q.get(
                    timeout=0.05
                )
            except (queue_mod.Empty, OSError):
                break
            rec = obs.active()
            if rec is not None:
                rec.absorb(blob)
            if ok and result.payloads[index] is None \
                    and outstanding.get(index) == attempt:
                result.payloads[index] = payload
        for w in workers:
            w.kill()
            w.conn.close()
        workers.clear()
    finally:
        obs_sampler.unregister_probe("pool.queue_depth")
        for w in workers:
            w.shutdown()
        result_q.close()
        result_q.join_thread()
    return result
