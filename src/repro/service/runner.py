"""The service front door: exact result reuse around :class:`ActivityRun`.

:func:`cached_run` is the one call every cached consumer (the CLI's
``analyze --cache``, the experiment drivers, the batch scheduler)
routes through.  It computes the content-addressed :class:`RunKey` for
a (circuit, delay model, stimulus spec, vector count) request, serves
a store hit by re-materializing the payload against the requesting
circuit, and on a miss simulates through the normal session API and
stores the full-monitor result.

Hits are **bit-identical** to recomputation: the key hashes the exact
inputs of the simulation (canonical circuit structure, resolved
per-cell delays, the seed-stable declarative stimulus bound to the
word layout), and the payload stores exact integer counts per net
name.  Results are always *computed and cached* over the full monitor
set (all cell-driven nets); a ``monitor`` argument only restricts the
returned view, so one cache entry serves every projection of the same
run.

:func:`cached_estimate` is the same front door for the analytic
estimation backend (:mod:`repro.estimate`): estimator results are
keyed by the circuit fingerprint plus the stimulus's *derived input
statistics* (seed-independent), stored under the ``estimate`` result
class, and served with zero estimator work on a warm hit.

The default store can be set process-wide with
:func:`configure_default_store` or the ``REPRO_CACHE_DIR`` environment
variable, which is how ``repro.cli`` turns ``--cache DIR`` into warm
experiment re-runs without threading a store through every driver
signature.
"""

from __future__ import annotations

import os
from typing import Iterable, Mapping, Optional, Sequence, Tuple

from repro.core.activity import ActivityResult, ActivityRun
from repro.netlist.circuit import Circuit
from repro.obs import trace as obs
from repro.netlist.compiled import (
    ZERO_DELAY_FINGERPRINT,
    content_digest,
    delay_fingerprint,
)
from repro.service.store import (
    ESTIMATE,
    GLITCH_EXACT,
    SETTLED,
    ResultStore,
    RunKey,
    decode_estimate,
    decode_result,
    encode_estimate,
    encode_result,
)
from repro.sim.delays import DelayModel
from repro.sim.vectors import StimulusSpec, WordStimulus

#: Process-wide default store (see :func:`configure_default_store`).
_DEFAULT_STORE: Optional[ResultStore] = None
_DEFAULT_STORE_INIT = False


def configure_default_store(store: ResultStore | None) -> None:
    """Set (or clear, with ``None``) the process-wide default store."""
    global _DEFAULT_STORE, _DEFAULT_STORE_INIT
    _DEFAULT_STORE = store
    _DEFAULT_STORE_INIT = True


def default_store() -> Optional[ResultStore]:
    """The configured default store, else one from ``REPRO_CACHE_DIR``."""
    global _DEFAULT_STORE, _DEFAULT_STORE_INIT
    if not _DEFAULT_STORE_INIT:
        cache_dir = os.environ.get("REPRO_CACHE_DIR")
        if cache_dir:
            _DEFAULT_STORE = ResultStore(cache_dir)
        _DEFAULT_STORE_INIT = True
    return _DEFAULT_STORE


def _as_word_stimulus(
    words: WordStimulus | Mapping[str, Sequence[int]]
) -> WordStimulus:
    if isinstance(words, WordStimulus):
        return words
    return WordStimulus(dict(words))


def word_layout(circuit: Circuit, stim: WordStimulus) -> Tuple:
    """Canonical word structure: ``((word, (net names...)), ...)``.

    Net *names* (not indices) keep the layout aligned with the
    circuit fingerprint's identity; word order is preserved because it
    determines RNG consumption order in the generators.
    """
    return tuple(
        (name, tuple(circuit.net_name(n) for n in nets))
        for name, nets in stim.words.items()
    )


def run_key(
    circuit: Circuit,
    words: WordStimulus | Mapping[str, Sequence[int]],
    stimulus: StimulusSpec,
    n_vectors: int,
    delay_model: DelayModel | None = None,
    backend: str = "auto",
) -> RunKey:
    """The content-addressed identity of this run (without running it)."""
    run = ActivityRun(circuit, delay_model=delay_model, backend=backend)
    return _key_for(run, circuit, _as_word_stimulus(words), stimulus, n_vectors)


def _key_for(
    run: ActivityRun,
    circuit: Circuit,
    stim: WordStimulus,
    stimulus: StimulusSpec,
    n_vectors: int,
) -> RunKey:
    # Per-session, not per-backend-class: dual-mode backends run a
    # settled zero-delay session when given an explicit ZeroDelay, and
    # those results belong in the SETTLED class with bitparallel's.
    exact = run.exact_glitches
    return RunKey(
        circuit_fp=circuit.fingerprint(),
        delay_fp=delay_fingerprint(circuit, run.delay_model),
        stimulus_fp=stimulus.fingerprint(word_layout(circuit, stim)),
        n_vectors=n_vectors,
        result_class=GLITCH_EXACT if exact else SETTLED,
    )


def estimate_key(circuit: Circuit, stimulus: StimulusSpec) -> RunKey:
    """The content-addressed identity of an estimator run.

    Estimates depend on the circuit and on the *analytic input
    statistics* of the stimulus — not on its seed, nor on any delay
    model or vector count.  The stimulus slot therefore hashes the
    derived ``(one_probability, density)`` pair rather than the spec,
    so differently-seeded but statistically identical workloads share
    one entry; the delay slot is pinned to the zero-delay fingerprint
    and the vector count to 0.
    """
    from repro.estimate.workload import input_statistics

    return RunKey(
        circuit_fp=circuit.fingerprint(),
        delay_fp=ZERO_DELAY_FINGERPRINT,
        stimulus_fp=content_digest(
            ("estimate-stats-v1", input_statistics(stimulus))
        ),
        n_vectors=0,
        result_class=ESTIMATE,
    )


def cached_estimate(
    circuit: Circuit,
    stimulus: StimulusSpec | None = None,
    store: ResultStore | None = None,
):
    """Workload estimation with content-addressed result reuse.

    Semantics match
    :func:`repro.estimate.workload.estimate_workload` — one fused
    estimator pass over the compiled IR — except that a prior
    identical request (same circuit fingerprint, same analytic input
    statistics) is served from *store* with zero estimator work.  A
    single estimate is cheap; sweeps over thousands of
    stimulus/circuit points are not, which is what the cache is for.

    With ``store=None`` the process default
    (:func:`default_store` / ``REPRO_CACHE_DIR``) applies; configure
    nothing and it degrades to a plain uncached estimate.
    """
    from repro.estimate.workload import estimate_workload
    from repro.sim.vectors import UniformStimulus

    spec = stimulus if stimulus is not None else UniformStimulus()
    if store is None:
        store = default_store()
    key = estimate_key(circuit, spec)
    if store is not None:
        with obs.span("cache.lookup", kind="estimate"):
            payload = store.get(key)
        if payload is not None:
            result = decode_estimate(payload, circuit)
            # Like decode_result's delay_description: the description
            # reflects the *requesting* spec (entries are shared across
            # seeds, whose describe() strings differ).
            result.stimulus_description = spec.describe()
            return result
    result = estimate_workload(circuit, spec)
    if store is not None:
        store.put(key, encode_estimate(result))
    return result


def reusable_result_nets(
    parent: Circuit,
    delta,
    child: Circuit,
) -> frozenset:
    """Child net *names* whose simulated counts must equal the parent's.

    For a pure-additive :class:`~repro.netlist.delta.CircuitDelta`
    from *parent* to *child*, every driven net outside the edit's full
    fanout cone — crossing registers, and widened by the drivers of
    fanout-changed nets, whose delays a load-dependent model may
    re-time — sees bit-identical stimulus through bit-identical logic
    under bit-identical delays, so its per-net counts are reusable
    across the two runs.  Returns net names (the identity payload rows
    are keyed by); empty for non-additive deltas.

    *child* may be the delta's replay of *parent* or any circuit with
    the replay's fingerprint — the cone is resolved by cell/net name,
    not index.
    """
    from repro.netlist.delta import cone_net_indices, full_fanout_cone

    if not delta.is_pure_addition:
        return frozenset()
    changed_net_names: set = set()
    for record in delta.added_cells:
        changed_net_names.update(record[2])
    for record in delta.rewired_cells:
        changed_net_names.update(record[2])
        for n in parent.cell(record[0]).inputs:
            changed_net_names.add(parent.net_name(n))
    seeds = {child.cell(name).index for name in delta.touched_cells}
    for name in changed_net_names:
        drv = child.nets[child.net(name)].driver
        if drv is not None:
            seeds.add(drv[0])
    cone = full_fanout_cone(child, seeds)
    excluded = cone_net_indices(child, cone, delta)
    return frozenset(
        net.name
        for net in child.nets
        if net.driver is not None and net.index not in excluded
    )


def cached_run(
    circuit: Circuit,
    words: WordStimulus | Mapping[str, Sequence[int]],
    stimulus: StimulusSpec,
    n_vectors: int,
    delay_model: DelayModel | None = None,
    backend: str = "auto",
    store: ResultStore | None = None,
    shards: int = 1,
    processes: int | None = None,
    monitor: Iterable[int] | None = None,
) -> ActivityResult:
    """Activity analysis with exact, content-addressed result reuse.

    Semantics match ``ActivityRun(circuit, delay_model, backend)``
    driven with ``stimulus.vectors(words, n_vectors + 1)`` (first
    vector consumed as warm-up), except that a prior identical run —
    in this process or any other sharing *store* — is served from the
    cache, bit for bit, with zero simulation work.  *monitor*
    restricts only the returned view; see the module docstring.

    With ``store=None`` the process default
    (:func:`default_store` / ``REPRO_CACHE_DIR``) applies; configure
    nothing and it degrades to a plain uncached run.
    """
    if n_vectors < 0:
        raise ValueError("n_vectors must be >= 0")
    stim = _as_word_stimulus(words)
    if store is None:
        store = default_store()
    run = ActivityRun(circuit, delay_model=delay_model, backend=backend)
    key = _key_for(run, circuit, stim, stimulus, n_vectors)

    result: ActivityResult | None = None
    if store is not None:
        with obs.span("cache.lookup", kind="run"):
            payload = store.get(key)
        if payload is not None:
            with obs.span("cache.decode", kind="run"):
                result = decode_result(
                    payload, circuit, run.delay_description
                )
    if result is None:
        # A cache miss is one unit of compute work; charge it with the
        # pool's task telemetry (span + task-latency histogram) so a
        # single-run experiment's manifest reports latencies in the
        # same taxonomy a pooled sweep does.  (A sharded run fans out
        # through the supervised pool internally and meters its shards
        # on top of this inline span.)
        from repro.service.pool import observe_task

        vectors = stimulus.vectors(stim, n_vectors + 1)
        with observe_task(key.digest()[:16], source="cached_run"):
            if shards > 1:
                result = run.run_sharded(
                    vectors, shards, processes=processes
                )
            else:
                result = run.run(vectors)
        if store is not None:
            store.put(key, encode_result(result))
    if monitor is not None:
        return result.restrict(monitor)
    return result
