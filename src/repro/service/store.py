"""Persistent, content-addressed store for analysis results.

A :class:`ResultStore` maps a :class:`RunKey` — the canonical
fingerprints of (circuit, delay model, stimulus, vector count, result
class) — to a serialized :class:`~repro.core.activity.ActivityResult`.
Because every key component is a *content* hash (insertion-order
independent circuit structure, resolved per-cell delays, declarative
seed-stable stimulus), a hit is guaranteed to be **bit-identical** to
recomputation: same per-net counts, same aggregates, transition for
transition.

Design points:

* **result class, not backend name** — the event-driven and waveform
  engines produce bit-identical aggregates, so both share the
  ``"glitch-exact"`` class and serve each other's cache entries; the
  zero-delay bit-parallel engine stores under ``"settled"``.
* **per-net counts are keyed by net name** in the serialized payload,
  the same identity the fingerprints use, and are re-mapped onto the
  requesting circuit's net indices on retrieval.
* **atomic, durable writes** — object files and the JSON-lines index
  are written to a temporary file, fsynced, ``os.replace``d, and the
  parent directory is fsynced, so an accepted write survives both a
  crashed writer and a power loss.  Index writes *merge* with the
  on-disk state first (minus this store's own evictions), so several
  processes sharing one directory may race on recency but cannot
  erase each other's entries.
* **crash-safe by verification** — every object carries a content
  checksum in its index entry, verified on read; opening a store runs
  a recovery scan (stale ``.tmp`` files swept, torn index lines
  dropped, entries whose object file vanished healed, and the whole
  index re-derived from the object files when it is unreadable).
  :meth:`ResultStore.verify` / :meth:`ResultStore.repair` expose the
  deep scan as ``repro cache --dir DIR verify|repair``.
* **advisory locking** — index rewrites take an exclusive ``flock`` on
  ``<root>/.lock`` (POSIX; a no-op elsewhere), so concurrent writers
  sharing ``REPRO_CACHE_DIR`` serialize their read-merge-write
  critical sections instead of interleaving them.
* **LRU size bound** — ``max_bytes`` caps the total object payload;
  least-recently-*used* entries are evicted on insert.  Recency is
  updated in memory on every hit and persisted at the next mutation.

The store is a plain directory::

    <root>/index.jsonl        one JSON object per entry
    <root>/objects/<digest>.json
    <root>/jobs/<job_id>.json (written by the batch scheduler)
    <root>/.lock              advisory writer lock
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.core.activity import ActivityResult, summarize_counts
from repro.core.transitions import NodeActivity
from repro.netlist.circuit import Circuit
from repro.netlist.compiled import content_digest
from repro.obs import trace as obs

#: Result classes: engines within one class are mutually bit-identical.
GLITCH_EXACT = "glitch-exact"
SETTLED = "settled"
#: Analytic estimator results (:mod:`repro.estimate`): per-net float
#: rates, not simulated counts — never interchangeable with the
#: simulation classes above.
ESTIMATE = "estimate"
#: Design-space exploration outcomes (:mod:`repro.explore`): the full
#: candidate table and Pareto front of one search, keyed by (circuit,
#: space, workload, vector count, strategy).  Aggregate-level — the
#: per-candidate simulations are stored separately under
#: :data:`GLITCH_EXACT` and shared with every other consumer.
EXPLORE = "explore"


@dataclass(frozen=True)
class RunKey:
    """Content-addressed identity of one activity run.

    All string fields are canonical fingerprints
    (:meth:`~repro.netlist.circuit.Circuit.fingerprint`,
    :func:`~repro.netlist.compiled.delay_fingerprint`,
    :meth:`~repro.sim.vectors.StimulusSpec.fingerprint` with the word
    layout bound in); *n_vectors* counts the measured cycles (warm-up
    excluded); *result_class* is :data:`GLITCH_EXACT` or
    :data:`SETTLED`.
    """

    circuit_fp: str
    delay_fp: str
    stimulus_fp: str
    n_vectors: int
    result_class: str

    def digest(self) -> str:
        return content_digest((
            "runkey-v1",
            self.circuit_fp,
            self.delay_fp,
            self.stimulus_fp,
            self.n_vectors,
            self.result_class,
        ))


def encode_result(result: ActivityResult) -> Dict[str, Any]:
    """Serialize an :class:`ActivityResult` into a JSON-safe payload.

    Per-net records are keyed by net *name* — the stable identity the
    fingerprints use — so a payload can be decoded against any circuit
    with the same fingerprint regardless of net index assignment.
    """
    per_node = {}
    for net, act in result.per_node.items():
        name = result.node_names.get(net)
        if name is None:
            raise ValueError(
                f"cannot serialize result: net {net} has no recorded name"
            )
        per_node[name] = [
            act.toggles, act.rises, act.useful, act.useless,
            act.cycles_active,
        ]
    return {
        "schema": 1,
        "circuit_name": result.circuit_name,
        "delay_description": result.delay_description,
        "cycles": result.cycles,
        "per_node": per_node,
    }


def decode_result(
    payload: Dict[str, Any],
    circuit: Circuit,
    delay_description: str | None = None,
) -> ActivityResult:
    """Materialize a payload as an :class:`ActivityResult` for *circuit*.

    Net names are mapped back onto *circuit*'s indices; metadata
    (circuit name, node names and — when given — the delay
    description) comes from the requesting context, so the result is
    exactly what recomputation on *circuit* would have produced.
    """
    per_node: Dict[int, NodeActivity] = {}
    for name, counts in payload["per_node"].items():
        per_node[circuit.net(name)] = NodeActivity(*counts)
    return ActivityResult(
        circuit_name=circuit.name,
        delay_description=(
            payload["delay_description"]
            if delay_description is None else delay_description
        ),
        cycles=payload["cycles"],
        per_node=per_node,
        node_names={n.index: n.name for n in circuit.nets},
    )


def share_per_node_rows(
    parent_payload: Dict[str, Any],
    child_payload: Dict[str, Any],
    net_names: Iterable[str],
) -> int:
    """Verify and reference-share per-net rows across two run payloads.

    For *net_names* — nets the delta analysis proved unchanged between
    a parent candidate's run and its child's
    (:func:`repro.service.runner.reusable_result_nets`) — each row
    present in both payloads is checked for equality and the child's
    copy replaced by a reference to the parent's (one list object
    instead of two; a beam exploration holds every candidate's payload
    at once).  Agreements count ``store.nets_reused``; a disagreement
    counts ``store.nets_reuse_mismatch`` and keeps the child's own row
    — the simulation stays authoritative, the counter flags the cone
    analysis bug.

    Only meaningful for simulation payloads (``glitch-exact`` /
    ``settled``) of the **same delay regime**; payloads of a different
    shape or with differing delay descriptions are left untouched.
    Returns the number of rows shared.
    """
    try:
        parent_rows = parent_payload["per_node"]
        child_rows = child_payload["per_node"]
    except (TypeError, KeyError):
        return 0
    if parent_payload.get("delay_description") != child_payload.get(
        "delay_description"
    ) or parent_payload.get("cycles") != child_payload.get("cycles"):
        return 0
    shared = 0
    for name in net_names:
        prow = parent_rows.get(name)
        crow = child_rows.get(name)
        if prow is None or crow is None:
            continue
        if prow == crow:
            child_rows[name] = prow
            shared += 1
        else:
            obs.inc("store.nets_reuse_mismatch")
            obs.instant("store.per_node_reuse_mismatch", net=name)
    if shared:
        obs.inc("store.nets_reused", shared)
    return shared


def encode_estimate(result: "EstimateResult") -> Dict[str, Any]:
    """Serialize an :class:`~repro.estimate.workload.EstimateResult`.

    Like :func:`encode_result`, per-net records are keyed by net name
    so a payload decodes against any circuit with the same
    fingerprint.  Each record is ``[probability, activity, density]``;
    monitored nets are listed by name.
    """
    per_net = {}
    for net, p in result.probabilities.items():
        name = result.node_names.get(net)
        if name is None:
            raise ValueError(
                f"cannot serialize estimate: net {net} has no recorded name"
            )
        per_net[name] = [
            p,
            result.activities.get(net, 0.0),
            result.densities.get(net, 0.0),
        ]
    return {
        "schema": 1,
        "kind": "estimate",
        "circuit_name": result.circuit_name,
        "stimulus_description": result.stimulus_description,
        "input_probability": result.input_probability,
        "input_density": result.input_density,
        "per_net": per_net,
        "monitored": [result.node_names[n] for n in result.monitored],
    }


def decode_estimate(
    payload: Dict[str, Any], circuit: Circuit
) -> "EstimateResult":
    """Materialize an estimate payload against *circuit* (by net name)."""
    from repro.estimate.workload import EstimateResult

    probabilities: Dict[int, float] = {}
    activities: Dict[int, float] = {}
    densities: Dict[int, float] = {}
    for name, (p, act, dens) in payload["per_net"].items():
        net = circuit.net(name)
        probabilities[net] = p
        activities[net] = act
        densities[net] = dens
    return EstimateResult(
        circuit_name=circuit.name,
        stimulus_description=payload["stimulus_description"],
        input_probability=payload["input_probability"],
        input_density=payload["input_density"],
        probabilities=probabilities,
        activities=activities,
        densities=densities,
        monitored=tuple(circuit.net(name) for name in payload["monitored"]),
        node_names={n.index: n.name for n in circuit.nets},
    )


def payload_summary(payload: Dict[str, Any]) -> Dict[str, float]:
    """Headline aggregates straight from a payload (no circuit needed).

    Simulation payloads summarize their integer counts; estimate
    payloads report per-cycle rates under the same headline keys
    (``total`` / ``useful`` / ``useless`` / ``L/F``), so every surface
    that tabulates summaries renders both.
    """
    if payload.get("kind") == "explore":
        # Exploration payloads aggregate a whole search; the headline
        # "total" (the column every store surface tabulates) is the
        # number of candidates evaluated.
        return {
            "total": payload.get("n_candidates", 0),
            "candidates": payload.get("n_candidates", 0),
            "simulated": payload.get("n_simulated", 0),
            "front": len(payload.get("front", [])),
            "useful": payload.get("n_simulated", 0),
            "useless": 0,
            "L/F": 0.0,
            "rank_agreement": payload.get("rank_agreement", 0.0),
        }
    if payload.get("kind") == "estimate":
        from repro.estimate.workload import summarize_rates

        monitored = set(payload["monitored"])
        useful = total = 0.0
        for name, (_, act, dens) in payload["per_net"].items():
            if name in monitored:
                useful += act
                total += dens
        return summarize_rates(len(monitored), useful, total)
    toggles = rises = useful = useless = 0
    for counts in payload["per_node"].values():
        toggles += counts[0]
        rises += counts[1]
        useful += counts[2]
        useless += counts[3]
    return summarize_counts(
        payload["cycles"], toggles, rises, useful, useless
    )


class StoreWriteWarning(RuntimeWarning):
    """A store write failed and the entry was skipped (not fatal).

    The result that was being cached is still returned to the caller;
    only its persistence is lost.  Carries the failing path and the
    original error text.
    """


def _fsync_dir(path: Path) -> None:
    """Flush a directory entry (the rename) to stable storage."""
    try:
        fd = os.open(path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. fsync on NFS dirs
        pass
    finally:
        os.close(fd)


def _atomic_write(path: Path, data: str, durable: bool = True) -> None:
    """Write *data* to *path* atomically and (by default) durably.

    Same-directory temp file + fsync + rename + parent-directory
    fsync: after this returns, the write survives a crash or power
    loss — a reader sees either the old content or all of *data*,
    never a torn mix.  ``durable=False`` skips the fsyncs for callers
    whose data is reproducible scratch.
    """
    from repro.service import faults

    faults.raise_if("store.write_oserror", key=path.name)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(data)
            if durable:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp, path)
        if durable:
            _fsync_dir(path.parent)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class ResultStore:
    """On-disk LRU cache of activity results, addressed by :class:`RunKey`.

    Parameters
    ----------
    root:
        Store directory (created if missing).
    max_bytes:
        Optional bound on the summed object payload sizes; exceeded
        space is reclaimed by evicting least-recently-used entries at
        insert time.  ``None`` means unbounded.
    """

    INDEX = "index.jsonl"
    LOCK = ".lock"

    def __init__(self, root: str | os.PathLike, max_bytes: int | None = None):
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        self.root = Path(root)
        self.objects = self.root / "objects"
        self.objects.mkdir(parents=True, exist_ok=True)
        self.jobs_dir = self.root / "jobs"
        self.max_bytes = max_bytes
        #: digest -> index entry dict, in LRU order (oldest first).
        self._index: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        #: Digests this store removed (evicted / corrupt / cleared);
        #: kept out of the merge so a write cannot resurrect them.
        self._tombstones: set = set()
        #: In-memory state (recency updates, deferred puts) not yet
        #: persisted; see :meth:`flush` / :meth:`deferred`.
        self._dirty = False
        self._deferred = False
        #: Session counters (not persisted).
        self.hits = 0
        self.misses = 0
        #: Human-readable notes from the open-time recovery scan.
        self.recovery_notes: List[str] = []
        #: Monotonic LRU clock.  Recency is a per-store counter, not
        #: wall time: ``time.time()`` can step backwards under NTP
        #: adjustment and would then evict the hottest entry.  Seeded
        #: past every loaded entry so legacy wall-clock values (and
        #: mtime-derived rebuilds) stay older than any new touch.
        self._tick = 0
        with self._locked():
            self._recover_open()
        self._tick = max(
            self._tick,
            max(
                (e.get("last_used", 0) for e in self._index.values()),
                default=0,
            ),
        )

    def _touch(self) -> int:
        """Next LRU recency value (strictly increasing per store)."""
        self._tick += 1
        return self._tick

    # -- locking -------------------------------------------------------
    @contextmanager
    def _locked(self) -> Iterator[None]:
        """Exclusive advisory lock for index read-merge-write sections.

        Serializes concurrent writers sharing one directory so index
        rewrites (and recovery scans) cannot interleave.  Advisory
        only — readers that never rewrite the index are not blocked —
        and a no-op where ``fcntl`` is unavailable.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        try:
            fh = open(self.root / self.LOCK, "a+")
        except OSError:  # pragma: no cover - unwritable root
            yield
            return
        try:
            fcntl.flock(fh, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh, fcntl.LOCK_UN)
        finally:
            fh.close()

    # -- recovery ------------------------------------------------------
    def _recover_open(self) -> None:
        """Bring the on-disk state back to a consistent view on open.

        1. Sweep stale ``.tmp`` files (leftovers of writers that died
           mid-:func:`_atomic_write`; the rename never happened, so
           they are invisible to readers and safe to delete).
        2. Load the index, skipping torn lines; when the index file
           itself is unreadable, re-derive it from the object files.
        3. Drop entries whose object file has vanished (a crashed
           eviction: index rewrite raced the unlink).
        """
        for note in self._sweep_tmp_files():
            self.recovery_notes.append(note)
        rebuilt = False
        try:
            entries = self._read_disk_index()
        except (OSError, UnicodeDecodeError) as exc:
            self.recovery_notes.append(
                f"index unreadable ({exc}); rebuilt from object files"
            )
            entries = self._rebuild_entries_from_objects()
            rebuilt = True
        for entry in entries:
            self._index[entry["digest"]] = entry
        missing = [
            digest for digest in self._index
            if not self._object_path(digest).exists()
        ]
        for digest in missing:
            del self._index[digest]
            self._tombstones.add(digest)
            self._dirty = True
            self.recovery_notes.append(
                f"dropped entry {digest[:12]} (object file missing)"
            )
        if rebuilt:
            self._dirty = True
            self._write_index_locked()

    def _sweep_tmp_files(self) -> List[str]:
        notes = []
        for directory in (self.root, self.objects):
            for tmp in directory.glob(".*.tmp"):
                try:
                    tmp.unlink()
                    notes.append(f"swept stale temp file {tmp.name}")
                except OSError:  # pragma: no cover - raced cleanup
                    pass
        return notes

    def _rebuild_entries_from_objects(self) -> List[Dict[str, Any]]:
        """Re-derive index entries by scanning ``objects/``.

        The object filename *is* the run-key digest, so rebuilt
        entries remain addressable by :meth:`get`; the decomposed key
        fields are unrecoverable and stored as ``None`` (display-only
        anyway).  Unparseable objects are skipped — :meth:`repair`
        deletes them.
        """
        entries: List[Dict[str, Any]] = []
        for path in sorted(self.objects.glob("*.json")):
            digest = path.stem
            try:
                data = path.read_text()
                payload = json.loads(data)
                summary = payload_summary(payload)
            except (OSError, json.JSONDecodeError, KeyError, TypeError):
                continue
            try:
                mtime = path.stat().st_mtime
            except OSError:  # pragma: no cover - raced unlink
                mtime = time.time()
            entries.append({
                "digest": digest,
                "key": None,
                "size": len(data),
                "checksum": content_digest(data),
                "summary": summary,
                "circuit_name": payload.get("circuit_name"),
                "delay_description": payload.get("delay_description"),
                "created": mtime,
                "last_used": mtime,
            })
        entries.sort(key=lambda e: e.get("last_used", 0.0))
        return entries

    # -- index persistence ---------------------------------------------
    def _index_path(self) -> Path:
        return self.root / self.INDEX

    def _read_disk_index(self) -> List[Dict[str, Any]]:
        path = self._index_path()
        if not path.exists():
            return []
        entries: List[Dict[str, Any]] = []
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn trailing line from a dead writer
                if isinstance(entry, dict) and "digest" in entry:
                    entries.append(entry)
        entries.sort(key=lambda e: e.get("last_used", 0.0))
        return entries

    def _write_index(self) -> None:
        """Persist the index under the advisory writer lock."""
        with self._locked():
            self._write_index_locked()

    def _write_index_locked(self) -> None:
        """Persist the index, merging with concurrent writers' entries.

        Entries another process added since we loaded are folded in
        (our in-memory view wins per digest — it holds the freshest
        recency we know); digests this store removed stay removed.
        The caller must hold :meth:`_locked`.
        """
        merged: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        try:
            disk_entries = self._read_disk_index()
        except (OSError, UnicodeDecodeError):
            # The on-disk index is unreadable garbage; our in-memory
            # view is the best surviving state — overwrite it.
            disk_entries = []
        for entry in disk_entries:
            digest = entry["digest"]
            if digest not in self._tombstones and digest not in self._index:
                merged[digest] = entry
        merged.update(self._index)
        self._index = OrderedDict(sorted(
            merged.items(), key=lambda kv: kv[1].get("last_used", 0.0)
        ))
        # Concurrent writers may have advanced recency past our tick;
        # re-seed so our next touch still sorts newest.
        self._tick = max(
            self._tick,
            max(
                (e.get("last_used", 0) for e in self._index.values()),
                default=0,
            ),
        )
        lines = "".join(
            json.dumps(entry, sort_keys=True) + "\n"
            for entry in self._index.values()
        )
        try:
            _atomic_write(self._index_path(), lines)
        except OSError as exc:
            # A failing disk must not abort the batch that computed
            # the results: keep the in-memory state dirty so a later
            # flush retries, and tell the user persistence is at risk.
            obs.warn_event(
                StoreWriteWarning(
                    f"index write for {self.root} failed ({exc}); "
                    "entries remain in memory only"
                ),
            )
            return
        self._tombstones.clear()
        self._dirty = False

    def flush(self) -> None:
        """Persist pending in-memory state (hit recency, deferred puts).

        Read-only sessions never mutate, so without a flush their LRU
        touches would be lost and eviction would degrade toward
        insertion order; the CLI and scheduler flush once per command
        or batch.  No-op when nothing is pending.
        """
        if self._dirty:
            self._write_index()

    @contextmanager
    def deferred(self) -> Iterator["ResultStore"]:
        """Batch index persistence: one write at exit instead of per put.

        Object files are still written (atomically) inside the block,
        so a crash mid-batch loses at most index entries for objects
        that are already on disk — never stored bytes.
        """
        self._deferred = True
        try:
            yield self
        finally:
            self._deferred = False
            self.flush()

    def _object_path(self, digest: str) -> Path:
        return self.objects / f"{digest}.json"

    # -- core API ------------------------------------------------------
    def _read_object(self, entry: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """Read + verify one entry's object; ``None`` when corrupt.

        Detection layers: the file must be readable, its content must
        match the checksum recorded at write time (catches torn writes
        *and* silent bit flips — a flipped digit is still valid JSON),
        and it must parse.  Legacy entries without a checksum fall
        back to parse-only validation.
        """
        try:
            data = self._object_path(entry["digest"]).read_text()
        except OSError:
            return None
        checksum = entry.get("checksum")
        if checksum is not None and content_digest(data) != checksum:
            return None
        try:
            return json.loads(data)
        except json.JSONDecodeError:
            return None

    def _drop_entry(self, digest: str, unlink: bool = False) -> None:
        """Forget an entry (self-heal path); optionally remove its object."""
        self._index.pop(digest, None)
        self._tombstones.add(digest)
        self._dirty = True
        if unlink:
            try:
                os.unlink(self._object_path(digest))
            except OSError:
                pass

    def get(self, key: RunKey) -> Optional[Dict[str, Any]]:
        """The stored payload for *key*, or ``None`` on a miss.

        A hit refreshes the entry's LRU recency (persisted at the next
        mutation).  Entries whose object file is missing, torn,
        bit-flipped (checksum mismatch) or unparseable are treated as
        misses and dropped — the store self-heals on first touch.
        """
        digest = key.digest()
        entry = self._index.get(digest)
        if entry is None:
            self.misses += 1
            obs.inc("store.miss")
            return None
        rt0 = time.perf_counter()
        with obs.span("store.read", digest=digest[:12]):
            payload = self._read_object(entry)
        obs.hist("store.read_s", time.perf_counter() - rt0)
        if payload is None:
            ht0 = time.perf_counter()
            self._drop_entry(digest, unlink=True)
            obs.hist("store.self_heal_s", time.perf_counter() - ht0)
            obs.instant("store.self_heal", digest=digest[:12])
            obs.inc("store.self_heal")
            self.misses += 1
            obs.inc("store.miss")
            return None
        entry["last_used"] = self._touch()
        self._index.move_to_end(digest)
        self._dirty = True
        self.hits += 1
        obs.inc("store.hit")
        return payload

    def put(self, key: RunKey, payload: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """Store *payload* under *key*; returns the index entry.

        Overwrites any prior entry for the same key (idempotent), then
        evicts LRU entries until the size bound holds again.  A failed
        object write (``OSError``: disk full, permissions, injected
        fault) is *not* fatal — the caller keeps its computed result;
        a :class:`StoreWriteWarning` is emitted and ``None`` returned.
        """
        from repro.service import faults

        digest = key.digest()
        data = json.dumps(payload, sort_keys=True)
        checksum = content_digest(data)
        try:
            # corrupt_payload models storage corrupting the bytes
            # *after* the checksum was recorded — exactly the torn
            # write / bit flip the read-side verification must catch.
            wt0 = time.perf_counter()
            with obs.span("store.write", digest=digest[:12], bytes=len(data)):
                _atomic_write(
                    self._object_path(digest),
                    faults.corrupt_payload(data, key=digest),
                )
            obs.hist("store.write_s", time.perf_counter() - wt0)
        except OSError as exc:
            obs.warn_event(
                StoreWriteWarning(
                    f"store write for {digest[:12]} failed ({exc}); "
                    "result not cached"
                ),
                digest=digest[:12],
            )
            return None
        obs.inc("store.put")
        entry = {
            "digest": digest,
            "key": asdict(key),
            "size": len(data),
            "checksum": checksum,
            "summary": payload_summary(payload),
            "circuit_name": payload.get("circuit_name"),
            "delay_description": payload.get("delay_description"),
            "created": time.time(),
            "last_used": self._touch(),
        }
        self._index[digest] = entry
        self._index.move_to_end(digest)
        self._evict_to(self.max_bytes)
        self._dirty = True
        if not self._deferred:
            self._write_index()
        return entry

    def _evict_to(self, max_bytes: int | None) -> int:
        if max_bytes is None:
            return 0
        evicted = 0
        while len(self._index) > 1 and self.total_bytes() > max_bytes:
            digest, _ = self._index.popitem(last=False)
            self._tombstones.add(digest)
            try:
                os.unlink(self._object_path(digest))
            except OSError:
                pass
            evicted += 1
        if evicted:
            obs.inc("store.eviction", evicted)
        return evicted

    # -- maintenance / introspection -----------------------------------
    def total_bytes(self) -> int:
        return sum(e["size"] for e in self._index.values())

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: RunKey) -> bool:
        return key.digest() in self._index

    def entries(self) -> Iterable[Dict[str, Any]]:
        """Index entries, least-recently-used first."""
        return list(self._index.values())

    def prune(self, max_bytes: int) -> int:
        """Evict LRU entries until at most *max_bytes* remain."""
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        evicted = 0
        while self._index and self.total_bytes() > max_bytes:
            digest, _ = self._index.popitem(last=False)
            self._tombstones.add(digest)
            try:
                os.unlink(self._object_path(digest))
            except OSError:
                pass
            evicted += 1
        self._write_index()
        return evicted

    def clear(self) -> int:
        """Drop every entry (ours and any concurrent writer's)."""
        for entry in self._read_disk_index():
            self._index.setdefault(entry["digest"], entry)
        n = len(self._index)
        for digest in list(self._index):
            self._tombstones.add(digest)
            try:
                os.unlink(self._object_path(digest))
            except OSError:
                pass
        self._index.clear()
        self._write_index()
        return n

    def _sweep_missing_objects(self) -> int:
        """Drop entries whose object file vanished (raced eviction)."""
        missing = [
            digest for digest in self._index
            if not self._object_path(digest).exists()
        ]
        for digest in missing:
            self._drop_entry(digest)
        return len(missing)

    def stats(self) -> Dict[str, Any]:
        """Aggregate store statistics plus this session's hit counters.

        Self-heals first: entries whose object file has vanished (an
        eviction race in another process, manual deletion) are dropped
        so the reported entry/byte counts describe servable state —
        the same healing :meth:`get` performs on first touch.
        """
        self._sweep_missing_objects()
        return {
            "root": str(self.root),
            "entries": len(self._index),
            "total_bytes": self.total_bytes(),
            "max_bytes": self.max_bytes,
            "session_hits": self.hits,
            "session_misses": self.misses,
        }

    # -- verification / repair ------------------------------------------
    def verify(self) -> Dict[str, Any]:
        """Deep-scan the store; report every problem, change nothing.

        Checks each index entry's object file (existence, recorded
        checksum, JSON parseability, size agreement) and reports
        orphan objects (object file without an index entry — a writer
        died between the object write and the index write) and stale
        temp files.  Returns ``{"entries", "ok", "problems": [...]}``
        where each problem is ``{"digest", "kind", "detail"}`` with
        ``kind`` in ``missing-object`` / ``checksum-mismatch`` /
        ``unparseable`` / ``size-mismatch`` / ``orphan-object`` /
        ``stale-tmp``.
        """
        problems: List[Dict[str, str]] = []
        for digest, entry in self._index.items():
            path = self._object_path(digest)
            try:
                data = path.read_text()
            except OSError as exc:
                problems.append({
                    "digest": digest, "kind": "missing-object",
                    "detail": str(exc),
                })
                continue
            checksum = entry.get("checksum")
            if checksum is not None and content_digest(data) != checksum:
                problems.append({
                    "digest": digest, "kind": "checksum-mismatch",
                    "detail": (
                        f"stored {len(data)} bytes do not match the "
                        "checksum recorded at write time"
                    ),
                })
                continue
            try:
                json.loads(data)
            except json.JSONDecodeError as exc:
                problems.append({
                    "digest": digest, "kind": "unparseable",
                    "detail": str(exc),
                })
                continue
            if checksum is None and len(data) != entry.get("size"):
                # Legacy entry (no checksum): the size is the only
                # corruption signal available.
                problems.append({
                    "digest": digest, "kind": "size-mismatch",
                    "detail": (
                        f"{len(data)} bytes on disk, index says "
                        f"{entry.get('size')}"
                    ),
                })
        indexed = set(self._index)
        for path in sorted(self.objects.glob("*.json")):
            if path.stem not in indexed:
                problems.append({
                    "digest": path.stem, "kind": "orphan-object",
                    "detail": "object file has no index entry",
                })
        for directory in (self.root, self.objects):
            for tmp in directory.glob(".*.tmp"):
                problems.append({
                    "digest": tmp.name, "kind": "stale-tmp",
                    "detail": "leftover temp file from a dead writer",
                })
        return {
            "entries": len(self._index),
            "ok": len(self._index) - sum(
                1 for p in problems
                if p["kind"] not in ("orphan-object", "stale-tmp")
            ),
            "problems": problems,
        }

    def repair(self) -> Dict[str, int]:
        """Fix everything :meth:`verify` reports; keep valid entries.

        Corrupt entries (missing/torn/bit-flipped/unparseable objects)
        are dropped — their next request recomputes and re-caches.
        Parseable orphan objects are *adopted* back into the index
        (their filename is the addressing digest, so they become
        servable again); unparseable orphans and stale temp files are
        deleted.  Uncorrupted entries are untouched and remain
        servable.  Returns action counts.
        """
        with self._locked():
            dropped = adopted = deleted = swept = 0
            for problem in self.verify()["problems"]:
                kind = problem["kind"]
                digest = problem["digest"]
                if kind in (
                    "missing-object", "checksum-mismatch",
                    "unparseable", "size-mismatch",
                ):
                    self._drop_entry(digest, unlink=True)
                    dropped += 1
                elif kind == "orphan-object":
                    path = self._object_path(digest)
                    try:
                        data = path.read_text()
                        payload = json.loads(data)
                        summary = payload_summary(payload)
                    except (
                        OSError, json.JSONDecodeError, KeyError, TypeError,
                    ):
                        try:
                            path.unlink()
                            deleted += 1
                        except OSError:
                            pass
                        continue
                    try:
                        mtime = path.stat().st_mtime
                    except OSError:  # pragma: no cover - raced unlink
                        mtime = time.time()
                    self._index[digest] = {
                        "digest": digest,
                        "key": None,
                        "size": len(data),
                        "checksum": content_digest(data),
                        "summary": summary,
                        "circuit_name": payload.get("circuit_name"),
                        "delay_description": payload.get(
                            "delay_description"
                        ),
                        "created": mtime,
                        "last_used": mtime,
                    }
                    self._tombstones.discard(digest)
                    self._dirty = True
                    adopted += 1
            swept += len(self._sweep_tmp_files())
            self._dirty = True
            self._write_index_locked()
        return {
            "dropped": dropped,
            "adopted": adopted,
            "deleted": deleted,
            "swept_tmp": swept,
        }
