"""Gate/cell-level logic simulation with pluggable backends.

Two engines run a :class:`~repro.netlist.circuit.Circuit` over the
shared compiled IR (:mod:`repro.netlist.compiled`), behind the common
:class:`~repro.sim.backends.SimBackend` protocol:

* the **event-driven** engine (:mod:`repro.sim.engine`) propagates
  value changes in integer "delta time" within each clock cycle
  (transport delay, last-write-wins per net and time slot), exactly
  the delta-time model of the paper's Figure 3 — glitches observable;
* the **bit-parallel** engine (:mod:`repro.sim.backends`) packs many
  cycles into per-net integer bitmasks for fast zero-delay functional
  simulation and useful-activity estimation.

Delay models are pluggable (:mod:`repro.sim.delays`), enabling the
paper's unit-delay experiments (Table 1) and the ``dsum = 2*dcarry``
refinement (Table 2) without touching the netlist.
"""

from repro.sim.delays import (
    DelayModel,
    UnitDelay,
    ZeroDelay,
    PerKindDelay,
    SumCarryDelay,
    HintedDelay,
    LoadDelay,
)
from repro.sim.engine import Simulator, CycleTrace
from repro.sim.backends import (
    SimBackend,
    RunStats,
    EventDrivenBackend,
    BitParallelBackend,
    canonical_backend,
    get_backend,
)
from repro.sim.vectors import (
    WordStimulus,
    random_words,
    correlated_words,
    walking_ones,
    gray_sequence,
)
from repro.sim.vcd import VcdWriter, dump_vcd

__all__ = [
    "DelayModel",
    "UnitDelay",
    "ZeroDelay",
    "PerKindDelay",
    "SumCarryDelay",
    "HintedDelay",
    "LoadDelay",
    "Simulator",
    "CycleTrace",
    "SimBackend",
    "RunStats",
    "EventDrivenBackend",
    "BitParallelBackend",
    "canonical_backend",
    "get_backend",
    "WordStimulus",
    "random_words",
    "correlated_words",
    "walking_ones",
    "gray_sequence",
    "VcdWriter",
    "dump_vcd",
]
