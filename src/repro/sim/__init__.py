"""Event-driven gate/cell-level logic simulation.

The simulator propagates value changes through a
:class:`~repro.netlist.circuit.Circuit` in integer "delta time" within
each clock cycle (transport delay, last-write-wins per net and time
slot), exactly the delta-time model of the paper's Figure 3.  Delay
models are pluggable (:mod:`repro.sim.delays`), enabling the paper's
unit-delay experiments (Table 1) and the ``dsum = 2*dcarry`` refinement
(Table 2) without touching the netlist.
"""

from repro.sim.delays import (
    DelayModel,
    UnitDelay,
    ZeroDelay,
    PerKindDelay,
    SumCarryDelay,
    HintedDelay,
    LoadDelay,
)
from repro.sim.engine import Simulator, CycleTrace
from repro.sim.vectors import (
    WordStimulus,
    random_words,
    correlated_words,
    walking_ones,
    gray_sequence,
)
from repro.sim.vcd import VcdWriter, dump_vcd

__all__ = [
    "DelayModel",
    "UnitDelay",
    "ZeroDelay",
    "PerKindDelay",
    "SumCarryDelay",
    "HintedDelay",
    "LoadDelay",
    "Simulator",
    "CycleTrace",
    "WordStimulus",
    "random_words",
    "correlated_words",
    "walking_ones",
    "gray_sequence",
    "VcdWriter",
    "dump_vcd",
]
