"""Gate/cell-level logic simulation with pluggable backends.

Three engines run a :class:`~repro.netlist.circuit.Circuit` over the
shared compiled IR (:mod:`repro.netlist.compiled`), behind the common
:class:`~repro.sim.backends.SimBackend` protocol:

* the **event-driven** engine (:mod:`repro.sim.engine`) propagates
  value changes in integer "delta time" within each clock cycle
  (transport delay, last-write-wins per net and time slot), exactly
  the delta-time model of the paper's Figure 3 — glitches observable,
  per-cycle traces and VCD recording available;
* the **waveform** engine (:mod:`repro.sim.waveform`) packs whole
  timed waveforms into per-net integer bitmasks (one lane per cycle ×
  delta time) and evaluates each cell once per batch — aggregated
  activity bit-identical to the event-driven engine, several times
  faster;
* the **bit-parallel** engine (:mod:`repro.sim.backends`) packs many
  cycles into per-net integer bitmasks for fast zero-delay functional
  simulation and useful-activity estimation.

:func:`~repro.sim.backends.select_backend` maps the ``"auto"`` policy
onto this menu.  Delay models are pluggable (:mod:`repro.sim.delays`),
enabling the paper's unit-delay experiments (Table 1) and the
``dsum = 2*dcarry`` refinement (Table 2) without touching the netlist.
"""

from repro.sim.delays import (
    DelayModel,
    UnitDelay,
    ZeroDelay,
    PerKindDelay,
    SumCarryDelay,
    HintedDelay,
    LoadDelay,
)
from repro.sim.engine import Simulator, CycleTrace
from repro.sim.backends import (
    SimBackend,
    RunStats,
    EventDrivenBackend,
    WaveformBackend,
    BitParallelBackend,
    canonical_backend,
    get_backend,
    select_backend,
)
from repro.sim.vectors import (
    WordStimulus,
    StimulusSpec,
    UniformStimulus,
    CorrelatedStimulus,
    BurstMarkovStimulus,
    STIMULI,
    make_stimulus,
    stimulus_from_dict,
    random_words,
    correlated_words,
    walking_ones,
    gray_sequence,
)
from repro.sim.vcd import VcdWriter, dump_vcd

__all__ = [
    "DelayModel",
    "UnitDelay",
    "ZeroDelay",
    "PerKindDelay",
    "SumCarryDelay",
    "HintedDelay",
    "LoadDelay",
    "Simulator",
    "CycleTrace",
    "SimBackend",
    "RunStats",
    "EventDrivenBackend",
    "WaveformBackend",
    "BitParallelBackend",
    "canonical_backend",
    "get_backend",
    "select_backend",
    "WordStimulus",
    "StimulusSpec",
    "UniformStimulus",
    "CorrelatedStimulus",
    "BurstMarkovStimulus",
    "STIMULI",
    "make_stimulus",
    "stimulus_from_dict",
    "random_words",
    "correlated_words",
    "walking_ones",
    "gray_sequence",
    "VcdWriter",
    "dump_vcd",
]
