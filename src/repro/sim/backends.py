"""Pluggable simulation backends over the compiled circuit IR.

Both backends implement the :class:`SimBackend` protocol — construct
with a circuit (plus options), call :meth:`run` with a vector stream,
get back aggregated per-net :class:`RunStats` — so the activity layer
(:class:`repro.core.activity.ActivityRun`) can swap engines without
touching consumers:

* :class:`EventDrivenBackend` — the exact transport-delay engine
  (:class:`repro.sim.engine.Simulator`): intra-cycle delta timing,
  glitches observable, per-cycle parity classification of useful vs
  useless transitions.  The reference for every paper number.
* :class:`BitParallelBackend` — zero-delay batch evaluation that packs
  many clock cycles into single Python-int bitmasks per net and
  evaluates each gate once per batch with bitwise operators.  Glitches
  are invisible by construction, so every counted transition is a
  settled-value change (useful activity).  Ideal for fast functional
  verification, warm-up/fast-forward, and flipflop/useful-activity
  estimation; its per-net toggle counts equal the event-driven
  backend's per-net *useful* counts exactly.

Both accept an explicit starting point (``initial_values`` +
``initial_ff_state``), which is what makes exact vector-stream sharding
possible: a shard's boundary state is computed cheaply with the
bit-parallel backend and handed to an event-driven shard worker, whose
traces are then bit-identical to an unsharded run (settled values
provably equal zero-delay evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Protocol, Sequence, Tuple, runtime_checkable

from repro.core.transitions import NodeActivity
from repro.netlist.cells import CellKind
from repro.netlist.circuit import Circuit
from repro.netlist.compiled import CompiledCircuit, compile_circuit
from repro.sim.delays import DelayModel, UnitDelay, ZeroDelay
from repro.sim.engine import Simulator

InputVector = Sequence[int] | Mapping[int, int]


@dataclass
class RunStats:
    """Aggregated per-net activity of one backend run.

    ``final_values`` / ``final_ff_state`` snapshot the settled state
    after the last counted cycle, so a subsequent run (on any backend)
    can continue the stream exactly where this one stopped.
    """

    cycles: int = 0
    per_node: Dict[int, NodeActivity] = field(default_factory=dict)
    final_values: List[int] = field(default_factory=list)
    final_ff_state: Dict[int, int] = field(default_factory=dict)


@runtime_checkable
class SimBackend(Protocol):
    """Common protocol every simulation backend satisfies."""

    #: Stable identifier used by CLIs, benchmarks and reports.
    name: str
    #: True when intra-cycle glitches are observable (event-driven);
    #: False for settled-value-only engines (bit-parallel).
    exact_glitches: bool

    def run(
        self,
        vectors: Iterable[InputVector],
        warmup: InputVector | None = None,
        initial_values: Sequence[int] | None = None,
        initial_ff_state: Mapping[int, int] | None = None,
    ) -> RunStats:
        """Simulate *vectors* and return aggregated activity."""
        ...  # pragma: no cover - protocol stub


def _resolve_vector(
    vec: InputVector,
    inputs: Tuple[int, ...],
    input_set: frozenset,
    current: List[int],
) -> List[int]:
    """Full positional input bits for *vec*, with mapping carry-over.

    Mirrors :meth:`Simulator._normalise_inputs`: mapping keys must name
    primary inputs, and inputs a mapping omits keep their *current*
    value.  Updates *current* in place and returns a copy.
    """
    if isinstance(vec, Mapping):
        for n in vec:
            if n not in input_set:
                raise ValueError(
                    f"net {n} is not a primary input; mapping vectors may "
                    "only drive primary inputs"
                )
        for pos, net in enumerate(inputs):
            if net in vec:
                current[pos] = int(bool(vec[net]))
    else:
        if len(vec) != len(inputs):
            raise ValueError(
                f"expected {len(inputs)} input bits, got {len(vec)}"
            )
        current[:] = [int(bool(v)) for v in vec]
    return list(current)


class EventDrivenBackend:
    """Exact transport-delay backend (see :mod:`repro.sim.engine`).

    Per-cycle toggle counts are folded into :class:`NodeActivity`
    records with the paper's parity classification: an odd per-cycle
    count contributes one useful transition, everything else is
    useless.
    """

    name = "event"
    exact_glitches = True

    def __init__(
        self,
        circuit: Circuit,
        delay_model: DelayModel | None = None,
        monitor: Iterable[int] | None = None,
    ) -> None:
        self.circuit = circuit
        self.delay_model = delay_model or UnitDelay()
        self.monitor = None if monitor is None else list(monitor)

    def run(
        self,
        vectors: Iterable[InputVector],
        warmup: InputVector | None = None,
        initial_values: Sequence[int] | None = None,
        initial_ff_state: Mapping[int, int] | None = None,
    ) -> RunStats:
        sim = Simulator(self.circuit, self.delay_model, monitor=self.monitor)
        if initial_ff_state:
            sim.ff_state.update(initial_ff_state)
        it = iter(vectors)
        if initial_values is not None:
            # Resuming mid-stream from an exact settled state; an
            # explicit warmup on top re-settles from that state (same
            # semantics as the bit-parallel backend).
            sim.values[:] = initial_values
            if warmup is not None:
                sim.settle(warmup)
        else:
            if warmup is None:
                try:
                    warmup = next(it)
                except StopIteration:
                    return RunStats(
                        final_values=list(sim.values),
                        final_ff_state=dict(sim.ff_state),
                    )
            sim.settle(warmup)
        stats = RunStats()
        per_node = stats.per_node
        for vec in it:
            trace = sim.step(vec)
            stats.cycles += 1
            rises = trace.rises
            for net, count in trace.toggles.items():
                act = per_node.get(net)
                if act is None:
                    act = per_node[net] = NodeActivity()
                act.add_cycle(count, rises.get(net, 0))
        stats.final_values = list(sim.values)
        stats.final_ff_state = dict(sim.ff_state)
        return stats


# ---------------------------------------------------------------------------
# Bit-parallel zero-delay evaluation
# ---------------------------------------------------------------------------

def _bits_const0(ins, mask):
    return (0,)


def _bits_const1(ins, mask):
    return (mask,)


def _bits_buf(ins, mask):
    return (ins[0],)


def _bits_not(ins, mask):
    return (ins[0] ^ mask,)


def _bits_and(ins, mask):
    out = mask
    for v in ins:
        out &= v
    return (out,)


def _bits_or(ins, mask):
    out = 0
    for v in ins:
        out |= v
    return (out,)


def _bits_nand(ins, mask):
    return (_bits_and(ins, mask)[0] ^ mask,)


def _bits_nor(ins, mask):
    return (_bits_or(ins, mask)[0] ^ mask,)


def _bits_xor(ins, mask):
    out = 0
    for v in ins:
        out ^= v
    return (out,)


def _bits_xnor(ins, mask):
    return (_bits_xor(ins, mask)[0] ^ mask,)


def _bits_mux2(ins, mask):
    sel, a, b = ins
    return (a ^ ((a ^ b) & sel),)


def _bits_ha(ins, mask):
    a, b = ins
    return (a ^ b, a & b)


def _bits_fa(ins, mask):
    a, b, cin = ins
    p = a ^ b
    return (p ^ cin, (a & b) | (cin & p))


#: Bitwise (cycle-packed) evaluators, one lane per clock cycle.
_BIT_EVALUATORS = {
    CellKind.CONST0: _bits_const0,
    CellKind.CONST1: _bits_const1,
    CellKind.BUF: _bits_buf,
    CellKind.NOT: _bits_not,
    CellKind.AND: _bits_and,
    CellKind.OR: _bits_or,
    CellKind.NAND: _bits_nand,
    CellKind.NOR: _bits_nor,
    CellKind.XOR: _bits_xor,
    CellKind.XNOR: _bits_xnor,
    CellKind.MUX2: _bits_mux2,
    CellKind.HA: _bits_ha,
    CellKind.FA: _bits_fa,
}


class BitParallelBackend:
    """Zero-delay batch backend: one int bitmask per net, B cycles deep.

    Combinational logic is evaluated once per batch with bitwise
    operators over ``batch_cycles``-bit integers (bit *k* of a net's
    mask is its settled value in cycle *k* of the batch).  Flipflops
    introduce a cross-cycle dependency — ``q[k] = d[k-1]`` — resolved
    by fixpoint iteration: each pass extends the correct prefix by at
    least one register stage, so a circuit with an r-stage register
    pipeline converges in about ``r + 1`` passes regardless of batch
    size.

    Because evaluation is zero-delay, per-cycle toggle counts are 0 or
    1 and every transition is useful — the numbers match the
    event-driven backend's *useful* counts per net exactly (both equal
    "settled value changed this cycle").
    """

    name = "bitparallel"
    exact_glitches = False

    def __init__(
        self,
        circuit: Circuit,
        delay_model: DelayModel | None = None,
        monitor: Iterable[int] | None = None,
        batch_cycles: int = 256,
    ) -> None:
        if delay_model is not None and not isinstance(delay_model, ZeroDelay):
            raise ValueError(
                "the bit-parallel backend is inherently zero-delay; "
                "pass delay_model=None (or ZeroDelay) or use the "
                "event-driven backend"
            )
        if batch_cycles < 1:
            raise ValueError("batch_cycles must be >= 1")
        self.circuit = circuit
        self.delay_model = ZeroDelay()
        self._cc: CompiledCircuit = compile_circuit(circuit)
        if monitor is None:
            self._monitor = [
                n for n in range(self._cc.n_nets) if self._cc.driven[n]
            ]
        else:
            self._monitor = list(monitor)
        self.batch_cycles = batch_cycles
        self._bit_eval = [
            _BIT_EVALUATORS.get(kind) for kind in self._cc.cell_kinds
        ]

    # ------------------------------------------------------------------
    def _eval_batch(
        self, net_bits: List[int], mask: int
    ) -> None:
        """One zero-delay pass over the combinational logic, in place."""
        cc = self._cc
        cell_inputs = cc.cell_inputs
        cell_outputs = cc.cell_outputs
        evals = self._bit_eval
        for ci in cc.topo:
            ins = [net_bits[n] for n in cell_inputs[ci]]
            outs = evals[ci](ins, mask)
            for out_net, v in zip(cell_outputs[ci], outs):
                net_bits[out_net] = v

    def run(
        self,
        vectors: Iterable[InputVector],
        warmup: InputVector | None = None,
        initial_values: Sequence[int] | None = None,
        initial_ff_state: Mapping[int, int] | None = None,
    ) -> RunStats:
        cc = self._cc
        n_nets = cc.n_nets
        inputs = cc.inputs
        input_set = cc.input_set
        if initial_values is not None:
            values = list(initial_values)
        else:
            values = [0] * n_nets
        state: Dict[int, int] = dict.fromkeys(cc.ff_cells, 0)
        if initial_ff_state:
            state.update(initial_ff_state)
        cur_inputs = [values[net] for net in inputs]

        it = iter(vectors)
        if initial_values is None:
            if warmup is None:
                try:
                    warmup = next(it)
                except StopIteration:
                    return RunStats(
                        final_values=values, final_ff_state=state
                    )
            full = _resolve_vector(warmup, inputs, input_set, cur_inputs)
            values, _ = cc.evaluate_flat(full, state)
        elif warmup is not None:
            full = _resolve_vector(warmup, inputs, input_set, cur_inputs)
            values, _ = cc.evaluate_flat(full, state)

        stats = RunStats()
        per_node = stats.per_node
        ff_cells, ff_d, ff_q = cc.ff_cells, cc.ff_d, cc.ff_q
        monitor = self._monitor
        B = self.batch_cycles

        batch: List[List[int]] = []
        exhausted = False
        while not exhausted:
            batch.clear()
            for vec in it:
                batch.append(
                    _resolve_vector(vec, inputs, input_set, cur_inputs)
                )
                if len(batch) == B:
                    break
            else:
                exhausted = True
            if not batch:
                break
            nbits = len(batch)
            mask = (1 << nbits) - 1
            top = nbits - 1

            net_bits = [0] * n_nets
            for pos, net in enumerate(inputs):
                stream = 0
                for k in range(nbits):
                    stream |= batch[k][pos] << k
                net_bits[net] = stream

            if ff_cells:
                # q[0] comes from the D value settled before this batch;
                # within the batch, q[k] = d[k-1].  Iterate to fixpoint.
                q_init = [values[d] & 1 for d in ff_d]
                q_bits = list(q_init)
                for _ in range(nbits + 1):
                    for i, qn in enumerate(ff_q):
                        net_bits[qn] = q_bits[i]
                    self._eval_batch(net_bits, mask)
                    new_q = [
                        ((net_bits[ff_d[i]] << 1) | q_init[i]) & mask
                        for i in range(len(ff_cells))
                    ]
                    if new_q == q_bits:
                        break
                    q_bits = new_q
                else:  # pragma: no cover - mathematically unreachable
                    raise RuntimeError("flipflop fixpoint did not converge")
                for i, ci in enumerate(ff_cells):
                    state[ci] = (q_bits[i] >> top) & 1
            else:
                self._eval_batch(net_bits, mask)

            for net in monitor:
                s = net_bits[net]
                prev = ((s << 1) | (values[net] & 1)) & mask
                diff = s ^ prev
                if diff:
                    act = per_node.get(net)
                    if act is None:
                        act = per_node[net] = NodeActivity()
                    tog = diff.bit_count()
                    act.toggles += tog
                    act.rises += (s & diff).bit_count()
                    act.useful += tog
                    act.cycles_active += tog
            for net in range(n_nets):
                values[net] = (net_bits[net] >> top) & 1
            stats.cycles += nbits

        stats.final_values = values
        stats.final_ff_state = state
        return stats


#: Registered backends, by canonical name (aliases resolved in
#: :func:`get_backend`).
BACKENDS = {
    EventDrivenBackend.name: EventDrivenBackend,
    BitParallelBackend.name: BitParallelBackend,
}

_ALIASES = {
    "event": "event",
    "event-driven": "event",
    "bitparallel": "bitparallel",
    "bit-parallel": "bitparallel",
    "batch": "bitparallel",
}


def canonical_backend(name: str) -> str:
    """Resolve a backend name/alias to its canonical registry key."""
    canonical = _ALIASES.get(name)
    if canonical is None:
        raise ValueError(
            f"unknown simulation backend {name!r}; "
            f"choose from {sorted(set(_ALIASES))}"
        )
    return canonical


def get_backend(
    name: str,
    circuit: Circuit,
    delay_model: DelayModel | None = None,
    monitor: Iterable[int] | None = None,
) -> SimBackend:
    """Construct the backend called *name* for *circuit*."""
    return BACKENDS[canonical_backend(name)](circuit, delay_model, monitor)
