"""Pluggable simulation backends over the compiled circuit IR.

Every backend implements the :class:`SimBackend` protocol — construct
with a circuit (plus options), call :meth:`run` with a vector stream,
get back aggregated per-net :class:`RunStats` — so the activity layer
(:class:`repro.core.activity.ActivityRun`) can swap engines without
touching consumers:

* :class:`EventDrivenBackend` — the exact transport-delay engine
  (:class:`repro.sim.engine.Simulator`): intra-cycle delta timing,
  glitches observable, per-cycle parity classification of useful vs
  useless transitions.  The reference for every paper number, and the
  only engine that produces per-cycle traces and recorded events
  (VCD).
* :class:`~repro.sim.waveform.WaveformBackend` — glitch-exact batch
  engine: packs whole timed waveforms (cycle × delta-time lanes) into
  per-net integer bitmasks and evaluates each cell once per batch
  through the compiled IR's fused bitmask kernels.  Aggregated
  :class:`RunStats` are **bit-identical** to the event-driven backend
  at a fraction of the cost — the default choice for glitch-exact
  activity analysis (see :func:`select_backend`).
* :class:`BitParallelBackend` — zero-delay batch evaluation that packs
  many clock cycles into single Python-int bitmasks per net and
  evaluates each gate once per batch with bitwise operators.  Glitches
  are invisible by construction, so every counted transition is a
  settled-value change (useful activity).  Ideal for fast functional
  verification, warm-up/fast-forward, and flipflop/useful-activity
  estimation; its per-net toggle counts equal the event-driven
  backend's per-net *useful* counts exactly.
* :class:`~repro.sim.codegen_backend.CodegenBackend` — the generated
  pure-Python tier (:mod:`repro.netlist.codegen`): the same lane
  algorithms as the two batch engines above, run through one flat
  exec-compiled kernel per circuit instead of per-cell closure
  dispatch.  Dual-mode: a timed delay model selects the glitch-exact
  waveform algorithm, an explicit ZeroDelay selects settled batch
  evaluation.
* :class:`~repro.sim.vector.VectorBackend` — the numpy tier (the
  optional ``[perf]`` extra): per-net cycle lanes packed into
  ``uint64`` ndarrays, evaluated level-by-level with per-kind
  vectorized ops.  Dual-mode like codegen, bit-identical to the
  event-driven reference, and the fastest engine by a wide margin.

All backends accept an explicit starting point (``initial_values`` +
``initial_ff_state``), which is what makes exact vector-stream sharding
possible: a shard's boundary state is computed cheaply with the
zero-delay engine (:func:`zero_delay_backend`) and handed to a
glitch-exact shard worker, whose stats are then bit-identical to an
unsharded run (settled values provably equal zero-delay evaluation).

:func:`select_backend` implements the ``"auto"`` policy used by the
session API and the CLI: event-driven whenever traces/VCD recording
are requested; otherwise the vector backend when numpy is available,
falling back to waveform (glitch-exact) or bit-parallel (explicit
zero-delay) without it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Protocol, Sequence, Tuple, runtime_checkable

from repro.core.transitions import NodeActivity
from repro.netlist.circuit import Circuit
from repro.obs import trace as obs
from repro.netlist.compiled import (
    CompiledCircuit,
    compile_circuit,
    settle_lanes,
)
from repro.sim.delays import DelayModel, UnitDelay, ZeroDelay
from repro.sim.engine import Simulator

InputVector = Sequence[int] | Mapping[int, int]


@dataclass
class RunStats:
    """Aggregated per-net activity of one backend run.

    ``final_values`` / ``final_ff_state`` snapshot the settled state
    after the last counted cycle, so a subsequent run (on any backend)
    can continue the stream exactly where this one stopped.
    """

    cycles: int = 0
    per_node: Dict[int, NodeActivity] = field(default_factory=dict)
    final_values: List[int] = field(default_factory=list)
    final_ff_state: Dict[int, int] = field(default_factory=dict)


@runtime_checkable
class SimBackend(Protocol):
    """Common protocol every simulation backend satisfies."""

    #: Stable identifier used by CLIs, benchmarks and reports.
    name: str
    #: True when intra-cycle glitches are observable (event-driven);
    #: False for settled-value-only engines (bit-parallel).
    exact_glitches: bool

    def run(
        self,
        vectors: Iterable[InputVector],
        warmup: InputVector | None = None,
        initial_values: Sequence[int] | None = None,
        initial_ff_state: Mapping[int, int] | None = None,
    ) -> RunStats:
        """Simulate *vectors* and return aggregated activity."""
        ...  # pragma: no cover - protocol stub


def _resolve_vector(
    vec: InputVector,
    inputs: Tuple[int, ...],
    input_set: frozenset,
    current: List[int],
) -> List[int]:
    """Full positional input bits for *vec*, with mapping carry-over.

    Mirrors :meth:`Simulator._normalise_inputs`: mapping keys must name
    primary inputs, and inputs a mapping omits keep their *current*
    value.  Updates *current* in place and returns a copy.
    """
    if isinstance(vec, Mapping):
        for n in vec:
            if n not in input_set:
                raise ValueError(
                    f"net {n} is not a primary input; mapping vectors may "
                    "only drive primary inputs"
                )
        for pos, net in enumerate(inputs):
            if net in vec:
                current[pos] = int(bool(vec[net]))
    else:
        if len(vec) != len(inputs):
            raise ValueError(
                f"expected {len(inputs)} input bits, got {len(vec)}"
            )
        current[:] = [int(bool(v)) for v in vec]
    return list(current)


class EventDrivenBackend:
    """Exact transport-delay backend (see :mod:`repro.sim.engine`).

    Per-cycle toggle counts are folded into :class:`NodeActivity`
    records with the paper's parity classification: an odd per-cycle
    count contributes one useful transition, everything else is
    useless.
    """

    name = "event"
    exact_glitches = True

    def __init__(
        self,
        circuit: Circuit,
        delay_model: DelayModel | None = None,
        monitor: Iterable[int] | None = None,
    ) -> None:
        self.circuit = circuit
        self.delay_model = delay_model or UnitDelay()
        self.monitor = None if monitor is None else list(monitor)

    def run(
        self,
        vectors: Iterable[InputVector],
        warmup: InputVector | None = None,
        initial_values: Sequence[int] | None = None,
        initial_ff_state: Mapping[int, int] | None = None,
    ) -> RunStats:
        sim = Simulator(self.circuit, self.delay_model, monitor=self.monitor)
        if initial_ff_state:
            sim.ff_state.update(initial_ff_state)
        it = iter(vectors)
        if initial_values is not None:
            # Resuming mid-stream from an exact settled state; an
            # explicit warmup on top re-settles from that state (same
            # semantics as the bit-parallel backend).
            sim.values[:] = initial_values
            if warmup is not None:
                sim.settle(warmup)
        else:
            if warmup is None:
                try:
                    warmup = next(it)
                except StopIteration:
                    return RunStats(
                        final_values=list(sim.values),
                        final_ff_state=dict(sim.ff_state),
                    )
            sim.settle(warmup)
        stats = RunStats()
        per_node = stats.per_node
        rec = obs.active()
        t0 = rec.now() if rec is not None else 0
        for vec in it:
            trace = sim.step(vec)
            stats.cycles += 1
            rises = trace.rises
            for net, count in trace.toggles.items():
                act = per_node.get(net)
                if act is None:
                    act = per_node[net] = NodeActivity()
                act.add_cycle(count, rises.get(net, 0))
        stats.final_values = list(sim.values)
        stats.final_ff_state = dict(sim.ff_state)
        if rec is not None:
            dur = rec.complete(
                "sim.batch", t0, backend="event", cycles=stats.cycles
            )
            rec.metrics.hist("sim.batch_s", dur / 1e9)
            rec.metrics.inc("sim.vectors", stats.cycles)
            rec.metrics.inc(
                "sim.cell_evals", stats.cycles * len(self.circuit.cells)
            )
        return stats


# ---------------------------------------------------------------------------
# Bit-parallel zero-delay evaluation
# ---------------------------------------------------------------------------

class BitParallelBackend:
    """Zero-delay batch backend: one int bitmask per net, B cycles deep.

    Combinational logic is evaluated once per batch with bitwise
    operators over ``batch_cycles``-bit integers (bit *k* of a net's
    mask is its settled value in cycle *k* of the batch).  Flipflops
    introduce a cross-cycle dependency — ``q[k] = d[k-1]`` — resolved
    by fixpoint iteration: each pass extends the correct prefix by at
    least one register stage, so a circuit with an r-stage register
    pipeline converges in about ``r + 1`` passes regardless of batch
    size.

    Because evaluation is zero-delay, per-cycle toggle counts are 0 or
    1 and every transition is useful — the numbers match the
    event-driven backend's *useful* counts per net exactly (both equal
    "settled value changed this cycle").
    """

    name = "bitparallel"
    exact_glitches = False

    def __init__(
        self,
        circuit: Circuit,
        delay_model: DelayModel | None = None,
        monitor: Iterable[int] | None = None,
        batch_cycles: int = 256,
    ) -> None:
        if delay_model is not None and not isinstance(delay_model, ZeroDelay):
            raise ValueError(
                "the bit-parallel backend is inherently zero-delay; "
                "pass delay_model=None (or ZeroDelay) or use the "
                "event-driven backend"
            )
        if batch_cycles < 1:
            raise ValueError("batch_cycles must be >= 1")
        self.circuit = circuit
        self.delay_model = ZeroDelay()
        self._cc: CompiledCircuit = compile_circuit(circuit)
        #: Optional settle-pass override (the codegen backend installs
        #: the generated flat kernel here; ``None`` keeps the fused
        #: per-cell kernel loop).
        self._comb_pass = None
        if monitor is None:
            self._monitor = [
                n for n in range(self._cc.n_nets) if self._cc.driven[n]
            ]
        else:
            self._monitor = list(monitor)
        self.batch_cycles = batch_cycles

    def run(
        self,
        vectors: Iterable[InputVector],
        warmup: InputVector | None = None,
        initial_values: Sequence[int] | None = None,
        initial_ff_state: Mapping[int, int] | None = None,
    ) -> RunStats:
        cc = self._cc
        n_nets = cc.n_nets
        inputs = cc.inputs
        input_set = cc.input_set
        if initial_values is not None:
            values = list(initial_values)
        else:
            values = [0] * n_nets
        state: Dict[int, int] = dict.fromkeys(cc.ff_cells, 0)
        if initial_ff_state:
            state.update(initial_ff_state)
        cur_inputs = [values[net] for net in inputs]

        it = iter(vectors)
        if initial_values is None:
            if warmup is None:
                try:
                    warmup = next(it)
                except StopIteration:
                    return RunStats(
                        final_values=values, final_ff_state=state
                    )
            full = _resolve_vector(warmup, inputs, input_set, cur_inputs)
            values, _ = cc.evaluate_flat(full, state)
        elif warmup is not None:
            full = _resolve_vector(warmup, inputs, input_set, cur_inputs)
            values, _ = cc.evaluate_flat(full, state)

        stats = RunStats()
        per_node = stats.per_node
        ff_cells = cc.ff_cells
        monitor = self._monitor
        B = self.batch_cycles

        rec = obs.active()
        n_cells = len(cc.cell_kinds)
        batch: List[List[int]] = []
        exhausted = False
        while not exhausted:
            batch.clear()
            for vec in it:
                batch.append(
                    _resolve_vector(vec, inputs, input_set, cur_inputs)
                )
                if len(batch) == B:
                    break
            else:
                exhausted = True
            if not batch:
                break
            bt0 = rec.now() if rec is not None else 0
            nbits = len(batch)
            mask = (1 << nbits) - 1
            top = nbits - 1

            net_bits = [0] * n_nets
            for pos, net in enumerate(inputs):
                stream = 0
                for k in range(nbits):
                    stream |= batch[k][pos] << k
                net_bits[net] = stream

            # Zero-delay settle via the shared fused-kernel helper; the
            # flipflop recurrence q[k] = d[k-1] is fixpoint-resolved.
            q_bits = settle_lanes(
                cc, net_bits, mask, values, self._comb_pass
            )
            for i, ci in enumerate(ff_cells):
                state[ci] = (q_bits[i] >> top) & 1

            for net in monitor:
                s = net_bits[net]
                prev = ((s << 1) | (values[net] & 1)) & mask
                diff = s ^ prev
                if diff:
                    act = per_node.get(net)
                    if act is None:
                        act = per_node[net] = NodeActivity()
                    tog = diff.bit_count()
                    act.toggles += tog
                    act.rises += (s & diff).bit_count()
                    act.useful += tog
                    act.cycles_active += tog
            for net in range(n_nets):
                values[net] = (net_bits[net] >> top) & 1
            stats.cycles += nbits
            if rec is not None:
                dur = rec.complete(
                    "sim.batch", bt0, backend=self.name, cycles=nbits
                )
                rec.metrics.hist("sim.batch_s", dur / 1e9)
                rec.metrics.inc("sim.vectors", nbits)
                rec.metrics.inc("sim.cell_evals", nbits * n_cells)

        stats.final_values = values
        stats.final_ff_state = state
        return stats


class BackendUnavailableError(ValueError):
    """A registered backend cannot run in this environment.

    Raised when a backend's optional dependency is missing — e.g. the
    vector backend without the ``[perf]`` extra's numpy.  Subclasses
    :class:`ValueError` so existing "bad backend name" handling keeps
    working.
    """


class BackendDegradedWarning(RuntimeWarning):
    """A run fell back from one backend tier to a slower one mid-run.

    Emitted by the session API's failover policy when the selected
    engine dies with ``MemoryError`` / an import failure /
    :class:`BackendUnavailableError` and the run is re-dispatched on
    the next tier of the fallback chain.  The result is still
    bit-identical (all tiers in a chain share a result class); only
    throughput degrades.  Structured so monitoring can aggregate:
    :attr:`from_backend`, :attr:`to_backend`, :attr:`reason`.
    """

    def __init__(self, from_backend: str, to_backend: str, reason: str):
        self.from_backend = from_backend
        self.to_backend = to_backend
        self.reason = reason
        super().__init__(
            f"backend {from_backend!r} failed ({reason}); "
            f"degrading to {to_backend!r} (results stay bit-identical, "
            "throughput does not)"
        )


from repro.sim.waveform import WaveformBackend  # noqa: E402  (needs RunStats at run time)
from repro.sim.codegen_backend import CodegenBackend  # noqa: E402
from repro.sim.vector import (  # noqa: E402
    VectorBackend,
    numpy_available,
    numpy_unavailable_reason,
)

#: Registered backends, by canonical name (aliases resolved in
#: :func:`get_backend`).  Registration is unconditional — use
#: :func:`backend_unavailable_reason` / :func:`available_backends` to
#: learn whether one can actually run here.
BACKENDS = {
    EventDrivenBackend.name: EventDrivenBackend,
    WaveformBackend.name: WaveformBackend,
    BitParallelBackend.name: BitParallelBackend,
    CodegenBackend.name: CodegenBackend,
    VectorBackend.name: VectorBackend,
}

_ALIASES = {
    "event": "event",
    "event-driven": "event",
    "waveform": "waveform",
    "wave": "waveform",
    "bitparallel": "bitparallel",
    "bit-parallel": "bitparallel",
    "batch": "bitparallel",
    "codegen": "codegen",
    "vector": "vector",
    "numpy": "vector",
    "np": "vector",
}

#: Pseudo-backend name resolved per run by :func:`select_backend`.
AUTO_BACKEND = "auto"

#: Runtime degradation order for glitch-exact sessions: every tier is
#: bit-identical to the event-driven reference, each successive tier
#: trades throughput for fewer runtime dependencies / less memory
#: (the event engine streams one cycle at a time and allocates almost
#: nothing).
FALLBACK_CHAIN = ("vector", "codegen", "waveform", "event")
#: Degradation order for settled (zero-delay) sessions.
ZERO_DELAY_FALLBACK_CHAIN = ("vector", "codegen", "bitparallel")


def fallback_candidates(
    current: str, zero_delay: bool = False
) -> List[str]:
    """Backends to try, in order, after *current* fails at runtime.

    Only tiers *behind* the failing one in the chain are candidates
    (they need strictly less memory / fewer dependencies), and only
    those available in this environment.  An empty list means the
    failure is terminal.
    """
    chain = ZERO_DELAY_FALLBACK_CHAIN if zero_delay else FALLBACK_CHAIN
    if current not in chain:
        return []
    return [
        name
        for name in chain[chain.index(current) + 1:]
        if backend_unavailable_reason(name) is None
    ]


def backend_unavailable_reason(name: str) -> str | None:
    """Why backend *name* can't run here, or ``None`` when it can.

    Resolves aliases; raises :class:`ValueError` for unknown names
    (like :func:`canonical_backend`).
    """
    canonical = canonical_backend(name)
    if canonical == VectorBackend.name:
        reason = numpy_unavailable_reason()
        if reason is not None:
            return f"the 'vector' backend is unavailable: {reason}"
    return None


def available_backends() -> List[str]:
    """Canonical names of the backends that can run here, sorted."""
    return sorted(
        name
        for name in BACKENDS
        if backend_unavailable_reason(name) is None
    )


def select_backend(
    delay_model: DelayModel | None = None,
    record_events: bool = False,
    want_traces: bool = False,
) -> str:
    """Resolve the ``"auto"`` backend policy to a concrete engine.

    * per-cycle traces or recorded events (VCD dumps) need the
      event-driven engine — nothing else produces them;
    * everything else goes to the vectorized numpy backend when the
      ``[perf]`` extra is installed — it is bit-identical to the
      event-driven engine in both its glitch-exact and zero-delay
      modes and by far the fastest;
    * without numpy the policy falls back to the interpreted engines:
      bit-parallel for an explicit
      :class:`~repro.sim.delays.ZeroDelay` model (no glitch is
      observable anyway), the waveform backend for everything else.
    """
    if record_events or want_traces:
        return EventDrivenBackend.name
    if numpy_available():
        return VectorBackend.name
    if delay_model is not None and isinstance(delay_model, ZeroDelay):
        return BitParallelBackend.name
    return WaveformBackend.name


def canonical_backend(name: str) -> str:
    """Resolve a backend name/alias to its canonical registry key."""
    canonical = _ALIASES.get(name)
    if canonical is None:
        raise ValueError(
            f"unknown simulation backend {name!r}; "
            f"choose from {sorted(set(_ALIASES))}"
        )
    return canonical


def get_backend(
    name: str,
    circuit: Circuit,
    delay_model: DelayModel | None = None,
    monitor: Iterable[int] | None = None,
) -> SimBackend:
    """Construct the backend called *name* for *circuit*.

    Raises :class:`BackendUnavailableError` when the backend exists
    but can't run in this environment (missing optional dependency).
    """
    canonical = canonical_backend(name)
    reason = backend_unavailable_reason(canonical)
    if reason is not None:
        raise BackendUnavailableError(reason)
    return BACKENDS[canonical](circuit, delay_model, monitor)


def zero_delay_backend(
    circuit: Circuit, monitor: Iterable[int] | None = None
) -> SimBackend:
    """The fastest available settled-value engine for *circuit*.

    The vector backend's zero-delay mode when numpy is present, else
    the bit-parallel backend — both produce identical results (the
    settled-equivalence invariant), so callers that only fast-forward
    state or need useful-only counts can take whichever is faster.
    """
    if numpy_available():
        return VectorBackend(circuit, ZeroDelay(), monitor)
    return BitParallelBackend(circuit, None, monitor)
