"""Generated-source simulation backend: the pure-Python codegen tier.

:class:`CodegenBackend` runs the same lane-packed algorithms as the
waveform and bit-parallel backends, but through the *generated flat
kernels* of :mod:`repro.netlist.codegen` — one exec-compiled function
per circuit with one straight-line statement per cell — instead of a
Python loop dispatching per-cell closures.  That removes the
per-cell call, returned tuple and ``zip`` from the hot path, which is
where the interpreted backends spend most of their time.

The backend is **dual-mode**, keyed on the delay model:

* a timed model (default :class:`~repro.sim.delays.UnitDelay`) selects
  the glitch-exact waveform-lane algorithm, bit-identical to the
  event-driven reference (same contract as
  :class:`~repro.sim.waveform.WaveformBackend`, same property suite);
* an explicit :class:`~repro.sim.delays.ZeroDelay` selects settled
  zero-delay batch evaluation, bit-identical to
  :class:`~repro.sim.backends.BitParallelBackend` (it *is* that
  backend, with the generated settle kernel swapped into
  :func:`~repro.netlist.compiled.settle_lanes`).

Unlike the waveform backend there is no per-batch dirty tracking: the
generated kernel evaluates every cell unconditionally, trading wasted
work on quiet batches for zero bookkeeping on busy ones.  Cells whose
inputs carried no event evaluate to their settled constant and their
``changed`` mask is zero, so statistics are unaffected.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.core.transitions import NodeActivity
from repro.netlist.circuit import Circuit
from repro.netlist.codegen import static_event_horizon
from repro.netlist.compiled import (
    CompiledCircuit,
    compile_circuit,
    settle_lanes,
)
from repro.obs import trace as obs
from repro.sim.delays import DelayModel, UnitDelay, ZeroDelay


def _batch_consts(W: int, nb: int) -> Tuple:
    """Lane-geometry constants for a batch of *nb* cycles (axis *W*)."""
    wmask = (1 << W) - 1
    full = (1 << (nb * W)) - 1
    blockstart = 0
    for k in range(nb):
        blockstart |= 1 << (k * W)
    fold = []
    sh = 1
    while sh < W:
        fold.append((sh, blockstart * (wmask >> sh)))
        sh <<= 1
    return wmask, full, blockstart, fold


class CodegenBackend:
    """Flat generated-kernel backend (see module docstring).

    Satisfies the :class:`~repro.sim.backends.SimBackend` protocol.
    ``exact_glitches`` is ``True`` at class level (the backend *can*
    observe glitches); the instance attribute reflects the mode the
    delay model selected.
    """

    name = "codegen"
    exact_glitches = True
    #: Dual-mode marker: an explicit ZeroDelay model selects settled
    #: batch evaluation instead of being rejected.
    dual_mode = True

    def __init__(
        self,
        circuit: Circuit,
        delay_model: DelayModel | None = None,
        monitor: Iterable[int] | None = None,
        batch_cycles: int | None = None,
    ) -> None:
        if batch_cycles is not None and batch_cycles < 1:
            raise ValueError("batch_cycles must be >= 1")
        self.circuit = circuit
        self._zero = None
        if isinstance(delay_model, ZeroDelay):
            # Settled tier: the bit-parallel algorithm with the
            # generated settle kernel swapped in (bit-identical).
            from repro.sim.backends import BitParallelBackend

            self.delay_model = delay_model
            self.exact_glitches = False
            zero = BitParallelBackend(
                circuit, None, monitor, batch_cycles=batch_cycles or 256
            )
            zero._comb_pass = zero._cc.settle_pass
            self._zero = zero
            self.batch_cycles = zero.batch_cycles
            return
        self.delay_model = delay_model or UnitDelay()
        self.batch_cycles = batch_cycles or 32
        cc: CompiledCircuit = compile_circuit(circuit, self.delay_model)
        self._cc = cc
        self._W = static_event_horizon(
            cc, circuit, self.delay_model, "codegen"
        )
        if monitor is None:
            monitored = list(cc.driven)
        else:
            monitored = [False] * cc.n_nets
            for n in monitor:
                monitored[n] = True
        self._monitored = monitored
        is_comb_out = bytearray(cc.n_nets)
        for ci in cc.topo:
            for n in cc.cell_outputs[ci]:
                is_comb_out[n] = 1
        self._stat_nets = [
            n for n in range(cc.n_nets) if is_comb_out[n] and monitored[n]
        ]

    def run(
        self,
        vectors: Iterable[Sequence[int] | Mapping[int, int]],
        warmup: Sequence[int] | Mapping[int, int] | None = None,
        initial_values: Sequence[int] | None = None,
        initial_ff_state: Mapping[int, int] | None = None,
    ) -> "RunStats":
        """Simulate *vectors*; semantics match the event backend."""
        if self._zero is not None:
            return self._zero.run(
                vectors, warmup, initial_values, initial_ff_state
            )
        from repro.sim.backends import RunStats, _resolve_vector

        cc = self._cc
        n_nets = cc.n_nets
        inputs = cc.inputs
        input_set = cc.input_set
        ff_state: Dict[int, int] = dict.fromkeys(cc.ff_cells, 0)
        if initial_ff_state:
            ff_state.update(initial_ff_state)
        if initial_values is not None:
            values = list(initial_values)
        else:
            values = [0] * n_nets
        cur_inputs = [values[net] for net in inputs]

        it = iter(vectors)
        if initial_values is None:
            if warmup is None:
                try:
                    warmup = next(it)
                except StopIteration:
                    return RunStats(
                        final_values=values, final_ff_state=ff_state
                    )
            full_vec = _resolve_vector(warmup, inputs, input_set, cur_inputs)
            values, _ = cc.evaluate_flat(full_vec, ff_state)
        elif warmup is not None:
            full_vec = _resolve_vector(warmup, inputs, input_set, cur_inputs)
            values, _ = cc.evaluate_flat(full_vec, ff_state)

        settle = cc.settle_pass
        wave = cc.waveform_pass
        ff_cells, ff_q = cc.ff_cells, cc.ff_q
        monitored = self._monitored
        stat_nets = self._stat_nets
        W = self._W
        B = self.batch_cycles

        acc_tog = [0] * n_nets
        acc_rise = [0] * n_nets
        acc_useful = [0] * n_nets
        acc_useless = [0] * n_nets
        acc_active = [0] * n_nets

        wbits = [0] * n_nets
        chg = [0] * n_nets
        consts = None
        last_nb = 0
        cycles = 0

        rec = obs.active()
        n_cells = len(cc.cell_kinds)
        batch: List[List[int]] = []
        exhausted = False
        while not exhausted:
            batch.clear()
            for vec in it:
                batch.append(
                    _resolve_vector(vec, inputs, input_set, cur_inputs)
                )
                if len(batch) == B:
                    break
            else:
                exhausted = True
            if not batch:
                break
            bt0 = rec.now() if rec is not None else 0
            nb = len(batch)
            if nb != last_nb:
                consts = _batch_consts(W, nb)
                last_nb = nb
            wmask, full, blockstart, fold = consts
            cy_mask = (1 << nb) - 1
            top = nb - 1

            # --- settled pre-pass (generated kernel) ------------------
            slanes = [0] * n_nets
            for pos, net in enumerate(inputs):
                stream = 0
                for k in range(nb):
                    stream |= batch[k][pos] << k
                slanes[net] = stream
            q_lanes = settle_lanes(cc, slanes, cy_mask, values, settle)

            # --- pre-fill every waveform with its pre-batch constant --
            for net in range(n_nets):
                wbits[net] = full if values[net] else 0

            # --- seed clock-edge waveforms (inputs + flipflop q) ------
            def seed_edge(net, s):
                ch = (s ^ ((s << 1) | values[net])) & cy_mask
                if not ch:
                    return
                sp = 0
                x = s
                while x:
                    low = x & -x
                    sp |= 1 << ((low.bit_length() - 1) * W)
                    x ^= low
                wbits[net] = sp * wmask
                if monitored[net]:
                    tog = ch.bit_count()
                    acc_tog[net] += tog
                    acc_rise[net] += (ch & s).bit_count()
                    acc_useful[net] += tog
                    acc_active[net] += tog

            for net in inputs:
                seed_edge(net, slanes[net])
            for i, ci in enumerate(ff_cells):
                seed_edge(ff_q[i], q_lanes[i])

            # --- one generated flat pass over the whole circuit -------
            wave(wbits, chg, values, full)

            for net in stat_nets:
                changed = chg[net]
                if not changed:
                    continue
                tog = changed.bit_count()
                acc_tog[net] += tog
                acc_rise[net] += (changed & wbits[net]).bit_count()
                s = slanes[net]
                sch = (s ^ ((s << 1) | values[net])) & cy_mask
                u = sch.bit_count()
                acc_useful[net] += u
                acc_useless[net] += tog - u
                m = changed
                for sh, msk in fold:
                    m |= (m >> sh) & msk
                acc_active[net] += (m & blockstart).bit_count()

            # --- commit the batch boundary ----------------------------
            for net in range(n_nets):
                values[net] = (slanes[net] >> top) & 1
            for i, ci in enumerate(ff_cells):
                ff_state[ci] = (q_lanes[i] >> top) & 1
            cycles += nb
            if rec is not None:
                dur = rec.complete(
                    "sim.batch", bt0, backend="codegen", cycles=nb
                )
                rec.metrics.hist("sim.batch_s", dur / 1e9)
                rec.metrics.inc("sim.vectors", nb)
                rec.metrics.inc("sim.cell_evals", nb * n_cells)

        stats = RunStats()
        per_node = stats.per_node
        for net, tog in enumerate(acc_tog):
            if tog:
                per_node[net] = NodeActivity(
                    tog, acc_rise[net], acc_useful[net], acc_useless[net],
                    acc_active[net],
                )
        stats.cycles = cycles
        stats.final_values = values
        stats.final_ff_state = ff_state
        return stats
