"""Delay models mapping (cell, output position) -> integer delta-time delay.

The paper's experiments use three delay regimes, all expressible here:

* **unit delay per full-adder stage** (Section 3, Table 1):
  :class:`UnitDelay` — every cell output switches one delta after its
  latest input change;
* **dsum = 2·dcarry** (Table 2): :class:`SumCarryDelay` — the sum
  output of FA/HA cells is slower than the carry output, reflecting the
  real two-XOR sum path vs. the AND-OR carry path;
* arbitrary per-kind or per-instance delays (:class:`PerKindDelay`,
  :class:`HintedDelay`) for ablations.

Delays must be >= 1 for combinational cells: a zero intra-cycle delay
would merge cause and effect into one delta slot and hide glitches.
:class:`ZeroDelay` is provided only for functional (non-activity)
simulation and is rejected by the activity analyser.
"""

from __future__ import annotations

from typing import Mapping

from repro.netlist.cells import Cell, CellKind


class DelayModel:
    """Base class: integer delay of *cell*'s output at *position*."""

    def delay(self, cell: Cell, position: int) -> int:
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable name used in experiment reports."""
        return type(self).__name__

    def cache_token(self) -> tuple:
        """Hashable key identifying this model's delay function.

        Used by :func:`repro.netlist.compiled.compile_circuit` to
        memoize compiled circuits per delay model.  The default —
        ``(class, describe())`` — is correct for every model whose
        delays are fully determined by its description; models with
        hidden per-instance state must override (see
        :class:`LoadDelay`).
        """
        return (type(self).__qualname__, self.describe())


class UnitDelay(DelayModel):
    """Every combinational cell output has delay 1 (the paper's default)."""

    def delay(self, cell: Cell, position: int) -> int:
        return 1

    def describe(self) -> str:
        return "unit delay"


class ZeroDelay(DelayModel):
    """All outputs switch in the same delta (functional simulation only)."""

    def delay(self, cell: Cell, position: int) -> int:
        return 0

    def describe(self) -> str:
        return "zero delay"


class PerKindDelay(DelayModel):
    """Delays looked up per cell kind, with a default.

    ``PerKindDelay({CellKind.XOR: 2}, default=1)`` models XOR gates
    twice as slow as everything else.  For two-output kinds the same
    delay applies to both outputs; use :class:`SumCarryDelay` to split
    them.
    """

    def __init__(self, table: Mapping[CellKind, int], default: int = 1):
        for kind, d in table.items():
            if d < 0:
                raise ValueError(f"negative delay for {kind}")
        self._table = dict(table)
        self._default = default

    def delay(self, cell: Cell, position: int) -> int:
        return self._table.get(cell.kind, self._default)

    def describe(self) -> str:
        parts = ", ".join(
            f"{k.value}={d}" for k, d in sorted(self._table.items(), key=lambda kv: kv[0].value)
        )
        return f"per-kind delay ({parts}; default {self._default})"


class SumCarryDelay(DelayModel):
    """FA/HA cells with distinct sum and carry delays; others fixed.

    ``SumCarryDelay(dsum=2, dcarry=1)`` reproduces the paper's Table 2
    refinement: "the delay of the sum calculation in a full adder is
    about twice as large as the delay of the carry calculation".
    """

    def __init__(self, dsum: int = 2, dcarry: int = 1, other: int = 1):
        if min(dsum, dcarry, other) < 1:
            raise ValueError("combinational delays must be >= 1")
        self.dsum = dsum
        self.dcarry = dcarry
        self.other = other

    def delay(self, cell: Cell, position: int) -> int:
        if cell.kind in (CellKind.FA, CellKind.HA):
            return self.dsum if position == 0 else self.dcarry
        return self.other

    def describe(self) -> str:
        return f"dsum={self.dsum}, dcarry={self.dcarry} (others {self.other})"


class LoadDelay(DelayModel):
    """Fanout-dependent delay: heavily loaded outputs switch later.

    ``delay = base + extra_per_load * (fanout - 1)`` (integer units),
    clamped to at least 1.  This first-order RC picture adds the
    load-induced skew real layouts have on top of logic depth — an
    ablation between the paper's pure unit-delay model and extracted
    timing.  Bound to one circuit at construction because fanout is a
    netlist property.
    """

    def __init__(self, circuit, base: int = 1, extra_per_load: int = 1,
                 loads_per_unit: int = 3):
        if base < 1:
            raise ValueError("base delay must be >= 1")
        if loads_per_unit < 1:
            raise ValueError("loads_per_unit must be >= 1")
        self._base = base
        self._extra = extra_per_load
        self._per = loads_per_unit
        self._fanout = {
            net.index: len(net.fanout) for net in circuit.nets
        }
        self._circuit_name = circuit.name

    def delay(self, cell: Cell, position: int) -> int:
        fanout = self._fanout.get(cell.outputs[position], 1)
        extra = self._extra * (max(fanout, 1) - 1) // self._per
        return max(1, self._base + extra)

    def describe(self) -> str:
        return (
            f"load-dependent delay on {self._circuit_name!r} "
            f"(base {self._base}, +{self._extra}/{self._per} loads)"
        )

    def cache_token(self) -> tuple:
        # Delays depend on the bound circuit's fanout map, which the
        # description does not fully capture — key on instance identity.
        return (type(self).__qualname__, self.describe(), id(self))


class HintedDelay(DelayModel):
    """Honour per-instance ``delay_hint`` tuples, falling back to *fallback*.

    Used by the path-balancing pass, which re-times individual buffer
    cells by giving them explicit delays.
    """

    def __init__(self, fallback: DelayModel | None = None):
        self._fallback = fallback or UnitDelay()

    def delay(self, cell: Cell, position: int) -> int:
        if cell.delay_hint is not None and position < len(cell.delay_hint):
            return cell.delay_hint[position]
        return self._fallback.delay(cell, position)

    def describe(self) -> str:
        return f"instance hints over {self._fallback.describe()}"
