"""The event-driven transport-delay simulation engine.

This module is the low-level core behind the *event-driven* entry in
the pluggable backend suite (:mod:`repro.sim.backends`): it owns the
intra-cycle delta-time semantics, while backends adapt it (and its
zero-delay bit-parallel sibling) to the common :class:`SimBackend`
protocol consumed by :class:`repro.core.activity.ActivityRun`.

One :class:`Simulator` instance wraps a circuit plus a delay model and
steps it one clock cycle at a time:

* :meth:`Simulator.settle` initialises all nets functionally (no
  transitions recorded) — the paper's analysis always compares against
  a well-defined *previous* computation, so a warm-up settle precedes
  counting;
* :meth:`Simulator.step` applies a new primary-input vector (and the
  flipflop update) at delta-time 0 and propagates events until the
  network is quiescent, returning a :class:`CycleTrace` with per-net
  toggle and rise counts for that cycle.

Semantics: transport delay with per-(net, time) last-write-wins
coalescing; integer delta time; two-valued logic.  After every step the
settled values provably equal the zero-delay functional evaluation
(checked in the test suite, including property-based tests).

Implementation: all per-cell structure (inputs, outputs, evaluators,
pre-resolved delays, combinational fanout) comes from the memoized
compiled IR (:func:`repro.netlist.compiled.compile_circuit`), so
constructing a simulator is cheap after the first one per
``(circuit, delay model)`` pair.  The event queue is a bounded-delay
calendar (timing wheel) of ``max_delay + 1`` slots instead of a binary
heap: every pending event lies within ``max_delay`` deltas of the
current time, so popping the next time slot is an O(1) circular scan
with no heap reordering and no auxiliary scheduled-time set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.netlist.circuit import Circuit
from repro.netlist.compiled import CompiledCircuit, compile_circuit
from repro.obs import trace as obs
from repro.sim.delays import DelayModel, UnitDelay


@dataclass
class CycleTrace:
    """Per-clock-cycle activity record.

    Attributes
    ----------
    cycle:
        0-based index of the counted cycle.
    toggles:
        ``{net_index: number of value changes within the cycle}`` —
        only nets that changed at least once appear.
    rises:
        ``{net_index: number of 0->1 (power-consuming) changes}``.
    settle_time:
        Largest delta time at which any event was applied (0 when the
        cycle produced no activity).
    events:
        Optional ``[(time, net, value), ...]`` list (populated when the
        simulator was built with ``record_events=True``), consumed by
        the VCD writer.
    """

    cycle: int
    toggles: Dict[int, int] = field(default_factory=dict)
    rises: Dict[int, int] = field(default_factory=dict)
    settle_time: int = 0
    events: List[Tuple[int, int, int]] | None = None

    def total_toggles(self, nets: Iterable[int] | None = None) -> int:
        """Sum of toggle counts, optionally restricted to *nets*."""
        if nets is None:
            return sum(self.toggles.values())
        return sum(self.toggles.get(n, 0) for n in nets)


class Simulator:
    """Event-driven simulator for a single-clock synchronous circuit.

    Parameters
    ----------
    circuit:
        The netlist to simulate.  It is not modified.
    delay_model:
        Maps each combinational cell output to an integer delay
        (default :class:`~repro.sim.delays.UnitDelay`).
    record_events:
        When true, every applied event ``(time, net, value)`` is kept in
        the cycle trace (needed for VCD dumps; costs memory).
    monitor:
        Optional set of net indices to track in cycle traces; defaults
        to every net that is driven by a cell (i.e. all internal nodes,
        as in the paper — primary inputs are excluded because their
        single change per cycle is stimulus, not circuit activity).
    """

    def __init__(
        self,
        circuit: Circuit,
        delay_model: DelayModel | None = None,
        record_events: bool = False,
        monitor: Iterable[int] | None = None,
    ) -> None:
        self.circuit = circuit
        self.delay_model = delay_model or UnitDelay()
        self.record_events = record_events

        cc: CompiledCircuit = compile_circuit(circuit, self.delay_model)
        self._cc = cc
        n_nets = cc.n_nets
        self.values: List[int] = [0] * n_nets
        self.ff_state: Dict[int, int] = {ci: 0 for ci in cc.ff_cells}
        self._cycle = 0

        if monitor is None:
            monitored = list(cc.driven)
        else:
            monitored = [False] * n_nets
            for n in monitor:
                monitored[n] = True
        self._monitored = monitored

        # Timing wheel size: pending events at time t live in slot
        # t % size.  Delays are bounded by max_delay, so max_delay + 1
        # slots always hold every outstanding time without collision.
        # The wheel itself is allocated per step so an exception
        # escaping mid-step cannot leave stale events behind.
        self._wheel_size = cc.max_delay + 1

    # ------------------------------------------------------------------
    @property
    def cycle(self) -> int:
        """Number of counted cycles stepped so far."""
        return self._cycle

    def _normalise_inputs(
        self, inputs: Sequence[int] | Mapping[int, int]
    ) -> Dict[int, int]:
        """Turn a positional or per-net input spec into {net: bit}.

        Mapping keys must name primary-input nets: anything else would
        silently inject events onto internally driven nets at t=0.
        """
        if isinstance(inputs, Mapping):
            input_set = self._cc.input_set
            vec = {}
            for n, v in inputs.items():
                if n not in input_set:
                    raise ValueError(
                        f"net {n} is not a primary input of "
                        f"{self.circuit.name!r}; mapping vectors may only "
                        "drive primary inputs"
                    )
                vec[n] = int(bool(v))
            return vec
        if len(inputs) != len(self.circuit.inputs):
            raise ValueError(
                f"expected {len(self.circuit.inputs)} input bits, "
                f"got {len(inputs)}"
            )
        return {
            n: int(bool(v)) for n, v in zip(self.circuit.inputs, inputs)
        }

    # ------------------------------------------------------------------
    def settle(self, inputs: Sequence[int] | Mapping[int, int]) -> None:
        """Functionally initialise the network on *inputs*.

        No transitions are recorded and the flipflop state is left
        untouched — this provides the "previous computation" baseline
        that per-cycle parity classification is defined against.
        """
        vec = self._normalise_inputs(inputs)
        values = self.values
        full = [vec.get(net, values[net]) for net in self._cc.inputs]
        flat, _ = self._cc.evaluate_flat(full, self.ff_state)
        self.values = flat

    def step(self, inputs: Sequence[int] | Mapping[int, int]) -> CycleTrace:
        """Advance one clock cycle and return its activity trace.

        At delta-time 0 the primary inputs take their new values and
        every flipflop output takes the value its D pin had at the end
        of the previous cycle (edge-triggered update).  Events then
        propagate until the network is quiescent.
        """
        vec = self._normalise_inputs(inputs)
        trace = CycleTrace(cycle=self._cycle)
        if self.record_events:
            trace.events = []

        cc = self._cc
        values = self.values
        ff_state = self.ff_state

        # Clock edge: capture D pins *before* anything changes.
        at0: Dict[int, int] = dict(vec)
        ff_q = cc.ff_q
        for i, ci in enumerate(cc.ff_cells):
            q = values[cc.ff_d[i]]
            ff_state[ci] = q
            at0[ff_q[i]] = q

        size = self._wheel_size
        wheel: List[Dict[int, int] | None] = [None] * size
        wheel[0] = at0
        n_slots = 1
        comb_fanout = cc.comb_fanout
        fused = cc.cell_eval_fused
        out_specs = cc.out_specs
        monitored = self._monitored
        toggles = trace.toggles
        rises = trace.rises
        events = trace.events
        t = 0
        last_time = 0

        while n_slots:
            idx = t % size
            changes = wheel[idx]
            if changes is None:
                t += 1
                continue
            wheel[idx] = None
            n_slots -= 1
            affected: Dict[int, None] = {}
            any_change = False
            for net, v in changes.items():
                if values[net] == v:
                    continue
                values[net] = v
                any_change = True
                if monitored[net]:
                    toggles[net] = toggles.get(net, 0) + 1
                    if v:
                        rises[net] = rises.get(net, 0) + 1
                if events is not None:
                    events.append((t, net, v))
                for ci in comb_fanout[net]:
                    affected[ci] = None
            if any_change:
                last_time = t
            for ci in affected:
                outs = fused[ci](values)
                for (out_net, d), v in zip(out_specs[ci], outs):
                    widx = (t + d) % size
                    slot = wheel[widx]
                    if slot is None:
                        slot = wheel[widx] = {}
                        n_slots += 1
                    slot[out_net] = v

        trace.settle_time = last_time
        self._cycle += 1
        return trace

    def run(
        self,
        vectors: Iterable[Sequence[int] | Mapping[int, int]],
        warmup: Sequence[int] | Mapping[int, int] | None = None,
    ) -> List[CycleTrace]:
        """Settle on *warmup* (or the first vector) and step the rest.

        Returns one trace per counted vector.  When *warmup* is ``None``
        the first vector of *vectors* is consumed as warm-up and not
        counted — mirroring the paper's setup where every counted cycle
        has a well-defined previous computation.
        """
        it = iter(vectors)
        if warmup is None:
            try:
                warmup = next(it)
            except StopIteration:
                return []
        with obs.span("sim.engine", circuit=self.circuit.name):
            self.settle(warmup)
            return [self.step(v) for v in it]

    # ------------------------------------------------------------------
    def output_values(self) -> Dict[str, int]:
        """Current settled values of the primary outputs, by net name."""
        return {
            self.circuit.net_name(n): self.values[n]
            for n in self.circuit.outputs
        }

    def word_value(self, word: Sequence[int]) -> int:
        """Assemble the current value of a word of nets (LSB first)."""
        out = 0
        for i, net in enumerate(word):
            out |= (self.values[net] & 1) << i
        return out
