"""The event-driven simulator core.

One :class:`Simulator` instance wraps a circuit plus a delay model and
steps it one clock cycle at a time:

* :meth:`Simulator.settle` initialises all nets functionally (no
  transitions recorded) — the paper's analysis always compares against
  a well-defined *previous* computation, so a warm-up settle precedes
  counting;
* :meth:`Simulator.step` applies a new primary-input vector (and the
  flipflop update) at delta-time 0 and propagates events until the
  network is quiescent, returning a :class:`CycleTrace` with per-net
  toggle and rise counts for that cycle.

Semantics: transport delay with per-(net, time) last-write-wins
coalescing; integer delta time; two-valued logic.  After every step the
settled values provably equal the zero-delay functional evaluation
(checked in the test suite, including property-based tests).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.netlist.cells import CellKind, _EVALUATORS
from repro.netlist.circuit import Circuit
from repro.sim.delays import DelayModel, UnitDelay


@dataclass
class CycleTrace:
    """Per-clock-cycle activity record.

    Attributes
    ----------
    cycle:
        0-based index of the counted cycle.
    toggles:
        ``{net_index: number of value changes within the cycle}`` —
        only nets that changed at least once appear.
    rises:
        ``{net_index: number of 0->1 (power-consuming) changes}``.
    settle_time:
        Largest delta time at which any event was applied (0 when the
        cycle produced no activity).
    events:
        Optional ``[(time, net, value), ...]`` list (populated when the
        simulator was built with ``record_events=True``), consumed by
        the VCD writer.
    """

    cycle: int
    toggles: Dict[int, int] = field(default_factory=dict)
    rises: Dict[int, int] = field(default_factory=dict)
    settle_time: int = 0
    events: List[Tuple[int, int, int]] | None = None

    def total_toggles(self, nets: Iterable[int] | None = None) -> int:
        """Sum of toggle counts, optionally restricted to *nets*."""
        if nets is None:
            return sum(self.toggles.values())
        return sum(self.toggles.get(n, 0) for n in nets)


class Simulator:
    """Event-driven simulator for a single-clock synchronous circuit.

    Parameters
    ----------
    circuit:
        The netlist to simulate.  It is not modified.
    delay_model:
        Maps each combinational cell output to an integer delay
        (default :class:`~repro.sim.delays.UnitDelay`).
    record_events:
        When true, every applied event ``(time, net, value)`` is kept in
        the cycle trace (needed for VCD dumps; costs memory).
    monitor:
        Optional set of net indices to track in cycle traces; defaults
        to every net that is driven by a cell (i.e. all internal nodes,
        as in the paper — primary inputs are excluded because their
        single change per cycle is stimulus, not circuit activity).
    """

    def __init__(
        self,
        circuit: Circuit,
        delay_model: DelayModel | None = None,
        record_events: bool = False,
        monitor: Iterable[int] | None = None,
    ) -> None:
        self.circuit = circuit
        self.delay_model = delay_model or UnitDelay()
        self.record_events = record_events

        n_nets = len(circuit.nets)
        self.values: List[int] = [0] * n_nets
        self.ff_state: Dict[int, int] = {
            c.index: 0 for c in circuit.cells if c.is_sequential
        }
        self._cycle = 0

        if monitor is None:
            monitored = [net.driver is not None for net in circuit.nets]
        else:
            monitored = [False] * n_nets
            for n in monitor:
                monitored[n] = True
        self._monitored = monitored

        # Pre-resolve everything the hot loop needs into flat lists.
        self._fanout: List[Tuple[int, ...]] = [
            tuple(net.fanout) for net in circuit.nets
        ]
        self._cell_inputs: List[Tuple[int, ...]] = []
        self._cell_outputs: List[Tuple[int, ...]] = []
        self._cell_eval = []
        self._cell_delays: List[Tuple[int, ...]] = []
        self._cell_is_seq: List[bool] = []
        for cell in circuit.cells:
            self._cell_inputs.append(cell.inputs)
            self._cell_outputs.append(cell.outputs)
            self._cell_eval.append(_EVALUATORS[cell.kind])
            self._cell_is_seq.append(cell.is_sequential)
            if cell.is_sequential:
                self._cell_delays.append((0,))
            else:
                self._cell_delays.append(
                    tuple(
                        self.delay_model.delay(cell, pos)
                        for pos in range(len(cell.outputs))
                    )
                )
        self._ff_cells = [c.index for c in circuit.cells if c.is_sequential]
        self._ff_d_net = {i: circuit.cells[i].inputs[0] for i in self._ff_cells}
        self._ff_q_net = {i: circuit.cells[i].outputs[0] for i in self._ff_cells}

    # ------------------------------------------------------------------
    @property
    def cycle(self) -> int:
        """Number of counted cycles stepped so far."""
        return self._cycle

    def _normalise_inputs(
        self, inputs: Sequence[int] | Mapping[int, int]
    ) -> Dict[int, int]:
        """Turn a positional or per-net input spec into {net: bit}."""
        if isinstance(inputs, Mapping):
            return {n: int(bool(v)) for n, v in inputs.items()}
        if len(inputs) != len(self.circuit.inputs):
            raise ValueError(
                f"expected {len(self.circuit.inputs)} input bits, "
                f"got {len(inputs)}"
            )
        return {
            n: int(bool(v)) for n, v in zip(self.circuit.inputs, inputs)
        }

    # ------------------------------------------------------------------
    def settle(self, inputs: Sequence[int] | Mapping[int, int]) -> None:
        """Functionally initialise the network on *inputs*.

        No transitions are recorded and the flipflop state is left
        untouched — this provides the "previous computation" baseline
        that per-cycle parity classification is defined against.
        """
        vec = self._normalise_inputs(inputs)
        full = [0] * len(self.circuit.inputs)
        for i, net in enumerate(self.circuit.inputs):
            full[i] = vec.get(net, self.values[net])
        values, _ = self.circuit.evaluate(full, state=self.ff_state)
        for net, v in values.items():
            self.values[net] = v

    def step(self, inputs: Sequence[int] | Mapping[int, int]) -> CycleTrace:
        """Advance one clock cycle and return its activity trace.

        At delta-time 0 the primary inputs take their new values and
        every flipflop output takes the value its D pin had at the end
        of the previous cycle (edge-triggered update).  Events then
        propagate until the network is quiescent.
        """
        vec = self._normalise_inputs(inputs)
        trace = CycleTrace(cycle=self._cycle)
        if self.record_events:
            trace.events = []

        # Clock edge: capture D pins *before* anything changes.
        new_q = {i: self.values[self._ff_d_net[i]] for i in self._ff_cells}

        pending: Dict[int, Dict[int, int]] = {0: {}}
        at0 = pending[0]
        for net, v in vec.items():
            at0[net] = v
        for i, q in new_q.items():
            self.ff_state[i] = q
            at0[self._ff_q_net[i]] = q

        heap: List[int] = [0]
        scheduled_times = {0}
        values = self.values
        fanout = self._fanout
        monitored = self._monitored
        toggles = trace.toggles
        rises = trace.rises
        cell_is_seq = self._cell_is_seq
        cell_inputs = self._cell_inputs
        cell_outputs = self._cell_outputs
        cell_eval = self._cell_eval
        cell_delays = self._cell_delays
        events = trace.events
        last_time = 0

        while heap:
            t = heapq.heappop(heap)
            scheduled_times.discard(t)
            changes = pending.pop(t)
            affected: Dict[int, None] = {}
            any_change = False
            for net, v in changes.items():
                if values[net] == v:
                    continue
                values[net] = v
                any_change = True
                if monitored[net]:
                    toggles[net] = toggles.get(net, 0) + 1
                    if v:
                        rises[net] = rises.get(net, 0) + 1
                if events is not None:
                    events.append((t, net, v))
                for ci in fanout[net]:
                    affected[ci] = None
            if any_change:
                last_time = t
            for ci in affected:
                if cell_is_seq[ci]:
                    continue
                ins = [values[n] for n in cell_inputs[ci]]
                outs = cell_eval[ci](ins)
                delays = cell_delays[ci]
                for pos, out_net in enumerate(cell_outputs[ci]):
                    when = t + delays[pos]
                    slot = pending.get(when)
                    if slot is None:
                        slot = pending[when] = {}
                        if when not in scheduled_times:
                            scheduled_times.add(when)
                            heapq.heappush(heap, when)
                    slot[out_net] = outs[pos]

        trace.settle_time = last_time
        self._cycle += 1
        return trace

    def run(
        self,
        vectors: Iterable[Sequence[int] | Mapping[int, int]],
        warmup: Sequence[int] | Mapping[int, int] | None = None,
    ) -> List[CycleTrace]:
        """Settle on *warmup* (or the first vector) and step the rest.

        Returns one trace per counted vector.  When *warmup* is ``None``
        the first vector of *vectors* is consumed as warm-up and not
        counted — mirroring the paper's setup where every counted cycle
        has a well-defined previous computation.
        """
        it = iter(vectors)
        if warmup is None:
            try:
                warmup = next(it)
            except StopIteration:
                return []
        self.settle(warmup)
        return [self.step(v) for v in it]

    # ------------------------------------------------------------------
    def output_values(self) -> Dict[str, int]:
        """Current settled values of the primary outputs, by net name."""
        return {
            self.circuit.net_name(n): self.values[n]
            for n in self.circuit.outputs
        }

    def word_value(self, word: Sequence[int]) -> int:
        """Assemble the current value of a word of nets (LSB first)."""
        out = 0
        for i, net in enumerate(word):
            out |= (self.values[net] & 1) << i
        return out
