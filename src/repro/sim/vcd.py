"""Value Change Dump (VCD) export of recorded simulation traces.

Glitch hunting is a waveform activity; dumping cycles to VCD lets any
standard viewer (GTKWave etc.) display exactly which delta-time events
the classifier called useless.  The writer consumes the per-cycle
``events`` lists produced by a :class:`~repro.sim.engine.Simulator`
constructed with ``record_events=True``.
"""

from __future__ import annotations

import io
from typing import Iterable, List, TextIO

from repro.netlist.circuit import Circuit
from repro.sim.engine import CycleTrace

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Short printable VCD identifier for net *index*."""
    if index < 0:
        raise ValueError("negative net index")
    digits = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        digits.append(_ID_CHARS[rem])
    return "".join(reversed(digits))


class VcdWriter:
    """Streams cycle traces into a VCD file.

    Cycles are laid out back to back on a common timeline: cycle *k*
    starts at ``k * cycle_length`` delta units, where *cycle_length*
    must exceed the longest settle time (a ``ValueError`` flags
    violations rather than silently folding waveforms together).
    """

    def __init__(
        self,
        circuit: Circuit,
        stream: TextIO,
        cycle_length: int = 64,
        nets: Iterable[int] | None = None,
        timescale: str = "1ns",
    ) -> None:
        self.circuit = circuit
        self.stream = stream
        self.cycle_length = cycle_length
        self.nets: List[int] = (
            sorted(nets) if nets is not None else list(range(len(circuit.nets)))
        )
        self._ids = {n: _identifier(n) for n in self.nets}
        self._wrote_header = False
        self._cycles_written = 0
        self._timescale = timescale

    def _header(self) -> None:
        w = self.stream.write
        w("$date reproduction of Leijten et al. DATE'95 $end\n")
        w(f"$timescale {self._timescale} $end\n")
        w(f"$scope module {self.circuit.name} $end\n")
        for n in self.nets:
            name = self.circuit.net_name(n).replace(" ", "_")
            w(f"$var wire 1 {self._ids[n]} {name} $end\n")
        w("$upscope $end\n$enddefinitions $end\n")
        w("$dumpvars\n")
        for n in self.nets:
            w(f"x{self._ids[n]}\n")
        w("$end\n")
        self._wrote_header = True

    def write_cycle(self, trace: CycleTrace) -> None:
        """Append one cycle's events (requires ``record_events=True``)."""
        if trace.events is None:
            raise ValueError(
                f"cycle {trace.cycle} carries no recorded events, so "
                "there is nothing to dump; construct the Simulator with "
                "record_events=True (or request traces via "
                "ActivityRun.step_traces(..., record_events=True))"
            )
        if trace.settle_time >= self.cycle_length:
            raise ValueError(
                f"cycle settles at t={trace.settle_time} but cycle_length "
                f"is only {self.cycle_length}"
            )
        if not self._wrote_header:
            self._header()
        base = self._cycles_written * self.cycle_length
        last_t = None
        monitored = self._ids
        for t, net, value in trace.events:
            if net not in monitored:
                continue
            if t != last_t:
                self.stream.write(f"#{base + t}\n")
                last_t = t
            self.stream.write(f"{value}{monitored[net]}\n")
        self._cycles_written += 1

    def close(self) -> None:
        """Write the final timestamp marking the end of the dump."""
        if self._wrote_header:
            self.stream.write(f"#{self._cycles_written * self.cycle_length}\n")


def dump_vcd(
    circuit: Circuit,
    traces: Iterable[CycleTrace],
    cycle_length: int = 64,
    nets: Iterable[int] | None = None,
) -> str:
    """Render *traces* to a VCD string (convenience wrapper).

    Raises ``ValueError`` up front when the dump would be unusable:
    an empty trace sequence (which would otherwise render as an empty
    string with no header), or traces carrying no recorded events —
    i.e. the simulator was built without ``record_events=True`` —
    instead of failing midway.
    """
    traces = list(traces)
    if not traces:
        raise ValueError(
            "cannot dump VCD: the trace sequence is empty, so there is "
            "no cycle to render; run the simulator over at least one "
            "vector (with record_events=True) before dumping"
        )
    missing = [t.cycle for t in traces if t.events is None]
    if missing:
        raise ValueError(
            f"cannot dump VCD: {len(missing)} of {len(traces)} traces "
            f"(first: cycle {missing[0]}) carry no recorded events; "
            "construct the Simulator with record_events=True (or use "
            "ActivityRun.step_traces(..., record_events=True))"
        )
    buf = io.StringIO()
    writer = VcdWriter(circuit, buf, cycle_length=cycle_length, nets=nets)
    for trace in traces:
        writer.write_cycle(trace)
    writer.close()
    return buf.getvalue()
