"""Vectorized numpy backend: the compiled codegen tier of the ``[perf]`` extra.

:class:`VectorBackend` evaluates whole *levels* of the circuit as
single ndarray operations.  The levelized grouping comes from
:func:`repro.netlist.codegen.level_groups`: cells sharing
``(level, kind, arity, delays)`` are gathered into index arrays once
per compiled circuit, so one batch step executes a few hundred numpy
ops regardless of cell count — which is what makes 100k-cell netlists
routine (ROADMAP open item 1).

Lane packing differs from the int backends: a net's state is a row of
``uint64`` words with one *clock cycle per bit* (``ceil(nb / 64)``
words for an *nb*-cycle batch).  The glitch-exact mode adds a second
axis of ``W`` intra-cycle delta times — ``wave[net, t]`` packs the
value at delta time *t* across all cycles — so transport delay is an
axis-1 slice shift seeded with the previous cycle's settled bits, and
transition extraction is one XOR of adjacent time rows.  The
statistics fall out of ``np.bitwise_count`` reductions and are
**bit-identical** to the event-driven engine (same property suite as
the waveform backend).

The module imports cleanly without numpy; constructing the backend
then raises :class:`~repro.sim.backends.BackendUnavailableError` and
:func:`numpy_available` lets the auto policy fall back to the pure
interpreted engines.  ``np.bitwise_count`` requires numpy >= 2.0,
hence the ``[perf]`` extra's floor.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from repro.core.transitions import NodeActivity
from repro.netlist.cells import CellKind
from repro.netlist.circuit import Circuit
from repro.netlist.codegen import static_event_horizon
from repro.netlist.compiled import CompiledCircuit, compile_circuit
from repro.obs import trace as obs
from repro.sim.delays import DelayModel, UnitDelay, ZeroDelay

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

if np is None:  # pragma: no cover - exercised by the no-numpy CI job
    _NUMPY_ERROR: str | None = (
        "numpy is not installed (pip install 'repro-leijten-date95[perf]')"
    )
elif not hasattr(np, "bitwise_count"):
    _NUMPY_ERROR = (
        f"numpy {np.__version__} lacks bitwise_count "
        "(the [perf] extra needs numpy >= 2.0)"
    )
else:
    _NUMPY_ERROR = None

if np is not None:
    _U1 = np.uint64(1)
    _U63 = np.uint64(63)
_WORD = 0xFFFFFFFFFFFFFFFF


def numpy_available() -> bool:
    """Whether the vector backend can run in this environment."""
    return _NUMPY_ERROR is None


def numpy_unavailable_reason() -> str | None:
    """Why the vector backend can't run here, or ``None`` if it can."""
    return _NUMPY_ERROR


def _shl1(a, Mw):
    """Shift each cycle-packed row left by one cycle, within *Mw*."""
    out = a << _U1
    if a.shape[-1] > 1:
        out[..., 1:] |= a[..., :-1] >> _U63
    return out & Mw


def _apply_group(kind, ins, Mw):
    """Vectorized kind op over gathered input arrays (lane semantics
    identical to the fused bitmask kernels)."""
    if kind in (CellKind.BUF, CellKind.DFF):
        return (ins[0],)
    if kind is CellKind.NOT:
        return (Mw ^ ins[0],)
    if kind is CellKind.MUX2:
        s, a, b = ins
        return (a ^ ((a ^ b) & s),)
    if kind is CellKind.HA:
        a, b = ins
        return (a ^ b, a & b)
    if kind is CellKind.FA:
        a, b, c = ins
        p = a ^ b
        return (p ^ c, (a & b) | (c & p))
    if kind in (CellKind.AND, CellKind.NAND):
        out = ins[0]
        for a in ins[1:]:
            out = out & a
        return (Mw ^ out,) if kind is CellKind.NAND else (out,)
    if kind in (CellKind.OR, CellKind.NOR):
        out = ins[0]
        for a in ins[1:]:
            out = out | a
        return (Mw ^ out,) if kind is CellKind.NOR else (out,)
    if kind in (CellKind.XOR, CellKind.XNOR):
        out = ins[0]
        for a in ins[1:]:
            out = out ^ a
        return (Mw ^ out,) if kind is CellKind.XNOR else (out,)
    raise NotImplementedError(f"no vector lowering for {kind}")


class _VecGroup:
    __slots__ = ("kind", "pins", "outs")

    def __init__(self, kind, pins, outs):
        self.kind = kind
        self.pins = pins    # per pin: np.intp index array over nets
        self.outs = outs    # per output position: (delay|None, intp array)


class _VecPlan:
    __slots__ = (
        "groups", "edge_idx", "input_idx", "ff_d_idx", "ff_q_idx",
        "n_ff", "buffers",
    )

    def __init__(self, cc: CompiledCircuit):
        #: Last-used (wave, chg) ndarray pair keyed by shape — reused
        #: across runs (and backend instances) so short repeated runs
        #: don't pay a fresh multi-MB allocation + zero-fill each time.
        #: Safe because runs are synchronous and never nested.
        self.buffers: Dict[tuple, tuple] = {}
        self.groups = [
            _VecGroup(
                g.kind,
                [np.asarray(p, dtype=np.intp) for p in g.pins],
                [
                    (dly, np.asarray(nets, dtype=np.intp))
                    for dly, nets in g.outs
                ],
            )
            for g in cc.cell_groups
        ]
        self.edge_idx = np.asarray(
            tuple(cc.inputs) + tuple(cc.ff_q), dtype=np.intp
        )
        self.input_idx = np.asarray(cc.inputs, dtype=np.intp)
        self.ff_d_idx = np.asarray(cc.ff_d, dtype=np.intp)
        self.ff_q_idx = np.asarray(cc.ff_q, dtype=np.intp)
        self.n_ff = len(cc.ff_cells)


def _plan_for(cc: CompiledCircuit) -> _VecPlan:
    # Memoized on the compiled snapshot itself (cached_property style:
    # direct __dict__ writes are permitted on the frozen dataclass), so
    # the plan shares the snapshot's lifetime and invalidation.
    plan = cc.__dict__.get("_vector_plan")
    if plan is None:
        plan = _VecPlan(cc)
        cc.__dict__["_vector_plan"] = plan
    return plan


class VectorBackend:
    """Levelized ndarray backend (see module docstring).

    Satisfies the :class:`~repro.sim.backends.SimBackend` protocol and
    is **dual-mode** like the codegen backend: a timed delay model
    (default :class:`~repro.sim.delays.UnitDelay`) runs the
    glitch-exact waveform-lane algorithm; an explicit
    :class:`~repro.sim.delays.ZeroDelay` runs settled batch evaluation
    bit-identical to the bit-parallel backend.
    """

    name = "vector"
    exact_glitches = True
    dual_mode = True

    def __init__(
        self,
        circuit: Circuit,
        delay_model: DelayModel | None = None,
        monitor: Iterable[int] | None = None,
        batch_cycles: int = 256,
    ) -> None:
        if _NUMPY_ERROR is not None:
            from repro.sim.backends import BackendUnavailableError

            raise BackendUnavailableError(
                f"the 'vector' backend is unavailable: {_NUMPY_ERROR}"
            )
        if batch_cycles < 1:
            raise ValueError("batch_cycles must be >= 1")
        self.circuit = circuit
        self.batch_cycles = batch_cycles
        if isinstance(delay_model, ZeroDelay):
            self.delay_model = delay_model
            self.exact_glitches = False
            cc: CompiledCircuit = compile_circuit(circuit)
            self._W = 0
        else:
            self.delay_model = delay_model or UnitDelay()
            cc = compile_circuit(circuit, self.delay_model)
            self._W = static_event_horizon(
                cc, circuit, self.delay_model, "vector"
            )
        self._cc = cc
        self._plan = _plan_for(cc)
        if monitor is None:
            monitored = np.asarray(cc.driven, dtype=bool)
        else:
            monitored = np.zeros(cc.n_nets, dtype=bool)
            for n in monitor:
                monitored[n] = True
        self._monitored = monitored

    # ------------------------------------------------------------------
    def _zero_pass(self, lanes, Mw):
        """One combinational pass over the level groups (zero-delay)."""
        for g in self._plan.groups:
            kind = g.kind
            if kind is CellKind.CONST0:
                lanes[g.outs[0][1]] = 0
                continue
            if kind is CellKind.CONST1:
                lanes[g.outs[0][1]] = Mw
                continue
            ins = [lanes[idx] for idx in g.pins]
            outs = _apply_group(kind, ins, Mw)
            for (_dly, oidx), arr in zip(g.outs, outs):
                lanes[oidx] = arr

    def _settle(self, sl, Mw, v0bits, nb):
        """Settle *sl* in place; returns converged ff q rows.

        The vectorized twin of
        :func:`repro.netlist.compiled.settle_lanes`: the flipflop
        recurrence ``q[k] = d[k-1]`` is fixpoint-resolved with the
        same iteration bound and the same convergence condition.
        """
        plan = self._plan
        nw = sl.shape[1]
        if plan.n_ff == 0:
            self._zero_pass(sl, Mw)
            return np.zeros((0, nw), np.uint64)
        q_init = v0bits[plan.ff_d_idx]
        q = np.zeros((plan.n_ff, nw), np.uint64)
        q[:, 0] = q_init
        for _ in range(nb + 1):
            sl[plan.ff_q_idx] = q
            self._zero_pass(sl, Mw)
            new_q = _shl1(sl[plan.ff_d_idx], Mw)
            new_q[:, 0] |= q_init
            if np.array_equal(new_q, q):
                return q
            q = new_q
        raise RuntimeError(  # pragma: no cover - mathematically unreachable
            "flipflop fixpoint did not converge"
        )

    # ------------------------------------------------------------------
    def run(
        self,
        vectors: Iterable[Sequence[int] | Mapping[int, int]],
        warmup: Sequence[int] | Mapping[int, int] | None = None,
        initial_values: Sequence[int] | None = None,
        initial_ff_state: Mapping[int, int] | None = None,
    ) -> "RunStats":
        """Simulate *vectors*; semantics match the event backend."""
        from repro.sim.backends import RunStats, _resolve_vector

        cc = self._cc
        n_nets = cc.n_nets
        inputs = cc.inputs
        input_set = cc.input_set
        ff_state: Dict[int, int] = dict.fromkeys(cc.ff_cells, 0)
        if initial_ff_state:
            ff_state.update(initial_ff_state)
        if initial_values is not None:
            values = list(initial_values)
        else:
            values = [0] * n_nets
        cur_inputs = [values[net] for net in inputs]

        it = iter(vectors)
        if initial_values is None:
            if warmup is None:
                try:
                    warmup = next(it)
                except StopIteration:
                    return RunStats(
                        final_values=values, final_ff_state=ff_state
                    )
            full_vec = _resolve_vector(warmup, inputs, input_set, cur_inputs)
            values, _ = cc.evaluate_flat(full_vec, ff_state)
        elif warmup is not None:
            full_vec = _resolve_vector(warmup, inputs, input_set, cur_inputs)
            values, _ = cc.evaluate_flat(full_vec, ff_state)

        v0bits = np.asarray([v & 1 for v in values], dtype=np.uint64)
        if self.exact_glitches:
            return self._run_glitch(
                it, v0bits, ff_state, cur_inputs, inputs, input_set
            )
        return self._run_zero(
            it, v0bits, ff_state, cur_inputs, inputs, input_set
        )

    # ------------------------------------------------------------------
    def _read_batch(self, it, inputs, input_set, cur_inputs, batch):
        """Fill *batch* with up to ``batch_cycles`` resolved vectors."""
        from repro.sim.backends import _resolve_vector

        batch.clear()
        for vec in it:
            batch.append(_resolve_vector(vec, inputs, input_set, cur_inputs))
            if len(batch) == self.batch_cycles:
                return False
        return True

    def _pack_inputs(self, sl, batch, inputs, nb, nw):
        # (nb, n_inputs) bit matrix -> per-input cycle-packed words.
        bits = np.asarray(batch, dtype=np.uint64)
        for j in range(nw):
            seg = bits[64 * j: 64 * j + 64]
            shifts = np.arange(seg.shape[0], dtype=np.uint64)
            sl[self._plan.input_idx, j] = np.bitwise_or.reduce(
                seg << shifts[:, None], axis=0
            )
        return sl

    @staticmethod
    def _word_consts(nb):
        nw = (nb + 63) >> 6
        Mw = np.full(nw, _WORD, dtype=np.uint64)
        r = nb & 63
        if r:
            Mw[-1] = (1 << r) - 1
        return nw, Mw

    def _finalize(self, stats, acc, v0bits, ff_state, cycles):
        acc_tog, acc_rise, acc_useful, acc_useless, acc_active = acc
        per_node = stats.per_node
        nz = np.nonzero((acc_tog != 0) & self._monitored)[0]
        cols = [
            a[nz].tolist()
            for a in (acc_tog, acc_rise, acc_useful, acc_useless,
                      acc_active)
        ]
        for i, net in enumerate(nz.tolist()):
            per_node[net] = NodeActivity(
                cols[0][i], cols[1][i], cols[2][i], cols[3][i],
                cols[4][i],
            )
        stats.cycles = cycles
        stats.final_values = v0bits.astype(np.int64).tolist()
        stats.final_ff_state = ff_state
        return stats

    # ------------------------------------------------------------------
    def _run_zero(
        self, it, v0bits, ff_state, cur_inputs, inputs, input_set
    ):
        """Settled batch evaluation (bit-parallel semantics)."""
        from repro.sim.backends import RunStats

        cc = self._cc
        n_nets = cc.n_nets
        ff_cells = cc.ff_cells
        acc = tuple(np.zeros(n_nets, np.int64) for _ in range(5))
        acc_tog, acc_rise, acc_useful, _acc_useless, acc_active = acc
        cycles = 0
        rec = obs.active()
        n_cells = len(cc.cell_kinds)

        batch: List[List[int]] = []
        exhausted = False
        while not exhausted:
            exhausted = self._read_batch(
                it, inputs, input_set, cur_inputs, batch
            )
            if not batch:
                break
            bt0 = rec.now() if rec is not None else 0
            nb = len(batch)
            nw, Mw = self._word_consts(nb)
            sl = np.zeros((n_nets, nw), np.uint64)
            self._pack_inputs(sl, batch, inputs, nb, nw)
            q_rows = self._settle(sl, Mw, v0bits, nb)

            prev = _shl1(sl, Mw)
            prev[:, 0] |= v0bits
            diff = sl ^ prev
            tog = np.bitwise_count(diff).sum(axis=1, dtype=np.int64)
            acc_tog += tog
            acc_rise += np.bitwise_count(sl & diff).sum(
                axis=1, dtype=np.int64
            )
            acc_useful += tog
            acc_active += tog

            wi, bi = (nb - 1) >> 6, np.uint64((nb - 1) & 63)
            v0bits = (sl[:, wi] >> bi) & _U1
            if ff_cells:
                q_top = (q_rows[:, wi] >> bi) & _U1
                for i, ci in enumerate(ff_cells):
                    ff_state[ci] = int(q_top[i])
            cycles += nb
            if rec is not None:
                dur = rec.complete(
                    "sim.batch", bt0, backend=self.name, cycles=nb
                )
                rec.metrics.hist("sim.batch_s", dur / 1e9)
                rec.metrics.inc("sim.vectors", nb)
                rec.metrics.inc("sim.cell_evals", nb * n_cells)

        return self._finalize(RunStats(), acc, v0bits, ff_state, cycles)

    # ------------------------------------------------------------------
    def _run_glitch(
        self, it, v0bits, ff_state, cur_inputs, inputs, input_set
    ):
        """Glitch-exact waveform-lane evaluation (time-major layout)."""
        from repro.sim.backends import RunStats

        cc = self._cc
        plan = self._plan
        n_nets = cc.n_nets
        ff_cells = cc.ff_cells
        W = self._W
        edge = plan.edge_idx
        acc = tuple(np.zeros(n_nets, np.int64) for _ in range(5))
        acc_tog, acc_rise, acc_useful, acc_useless, acc_active = acc
        cycles = 0
        rec = obs.active()
        n_cells = len(cc.cell_kinds)
        wave = chg = None
        wave_shape = None

        batch: List[List[int]] = []
        exhausted = False
        while not exhausted:
            exhausted = self._read_batch(
                it, inputs, input_set, cur_inputs, batch
            )
            if not batch:
                break
            bt0 = rec.now() if rec is not None else 0
            nb = len(batch)
            nw, Mw = self._word_consts(nb)
            sl = np.zeros((n_nets, nw), np.uint64)
            self._pack_inputs(sl, batch, inputs, nb, nw)
            q_rows = self._settle(sl, Mw, v0bits, nb)

            # Previous-cycle settled bits per lane (cycle 0 <- v0).
            ps = _shl1(sl, Mw)
            ps[:, 0] |= v0bits

            # Waveform array: value at delta time t, cycles bit-packed.
            # The change array mirrors it; rows the group loop never
            # writes (edges, constants, undriven nets) stay zero, so
            # the whole-array reductions below count them as quiet.
            if wave_shape != (n_nets, W, nw):
                wave_shape = (n_nets, W, nw)
                cached = plan.buffers.get(wave_shape)
                if cached is None:
                    wave = np.empty(wave_shape, np.uint64)
                    chg = np.zeros(wave_shape, np.uint64)
                    plan.buffers.clear()  # keep one shape resident
                    plan.buffers[wave_shape] = (wave, chg)
                else:
                    wave, chg = cached
            # Pre-fill every net with its pre-batch constant; uint64
            # wrap-around turns the 0/1 column into a 0/~0 fill mask.
            wave[...] = ((np.uint64(0) - v0bits)[:, None, None]) & Mw
            # Clock-edge nets hold their settled value all cycle long.
            wave[edge] = sl[edge][:, None, :]

            for g in plan.groups:
                kind = g.kind
                if kind in (CellKind.CONST0, CellKind.CONST1):
                    continue  # constant waveforms, no transitions
                ins = [wave[idx] for idx in g.pins]
                raws = _apply_group(kind, ins, Mw)
                for (dly, oidx), raw in zip(g.outs, raws):
                    out = np.empty_like(raw)
                    out[:, :dly, :] = ps[oidx][:, None, :]
                    out[:, dly:, :] = raw[:, : W - dly, :]
                    wave[oidx] = out
                    ch = np.empty_like(out)
                    ch[:, 0, :] = 0
                    ch[:, 1:, :] = out[:, 1:, :] ^ out[:, :-1, :]
                    chg[oidx] = ch

            # Statistics in a handful of whole-array reductions (far
            # cheaper than per-group partial sums): toggles and rises
            # from the change array, active cycles from its
            # delta-time OR, useful counts from the settled parity.
            btog = np.bitwise_count(chg).sum(axis=(1, 2), dtype=np.int64)
            brise = np.bitwise_count(chg & wave).sum(
                axis=(1, 2), dtype=np.int64
            )
            bact = np.bitwise_count(
                np.bitwise_or.reduce(chg, axis=1)
            ).sum(axis=1, dtype=np.int64)

            # Edge transitions happen at the clock edge: toggles equal
            # settled changes, every one useful and rising with sl.
            sch_e = sl[edge] ^ ps[edge]
            te = np.bitwise_count(sch_e).sum(axis=1, dtype=np.int64)
            btog[edge] += te
            brise[edge] += np.bitwise_count(sch_e & sl[edge]).sum(
                axis=1, dtype=np.int64
            )
            bact[edge] += te

            # Parity classification from settled changes: a cycle's
            # toggle count is odd iff the settled value changed, so the
            # useful count is the settled-change popcount (zero for
            # nets whose waveform never moved).
            u = np.bitwise_count(sl ^ ps).sum(axis=1, dtype=np.int64)
            acc_tog += btog
            acc_rise += brise
            acc_useful += u
            acc_useless += btog - u
            acc_active += bact

            wi, bi = (nb - 1) >> 6, np.uint64((nb - 1) & 63)
            v0bits = (sl[:, wi] >> bi) & _U1
            if ff_cells:
                q_top = (q_rows[:, wi] >> bi) & _U1
                for i, ci in enumerate(ff_cells):
                    ff_state[ci] = int(q_top[i])
            cycles += nb
            if rec is not None:
                dur = rec.complete(
                    "sim.batch", bt0, backend=self.name, cycles=nb
                )
                rec.metrics.hist("sim.batch_s", dur / 1e9)
                rec.metrics.inc("sim.vectors", nb)
                rec.metrics.inc("sim.cell_evals", nb * n_cells)

        return self._finalize(RunStats(), acc, v0bits, ff_state, cycles)
