"""Stimulus generation: random, correlated, and structured vector streams.

The paper argues (Section 3.2) that arithmetic units in multiplexed /
source-coded datapaths see essentially *random* inputs, and all its
experiments use uniform random stimuli.  :func:`random_words` provides
that; :func:`correlated_words` provides a lag-one correlated stream for
the ablation that checks how much the random-input assumption matters.

For the service layer (:mod:`repro.service`) streams must be
*declarative*: a :class:`StimulusSpec` is a frozen, hashable
description (kind + seed + parameters) that reproduces exactly the
same vector stream on every call — which is what lets a cached
analysis result stand in for recomputation bit for bit.  The registry
(:data:`STIMULI` / :func:`make_stimulus`) covers the uniform random
regime of the paper's experiments, the lag-one correlated ablation,
and a two-state burst-Markov stream modelling idle/active traffic.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Any, ClassVar, Dict, Iterator, List, Sequence, Tuple


def random_words(
    rng: random.Random, width: int, count: int
) -> List[int]:
    """*count* independent uniform integers in ``[0, 2**width)``."""
    top = (1 << width) - 1
    return [rng.randint(0, top) for _ in range(count)]


#: Dyadic resolution of the vectorized Bernoulli flip masks: per-bit
#: flip probabilities are quantized to multiples of 2**-16.
_FLIP_BITS = 16


def _bernoulli_mask(rng: random.Random, width: int, threshold: int) -> int:
    """A *width*-bit mask with each bit set with probability T/2^16.

    Bit-sliced uniform comparison: bit *b* of the *j*-th
    ``getrandbits`` draw is digit *j* of an independent 16-bit uniform
    number for lane *b*; the classical MSB-first comparison circuit
    (``lt``/``eq`` running masks) computes ``uniform < threshold`` for
    all lanes at once.  ``eq`` halves every round, so the loop draws
    ~2 masks on average instead of *width* per-bit ``rng.random()``
    calls.
    """
    full = (1 << width) - 1
    if threshold <= 0:
        return 0
    if threshold >= 1 << _FLIP_BITS:
        return full
    lt = 0
    eq = full
    for j in range(_FLIP_BITS - 1, -1, -1):
        r = rng.getrandbits(width)
        if (threshold >> j) & 1:
            lt |= eq & ~r
            eq &= r
        else:
            eq &= ~r
        if not eq:
            break
    return lt


def correlated_words(
    rng: random.Random, width: int, count: int, flip_probability: float = 0.1
) -> List[int]:
    """A lag-one correlated bit stream.

    Each bit of each word independently flips from its previous value
    with probability *flip_probability* (quantized to a multiple of
    2**-16); 0.5 degenerates to the uniform random stream, small
    values model slowly-varying (e.g. video) signals before
    multiplexing destroys their correlation.

    The per-bit Bernoulli draws are vectorized into whole-word mask
    operations (see :func:`_bernoulli_mask`), so cost per word is a
    couple of ``getrandbits`` calls regardless of width.
    """
    if not 0.0 <= flip_probability <= 1.0:
        raise ValueError("flip_probability must be within [0, 1]")
    if width <= 0:
        return [0] * count
    threshold = round(flip_probability * (1 << _FLIP_BITS))
    words: List[int] = []
    current = rng.randint(0, (1 << width) - 1)
    for _ in range(count):
        current ^= _bernoulli_mask(rng, width, threshold)
        words.append(current)
    return words


def walking_ones(width: int) -> List[int]:
    """``[1, 2, 4, ...]`` — a deterministic pattern used in unit tests."""
    return [1 << i for i in range(width)]


def gray_sequence(width: int, count: int | None = None) -> List[int]:
    """The binary-reflected Gray code sequence (one bit flips per step)."""
    n = count if count is not None else (1 << width)
    return [(i ^ (i >> 1)) & ((1 << width) - 1) for i in range(n)]


class WordStimulus:
    """Maps named input words of a circuit onto per-net bit vectors.

    Example::

        stim = WordStimulus({"a": a_nets, "b": b_nets})
        vec = stim.vector(a=12, b=5)          # {net: bit}
        for vec in stim.random(rng, 100):     # 100 random vectors
            sim.step(vec)
    """

    def __init__(self, words: Dict[str, Sequence[int]]):
        if not words:
            raise ValueError("need at least one word")
        self.words = {name: list(nets) for name, nets in words.items()}

    def vector(self, **values: int) -> Dict[int, int]:
        """Build a per-net input vector from keyword word values."""
        unknown = set(values) - set(self.words)
        if unknown:
            raise ValueError(f"unknown words: {sorted(unknown)}")
        bits: Dict[int, int] = {}
        for name, value in values.items():
            nets = self.words[name]
            if value < 0 or value >= (1 << len(nets)):
                raise ValueError(
                    f"value {value} out of range for {len(nets)}-bit word {name!r}"
                )
            for i, net in enumerate(nets):
                bits[net] = (value >> i) & 1
        return bits

    def random(
        self, rng: random.Random, count: int
    ) -> Iterator[Dict[int, int]]:
        """Yield *count* uniform random vectors covering all words."""
        for _ in range(count):
            yield self.vector(
                **{
                    name: rng.randint(0, (1 << len(nets)) - 1)
                    for name, nets in self.words.items()
                }
            )

    def correlated(
        self,
        rng: random.Random,
        count: int,
        flip_probability: float = 0.1,
    ) -> Iterator[Dict[int, int]]:
        """Yield *count* lag-one correlated vectors (see
        :func:`correlated_words`)."""
        streams = {
            name: correlated_words(rng, len(nets), count, flip_probability)
            for name, nets in self.words.items()
        }
        for k in range(count):
            yield self.vector(**{name: streams[name][k] for name in streams})

    def exhaustive(self) -> Iterator[Dict[int, int]]:
        """Yield every combination of word values (small widths only)."""
        names = sorted(self.words)
        widths = [len(self.words[n]) for n in names]
        total_bits = sum(widths)
        if total_bits > 22:
            raise ValueError(
                f"exhaustive stimulus over {total_bits} bits is too large"
            )
        for combo in range(1 << total_bits):
            values = {}
            shift = 0
            for name, w in zip(names, widths):
                values[name] = (combo >> shift) & ((1 << w) - 1)
                shift += w
            yield self.vector(**values)


# ---------------------------------------------------------------------------
# Declarative stimulus specs
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StimulusSpec:
    """A frozen, hashable description of an input stream.

    A spec carries everything needed to reproduce the stream exactly
    — kind, seed and distribution parameters — but not the circuit:
    :meth:`vectors` binds it to a :class:`WordStimulus` at run time.
    Two calls with equal specs and equal word structure yield
    bit-identical streams, which is the property the service layer's
    exact result cache rests on.

    Subclasses set :attr:`kind` and implement :meth:`vectors`;
    register them in :data:`STIMULI` to make them reachable from
    :func:`make_stimulus` and the CLI.
    """

    seed: int = 1995

    #: Registry key; stable across releases (part of fingerprints).
    kind: ClassVar[str] = "base"

    def vectors(
        self, stim: WordStimulus, count: int
    ) -> Iterator[Dict[int, int]]:
        """Yield *count* per-net input vectors over *stim*'s words."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe canonical form: ``{"kind": ..., **params}``."""
        return {"kind": self.kind, **asdict(self)}

    def fingerprint(self, layout: Tuple | None = None) -> str:
        """Stable content hash of this spec (plus optional word layout).

        *layout* is the word structure the stream will be bound to —
        ``((word_name, (net_name, ...)), ...)`` — which the service
        includes because the same spec drives different streams over
        different word shapes.  Without it the hash identifies the
        spec alone.
        """
        from repro.netlist.compiled import content_digest

        return content_digest(
            ("stimulus-v1", tuple(sorted(self.to_dict().items())), layout)
        )

    def describe(self) -> str:
        params = ", ".join(
            f"{k}={v}" for k, v in sorted(asdict(self).items())
        )
        return f"{self.kind}({params})"


@dataclass(frozen=True)
class UniformStimulus(StimulusSpec):
    """Independent uniform random words — the paper's input regime.

    Reproduces :meth:`WordStimulus.random` exactly (same RNG call
    sequence), so experiments that historically drew from
    ``stim.random(random.Random(seed), n)`` hash and replay their
    streams unchanged.
    """

    kind: ClassVar[str] = "uniform"

    def vectors(
        self, stim: WordStimulus, count: int
    ) -> Iterator[Dict[int, int]]:
        return stim.random(random.Random(self.seed), count)


@dataclass(frozen=True)
class CorrelatedStimulus(StimulusSpec):
    """Lag-one correlated words (see :func:`correlated_words`)."""

    flip_probability: float = 0.1

    kind: ClassVar[str] = "correlated"

    def __post_init__(self) -> None:
        if not 0.0 <= self.flip_probability <= 1.0:
            raise ValueError("flip_probability must be within [0, 1]")

    def vectors(
        self, stim: WordStimulus, count: int
    ) -> Iterator[Dict[int, int]]:
        return stim.correlated(
            random.Random(self.seed), count, self.flip_probability
        )


@dataclass(frozen=True)
class BurstMarkovStimulus(StimulusSpec):
    """Two-state burst-Markov words: idle (held value) vs burst (redraw).

    Each word runs an independent two-state Markov chain: in the idle
    state it holds its current value and enters a burst with
    probability *p_burst* per cycle; in the burst state it redraws
    uniformly every cycle and returns to idle with probability
    *p_end*.  Models datapaths that alternate between idle traffic and
    dense activity — a regime between the correlated and uniform
    streams.
    """

    p_burst: float = 0.05
    p_end: float = 0.25

    kind: ClassVar[str] = "burst"

    def __post_init__(self) -> None:
        for name in ("p_burst", "p_end"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")

    def vectors(
        self, stim: WordStimulus, count: int
    ) -> Iterator[Dict[int, int]]:
        rng = random.Random(self.seed)
        names = list(stim.words)
        bursting = dict.fromkeys(names, False)
        value = {
            name: rng.randint(0, (1 << len(stim.words[name])) - 1)
            for name in names
        }
        for _ in range(count):
            values = {}
            for name in names:
                if bursting[name]:
                    value[name] = rng.randint(
                        0, (1 << len(stim.words[name])) - 1
                    )
                    if rng.random() < self.p_end:
                        bursting[name] = False
                elif rng.random() < self.p_burst:
                    bursting[name] = True
                values[name] = value[name]
            yield stim.vector(**values)


#: Registered stimulus kinds, by :attr:`StimulusSpec.kind`.
STIMULI: Dict[str, type] = {
    UniformStimulus.kind: UniformStimulus,
    CorrelatedStimulus.kind: CorrelatedStimulus,
    BurstMarkovStimulus.kind: BurstMarkovStimulus,
}


def make_stimulus(kind: str, **params: Any) -> StimulusSpec:
    """Construct a registered :class:`StimulusSpec` by kind name."""
    cls = STIMULI.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown stimulus kind {kind!r}; "
            f"choose from {sorted(STIMULI)}"
        )
    return cls(**params)


def stimulus_from_dict(doc: Dict[str, Any]) -> StimulusSpec:
    """Rebuild a spec from its :meth:`StimulusSpec.to_dict` form."""
    doc = dict(doc)
    kind = doc.pop("kind", None)
    if kind is None:
        raise ValueError("stimulus document lacks a 'kind' field")
    return make_stimulus(kind, **doc)
