"""Stimulus generation: random, correlated, and structured vector streams.

The paper argues (Section 3.2) that arithmetic units in multiplexed /
source-coded datapaths see essentially *random* inputs, and all its
experiments use uniform random stimuli.  :func:`random_words` provides
that; :func:`correlated_words` provides a lag-one correlated stream for
the ablation that checks how much the random-input assumption matters.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Sequence


def random_words(
    rng: random.Random, width: int, count: int
) -> List[int]:
    """*count* independent uniform integers in ``[0, 2**width)``."""
    top = (1 << width) - 1
    return [rng.randint(0, top) for _ in range(count)]


def correlated_words(
    rng: random.Random, width: int, count: int, flip_probability: float = 0.1
) -> List[int]:
    """A lag-one correlated bit stream.

    Each bit of each word independently flips from its previous value
    with probability *flip_probability*; 0.5 degenerates to the uniform
    random stream, small values model slowly-varying (e.g. video)
    signals before multiplexing destroys their correlation.
    """
    if not 0.0 <= flip_probability <= 1.0:
        raise ValueError("flip_probability must be within [0, 1]")
    words: List[int] = []
    current = rng.randint(0, (1 << width) - 1)
    for _ in range(count):
        flips = 0
        for b in range(width):
            if rng.random() < flip_probability:
                flips |= 1 << b
        current ^= flips
        words.append(current)
    return words


def walking_ones(width: int) -> List[int]:
    """``[1, 2, 4, ...]`` — a deterministic pattern used in unit tests."""
    return [1 << i for i in range(width)]


def gray_sequence(width: int, count: int | None = None) -> List[int]:
    """The binary-reflected Gray code sequence (one bit flips per step)."""
    n = count if count is not None else (1 << width)
    return [(i ^ (i >> 1)) & ((1 << width) - 1) for i in range(n)]


class WordStimulus:
    """Maps named input words of a circuit onto per-net bit vectors.

    Example::

        stim = WordStimulus({"a": a_nets, "b": b_nets})
        vec = stim.vector(a=12, b=5)          # {net: bit}
        for vec in stim.random(rng, 100):     # 100 random vectors
            sim.step(vec)
    """

    def __init__(self, words: Dict[str, Sequence[int]]):
        if not words:
            raise ValueError("need at least one word")
        self.words = {name: list(nets) for name, nets in words.items()}

    def vector(self, **values: int) -> Dict[int, int]:
        """Build a per-net input vector from keyword word values."""
        unknown = set(values) - set(self.words)
        if unknown:
            raise ValueError(f"unknown words: {sorted(unknown)}")
        bits: Dict[int, int] = {}
        for name, value in values.items():
            nets = self.words[name]
            if value < 0 or value >= (1 << len(nets)):
                raise ValueError(
                    f"value {value} out of range for {len(nets)}-bit word {name!r}"
                )
            for i, net in enumerate(nets):
                bits[net] = (value >> i) & 1
        return bits

    def random(
        self, rng: random.Random, count: int
    ) -> Iterator[Dict[int, int]]:
        """Yield *count* uniform random vectors covering all words."""
        for _ in range(count):
            yield self.vector(
                **{
                    name: rng.randint(0, (1 << len(nets)) - 1)
                    for name, nets in self.words.items()
                }
            )

    def correlated(
        self,
        rng: random.Random,
        count: int,
        flip_probability: float = 0.1,
    ) -> Iterator[Dict[int, int]]:
        """Yield *count* lag-one correlated vectors (see
        :func:`correlated_words`)."""
        streams = {
            name: correlated_words(rng, len(nets), count, flip_probability)
            for name, nets in self.words.items()
        }
        for k in range(count):
            yield self.vector(**{name: streams[name][k] for name in streams})

    def exhaustive(self) -> Iterator[Dict[int, int]]:
        """Yield every combination of word values (small widths only)."""
        names = sorted(self.words)
        widths = [len(self.words[n]) for n in names]
        total_bits = sum(widths)
        if total_bits > 22:
            raise ValueError(
                f"exhaustive stimulus over {total_bits} bits is too large"
            )
        for combo in range(1 << total_bits):
            values = {}
            shift = 0
            for name, w in zip(names, widths):
                values[name] = (combo >> shift) & ((1 << w) - 1)
                shift += w
            yield self.vector(**values)
