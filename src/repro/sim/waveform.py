"""Compiled waveform-propagation backend: glitch-exact batch simulation.

The event-driven engine (:mod:`repro.sim.engine`) is exact but pays a
heavy per-event toll: every applied change walks fanout lists, fills an
``affected`` dict and writes timing-wheel slot dicts, and a cell whose
inputs change at k distinct times is rediscovered — and re-evaluated —
k times through that machinery.  For aggregate activity analysis none
of that bookkeeping is needed: only the per-cycle transition multiset
per net matters.

:class:`WaveformBackend` computes exactly that by packing **entire
timed waveforms into per-net integer bitmasks** and making one pass
over the compiled IR's cached topological order per *batch* of clock
cycles, evaluating each active cell exactly **once per batch**:

1. Lane ``k*W + t`` of a net's mask holds its logic value at delta
   time ``t`` of batch cycle ``k``, where ``W`` (the per-cycle time
   axis) statically bounds the last possible event time, computed from
   the IR's levelized delays.
2. A zero-delay settled pre-pass (:func:`repro.netlist.compiled.
   settle_lanes`, shared with the bit-parallel backend) yields every
   net's settled value per cycle — by the engine-equivalence invariant
   these equal the event engine's end-of-cycle values — and resolves
   the flipflop recurrence.  Primary-input and flipflop-``q`` lanes
   are constant within a cycle, so their waveform masks follow
   directly; their cycle boundaries are the clock-edge events.
3. For each cell with a toggling fan-in, the fused bitmask kernel
   (:attr:`~repro.netlist.compiled.CompiledCircuit.cell_eval_bits`)
   evaluates all lanes at once: ``raw`` bit ``k*W + t`` is the output
   value implied by the inputs at time ``t`` of cycle ``k``.
4. Transport delay is one shift: ``om = ((raw << d) | v0*dmask) &
   full``.  The low ``d`` bits of each cycle block are *automatically*
   filled with the previous cycle's settled output, because the bits
   shifted in from the previous block's tail are evaluations of
   already-settled inputs (guaranteed by the static bound ``W``); only
   cycle 0 needs the explicit pre-batch seed ``v0``.  The applied
   transitions then fall out of one more shift/XOR —
   ``changed = om ^ (((om << 1) | v0) & full)`` — which is exactly the
   event engine's application-time last-write-wins suppression, for
   every cycle of the batch simultaneously.
5. Per-net statistics are lane arithmetic: toggles and rises are
   popcounts of ``changed`` (and ``changed & om``), per-cycle parity
   classification follows from settled-value changes (a cycle's toggle
   count is odd iff its settled value changed), and active-cycle
   counts use a segmented OR-fold of ``changed`` onto each cycle
   block's first lane.

Why this is *bit-identical* to :class:`~repro.sim.engine.Simulator`
(for delay models with all combinational delays >= 1, which the
constructor enforces):

* with delays >= 1, every event scheduled for time ``t`` is produced
  while processing a strictly earlier time, so when the event engine
  reaches ``t`` its wheel slot holds *all* changes for ``t`` — a cell
  is evaluated at most once per distinct time with all same-time input
  changes applied, which is precisely one lane of step 3 (lanes where
  no input changed evaluate to the unchanged output and are suppressed
  by step 4);
* a net's single driver emits transitions at strictly increasing
  times, so the shift/XOR change extraction equals the event engine's
  application-time ``values[net] == v`` check, and transitions
  alternate — making toggle counts, rises and parity exact;
* settled values and flipflop state equal the zero-delay pre-pass by
  the repo's settled-equivalence invariant (property-tested since the
  seed).

The property suite in ``tests/test_sim_waveform.py`` asserts equality
of whole :class:`~repro.sim.backends.RunStats` objects against the
event-driven reference on random circuits × random delay models.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.core.transitions import NodeActivity
from repro.netlist.circuit import Circuit
from repro.obs import trace as obs
from repro.netlist.compiled import (
    CompiledCircuit,
    compile_circuit,
    settle_lanes,
)
from repro.sim.delays import DelayModel, UnitDelay


class WaveformBackend:
    """Glitch-exact waveform-propagation backend.

    Satisfies the :class:`~repro.sim.backends.SimBackend` protocol.
    Use it wherever aggregated, glitch-exact activity is wanted fast;
    use the event-driven backend when per-cycle traces or recorded
    events (VCD) are needed.

    Parameters mirror :class:`~repro.sim.backends.EventDrivenBackend`,
    plus ``batch_cycles`` — how many clock cycles are packed into one
    set of lane masks (results are invariant under the choice).

    Delay models must give every combinational cell output a delay
    >= 1: a zero intra-cycle delay collapses cause and effect into one
    delta and makes the event engine re-evaluate cells within a single
    time step, which a one-pass formulation cannot (and should not)
    reproduce — use the bit-parallel backend for zero-delay runs.
    """

    name = "waveform"
    exact_glitches = True

    def __init__(
        self,
        circuit: Circuit,
        delay_model: DelayModel | None = None,
        monitor: Iterable[int] | None = None,
        batch_cycles: int = 32,
    ) -> None:
        if batch_cycles < 1:
            raise ValueError("batch_cycles must be >= 1")
        self.circuit = circuit
        self.delay_model = delay_model or UnitDelay()
        self.batch_cycles = batch_cycles
        cc: CompiledCircuit = compile_circuit(circuit, self.delay_model)
        self._cc = cc
        # Levelize: latest possible event time per net, which bounds
        # the per-cycle time axis W.  Also rejects sub-unit delays.
        level = [0] * cc.n_nets
        for ci in cc.topo:
            arrival = 0
            for n in cc.cell_inputs[ci]:
                if level[n] > arrival:
                    arrival = level[n]
            for out_net, d in cc.out_specs[ci]:
                if d < 1:
                    raise ValueError(
                        f"the waveform backend requires combinational "
                        f"delays >= 1, but {self.delay_model.describe()!r} "
                        f"gives cell {circuit.cells[ci].name!r} a delay of "
                        f"{d}; use the bit-parallel backend for "
                        "zero-delay simulation"
                    )
                if arrival + d > level[out_net]:
                    level[out_net] = arrival + d
        self._W = (max(level) if level else 0) + 1
        if monitor is None:
            monitored = list(cc.driven)
        else:
            monitored = [False] * cc.n_nets
            for n in monitor:
                monitored[n] = True
        self._monitored = monitored

    # ------------------------------------------------------------------
    def _batch_consts(self, nb: int) -> Tuple:
        """Lane-geometry constants for a batch of *nb* cycles."""
        W = self._W
        wmask = (1 << W) - 1
        full = (1 << (nb * W)) - 1
        blockstart = 0
        for k in range(nb):
            blockstart |= 1 << (k * W)
        # Segmented OR-fold schedule: masks confine each shift to its
        # own cycle block, so after the last fold the first lane of
        # every block holds the OR of the whole block.
        fold = []
        sh = 1
        while sh < W:
            fold.append((sh, blockstart * (wmask >> sh)))
            sh <<= 1
        return wmask, full, blockstart, fold

    def run(
        self,
        vectors: Iterable[Sequence[int] | Mapping[int, int]],
        warmup: Sequence[int] | Mapping[int, int] | None = None,
        initial_values: Sequence[int] | None = None,
        initial_ff_state: Mapping[int, int] | None = None,
    ) -> "RunStats":
        """Simulate *vectors* and return aggregated activity.

        Warm-up/initial-state semantics are identical to
        :class:`~repro.sim.backends.EventDrivenBackend`: the first
        vector settles the network functionally (uncounted) unless an
        exact ``initial_values`` snapshot resumes a stream mid-way.
        """
        from repro.sim.backends import RunStats, _resolve_vector

        cc = self._cc
        n_nets = cc.n_nets
        inputs = cc.inputs
        input_set = cc.input_set
        ff_state: Dict[int, int] = dict.fromkeys(cc.ff_cells, 0)
        if initial_ff_state:
            ff_state.update(initial_ff_state)
        if initial_values is not None:
            values = list(initial_values)
        else:
            values = [0] * n_nets
        cur_inputs = [values[net] for net in inputs]

        it = iter(vectors)
        if initial_values is None:
            if warmup is None:
                try:
                    warmup = next(it)
                except StopIteration:
                    return RunStats(
                        final_values=values, final_ff_state=ff_state
                    )
            full_vec = _resolve_vector(warmup, inputs, input_set, cur_inputs)
            values, _ = cc.evaluate_flat(full_vec, ff_state)
        elif warmup is not None:
            full_vec = _resolve_vector(warmup, inputs, input_set, cur_inputs)
            values, _ = cc.evaluate_flat(full_vec, ff_state)

        stats = RunStats()
        n_cells = len(cc.cell_kinds)
        comb_fanout = cc.comb_fanout
        cell_inputs = cc.cell_inputs
        out_specs = cc.out_specs
        kernels = cc.cell_eval_bits
        topo = cc.topo
        ff_cells, ff_q = cc.ff_cells, cc.ff_q
        monitored = self._monitored
        W = self._W
        B = self.batch_cycles

        # Flat per-net accumulators — folded into NodeActivity records
        # once at the end, instead of per-cycle dict+object churn.
        acc_tog = [0] * n_nets
        acc_rise = [0] * n_nets
        acc_useful = [0] * n_nets
        acc_useless = [0] * n_nets
        acc_active = [0] * n_nets

        #: per-net waveform lane masks (valid where touched is set)
        wbits = [0] * n_nets
        touched = bytearray(n_nets)
        consts = None
        last_nb = 0
        cycles = 0

        rec = obs.active()
        batch: List[List[int]] = []
        exhausted = False
        while not exhausted:
            batch.clear()
            for vec in it:
                batch.append(
                    _resolve_vector(vec, inputs, input_set, cur_inputs)
                )
                if len(batch) == B:
                    break
            else:
                exhausted = True
            if not batch:
                break
            bt0 = rec.now() if rec is not None else 0
            nb = len(batch)
            if nb != last_nb:
                consts = self._batch_consts(nb)
                last_nb = nb
            wmask, full, blockstart, fold = consts
            cy_mask = (1 << nb) - 1
            top = nb - 1

            # --- settled pre-pass: zero-delay lanes, one per cycle ----
            slanes = [0] * n_nets
            for pos, net in enumerate(inputs):
                stream = 0
                for k in range(nb):
                    stream |= batch[k][pos] << k
                slanes[net] = stream
            q_lanes = settle_lanes(cc, slanes, cy_mask, values)

            # --- seed waveforms: clock edge + new primary inputs ------
            # Inputs and flipflop q outputs hold one value per cycle
            # (lanes *s*); a changed value is that cycle's time-0
            # event, and every such change is one useful transition.
            touched[:] = bytes(n_nets)
            dirty = bytearray(n_cells)

            def seed_edge_net(net, s):
                ch = (s ^ ((s << 1) | values[net])) & cy_mask
                if not ch:
                    return
                sp = 0
                x = s
                while x:
                    low = x & -x
                    sp |= 1 << ((low.bit_length() - 1) * W)
                    x ^= low
                wbits[net] = sp * wmask
                touched[net] = 1
                for cj in comb_fanout[net]:
                    dirty[cj] = 1
                if monitored[net]:
                    tog = ch.bit_count()
                    acc_tog[net] += tog
                    acc_rise[net] += (ch & s).bit_count()
                    acc_useful[net] += tog
                    acc_active[net] += tog

            for net in inputs:
                seed_edge_net(net, slanes[net])
            for i, ci in enumerate(ff_cells):
                seed_edge_net(ff_q[i], q_lanes[i])

            # --- one pass over the topological order ------------------
            for ci in topo:
                if not dirty[ci]:
                    continue
                for n in cell_inputs[ci]:
                    if not touched[n]:
                        # No event in the whole batch: constant value.
                        wbits[n] = full if values[n] else 0
                        touched[n] = 1
                outs = kernels[ci](wbits, full)
                pos = 0
                for out_net, d in out_specs[ci]:
                    raw = outs[pos]
                    pos += 1
                    v0 = values[out_net]
                    if v0:
                        om = ((raw << d) | ((1 << d) - 1)) & full
                        changed = om ^ (((om << 1) | 1) & full)
                    else:
                        om = (raw << d) & full
                        changed = om ^ ((om << 1) & full)
                    if not changed:
                        continue
                    wbits[out_net] = om
                    touched[out_net] = 1
                    for cj in comb_fanout[out_net]:
                        dirty[cj] = 1
                    if monitored[out_net]:
                        tog = changed.bit_count()
                        acc_tog[out_net] += tog
                        s = slanes[out_net]
                        sch = (s ^ ((s << 1) | v0)) & cy_mask
                        u = sch.bit_count()
                        acc_rise[out_net] += (changed & om).bit_count()
                        acc_useful[out_net] += u
                        acc_useless[out_net] += tog - u
                        m = changed
                        for sh, msk in fold:
                            m |= (m >> sh) & msk
                        acc_active[out_net] += (m & blockstart).bit_count()

            # --- commit the batch boundary ----------------------------
            for net in range(n_nets):
                values[net] = (slanes[net] >> top) & 1
            for i, ci in enumerate(ff_cells):
                ff_state[ci] = (q_lanes[i] >> top) & 1
            cycles += nb
            if rec is not None:
                dur = rec.complete(
                    "sim.batch", bt0, backend="waveform", cycles=nb
                )
                rec.metrics.hist("sim.batch_s", dur / 1e9)
                rec.metrics.inc("sim.vectors", nb)
                rec.metrics.inc("sim.cell_evals", nb * n_cells)

        per_node = stats.per_node
        for net, tog in enumerate(acc_tog):
            if tog:
                per_node[net] = NodeActivity(
                    tog, acc_rise[net], acc_useful[net], acc_useless[net],
                    acc_active[net],
                )
        stats.cycles = cycles
        stats.final_values = values
        stats.final_ff_state = ff_state
        return stats
