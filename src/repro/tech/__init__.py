"""Technology model: capacitance, energy and area of a 0.8 um / 5 V
CMOS standard-cell process.

The paper's Section 5 experiment uses layout extraction plus
circuit-level simulation of four real 0.8 um layouts.  We do not have
that testbed; this package is the documented substitution (DESIGN.md):
a calibrated capacitance/energy model that feeds the same three-way
power split — combinational logic, flipflops, clock line — from
simulated transition counts.  Default constants are calibrated so the
paper's Table 3 magnitudes (mW at 5 MHz, pF of clock load, mm^2 of
area) come out in the right range.
"""

from repro.tech.library import TechnologyLibrary, CellElectrical
from repro.tech.clock import ClockTreeModel
from repro.tech.area import AreaModel

__all__ = [
    "TechnologyLibrary",
    "CellElectrical",
    "ClockTreeModel",
    "AreaModel",
]
