"""Layout-area model.

Estimates die area as the sum of cell areas divided by a row
utilisation factor — the standard first-order standard-cell model.
Used to reproduce the area column of the paper's Table 3 (0.73 mm^2 at
48 FFs growing to 1.23 mm^2 at 350 FFs: area grows roughly linearly
with inserted pipeline flipflops).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.circuit import Circuit
from repro.tech.library import TechnologyLibrary


@dataclass(frozen=True)
class AreaModel:
    """Area estimation with a utilisation factor and routing overhead."""

    utilisation: float = 0.65  # fraction of placed area that is cells
    overhead_mm2: float = 0.05  # pads / clock driver / periphery

    def circuit_area_mm2(
        self, circuit: Circuit, tech: TechnologyLibrary
    ) -> float:
        """Estimated die area of *circuit* in mm^2."""
        if not 0 < self.utilisation <= 1:
            raise ValueError("utilisation must be in (0, 1]")
        cell_um2 = sum(tech.cell_area_um2(c) for c in circuit.cells)
        return self.overhead_mm2 + cell_um2 / self.utilisation / 1e6
