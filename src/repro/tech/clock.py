"""Clock-line capacitance and power model.

Paper, Section 5: "Because extra clock circuitry is necessary when more
flipflops are inserted in the circuit, this capacitance will increase."
The observed Table 3 clock loads are almost exactly affine in the
flipflop count (3.2 pF @ 48 FFs ... 19.9 pF @ 350 FFs, slope ~55 fF per
flipflop), so the model is

    C_clock(n_ff) = base_cap + cap_per_ff * n_ff

and clock power is one full charge/discharge of that load per cycle:
``P = C_clock * Vdd^2 * f``.
"""

from __future__ import annotations

from dataclasses import dataclass

_FF = 1e-15
_PF = 1e-12


@dataclass(frozen=True)
class ClockTreeModel:
    """Affine clock-load model (defaults fitted to the paper's Table 3)."""

    base_cap: float = 0.55 * _PF  # driver + trunk wiring [F]
    cap_per_ff: float = 55 * _FF  # clock pin + local branch wiring [F]

    def capacitance(self, n_flipflops: int) -> float:
        """Total clock load for *n_flipflops* [F]."""
        if n_flipflops < 0:
            raise ValueError("flipflop count cannot be negative")
        return self.base_cap + self.cap_per_ff * n_flipflops

    def power(self, n_flipflops: int, vdd: float, frequency: float) -> float:
        """Clock-line dynamic power [W].

        The clock toggles twice per cycle but draws supply charge on
        the rising edge only, i.e. exactly one ``C * Vdd^2`` per cycle
        (paper eq. 1 with transition probability 1).
        """
        if vdd <= 0 or frequency <= 0:
            raise ValueError("vdd and frequency must be positive")
        return self.capacitance(n_flipflops) * vdd**2 * frequency
