"""Electrical parameters of the cell library.

Capacitances follow the classic static-CMOS accounting: the load a cell
output must charge is its own drain (output) capacitance, plus the gate
(input-pin) capacitance of every fanout pin, plus estimated wiring.
Dynamic energy per power-consuming (0->1) transition is
``C_load * Vdd^2`` (paper eq. 1 integrated over one transition).

Flipflop power follows the paper's footnote 1: the average dynamic
power of a single flipflop with 50% input transition activity is
pre-characterised (here: a constant energy per clock cycle) and
multiplied by the flipflop count.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.netlist.cells import Cell, CellKind
from repro.netlist.circuit import Circuit


@dataclass(frozen=True)
class CellElectrical:
    """Per-kind electrical data (farads, square micrometres)."""

    input_cap: float  # gate capacitance per input pin [F]
    output_cap: float  # drain/self capacitance per output [F]
    area_um2: float  # layout area [um^2]


_FF = 1e-15  # one femtofarad

#: Default 0.8 um / 5 V library.  Values are representative for the
#: era (tens of fF per pin) and calibrated so that the Table 3
#: reproduction lands in the paper's mW range at 5 MHz.
DEFAULT_CELLS: Dict[CellKind, CellElectrical] = {
    CellKind.CONST0: CellElectrical(0.0, 10 * _FF, 50.0),
    CellKind.CONST1: CellElectrical(0.0, 10 * _FF, 50.0),
    CellKind.BUF: CellElectrical(25 * _FF, 35 * _FF, 400.0),
    CellKind.NOT: CellElectrical(20 * _FF, 30 * _FF, 300.0),
    CellKind.AND: CellElectrical(25 * _FF, 40 * _FF, 600.0),
    CellKind.OR: CellElectrical(25 * _FF, 40 * _FF, 600.0),
    CellKind.NAND: CellElectrical(22 * _FF, 35 * _FF, 500.0),
    CellKind.NOR: CellElectrical(22 * _FF, 35 * _FF, 500.0),
    CellKind.XOR: CellElectrical(35 * _FF, 50 * _FF, 900.0),
    CellKind.XNOR: CellElectrical(35 * _FF, 50 * _FF, 900.0),
    CellKind.MUX2: CellElectrical(30 * _FF, 45 * _FF, 800.0),
    CellKind.HA: CellElectrical(40 * _FF, 55 * _FF, 1500.0),
    CellKind.FA: CellElectrical(45 * _FF, 65 * _FF, 2600.0),
    CellKind.DFF: CellElectrical(30 * _FF, 45 * _FF, 1650.0),
}


@dataclass
class TechnologyLibrary:
    """A process + cell-library model.

    Attributes
    ----------
    vdd:
        Supply voltage [V].
    wire_cap_per_fanout:
        Estimated wiring capacitance added per fanout connection [F].
    ff_energy_per_cycle:
        Average internal + clock-pin-local energy one DFF dissipates per
        clock cycle at 50% input transition activity [J] (paper
        footnote 1 pre-characterisation).
    cells:
        Per-kind :class:`CellElectrical` records.
    """

    name: str = "generic-0.8um-5V"
    vdd: float = 5.0
    wire_cap_per_fanout: float = 15 * _FF
    ff_energy_per_cycle: float = 3.75e-12
    cells: Dict[CellKind, CellElectrical] = field(
        default_factory=lambda: dict(DEFAULT_CELLS)
    )

    def scaled(self, voltage: float | None = None, cap_scale: float = 1.0) -> "TechnologyLibrary":
        """A derived library at a different voltage / capacitance scale.

        Useful for voltage-scaling ablations: energy scales with
        ``Vdd^2`` automatically through the power equations; *cap_scale*
        shrinks all capacitances (e.g. a finer process).
        """
        cells = {
            k: CellElectrical(
                c.input_cap * cap_scale, c.output_cap * cap_scale, c.area_um2
            )
            for k, c in self.cells.items()
        }
        return replace(
            self,
            vdd=voltage if voltage is not None else self.vdd,
            wire_cap_per_fanout=self.wire_cap_per_fanout * cap_scale,
            cells=cells,
        )

    # ------------------------------------------------------------------
    def electrical(self, kind: CellKind) -> CellElectrical:
        try:
            return self.cells[kind]
        except KeyError:
            raise KeyError(f"library {self.name!r} has no cell kind {kind}") from None

    def net_load_capacitance(self, circuit: Circuit, net: int) -> float:
        """Total load the driver of *net* charges on a rise [F]."""
        n = circuit.nets[net]
        cap = 0.0
        if n.driver is not None:
            cell = circuit.cells[n.driver[0]]
            cap += self.electrical(cell.kind).output_cap
        for ci in n.fanout:
            consumer = circuit.cells[ci]
            # A cell may read the same net on several pins; Net.fanout
            # keeps duplicates, so each pin contributes once here.
            cap += self.electrical(consumer.kind).input_cap
            cap += self.wire_cap_per_fanout
        return cap

    def energy_per_rise(self, circuit: Circuit, net: int) -> float:
        """Dynamic energy drawn from the supply per 0->1 transition [J]."""
        return self.net_load_capacitance(circuit, net) * self.vdd**2

    def ff_average_power(self, frequency: float) -> float:
        """Average power of one flipflop at 50% input activity [W]."""
        return self.ff_energy_per_cycle * frequency

    def cell_area_um2(self, cell: Cell) -> float:
        return self.electrical(cell.kind).area_um2
