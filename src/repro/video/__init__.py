"""Synthetic video substrate for the direction-detector workload.

The paper's direction detector implements the core of a progressive
scan conversion algorithm [paper ref. 6]: interlaced fields are
de-interlaced by interpolating each missing pixel along the local edge
direction detected between the line above and the line below.  The
authors ran the unit inside Phideo on real video; we do not have their
material, so this package synthesises fields with known edge structure
(moving diagonal ramps + noise), drives the detector with them, and —
because ground truth is known — can also score detection quality.

This is the documented substitution for the paper's video data (see
DESIGN.md) and powers the A5 ablation: the paper claims video
correlation is destroyed "immediately after the absolute differences
are taken", so glitch statistics under real video should resemble the
random-input numbers of Section 4.2.
"""

from repro.video.frames import (
    diagonal_edge_field,
    moving_sequence,
    add_noise,
)
from repro.video.scan import (
    detector_sites,
    site_vectors,
    deinterlace_frame,
)

__all__ = [
    "diagonal_edge_field",
    "moving_sequence",
    "add_noise",
    "detector_sites",
    "site_vectors",
    "deinterlace_frame",
]
