"""Synthetic video field generation.

Fields are lists of rows of integer pixels in ``[0, 2^depth)``.  The
generator draws a high-contrast edge of configurable orientation over a
smooth luminance ramp — the structure a direction detector is built to
find — and can animate it horizontally to produce a moving sequence.
"""

from __future__ import annotations

import random
from typing import List

Field = List[List[int]]


def diagonal_edge_field(
    width: int,
    height: int,
    slope: float = 1.0,
    offset: int = 0,
    depth: int = 8,
    contrast: float = 0.8,
) -> Field:
    """A field containing one oriented luminance edge.

    Pixels left of the line ``x = slope * y + offset`` are dark, pixels
    right of it bright, with a soft gradient elsewhere so the image is
    not binary.  ``slope=0`` gives a vertical edge, positive slopes
    lean right — the three orientations the detector's left/vertical/
    right hypotheses correspond to.
    """
    if width < 3 or height < 2:
        raise ValueError("field must be at least 3x2")
    top = (1 << depth) - 1
    lo = int(top * (1 - contrast) / 2)
    hi = top - lo
    field: Field = []
    for y in range(height):
        edge_x = slope * y + offset
        row = []
        for x in range(width):
            base = lo + (hi - lo) * x // max(width - 1, 1) // 4
            value = hi if x >= edge_x else lo + base
            row.append(max(0, min(top, value)))
        field.append(row)
    return field


def add_noise(
    field: Field, rng: random.Random, amplitude: int = 4, depth: int = 8
) -> Field:
    """Additive uniform noise, clamped to the pixel range."""
    if amplitude < 0:
        raise ValueError("noise amplitude cannot be negative")
    top = (1 << depth) - 1
    return [
        [
            max(0, min(top, p + rng.randint(-amplitude, amplitude)))
            for p in row
        ]
        for row in field
    ]


def moving_sequence(
    width: int,
    height: int,
    n_fields: int,
    slope: float = 1.0,
    velocity: int = 2,
    noise: int = 4,
    depth: int = 8,
    seed: int = 1995,
) -> List[Field]:
    """A sequence of fields with the edge translating horizontally.

    This is the temporally-correlated stimulus real video provides: the
    same structure shifted a little per field.
    """
    if n_fields < 1:
        raise ValueError("need at least one field")
    rng = random.Random(seed)
    fields = []
    for t in range(n_fields):
        base = diagonal_edge_field(
            width, height, slope=slope,
            offset=(velocity * t) % max(width, 1), depth=depth,
        )
        fields.append(add_noise(base, rng, amplitude=noise, depth=depth))
    return fields
