"""Progressive scan conversion over the gate-level direction detector.

``detector_sites`` walks an interlaced field and yields, for every
missing pixel, the two 3-pixel windows (line above / line below) that
form the detector's inputs.  ``deinterlace_frame`` runs the *gate-level
netlist* for every site, follows its direction decision to interpolate,
and returns the de-interlaced frame together with the transition-
activity record — so the flagship example measures power on the exact
workload the paper's application implies.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.circuits.direction_detector import (
    DirectionDetectorPorts,
    build_direction_detector,
)
from repro.core.activity import ActivityResult, accumulate_traces
from repro.experiments.detector import detector_stimulus
from repro.sim.engine import Simulator
from repro.video.frames import Field


def detector_sites(
    field: Field,
) -> Iterator[Tuple[int, int, List[int], List[int]]]:
    """Yield ``(row, column, above, below)`` for every interpolation site.

    The missing line sits between consecutive field lines; columns at
    the borders reuse the edge pixel so every site has full 3-pixel
    windows.
    """
    height = len(field)
    if height < 2:
        raise ValueError("field needs at least two lines")
    width = len(field[0])
    for y in range(height - 1):
        above_line, below_line = field[y], field[y + 1]
        for x in range(width):
            xs = [max(0, x - 1), x, min(width - 1, x + 1)]
            above = [above_line[i] for i in xs]
            below = [below_line[i] for i in xs]
            yield y, x, above, below


def site_vectors(
    field: Field, ports: DirectionDetectorPorts
) -> Iterator[Dict[int, int]]:
    """Per-net input vectors for every site of *field* (sim stimulus)."""
    stim = detector_stimulus(ports)
    for _, _, above, below in detector_sites(field):
        yield stim.vector(
            a0=above[0], a1=above[1], a2=above[2],
            b0=below[0], b1=below[1], b2=below[2],
        )


def _interpolate(above: List[int], below: List[int], direction: int) -> int:
    """Average along the detected direction (paper ref. 6's core step)."""
    if direction == 0:  # left diagonal: a[0] with b[2]
        return (above[0] + below[2]) // 2
    if direction == 2:  # right diagonal: a[2] with b[0]
        return (above[2] + below[0]) // 2
    return (above[1] + below[1]) // 2  # vertical / default


def deinterlace_frame(
    field: Field,
    width_bits: int = 8,
    threshold: int = 16,
) -> Tuple[List[List[int]], ActivityResult, Dict[str, int]]:
    """De-interlace *field* through the gate-level detector.

    Returns ``(frame, activity, direction_histogram)`` where *frame*
    interleaves original lines with interpolated ones, *activity* is
    the accumulated transition record of the whole scan, and the
    histogram counts the direction decisions taken.
    """
    circuit, ports = build_direction_detector(
        width=width_bits, threshold=threshold
    )
    sim = Simulator(circuit)
    stim = detector_stimulus(ports)
    zero = stim.vector(a0=0, a1=0, a2=0, b0=0, b1=0, b2=0)
    sim.settle(zero)

    result = ActivityResult(circuit.name, "unit delay")
    height = len(field)
    width = len(field[0])
    interpolated: Dict[Tuple[int, int], int] = {}
    histogram = {0: 0, 1: 0, 2: 0}
    traces = []
    for y, x, above, below in detector_sites(field):
        vec = stim.vector(
            a0=above[0], a1=above[1], a2=above[2],
            b0=below[0], b1=below[1], b2=below[2],
        )
        traces.append(sim.step(vec))
        direction = sim.word_value(ports.direction)
        histogram[direction] += 1
        interpolated[(y, x)] = _interpolate(above, below, direction)
    accumulate_traces(result, traces)

    frame: List[List[int]] = []
    for y in range(height - 1):
        frame.append(list(field[y]))
        frame.append([interpolated[(y, x)] for x in range(width)])
    frame.append(list(field[height - 1]))
    return frame, result, histogram
