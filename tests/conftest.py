"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.netlist.cells import CellKind
from repro.netlist.circuit import Circuit


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG; reseed per test for reproducibility."""
    return random.Random(0xD47E1995)


@pytest.fixture
def xor_chain() -> Circuit:
    """in0 -> xor(in0, in1) -> xor(.., in2): a 2-level toy circuit."""
    c = Circuit("xor_chain")
    i0, i1, i2 = (c.add_input(f"in{k}") for k in range(3))
    x1 = c.new_net("x1")
    out = c.new_net("out")
    c.gate(CellKind.XOR, i0, i1, output=x1, name="g1")
    c.gate(CellKind.XOR, x1, i2, output=out, name="g2")
    c.mark_output(out)
    return c


@pytest.fixture
def glitchy_and() -> Circuit:
    """The canonical glitch generator: AND(a, NOT(a)).

    Under unit delay, a rising ``a`` makes the AND see (1, 1) for one
    delta before the inverter output falls, producing a 0->1->0 glitch
    at the output while the settled value never changes.
    """
    c = Circuit("glitchy_and")
    a = c.add_input("a")
    na = c.gate(CellKind.NOT, a, name="inv")
    y = c.gate(CellKind.AND, a, na, name="and")
    c.mark_output(y, "y")
    return c


def random_dag_circuit(
    rng: random.Random,
    n_inputs: int = 4,
    n_gates: int = 12,
    with_ffs: bool = False,
) -> Circuit:
    """A random combinational (optionally sequential) DAG circuit.

    Used by property-based tests: any circuit this returns is valid by
    construction (single drivers, no combinational cycles).
    """
    c = Circuit("random_dag")
    nets = [c.add_input(f"i{k}") for k in range(n_inputs)]
    one_out = [
        CellKind.NOT,
        CellKind.BUF,
        CellKind.AND,
        CellKind.OR,
        CellKind.NAND,
        CellKind.NOR,
        CellKind.XOR,
        CellKind.XNOR,
        CellKind.MUX2,
    ]
    for g in range(n_gates):
        kind = rng.choice(one_out + [CellKind.FA, CellKind.HA])
        if kind in (CellKind.NOT, CellKind.BUF):
            ins = [rng.choice(nets)]
        elif kind is CellKind.MUX2:
            ins = [rng.choice(nets) for _ in range(3)]
        elif kind is CellKind.FA:
            ins = [rng.choice(nets) for _ in range(3)]
        elif kind is CellKind.HA:
            ins = [rng.choice(nets) for _ in range(2)]
        else:
            ins = [rng.choice(nets) for _ in range(rng.randint(2, 4))]
        cell = c.add_cell(kind, ins, name=f"g{g}")
        nets.extend(cell.outputs)
        if with_ffs and rng.random() < 0.2:
            q = c.add_dff(rng.choice(nets), name=f"ff{g}")
            nets.append(q)
    # Mark the last few nets as outputs so nothing useful is floating.
    for k, n in enumerate(nets[-4:]):
        c.mark_output(n, f"o{k}")
    return c
