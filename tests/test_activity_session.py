"""Tests for the ActivityRun session API: sharding, merging, regression.

The sharding tests assert *exact* equality with the unsharded run —
shard boundaries are fast-forwarded with the zero-delay engine, which
provably reproduces the event-driven settled state, so merged results
must be bit-identical, not merely statistically close.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.adders import build_rca_circuit
from repro.circuits.direction_detector import build_direction_detector
from repro.core.activity import ActivityResult, ActivityRun, analyze
from repro.core.transitions import NodeActivity
from repro.experiments.detector import detector_stimulus
from repro.retime.pipeline import pipeline_circuit
from repro.sim.delays import SumCarryDelay, ZeroDelay
from repro.sim.engine import Simulator
from repro.sim.vectors import WordStimulus


def _rca(n_bits=8):
    circuit, ports = build_rca_circuit(n_bits, with_cin=False)
    stim = WordStimulus({"a": ports["a"], "b": ports["b"]})
    return circuit, stim


class TestRunBasics:
    def test_run_equals_analyze(self):
        circuit, stim = _rca()
        vectors = [dict(v) for v in stim.random(random.Random(1), 51)]
        a = ActivityRun(circuit).run(iter(vectors))
        b = analyze(circuit, iter(vectors))
        assert a.per_node == b.per_node
        assert a.summary() == b.summary()

    def test_event_backend_rejects_zero_delay(self):
        circuit, _ = _rca(4)
        with pytest.raises(ValueError, match="ZeroDelay"):
            ActivityRun(circuit, delay_model=ZeroDelay())

    def test_unknown_backend_rejected(self):
        circuit, _ = _rca(4)
        with pytest.raises(ValueError, match="unknown simulation backend"):
            ActivityRun(circuit, backend="spice")

    def test_bitparallel_counts_only_useful(self):
        circuit, stim = _rca()
        vectors = [dict(v) for v in stim.random(random.Random(2), 81)]
        ev = ActivityRun(circuit).run(iter(vectors))
        bp = ActivityRun(circuit, backend="bitparallel").run(iter(vectors))
        assert bp.useless == 0
        assert bp.total_transitions == ev.useful
        assert bp.delay_description == "zero delay (bitparallel)"

    def test_bitparallel_rejects_timed_delay_model(self):
        circuit, _ = _rca(4)
        with pytest.raises(ValueError, match="zero-delay"):
            ActivityRun(
                circuit, delay_model=SumCarryDelay(), backend="bitparallel"
            )

    def test_step_exception_leaves_no_stale_events(self):
        """A failed step must not corrupt subsequent cycles."""
        circuit, stim = _rca(4)
        vectors = [dict(v) for v in stim.random(random.Random(13), 6)]
        clean = Simulator(circuit)
        clean.settle(vectors[0])
        reference = [clean.step(v).toggles for v in vectors[1:]]

        sim = Simulator(circuit)
        sim.settle(vectors[0])
        with pytest.raises(ValueError):
            sim.step({-1: 1})  # rejected before any event is queued
        got = [sim.step(v).toggles for v in vectors[1:]]
        assert got == reference

    def test_step_traces_requires_event_backend(self):
        circuit, stim = _rca(4)
        run = ActivityRun(circuit, backend="bitparallel")
        with pytest.raises(ValueError, match="event-driven"):
            run.step_traces([stim.vector(a=1, b=2)])


class TestShardedEqualsSingle:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        shards=st.integers(min_value=1, max_value=7),
        n_vectors=st.integers(min_value=1, max_value=40),
    )
    def test_rca_property(self, seed, shards, n_vectors):
        circuit, stim = _rca(6)
        vectors = [
            dict(v) for v in stim.random(random.Random(seed), n_vectors + 1)
        ]
        single = ActivityRun(circuit).run(iter(vectors))
        sharded = ActivityRun(circuit).run_sharded(
            iter(vectors), shards=shards
        )
        assert sharded.cycles == single.cycles
        assert sharded.per_node == single.per_node

    def test_detector_deterministic(self):
        circuit, ports = build_direction_detector(width=8)
        stim = detector_stimulus(ports)
        vectors = [dict(v) for v in stim.random(random.Random(7), 61)]
        single = ActivityRun(circuit).run(iter(vectors))
        sharded = ActivityRun(circuit).run_sharded(iter(vectors), shards=4)
        assert sharded.per_node == single.per_node
        assert sharded.summary() == single.summary()

    def test_sequential_circuit_state_fast_forward(self):
        """Pipelined detector: boundary FF state must be replayed exactly."""
        base, ports = build_direction_detector(width=8, register_inputs=True)
        pipelined = pipeline_circuit(base, 2).circuit
        stim = detector_stimulus(ports)
        vectors = [dict(v) for v in stim.random(random.Random(9), 41)]
        single = ActivityRun(pipelined).run(iter(vectors))
        sharded = ActivityRun(pipelined).run_sharded(iter(vectors), shards=5)
        assert sharded.per_node == single.per_node

    def test_non_unit_delay_model(self):
        circuit, stim = _rca(6)
        vectors = [dict(v) for v in stim.random(random.Random(4), 31)]
        model = SumCarryDelay(dsum=2, dcarry=1)
        single = ActivityRun(circuit, delay_model=model).run(iter(vectors))
        sharded = ActivityRun(circuit, delay_model=model).run_sharded(
            iter(vectors), shards=3
        )
        assert sharded.per_node == single.per_node

    def test_multiprocessing_workers(self):
        circuit, stim = _rca(8)
        vectors = [dict(v) for v in stim.random(random.Random(5), 61)]
        single = ActivityRun(circuit).run(iter(vectors))
        sharded = ActivityRun(circuit).run_sharded(
            iter(vectors), shards=4, processes=2
        )
        assert sharded.per_node == single.per_node

    def test_explicit_warmup(self):
        circuit, stim = _rca(6)
        warm = stim.vector(a=0, b=0)
        vectors = [dict(v) for v in stim.random(random.Random(6), 20)]
        single = ActivityRun(circuit).run(iter(vectors), warmup=warm)
        sharded = ActivityRun(circuit).run_sharded(
            iter(vectors), shards=3, warmup=warm
        )
        assert sharded.per_node == single.per_node
        assert sharded.cycles == 20  # nothing consumed as implicit warm-up

    def test_more_shards_than_vectors(self):
        circuit, stim = _rca(4)
        vectors = [dict(v) for v in stim.random(random.Random(8), 4)]
        single = ActivityRun(circuit).run(iter(vectors))
        sharded = ActivityRun(circuit).run_sharded(iter(vectors), shards=16)
        assert sharded.per_node == single.per_node

    def test_bad_shard_count(self):
        circuit, stim = _rca(4)
        with pytest.raises(ValueError, match="shards"):
            ActivityRun(circuit).run_sharded([], shards=0)

    def test_empty_stream(self):
        circuit, _ = _rca(4)
        result = ActivityRun(circuit).run_sharded(iter([]), shards=3)
        assert result.cycles == 0 and result.per_node == {}


class TestMergeErrorPaths:
    def _result(self, name="c", delay="unit delay"):
        r = ActivityResult(name, delay, cycles=5)
        r.per_node[0] = NodeActivity(
            toggles=3, rises=2, useful=1, useless=2, cycles_active=2
        )
        return r

    def test_merge_different_circuits_rejected(self):
        a, b = self._result("c1"), self._result("c2")
        with pytest.raises(ValueError, match="different circuits"):
            a.merge(b)

    def test_merge_different_delay_models_rejected(self):
        a = self._result(delay="unit delay")
        b = self._result(delay="dsum=2, dcarry=1 (others 1)")
        with pytest.raises(ValueError, match="different delay models"):
            a.merge(b)

    def test_merge_accumulates(self):
        a, b = self._result(), self._result()
        a.merge(b)
        assert a.cycles == 10
        assert a.per_node[0].toggles == 6
        assert a.per_node[0].useful == 2

    def test_merge_disjoint_nodes_copies(self):
        a = self._result()
        b = self._result()
        b.per_node = {1: NodeActivity(toggles=1, rises=1, useful=1)}
        a.merge(b)
        assert set(a.per_node) == {0, 1}
        # The copy must be independent of the source record.
        b.per_node[1].toggles = 99
        assert a.per_node[1].toggles == 1


class TestFfActivity:
    def test_matches_manual_simulator_measurement(self):
        base, ports = build_direction_detector(width=8, register_inputs=True)
        circuit = pipeline_circuit(base, 1).circuit
        stim = detector_stimulus(ports)
        vectors = [dict(v) for v in stim.random(random.Random(11), 41)]

        sim = Simulator(circuit)
        sim.settle(vectors[0])
        ff_d = [c.inputs[0] for c in circuit.flipflops]
        prev = [sim.values[n] for n in ff_d]
        changes = 0
        for vec in vectors[1:]:
            sim.step(vec)
            cur = [sim.values[n] for n in ff_d]
            changes += sum(1 for p, q in zip(prev, cur) if p != q)
            prev = cur
        expected = changes / (len(ff_d) * 40)

        got = ActivityRun(circuit).ff_activity(iter(vectors))
        assert got["flipflops"] == len(ff_d)
        assert got["cycles"] == 40
        assert got["mean_d_activity"] == pytest.approx(expected, abs=1e-12)

    def test_combinational_circuit(self):
        circuit, stim = _rca(4)
        got = ActivityRun(circuit).ff_activity(
            stim.random(random.Random(1), 10)
        )
        assert got == {"flipflops": 0, "cycles": 0, "mean_d_activity": 0.0}


class TestFigure5Regression:
    """Pin the seed's Figure 5 numbers bit-exactly.

    The paper reports 119002 total and L/F = 0.88 for the 16-bit RCA
    under 4000 random vectors; this reproduction's seeded stimulus
    gives 117990 / 0.8669 (within 1% of the paper).  Any engine change
    that shifts these counts by even one transition is a semantics
    regression, not noise.
    """

    def test_rca16_4000_vectors_pinned(self):
        from repro.experiments.rca import figure5_experiment

        data = figure5_experiment(n_bits=16, n_vectors=4000, seed=1995)
        sim = data["simulated"]
        assert sim["cycles"] == 4000
        assert sim["total"] == 117990
        assert sim["useful"] == 63200
        assert sim["useless"] == 54790
        assert sim["rises"] == 58994
        assert sim["glitches"] == 27395
        assert sim["L/F"] == pytest.approx(0.8669, abs=1e-4)
