"""Functional tests for every adder architecture."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.adders import (
    build_rca_circuit,
    carry_lookahead_adder,
    carry_select_adder,
    kogge_stone_adder,
    ripple_carry_adder,
)
from repro.netlist.circuit import Circuit, int_to_bits
from repro.netlist.validate import validate
from repro.sim.engine import Simulator
from repro.sim.vectors import WordStimulus


def _build(architecture: str, n_bits: int):
    c = Circuit(f"{architecture}{n_bits}")
    a = c.add_input_word("a", n_bits)
    b = c.add_input_word("b", n_bits)
    if architecture == "ripple":
        sums, carries = ripple_carry_adder(c, a, b)
        cout = carries[-1]
    elif architecture == "ripple-gates":
        cin = c.add_input("cin")
        sums, carries = ripple_carry_adder(c, a, b, cin, gate_level=True)
        cout = carries[-1]
    elif architecture == "lookahead":
        sums, cout = carry_lookahead_adder(c, a, b)
    elif architecture == "carry-select":
        sums, cout = carry_select_adder(c, a, b)
    elif architecture == "kogge-stone":
        sums, cout = kogge_stone_adder(c, a, b)
    else:
        raise AssertionError(architecture)
    c.mark_output_word(sums, "s")
    c.mark_output(cout, "cout")
    return c, a, b, sums, cout


ARCHS = ["ripple", "ripple-gates", "lookahead", "carry-select", "kogge-stone"]


@pytest.mark.parametrize("architecture", ARCHS)
def test_exhaustive_4bit(architecture):
    c, a, b, sums, cout = _build(architecture, 4)
    assert not [i for i in validate(c) if i.severity == "error"]
    values_cache = {}
    for av in range(16):
        for bv in range(16):
            bits = int_to_bits(av, 4) + int_to_bits(bv, 4)
            if architecture == "ripple-gates":
                bits += [0]
            values, _ = c.evaluate(bits)
            got = sum(values[n] << i for i, n in enumerate(sums))
            got |= values[cout] << 4
            assert got == av + bv, (architecture, av, bv)
    del values_cache


@pytest.mark.parametrize("architecture", ARCHS)
@settings(max_examples=25, deadline=None)
@given(
    av=st.integers(min_value=0, max_value=2**16 - 1),
    bv=st.integers(min_value=0, max_value=2**16 - 1),
)
def test_random_16bit_property(architecture, av, bv):
    c, a, b, sums, cout = _build(architecture, 16)
    bits = int_to_bits(av, 16) + int_to_bits(bv, 16)
    if architecture == "ripple-gates":
        bits += [0]
    values, _ = c.evaluate(bits)
    got = sum(values[n] << i for i, n in enumerate(sums))
    got |= values[cout] << 16
    assert got == av + bv


def test_rca_with_carry_in():
    c = Circuit("rca_cin")
    a = c.add_input_word("a", 5)
    b = c.add_input_word("b", 5)
    cin = c.add_input("cin")
    sums, carries = ripple_carry_adder(c, a, b, cin)
    c.mark_output_word(sums, "s")
    c.mark_output(carries[-1], "cout")
    for av in (0, 7, 31):
        for bv in (0, 19, 31):
            for ci in (0, 1):
                bits = int_to_bits(av, 5) + int_to_bits(bv, 5) + [ci]
                values, _ = c.evaluate(bits)
                got = sum(values[n] << i for i, n in enumerate(sums))
                got |= values[carries[-1]] << 5
                assert got == av + bv + ci


def test_rca_event_simulation_matches(rng):
    """The event-driven simulator agrees with functional evaluation."""
    c, ports = build_rca_circuit(12, with_cin=False)
    stim = WordStimulus({"a": ports["a"], "b": ports["b"]})
    sim = Simulator(c)
    sim.settle(stim.vector(a=0, b=0))
    for _ in range(100):
        av, bv = rng.randint(0, 4095), rng.randint(0, 4095)
        sim.step(stim.vector(a=av, b=bv))
        got = sim.word_value(ports["sums"])
        got |= sim.values[ports["carries"][-1]] << 12
        assert got == av + bv


def test_build_rca_ports_structure():
    c, ports = build_rca_circuit(8)
    assert len(ports["sums"]) == 8
    assert len(ports["carries"]) == 8
    assert ports["cin"] is not None
    c2, ports2 = build_rca_circuit(8, with_cin=False)
    assert ports2["cin"] is None
    # Without a carry-in the first stage degenerates to a half adder.
    assert c2.kind_histogram()["HA"] == 1


def test_rca_carry_chain_depth():
    """The carry chain makes the RCA depth linear in width."""
    c8, _ = build_rca_circuit(8, with_cin=False)
    c16, _ = build_rca_circuit(16, with_cin=False)
    assert c16.critical_path_length() == c8.critical_path_length() + 8


def test_kogge_stone_log_depth():
    c = Circuit("ks")
    a = c.add_input_word("a", 16)
    b = c.add_input_word("b", 16)
    sums, cout = kogge_stone_adder(c, a, b)
    c.mark_output_word(sums, "s")
    c.mark_output(cout)
    # pg (1) + log2(16) prefix levels of AND+OR (8) + sum XOR (1) = 10,
    # well below the ripple adder's 16 and flattening with width.
    assert c.critical_path_length() <= 10


def test_bad_operand_widths_rejected():
    c = Circuit("t")
    a = c.add_input_word("a", 4)
    b = c.add_input_word("b", 3)
    with pytest.raises(ValueError):
        ripple_carry_adder(c, a, b)
    with pytest.raises(ValueError):
        kogge_stone_adder(c, a, b)
    with pytest.raises(ValueError):
        carry_select_adder(c, a, b)
    with pytest.raises(ValueError):
        carry_lookahead_adder(c, a, b)
