"""Tests for the signed (Baugh-Wooley) multiplier extension."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.multipliers import (
    baugh_wooley_multiplier,
    build_multiplier_circuit,
)
from repro.netlist.circuit import Circuit, int_to_bits
from repro.netlist.validate import validate


def _to_signed(value: int, bits: int) -> int:
    return value - (1 << bits) if value >= (1 << (bits - 1)) else value


def _product(circuit, ports, xv, yv, n):
    bits = int_to_bits(xv, n) + int_to_bits(yv, n)
    values, _ = circuit.evaluate(bits)
    return sum(values[net] << i for i, net in enumerate(ports["product"]))


@pytest.mark.parametrize("n", [2, 3, 4])
def test_exhaustive_signed(n):
    circuit, ports = build_multiplier_circuit(n, "baugh-wooley")
    assert not [i for i in validate(circuit) if i.severity == "error"]
    mask = (1 << (2 * n)) - 1
    for xv in range(1 << n):
        for yv in range(1 << n):
            got = _product(circuit, ports, xv, yv, n)
            want = (_to_signed(xv, n) * _to_signed(yv, n)) & mask
            assert got == want, (xv, yv)


@settings(max_examples=40, deadline=None)
@given(
    xv=st.integers(min_value=-128, max_value=127),
    yv=st.integers(min_value=-128, max_value=127),
)
def test_random_8x8_signed_property(xv, yv):
    circuit, ports = build_multiplier_circuit(8, "baugh-wooley")
    got = _product(circuit, ports, xv & 0xFF, yv & 0xFF, 8)
    assert _to_signed(got, 16) == xv * yv


class TestStructure:
    def test_uses_nand_for_sign_rows(self):
        circuit, _ = build_multiplier_circuit(6, "baugh-wooley")
        hist = circuit.kind_histogram()
        assert hist["NAND"] == 2 * (6 - 1)  # one row + one column of NANDs
        assert hist["AND"] == (6 - 1) ** 2 + 1
        assert hist["CONST1"] == 2  # the two correction constants

    def test_requires_square_operands(self):
        c = Circuit("t")
        x = c.add_input_word("x", 4)
        y = c.add_input_word("y", 3)
        with pytest.raises(ValueError, match="equal operand widths"):
            baugh_wooley_multiplier(c, x, y)

    def test_requires_two_bits(self):
        c = Circuit("t")
        x = c.add_input_word("x", 1)
        y = c.add_input_word("y", 1)
        with pytest.raises(ValueError, match="at least 2-bit"):
            baugh_wooley_multiplier(c, x, y)


def test_signed_multiplier_is_balanced_like_wallace(rng):
    """BW uses the same tree reduction, so it should glitch like the
    Wallace multiplier, not like the array."""
    from repro.core.activity import analyze
    from repro.sim.vectors import WordStimulus

    ratios = {}
    for arch in ("baugh-wooley", "wallace", "array"):
        circuit, ports = build_multiplier_circuit(8, arch)
        stim = WordStimulus({"x": ports["x"], "y": ports["y"]})
        result = analyze(circuit, stim.random(rng, 121))
        ratios[arch] = result.useless_useful_ratio()
    assert ratios["baugh-wooley"] < ratios["array"]
    assert ratios["baugh-wooley"] < 2 * ratios["wallace"]
