"""Functional tests for comparators, min/max, subtract and abs-diff."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.comparators import (
    abs_diff,
    equality,
    greater_than,
    maximum,
    min_max,
    minimum,
    mux_word,
    subtractor,
)
from repro.circuits.primitives import constant_word, full_adder_gates, reduce_tree
from repro.netlist.cells import CellKind
from repro.netlist.circuit import Circuit, int_to_bits
from repro.netlist.validate import validate


def _two_word_circuit(width):
    c = Circuit("t")
    a = c.add_input_word("a", width)
    b = c.add_input_word("b", width)
    return c, a, b


def _eval(c, a_nets, b_nets, av, bv, width):
    bits = int_to_bits(av, width) + int_to_bits(bv, width)
    values, _ = c.evaluate(bits)
    return values


@pytest.mark.parametrize("width", [1, 2, 3, 4])
def test_greater_than_exhaustive(width):
    c, a, b = _two_word_circuit(width)
    gt = greater_than(c, a, b)
    c.mark_output(gt)
    for av in range(1 << width):
        for bv in range(1 << width):
            values = _eval(c, a, b, av, bv, width)
            assert values[gt] == int(av > bv), (av, bv)


@pytest.mark.parametrize("width", [1, 3, 4])
def test_equality_exhaustive(width):
    c, a, b = _two_word_circuit(width)
    eq = equality(c, a, b)
    c.mark_output(eq)
    for av in range(1 << width):
        for bv in range(1 << width):
            values = _eval(c, a, b, av, bv, width)
            assert values[eq] == int(av == bv)


@pytest.mark.parametrize("width", [2, 4])
def test_min_max_exhaustive(width):
    c, a, b = _two_word_circuit(width)
    lo, hi, gt = min_max(c, a, b)
    c.mark_output_word(lo, "lo")
    c.mark_output_word(hi, "hi")
    c.mark_output(gt)
    for av in range(1 << width):
        for bv in range(1 << width):
            values = _eval(c, a, b, av, bv, width)
            lo_v = sum(values[n] << i for i, n in enumerate(lo))
            hi_v = sum(values[n] << i for i, n in enumerate(hi))
            assert lo_v == min(av, bv)
            assert hi_v == max(av, bv)


def test_minimum_maximum_single_sided():
    width = 3
    c, a, b = _two_word_circuit(width)
    lo, gt1 = minimum(c, a, b, prefix="mn")
    hi, gt2 = maximum(c, a, b, prefix="mx")
    c.mark_output_word(lo, "lo")
    c.mark_output_word(hi, "hi")
    c.mark_output(gt1)
    c.mark_output(gt2)
    assert not [i for i in validate(c) if i.severity == "error"]
    for av in range(8):
        for bv in range(8):
            values = _eval(c, a, b, av, bv, width)
            assert sum(values[n] << i for i, n in enumerate(lo)) == min(av, bv)
            assert sum(values[n] << i for i, n in enumerate(hi)) == max(av, bv)


@pytest.mark.parametrize("width", [1, 2, 4])
def test_subtractor_exhaustive(width):
    c, a, b = _two_word_circuit(width)
    diff, no_borrow = subtractor(c, a, b)
    c.mark_output_word(diff, "d")
    c.mark_output(no_borrow)
    mask = (1 << width) - 1
    for av in range(1 << width):
        for bv in range(1 << width):
            values = _eval(c, a, b, av, bv, width)
            got = sum(values[n] << i for i, n in enumerate(diff))
            assert got == (av - bv) & mask
            assert values[no_borrow] == int(av >= bv)


@pytest.mark.parametrize("width", [2, 3, 4])
def test_abs_diff_exhaustive(width):
    c, a, b = _two_word_circuit(width)
    d = abs_diff(c, a, b)
    c.mark_output_word(d, "d")
    for av in range(1 << width):
        for bv in range(1 << width):
            values = _eval(c, a, b, av, bv, width)
            got = sum(values[n] << i for i, n in enumerate(d))
            assert got == abs(av - bv), (av, bv)


@settings(max_examples=30, deadline=None)
@given(
    av=st.integers(min_value=0, max_value=255),
    bv=st.integers(min_value=0, max_value=255),
)
def test_abs_diff_8bit_property(av, bv):
    c, a, b = _two_word_circuit(8)
    d = abs_diff(c, a, b)
    c.mark_output_word(d, "d")
    values = _eval(c, a, b, av, bv, 8)
    assert sum(values[n] << i for i, n in enumerate(d)) == abs(av - bv)


class TestMuxWord:
    def test_select(self):
        c = Circuit("t")
        sel = c.add_input("sel")
        w0 = c.add_input_word("w0", 3)
        w1 = c.add_input_word("w1", 3)
        out = mux_word(c, sel, w0, w1)
        c.mark_output_word(out, "o")
        for s in (0, 1):
            values, _ = c.evaluate([s] + int_to_bits(5, 3) + int_to_bits(2, 3))
            got = sum(values[n] << i for i, n in enumerate(out))
            assert got == (2 if s else 5)

    def test_width_mismatch(self):
        c = Circuit("t")
        sel = c.add_input("sel")
        w0 = c.add_input_word("w0", 3)
        w1 = c.add_input_word("w1", 2)
        with pytest.raises(ValueError):
            mux_word(c, sel, w0, w1)


class TestPrimitives:
    def test_constant_word(self):
        c = Circuit("t")
        w = constant_word(c, 0b101, 3)
        values, _ = c.evaluate([])
        assert [values[n] for n in w] == [1, 0, 1]

    def test_constant_word_range(self):
        c = Circuit("t")
        with pytest.raises(ValueError):
            constant_word(c, 8, 3)

    def test_full_adder_gates_truth_table(self):
        c = Circuit("t")
        a, b, ci = (c.add_input(x) for x in "abc")
        s, co = full_adder_gates(c, a, b, ci)
        c.mark_output(s)
        c.mark_output(co)
        for av in (0, 1):
            for bv in (0, 1):
                for cv in (0, 1):
                    values, _ = c.evaluate([av, bv, cv])
                    assert values[s] + 2 * values[co] == av + bv + cv

    def test_reduce_tree_is_balanced(self):
        c = Circuit("t")
        nets = [c.add_input(f"i{k}") for k in range(8)]
        out = reduce_tree(c, CellKind.AND, nets)
        c.mark_output(out)
        assert c.critical_path_length() == 3  # log2(8)

    def test_reduce_tree_function(self):
        c = Circuit("t")
        nets = [c.add_input(f"i{k}") for k in range(5)]
        out = reduce_tree(c, CellKind.OR, nets)
        c.mark_output(out)
        for combo in range(32):
            values, _ = c.evaluate(int_to_bits(combo, 5))
            assert values[out] == int(combo != 0)

    def test_reduce_tree_rejects_empty(self):
        c = Circuit("t")
        with pytest.raises(ValueError):
            reduce_tree(c, CellKind.AND, [])
