"""Tests for the sequential DSP datapaths (MAC, FIR) and their retiming."""

import pytest

from repro.circuits.datapath import (
    constant_multiplier,
    mac_unit,
    reference_fir,
    transposed_fir,
)
from repro.netlist.circuit import Circuit, int_to_bits
from repro.netlist.validate import validate
from repro.retime.graph import RetimingGraph
from repro.retime.leiserson_saxe import minimum_period
from repro.retime.pipeline import pipeline_circuit
from repro.sim.engine import Simulator
from repro.sim.vectors import WordStimulus


class TestConstantMultiplier:
    @pytest.mark.parametrize("coeff", [0, 1, 2, 3, 5, 10, 15])
    def test_exhaustive_4bit(self, coeff):
        c = Circuit(f"cm{coeff}")
        x = c.add_input_word("x", 4)
        y = constant_multiplier(c, x, coeff)
        c.mark_output_word(y, "y")
        for xv in range(16):
            values, _ = c.evaluate(int_to_bits(xv, 4))
            got = sum(values[n] << i for i, n in enumerate(y))
            assert got == (xv * coeff) % 16, (coeff, xv)

    def test_zero_coefficient_is_constant(self):
        c = Circuit("cm0")
        x = c.add_input_word("x", 4)
        y = constant_multiplier(c, x, 0)
        c.mark_output_word(y, "y")
        hist = c.kind_histogram()
        assert hist.get("FA", 0) == 0 and hist.get("HA", 0) == 0

    def test_power_of_two_needs_no_adder(self):
        c = Circuit("cm4")
        x = c.add_input_word("x", 6)
        constant_multiplier(c, x, 4)
        assert c.kind_histogram().get("FA", 0) == 0

    def test_coefficient_wraps_modulo_width(self):
        c = Circuit("cm_wrap")
        x = c.add_input_word("x", 4)
        y = constant_multiplier(c, x, 16 + 3)  # == 3 mod 16
        c.mark_output_word(y, "y")
        values, _ = c.evaluate(int_to_bits(5, 4))
        assert sum(values[n] << i for i, n in enumerate(y)) == 15

    def test_negative_coefficient_rejected(self):
        c = Circuit("t")
        x = c.add_input_word("x", 4)
        with pytest.raises(ValueError):
            constant_multiplier(c, x, -1)


class TestMacUnit:
    def test_accumulation_sequence(self, rng):
        width, coeff = 8, 3
        circuit, ports = mac_unit(width, coeff)
        assert not [i for i in validate(circuit) if i.severity == "error"]
        sim = Simulator(circuit)
        stim = WordStimulus({"x": ports["x"]})
        sim.settle(stim.vector(x=0))
        acc = 0
        for _ in range(40):
            xv = rng.randint(0, 255)
            sim.step(stim.vector(x=xv))
            acc = (acc + coeff * xv) % 256
            # acc output reflects the PREVIOUS accumulation this cycle;
            # after the step, Q holds the sum including this input only
            # on the NEXT edge.  Verify one cycle later:
            sim_acc_next = sim.word_value(ports["acc"])
            # run one more empty-ish check next loop iteration instead
        # Direct check: replay deterministically.
        sim2 = Simulator(circuit)
        sim2.settle(stim.vector(x=0))
        expected = 0
        seq = [rng.randint(0, 255) for _ in range(30)]
        for xv in seq:
            sim2.step(stim.vector(x=xv))
            got = sim2.word_value(ports["acc"])
            assert got == expected  # Q shows the pre-edge value history
            expected = (expected + 3 * xv) % 256

    def test_retiming_graph_is_cyclic_and_feasible(self):
        circuit, _ = mac_unit(6, 3)
        graph = RetimingGraph.from_circuit(circuit)
        period, r = minimum_period(graph)
        # The accumulator loop holds 1 register over >= several cell
        # delays: min period is the whole loop delay.
        assert period >= 2
        assert graph.is_legal(r)

    def test_unachievable_period_detected(self):
        from repro.retime.leiserson_saxe import feas

        circuit, _ = mac_unit(6, 3)
        graph = RetimingGraph.from_circuit(circuit)
        assert feas(graph, 1) is None  # loop limits the period


class TestTransposedFir:
    @pytest.mark.parametrize("coeffs", [(1,), (1, 2), (1, 2, 3), (5, 0, 7)])
    def test_matches_reference(self, coeffs, rng):
        width = 8
        circuit, ports = transposed_fir(width, coeffs)
        assert not [i for i in validate(circuit) if i.severity == "error"]
        sim = Simulator(circuit)
        stim = WordStimulus({"x": ports["x"]})
        stream = [rng.randint(0, 255) for _ in range(30)]
        expected = reference_fir(stream, coeffs, width)
        sim.settle(stim.vector(x=0))
        for xv, want in zip(stream, expected):
            sim.step(stim.vector(x=xv))
            assert sim.word_value(ports["y"]) == want

    def test_register_count(self):
        width = 8
        circuit, _ = transposed_fir(width, (1, 2, 3, 4))
        # one register word between consecutive taps
        assert circuit.num_flipflops == 3 * width

    def test_empty_coefficients_rejected(self):
        with pytest.raises(ValueError):
            transposed_fir(8, ())

    def test_retiming_preserves_function_and_latency(self, rng):
        """Plain retiming (stages=0) keeps the FIR's I/O behaviour.

        The x -> tap0 -> y path is register-free, so the zero-lag
        minimum period equals the combinational bound; one extra
        pipeline stage must then beat it strictly.
        """
        width = 8
        coeffs = (3, 5, 7)
        circuit, ports = transposed_fir(width, coeffs)
        graph = RetimingGraph.from_circuit(circuit)
        base_arrival = circuit.critical_path_length()
        period, r = minimum_period(graph)
        assert period <= base_arrival
        assert pipeline_circuit(circuit, 1).period < period

        # Retime in place (stages=0) and re-verify against the golden
        # model: latency must be unchanged.
        result = pipeline_circuit(circuit, 0)
        stim = WordStimulus({"x": ports["x"]})
        stream = [rng.randint(0, 255) for _ in range(25)]
        expected = reference_fir(stream, coeffs, width)
        sim = Simulator(result.circuit)
        sim.settle(stim.vector(x=0))
        out_word = result.circuit.outputs[:width]  # y word, LSB first
        for xv, want in zip(stream, expected):
            sim.step(stim.vector(x=xv))
            assert sim.word_value(out_word) == want

    def test_retiming_reduces_glitch_activity(self, rng):
        """Moving the FIR registers into the adder chain kills glitches."""
        from repro.core.activity import analyze

        width = 8
        coeffs = (3, 5, 7)
        base, ports = transposed_fir(width, coeffs)
        retimed = pipeline_circuit(base, 0).circuit
        stim = WordStimulus({"x": ports["x"]})
        vectors = [dict(v) for v in stim.random(rng, 120)]
        act_base = analyze(base, iter(vectors))
        act_retimed = analyze(retimed, iter(vectors))
        assert act_retimed.useless <= act_base.useless
