"""Functional tests for the direction detector vs its golden model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.direction_detector import (
    build_direction_detector,
    reference_direction_detector,
)
from repro.experiments.detector import detector_stimulus
from repro.netlist.validate import validate
from repro.sim.engine import Simulator


def _observe(sim, ports):
    return {
        "direction": sim.word_value(ports.direction),
        "min": sim.word_value(ports.min_diff),
        "max": sim.word_value(ports.max_diff),
        "is_min": sim.values[ports.is_min],
        "is_max": sim.values[ports.is_max],
    }


class TestFunctional:
    @pytest.mark.parametrize("width,threshold", [(4, 3), (6, 10), (8, 16)])
    def test_random_vs_reference(self, width, threshold, rng):
        circuit, ports = build_direction_detector(width=width, threshold=threshold)
        assert not [i for i in validate(circuit) if i.severity == "error"]
        sim = Simulator(circuit)
        stim = detector_stimulus(ports)
        top = (1 << width) - 1
        sim.settle(stim.vector(a0=0, a1=0, a2=0, b0=0, b1=0, b2=0))
        for _ in range(150):
            a = [rng.randint(0, top) for _ in range(3)]
            b = [rng.randint(0, top) for _ in range(3)]
            sim.step(
                stim.vector(a0=a[0], a1=a[1], a2=a[2], b0=b[0], b1=b[1], b2=b[2])
            )
            expected = reference_direction_detector(a, b, width, threshold)
            assert _observe(sim, ports) == expected, (a, b)

    def test_corner_cases(self):
        width, threshold = 8, 16
        circuit, ports = build_direction_detector(width=width, threshold=threshold)
        sim = Simulator(circuit)
        stim = detector_stimulus(ports)
        cases = [
            ([0, 0, 0], [0, 0, 0]),  # all equal -> default direction
            ([255, 255, 255], [0, 0, 0]),  # max spread everywhere
            ([0, 128, 255], [255, 128, 0]),  # symmetric
            ([255, 0, 0], [0, 0, 255]),  # left diagonal perfect match
            ([17, 17, 17], [17, 17, 17]),
        ]
        sim.settle(stim.vector(a0=0, a1=0, a2=0, b0=0, b1=0, b2=0))
        for a, b in cases:
            sim.step(
                stim.vector(a0=a[0], a1=a[1], a2=a[2], b0=b[0], b1=b[1], b2=b[2])
            )
            expected = reference_direction_detector(a, b, width, threshold)
            assert _observe(sim, ports) == expected, (a, b)

    def test_default_direction_below_threshold(self):
        """Small spread must force the default (vertical) direction."""
        circuit, ports = build_direction_detector(width=8, threshold=200)
        sim = Simulator(circuit)
        stim = detector_stimulus(ports)
        sim.settle(stim.vector(a0=0, a1=0, a2=0, b0=0, b1=0, b2=0))
        sim.step(stim.vector(a0=10, a1=50, a2=90, b0=90, b1=50, b2=10))
        assert sim.word_value(ports.direction) == 1


class TestStructure:
    def test_register_inputs_ff_count(self):
        """Paper circuit 1 has 48 flipflops = 6 words x 8 bits."""
        circuit, _ = build_direction_detector(width=8, register_inputs=True)
        assert circuit.num_flipflops == 48

    def test_unregistered_has_no_ffs(self):
        circuit, _ = build_direction_detector(width=8)
        assert circuit.num_flipflops == 0

    def test_threshold_must_fit(self):
        with pytest.raises(ValueError):
            build_direction_detector(width=4, threshold=16)

    def test_width_guard(self):
        with pytest.raises(ValueError):
            build_direction_detector(width=1)

    def test_is_deeply_unbalanced(self):
        """The ripple datapath gives a long critical path (glitch source)."""
        circuit, _ = build_direction_detector(width=8)
        assert circuit.critical_path_length() > 40


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_reference_model_consistency_property(data):
    """min <= max and the chosen direction's flags are coherent."""
    a = [data.draw(st.integers(min_value=0, max_value=255)) for _ in range(3)]
    b = [data.draw(st.integers(min_value=0, max_value=255)) for _ in range(3)]
    out = reference_direction_detector(a, b)
    assert out["min"] <= out["max"]
    assert out["direction"] in (0, 1, 2)
    d_mid = abs(a[1] - b[1])
    assert out["is_min"] == int(d_mid == out["min"])
    assert out["is_max"] == int(d_mid == out["max"])
