"""Functional and structural tests for the multipliers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.multipliers import (
    array_multiplier,
    build_multiplier_circuit,
    wallace_tree_multiplier,
)
from repro.netlist.circuit import Circuit, int_to_bits
from repro.netlist.validate import validate
from repro.sim.engine import Simulator
from repro.sim.vectors import WordStimulus


@pytest.mark.parametrize("architecture", ["array", "wallace"])
def test_exhaustive_4x4(architecture):
    c, ports = build_multiplier_circuit(4, architecture)
    assert not [i for i in validate(c) if i.severity == "error"]
    for x in range(16):
        for y in range(16):
            bits = int_to_bits(x, 4) + int_to_bits(y, 4)
            values, _ = c.evaluate(bits)
            got = sum(values[n] << i for i, n in enumerate(ports["product"]))
            assert got == x * y, (architecture, x, y)


@pytest.mark.parametrize("architecture", ["array", "wallace"])
@settings(max_examples=40, deadline=None)
@given(
    x=st.integers(min_value=0, max_value=255),
    y=st.integers(min_value=0, max_value=255),
)
def test_random_8x8_property(architecture, x, y):
    c, ports = build_multiplier_circuit(8, architecture)
    bits = int_to_bits(x, 8) + int_to_bits(y, 8)
    values, _ = c.evaluate(bits)
    got = sum(values[n] << i for i, n in enumerate(ports["product"]))
    assert got == x * y


@pytest.mark.parametrize("architecture", ["array", "wallace"])
def test_event_simulation_matches(architecture, rng):
    c, ports = build_multiplier_circuit(8, architecture)
    stim = WordStimulus({"x": ports["x"], "y": ports["y"]})
    sim = Simulator(c)
    sim.settle(stim.vector(x=0, y=0))
    for _ in range(60):
        x, y = rng.randint(0, 255), rng.randint(0, 255)
        sim.step(stim.vector(x=x, y=y))
        assert sim.word_value(ports["product"]) == x * y


@pytest.mark.parametrize("architecture", ["array", "wallace"])
def test_rectangular_operands(architecture):
    c = Circuit("rect")
    x = c.add_input_word("x", 6)
    y = c.add_input_word("y", 3)
    builder = array_multiplier if architecture == "array" else wallace_tree_multiplier
    product = builder(c, x, y)
    c.mark_output_word(product, "p")
    assert len(product) == 9
    for xv in (0, 5, 63):
        for yv in range(8):
            bits = int_to_bits(xv, 6) + int_to_bits(yv, 3)
            values, _ = c.evaluate(bits)
            got = sum(values[n] << i for i, n in enumerate(product))
            assert got == xv * yv


class TestStructure:
    def test_partial_product_count(self):
        c, _ = build_multiplier_circuit(8, "array")
        hist = c.kind_histogram()
        assert hist["AND"] == 64  # the 8x8 AND matrix

    @pytest.mark.parametrize("n,max_layers", [(8, 4), (16, 6)])
    def test_wallace_reduction_is_logarithmic(self, n, max_layers):
        """Column heights shrink by ~2/3 per layer (Dadda sequence)."""
        c, _ = build_multiplier_circuit(n, "wallace")
        layers = {
            int(cell.name.split("_l")[1].split("_")[0])
            for cell in c.cells
            if "_l" in cell.name and cell.kind.value in ("FA", "HA")
        }
        assert max(layers) + 1 <= max_layers

    def test_array_rows_are_linear(self):
        """The array has one carry-save row per multiplier bit."""
        c, _ = build_multiplier_circuit(8, "array")
        rows = {
            int(cell.name.split("_fa")[1].split("_")[0])
            for cell in c.cells
            if "_fa" in cell.name and cell.kind.value == "FA"
        }
        assert rows == set(range(2, 8))  # rows 2..7 are full FA rows

    def test_product_width(self):
        for n in (2, 3, 5):
            for arch in ("array", "wallace"):
                _, ports = build_multiplier_circuit(n, arch)
                assert len(ports["product"]) == 2 * n

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ValueError, match="unknown architecture"):
            build_multiplier_circuit(8, "booth")

    def test_degenerate_width_rejected(self):
        c = Circuit("t")
        with pytest.raises(ValueError):
            array_multiplier(c, [], [])


def test_glitchiness_ordering(rng):
    """The paper's Table 1 headline: array glitches far more than wallace."""
    from repro.core.activity import analyze

    ratios = {}
    for arch in ("array", "wallace"):
        c, ports = build_multiplier_circuit(8, arch)
        stim = WordStimulus({"x": ports["x"], "y": ports["y"]})
        result = analyze(c, stim.random(rng, 151))
        ratios[arch] = result.useless_useful_ratio()
    assert ratios["array"] > 2 * ratios["wallace"]
