"""Tests for the command-line front end."""

import json

import pytest

from repro.cli import build_named_circuit, main


class TestBuildNamedCircuit:
    def test_rca(self):
        circuit, stim = build_named_circuit("rca8")
        assert len(circuit.inputs) == 16
        assert set(stim.words) == {"a", "b"}

    def test_multipliers(self):
        for name, words in (("array4", {"x", "y"}), ("wallace4", {"x", "y"})):
            circuit, stim = build_named_circuit(name)
            assert set(stim.words) == words

    def test_detector(self):
        circuit, stim = build_named_circuit("detector")
        assert len(stim.words) == 6

    @pytest.mark.parametrize("bad", ["rcaX", "rca0", "rca99", "nonsense"])
    def test_bad_names(self, bad):
        with pytest.raises(SystemExit):
            build_named_circuit(bad)


class TestCommands:
    def test_analyze(self, capsys):
        assert main(["analyze", "--circuit", "rca8", "--vectors", "50"]) == 0
        out = capsys.readouterr().out
        assert "L/F" in out and "useless" in out

    def test_analyze_sumcarry_delay(self, capsys):
        assert (
            main(
                [
                    "analyze", "--circuit", "array4", "--vectors", "30",
                    "--delay", "sumcarry",
                ]
            )
            == 0
        )
        assert "dsum=2" in capsys.readouterr().out

    def test_analyze_backends_agree_bit_exactly(self, capsys):
        outputs = []
        for backend in ("event", "waveform", "auto"):
            assert (
                main(
                    [
                        "analyze", "--circuit", "array4", "--vectors", "40",
                        "--backend", backend,
                    ]
                )
                == 0
            )
            # The banner names the delay model, not the engine, so the
            # whole table must be identical across exact backends.
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1] == outputs[2]

    def test_analyze_vcd_via_auto(self, capsys, tmp_path):
        vcd = tmp_path / "out.vcd"
        assert (
            main(
                [
                    "analyze", "--circuit", "rca4", "--vectors", "10",
                    "--backend", "auto", "--vcd", str(vcd),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "wrote 10 cycles" in out and "L/F" in out
        assert vcd.read_text().startswith("$date")

    def test_analyze_vcd_rejects_batch_backends(self):
        for backend in ("waveform", "bitparallel"):
            with pytest.raises(SystemExit, match="event-driven"):
                main(
                    [
                        "analyze", "--circuit", "rca4", "--vectors", "5",
                        "--backend", backend, "--vcd", "/tmp/never.vcd",
                    ]
                )

    def test_analyze_vcd_rejects_shards(self):
        with pytest.raises(SystemExit, match="shards"):
            main(
                [
                    "analyze", "--circuit", "rca4", "--vectors", "5",
                    "--shards", "2", "--vcd", "/tmp/never.vcd",
                ]
            )

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1", "--vectors", "30"]) == 0
        out = capsys.readouterr().out
        assert "wallace" in out

    def test_experiment_sec42(self, capsys):
        assert main(["experiment", "sec42", "--vectors", "40"]) == 0
        out = capsys.readouterr().out
        assert "paper" in out

    def test_experiment_adders(self, capsys):
        assert main(["experiment", "adders", "--vectors", "30"]) == 0
        assert "kogge-stone" in capsys.readouterr().out

    def test_experiment_unknown(self):
        with pytest.raises(SystemExit):
            main(["experiment", "does-not-exist"])

    def test_export_json_parses(self, capsys):
        assert main(["export", "--circuit", "rca4"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["name"] == "rca4"

    def test_export_dot(self, capsys):
        assert main(["export", "--circuit", "rca4", "--format", "dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_balance(self, capsys):
        assert main(["balance", "--circuit", "rca8", "--vectors", "60"]) == 0
        out = capsys.readouterr().out
        assert "balanced" in out and "pipelined" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
