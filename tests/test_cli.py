"""Tests for the command-line front end."""

import json

import pytest

from repro.cli import build_named_circuit, main


class TestBuildNamedCircuit:
    def test_rca(self):
        circuit, stim = build_named_circuit("rca8")
        assert len(circuit.inputs) == 16
        assert set(stim.words) == {"a", "b"}

    def test_multipliers(self):
        for name, words in (("array4", {"x", "y"}), ("wallace4", {"x", "y"})):
            circuit, stim = build_named_circuit(name)
            assert set(stim.words) == words

    def test_detector(self):
        circuit, stim = build_named_circuit("detector")
        assert len(stim.words) == 6

    @pytest.mark.parametrize("bad", ["rcaX", "rca0", "rca99", "nonsense"])
    def test_bad_names(self, bad):
        with pytest.raises(SystemExit):
            build_named_circuit(bad)


class TestCommands:
    def test_analyze(self, capsys):
        assert main(["analyze", "--circuit", "rca8", "--vectors", "50"]) == 0
        out = capsys.readouterr().out
        assert "L/F" in out and "useless" in out

    def test_analyze_sumcarry_delay(self, capsys):
        assert (
            main(
                [
                    "analyze", "--circuit", "array4", "--vectors", "30",
                    "--delay", "sumcarry",
                ]
            )
            == 0
        )
        assert "dsum=2" in capsys.readouterr().out

    def test_analyze_backends_agree_bit_exactly(self, capsys):
        outputs = []
        for backend in ("event", "waveform", "auto"):
            assert (
                main(
                    [
                        "analyze", "--circuit", "array4", "--vectors", "40",
                        "--backend", backend,
                    ]
                )
                == 0
            )
            # The banner names the delay model, not the engine, so the
            # whole table must be identical across exact backends.
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1] == outputs[2]

    def test_analyze_vcd_via_auto(self, capsys, tmp_path):
        vcd = tmp_path / "out.vcd"
        assert (
            main(
                [
                    "analyze", "--circuit", "rca4", "--vectors", "10",
                    "--backend", "auto", "--vcd", str(vcd),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "wrote 10 cycles" in out and "L/F" in out
        assert vcd.read_text().startswith("$date")

    def test_analyze_vcd_rejects_batch_backends(self):
        for backend in ("waveform", "bitparallel"):
            with pytest.raises(SystemExit, match="event-driven"):
                main(
                    [
                        "analyze", "--circuit", "rca4", "--vectors", "5",
                        "--backend", backend, "--vcd", "/tmp/never.vcd",
                    ]
                )

    def test_analyze_vcd_rejects_shards(self):
        with pytest.raises(SystemExit, match="shards"):
            main(
                [
                    "analyze", "--circuit", "rca4", "--vectors", "5",
                    "--shards", "2", "--vcd", "/tmp/never.vcd",
                ]
            )

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1", "--vectors", "30"]) == 0
        out = capsys.readouterr().out
        assert "wallace" in out

    def test_experiment_sec42(self, capsys):
        assert main(["experiment", "sec42", "--vectors", "40"]) == 0
        out = capsys.readouterr().out
        assert "paper" in out

    def test_experiment_adders(self, capsys):
        assert main(["experiment", "adders", "--vectors", "30"]) == 0
        assert "kogge-stone" in capsys.readouterr().out

    def test_experiment_unknown(self):
        with pytest.raises(SystemExit):
            main(["experiment", "does-not-exist"])

    def test_export_json_parses(self, capsys):
        assert main(["export", "--circuit", "rca4"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["name"] == "rca4"

    def test_export_dot(self, capsys):
        assert main(["export", "--circuit", "rca4", "--format", "dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_balance(self, capsys):
        assert main(["balance", "--circuit", "rca8", "--vectors", "60"]) == 0
        out = capsys.readouterr().out
        assert "balanced" in out and "pipelined" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestServiceCommands:
    def test_analyze_cache_warm_output_matches_cold(self, tmp_path, capsys):
        args = [
            "analyze", "--circuit", "rca6", "--vectors", "40",
            "--cache", str(tmp_path),
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "[cache] simulated" in cold
        assert "[cache] cache" in warm
        # Everything below the cache banner is byte-identical.
        assert cold.split("\n", 1)[1] == warm.split("\n", 1)[1]

    def test_analyze_cache_matches_uncached(self, tmp_path, capsys):
        cached = [
            "analyze", "--circuit", "rca6", "--vectors", "40",
            "--cache", str(tmp_path),
        ]
        assert main(cached) == 0
        cached_out = capsys.readouterr().out.split("\n", 1)[1]
        assert main(cached[:-2]) == 0
        assert capsys.readouterr().out == cached_out

    def test_experiment_cache_reports_hits(self, tmp_path, capsys):
        args = [
            "experiment", "table2", "--vectors", "30",
            "--cache", str(tmp_path),
        ]
        assert main(args) == 0
        assert "0 hit(s), 4 miss(es)" in capsys.readouterr().out
        assert main(args) == 0
        assert "4 hit(s), 0 miss(es)" in capsys.readouterr().out

    def test_submit_status_cache_flow(self, tmp_path, capsys):
        cache = str(tmp_path)
        assert main([
            "submit", "--circuit", "rca4", "--vectors", "20",
            "--sweep", "circuit=rca4,rca6", "--cache", cache,
        ]) == 0
        first = capsys.readouterr().out
        assert "0 hit(s), 2 computed" in first
        assert main([
            "submit", "--circuit", "rca4", "--vectors", "20",
            "--sweep", "circuit=rca4,rca6,rca8", "--cache", cache,
        ]) == 0
        assert "2 hit(s), 1 computed" in capsys.readouterr().out
        assert main(["status", "--cache", cache]) == 0
        out = capsys.readouterr().out
        assert "job-0000" in out and "job-0001" in out
        assert main(["cache", "--dir", cache]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "glitch-exact" in out

    def test_submit_dry_run_simulates_nothing(self, tmp_path, capsys):
        from repro.service.store import ResultStore

        cache = str(tmp_path)
        assert main([
            "submit", "--circuit", "rca4", "--vectors", "20",
            "--dry-run", "--cache", cache,
        ]) == 0
        assert "to simulate" in capsys.readouterr().out
        assert len(ResultStore(cache)) == 0

    def test_submit_bad_sweep(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "submit", "--sweep", "bogus-axis", "--cache", str(tmp_path),
            ])
        with pytest.raises(SystemExit):
            main([
                "submit", "--sweep", "n_vectors=ten", "--cache", str(tmp_path),
            ])

    def test_cache_clear(self, tmp_path, capsys):
        cache = str(tmp_path)
        assert main([
            "analyze", "--circuit", "rca4", "--vectors", "10",
            "--cache", cache,
        ]) == 0
        capsys.readouterr()
        assert main(["cache", "--dir", cache, "--clear"]) == 0
        assert "cleared 1" in capsys.readouterr().out

    def test_status_unknown_job(self, tmp_path):
        with pytest.raises(SystemExit, match="no job"):
            main(["status", "--cache", str(tmp_path), "--job", "nope"])

    def test_vcd_rejects_cache(self, tmp_path):
        with pytest.raises(SystemExit, match="drop --cache"):
            main([
                "analyze", "--circuit", "rca4", "--vectors", "5",
                "--vcd", str(tmp_path / "x.vcd"), "--cache", str(tmp_path),
            ])

    def test_cache_limit_zero_lists_nothing(self, tmp_path, capsys):
        cache = str(tmp_path)
        assert main([
            "analyze", "--circuit", "rca4", "--vectors", "10",
            "--cache", cache,
        ]) == 0
        capsys.readouterr()
        assert main(["cache", "--dir", cache, "--limit", "0"]) == 0
        assert "most recent" not in capsys.readouterr().out


class TestEstimateCommands:
    def test_estimate_basic(self, capsys):
        assert main(["estimate", "--circuit", "array4"]) == 0
        out = capsys.readouterr().out
        assert "analytic estimate" in out
        assert "FA.sum" in out and "FA.carry" in out
        assert "net class" in out

    def test_estimate_stimulus_aware(self, capsys):
        assert main([
            "estimate", "--circuit", "rca8",
            "--stimulus", "correlated", "--flip-probability", "0.1",
        ]) == 0
        out = capsys.readouterr().out
        assert "correlated" in out and "D=0.1" in out

    def test_estimate_cache_warm(self, tmp_path, capsys):
        args = ["estimate", "--circuit", "rca8", "--cache", str(tmp_path)]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "[estimate cache] estimated" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "[estimate cache] cache" in warm
        assert cold.split("\n", 1)[1] == warm.split("\n", 1)[1]

    def test_estimate_cache_shared_across_seeds(self, tmp_path, capsys):
        cache = str(tmp_path)
        assert main([
            "estimate", "--circuit", "rca8", "--seed", "1", "--cache", cache,
        ]) == 0
        capsys.readouterr()
        assert main([
            "estimate", "--circuit", "rca8", "--seed", "2", "--cache", cache,
        ]) == 0
        assert "[estimate cache] cache" in capsys.readouterr().out

    def test_estimate_bad_circuit(self):
        with pytest.raises(SystemExit):
            main(["estimate", "--circuit", "nonsense"])

    def test_analyze_estimate_comparison(self, capsys):
        assert main([
            "analyze", "--circuit", "rca8", "--vectors", "50", "--estimate",
        ]) == 0
        out = capsys.readouterr().out
        assert "simulated" in out and "estimated" in out
        assert "useful/cycle" in out and "total/cycle" in out

    def test_analyze_estimate_bitparallel_labelled_honestly(self, capsys):
        """The zero-delay engine counts useful-only totals; the
        comparison table must not call that 'glitch-exact'."""
        assert main([
            "analyze", "--circuit", "rca8", "--vectors", "50",
            "--backend", "bitparallel", "--estimate",
        ]) == 0
        out = capsys.readouterr().out
        assert "useful-only totals" in out
        assert "glitch-exact" not in out
        assert main([
            "analyze", "--circuit", "rca8", "--vectors", "50",
            "--backend", "waveform", "--estimate",
        ]) == 0
        assert "glitch-exact simulation" in capsys.readouterr().out

    def test_analyze_estimate_with_cache(self, tmp_path, capsys):
        args = [
            "analyze", "--circuit", "rca6", "--vectors", "30",
            "--estimate", "--cache", str(tmp_path),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "[cache] cache" in warm
        assert "[estimate cache] cache" in warm

    def test_experiment_ablation(self, capsys):
        assert main(["experiment", "ablation", "--vectors", "30"]) == 0
        out = capsys.readouterr().out
        assert "estimate/simulate gap" in out
        assert "total/zero-delay" in out
        assert "array8" in out

    def test_submit_estimate_sweep(self, tmp_path, capsys):
        cache = str(tmp_path)
        assert main([
            "submit", "--circuit", "rca4", "--vectors", "20",
            "--sweep", "estimate=0,1", "--cache", cache,
        ]) == 0
        out = capsys.readouterr().out
        assert "0 hit(s), 2 computed" in out
        assert "estimate" in out
        assert main(["cache", "--dir", cache]) == 0
        assert "estimate" in capsys.readouterr().out


class TestExploreCommand:
    def test_explore_smoke(self, capsys):
        assert main([
            "explore", "--circuit", "rca4", "--vectors", "30",
        ]) == 0
        out = capsys.readouterr().out
        assert "Pareto front" in out
        assert "original" in out
        assert "rank agreement" in out

    def test_explore_exhaustive(self, capsys):
        assert main([
            "explore", "--circuit", "rca4", "--vectors", "30",
            "--strategy", "exhaustive",
        ]) == 0
        assert "exhaustive search" in capsys.readouterr().out

    def test_explore_cache_warm(self, tmp_path, capsys):
        args = [
            "explore", "--circuit", "rca4", "--vectors", "30",
            "--cache", str(tmp_path),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "1 hit(s), 0 miss(es)" in out

    def test_explore_empty_front_fails(self, tmp_path):
        with pytest.raises(SystemExit, match="empty front"):
            main([
                "explore", "--circuit", "rca4", "--vectors", "20",
                "--max-area", "0.0001",
            ])

    def test_explore_bad_circuit(self):
        with pytest.raises(SystemExit):
            main(["explore", "--circuit", "nonsense"])


class TestImportCommand:
    def _export(self, tmp_path, name="rca4"):
        from repro.circuits.catalog import build_named_circuit as build
        from repro.netlist.io import circuit_to_json

        circuit, _ = build(name)
        path = tmp_path / f"{name}.json"
        path.write_text(circuit_to_json(circuit))
        return path

    def test_import_analyze_matches_native_analyze(self, tmp_path, capsys):
        path = self._export(tmp_path)
        assert main(["import", str(path), "--vectors", "40"]) == 0
        imported = capsys.readouterr().out
        assert main(["analyze", "--circuit", "rca4", "--vectors", "40"]) == 0
        native = capsys.readouterr().out
        # Same counts line for line: the derived word stimulus replays
        # the catalog stream exactly.
        for metric in ("total", "useful", "useless"):
            line_i = [ln for ln in imported.splitlines() if metric in ln]
            line_n = [ln for ln in native.splitlines() if metric in ln]
            assert line_i and line_i[0].split("|")[-1] == line_n[0].split("|")[-1]

    def test_import_estimate(self, tmp_path, capsys):
        path = self._export(tmp_path)
        assert main(["import", str(path), "--action", "estimate"]) == 0
        out = capsys.readouterr().out
        assert "analytic estimate" in out and "imported" in out

    def test_import_explore(self, tmp_path, capsys):
        path = self._export(tmp_path)
        assert main([
            "import", str(path), "--action", "explore", "--vectors", "20",
        ]) == 0
        assert "Pareto front" in capsys.readouterr().out

    def test_import_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["import", str(tmp_path / "nope.json")])

    def test_import_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{\"schema\": 99}")
        with pytest.raises(SystemExit, match="schema"):
            main(["import", str(path)])
        path.write_text("not json at all")
        with pytest.raises(SystemExit, match="not a schema-v1"):
            main(["import", str(path)])

    def test_import_rejects_inputless_netlist(self, tmp_path):
        import json as _json

        doc = {
            "schema": 1, "name": "empty", "nets": [], "inputs": [],
            "outputs": [], "cells": [],
        }
        path = tmp_path / "empty.json"
        path.write_text(_json.dumps(doc))
        with pytest.raises(SystemExit, match="no primary inputs"):
            main(["import", str(path)])

    def test_import_with_cache(self, tmp_path, capsys):
        path = self._export(tmp_path)
        cache = tmp_path / "cache"
        args = ["import", str(path), "--vectors", "30", "--cache", str(cache)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "[cache] cache" in capsys.readouterr().out


class TestFrontierExperiment:
    def test_frontier_smoke(self, capsys):
        assert main(["experiment", "frontier", "--vectors", "25"]) == 0
        out = capsys.readouterr().out
        assert "Frontier discovery" in out
        assert "bound" in out
        assert "array8" in out


class TestBackendSelection:
    """--backend validation: unknown names and unavailable engines."""

    def test_unknown_backend_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["analyze", "--circuit", "rca4", "--backend", "quantum"])
        assert exc.value.code == 2  # argparse usage error
        assert "invalid choice" in capsys.readouterr().err

    def test_unknown_backend_rejected_on_submit(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["submit", "--circuit", "rca4", "--backend", "quantum"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_unavailable_backend_one_line_error(self, monkeypatch):
        """A known-but-unavailable engine exits with a clear one-liner
        naming the engines that *can* run."""
        monkeypatch.setattr(
            "repro.sim.vector._NUMPY_ERROR",
            "numpy is not installed (simulated by test)",
        )
        with pytest.raises(SystemExit) as exc:
            main(["analyze", "--circuit", "rca4", "--vectors", "5",
                  "--backend", "vector"])
        message = str(exc.value)
        assert "\n" not in message
        assert "'vector' backend is unavailable" in message
        assert "available backends:" in message
        for name in ("bitparallel", "event", "waveform"):
            assert name in message

    def test_auto_degrades_without_numpy(self, monkeypatch, capsys):
        monkeypatch.setattr(
            "repro.sim.vector._NUMPY_ERROR",
            "numpy is not installed (simulated by test)",
        )
        assert main(["analyze", "--circuit", "rca4", "--vectors", "10",
                     "--backend", "auto"]) == 0
        assert "L/F" in capsys.readouterr().out

    def test_codegen_tiers_agree_with_event_via_cli(self, capsys):
        from repro.sim.vector import numpy_available

        backends = ["event", "codegen"]
        if numpy_available():
            backends.append("vector")
        outputs = []
        for backend in backends:
            assert main(["analyze", "--circuit", "array4", "--vectors",
                         "40", "--backend", backend]) == 0
            outputs.append(capsys.readouterr().out)
        for other in outputs[1:]:
            assert other == outputs[0]
