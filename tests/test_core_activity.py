"""Unit tests for circuit-level activity accounting."""

import pytest

from repro.core.activity import ActivityResult, accumulate_traces, analyze
from repro.core.transitions import NodeActivity
from repro.netlist.cells import CellKind
from repro.netlist.circuit import Circuit
from repro.sim.delays import ZeroDelay
from repro.sim.engine import CycleTrace, Simulator


@pytest.fixture
def hazard_circuit():
    """AND(a, NOT a) plus a BUF(b) reference path."""
    c = Circuit("hazard")
    a, b = c.add_input("a"), c.add_input("b")
    na = c.gate(CellKind.NOT, a, name="inv")
    y = c.new_net("y")
    c.gate(CellKind.AND, a, na, output=y, name="and")
    r = c.new_net("r")
    c.gate(CellKind.BUF, b, output=r, name="buf")
    c.mark_output(y)
    c.mark_output(r)
    return c


class TestAnalyze:
    def test_pure_glitches_classified_useless(self, hazard_circuit):
        c = hazard_circuit
        # Toggle a every cycle, hold b: y glitches, never changes settled.
        vectors = [[k % 2, 0] for k in range(21)]
        result = analyze(c, vectors)
        y = c.net("y")
        act = result.node(y)
        assert act.useful == 0
        assert act.useless > 0
        assert act.useless % 2 == 0

    def test_pure_useful_on_buffer(self, hazard_circuit):
        c = hazard_circuit
        vectors = [[0, k % 2] for k in range(11)]
        result = analyze(c, vectors)
        act = result.node(c.net("r"))
        assert act.useful == 10
        assert act.useless == 0

    def test_summary_fields(self, hazard_circuit):
        result = analyze(hazard_circuit, [[k % 2, 0] for k in range(5)])
        s = result.summary()
        assert s["cycles"] == 4
        assert s["total"] == s["useful"] + s["useless"]
        assert s["reduction_bound"] == pytest.approx(1 + s["L/F"], rel=1e-6)

    def test_zero_delay_rejected(self, hazard_circuit):
        with pytest.raises(ValueError, match="ZeroDelay"):
            analyze(hazard_circuit, [[0, 0]], delay_model=ZeroDelay())

    def test_monitor_restricts_nodes(self, hazard_circuit):
        c = hazard_circuit
        y = c.net("y")
        result = analyze(c, [[k % 2, k % 2] for k in range(9)], monitor=[y])
        assert set(result.per_node) <= {y}

    def test_ratio_edge_cases(self):
        r = ActivityResult("c", "unit")
        assert r.useless_useful_ratio() == 0.0
        r.per_node[0] = NodeActivity(useless=4, toggles=4)
        assert r.useless_useful_ratio() == float("inf")


class TestResultViews:
    def _result(self):
        r = ActivityResult("c", "unit", cycles=10)
        r.per_node[0] = NodeActivity(toggles=5, rises=3, useful=1, useless=4, cycles_active=5)
        r.per_node[1] = NodeActivity(toggles=2, rises=1, useful=2, useless=0, cycles_active=2)
        r.node_names = {0: "x", 1: "y"}
        return r

    def test_aggregates(self):
        r = self._result()
        assert r.total_transitions == 7
        assert r.useful == 3
        assert r.useless == 4
        assert r.rises == 4
        assert r.glitches == 2

    def test_restrict(self):
        r = self._result().restrict([1])
        assert set(r.per_node) == {1}
        assert r.total_transitions == 2
        assert r.cycles == 10

    def test_word_profile(self):
        r = self._result()
        profile = r.word_profile([0, 1, 99])
        assert [p.toggles for p in profile] == [5, 2, 0]

    def test_merge(self):
        a, b = self._result(), self._result()
        a.merge(b)
        assert a.cycles == 20
        assert a.total_transitions == 14

    def test_merge_different_circuits_rejected(self):
        a = self._result()
        b = ActivityResult("other", "unit")
        with pytest.raises(ValueError):
            a.merge(b)

    def test_node_missing_returns_zero_record(self):
        r = self._result()
        assert r.node(1234).toggles == 0


class TestAccumulateTraces:
    def test_matches_manual_count(self):
        result = ActivityResult("c", "unit")
        traces = [
            CycleTrace(cycle=0, toggles={5: 3}, rises={5: 2}),
            CycleTrace(cycle=1, toggles={5: 2, 6: 1}, rises={5: 1, 6: 1}),
        ]
        accumulate_traces(result, traces)
        assert result.cycles == 2
        assert result.node(5).toggles == 5
        assert result.node(5).useful == 1
        assert result.node(5).useless == 4
        assert result.node(6).useful == 1

    def test_parity_against_settled_values(self, rng):
        """Cross-check: per-cycle parity == settled-value change."""
        from tests.conftest import random_dag_circuit

        c = random_dag_circuit(rng, n_inputs=4, n_gates=14)
        sim = Simulator(c)
        vec = [rng.randint(0, 1) for _ in c.inputs]
        sim.settle(vec)
        prev = list(sim.values)
        for _ in range(30):
            vec = [rng.randint(0, 1) for _ in c.inputs]
            trace = sim.step(vec)
            for net, count in trace.toggles.items():
                changed = sim.values[net] != prev[net]
                assert (count % 2 == 1) == changed, (
                    "odd parity must coincide with settled-value change"
                )
            prev = list(sim.values)
