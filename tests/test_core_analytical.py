"""Unit tests for the closed-form RCA model (paper eqs. 2-7, Sec. 3.1)."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.core.analytical import (
    rca_expected_counts,
    rca_per_bit_table,
    transition_ratio_carry,
    transition_ratio_sum,
    useful_ratio_carry,
    useful_ratio_sum,
    useless_ratio_carry,
    useless_ratio_sum,
    worst_case_probability,
    worst_case_transitions,
    worst_case_vectors,
)


class TestEquations:
    def test_first_stage_values(self):
        # Stage 0: S_0 toggles iff the (a0, b0) parity changes -> 1/2.
        assert transition_ratio_sum(0) == Fraction(1, 2)
        assert useless_ratio_sum(0) == 0
        # C_1 = a0 & b0: P(change) = 2 * 1/4 * 3/4 = 3/8.
        assert transition_ratio_carry(0) == Fraction(3, 8)
        assert useful_ratio_carry(0) == Fraction(3, 8)
        assert useless_ratio_carry(0) == 0

    @given(st.integers(min_value=0, max_value=64))
    def test_totals_decompose_property(self, i):
        """TR = UFTR + ULTR must hold exactly (eqs. 2-7 are consistent)."""
        assert (
            transition_ratio_sum(i)
            == useful_ratio_sum(i) + useless_ratio_sum(i)
        )
        assert (
            transition_ratio_carry(i)
            == useful_ratio_carry(i) + useless_ratio_carry(i)
        )

    @given(st.integers(min_value=0, max_value=64))
    def test_ranges_property(self, i):
        for ratio in (
            transition_ratio_sum(i),
            transition_ratio_carry(i),
            useful_ratio_sum(i),
            useless_ratio_sum(i),
            useful_ratio_carry(i),
            useless_ratio_carry(i),
        ):
            assert 0 <= ratio < Fraction(5, 4) + 1

    def test_monotone_growth_with_bit_index(self):
        """Higher bits glitch more (longer carry history)."""
        for i in range(10):
            assert useless_ratio_sum(i + 1) > useless_ratio_sum(i)
            assert transition_ratio_carry(i + 1) > transition_ratio_carry(i)

    def test_asymptotes(self):
        """Paper: TR(S) -> 5/4, TR(C) -> 3/4, ULTR(S) -> 3/4."""
        assert abs(float(transition_ratio_sum(60)) - 1.25) < 1e-12
        assert abs(float(transition_ratio_carry(60)) - 0.75) < 1e-12
        assert float(useful_ratio_sum(60)) == 0.5

    def test_negative_stage_rejected(self):
        with pytest.raises(ValueError):
            transition_ratio_sum(-1)


class TestPaperTotals:
    def test_figure5_configuration(self):
        """N=16, 4000 vectors: paper reports 119002/63334/55668, L/F 0.88."""
        exp = rca_expected_counts(16, 4000)
        assert exp["total"] == pytest.approx(119002, rel=2e-4)
        assert exp["useful"] == pytest.approx(63334, rel=2e-4)
        assert exp["useless"] == pytest.approx(55668, rel=2e-4)
        assert exp["L/F"] == pytest.approx(0.88, abs=0.01)

    def test_per_bit_table_shape(self):
        rows = rca_per_bit_table(16, 4000)
        assert len(rows) == 16
        assert rows[0]["sum_useful"] == pytest.approx(2000)
        assert rows[0]["sum_useless"] == 0
        # Figure 5: useless counts rise along the word.
        useless = [r["sum_useless"] for r in rows]
        assert useless == sorted(useless)

    def test_expected_counts_scale_linearly(self):
        one = rca_expected_counts(8, 1)
        many = rca_expected_counts(8, 1000)
        assert many["total"] == pytest.approx(1000 * one["total"])

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            rca_expected_counts(0, 100)


class TestWorstCase:
    def test_bound_is_n(self):
        assert worst_case_transitions(7) == 7

    def test_probability_formula(self):
        assert worst_case_probability(1) == pytest.approx(3 / 8)
        assert worst_case_probability(4) == pytest.approx(3 * (1 / 8) ** 4)

    @given(st.integers(min_value=1, max_value=24))
    def test_vectors_structure_property(self, n):
        prev_a, prev_b, new_a, new_b = worst_case_vectors(n)
        mask = (1 << n) - 1
        assert prev_a == prev_b  # generate/kill pattern per stage
        assert (new_a ^ new_b) & mask == mask  # propagate everywhere

    @given(st.integers(min_value=2, max_value=16))
    def test_worst_case_achieved_in_simulation_property(self, n):
        """The constructive stimulus really yields N toggles on C_N."""
        from repro.experiments.rca import worst_case_experiment

        result = worst_case_experiment(n)
        assert result["top_carry_toggles"] == n
        assert result["top_sum_toggles"] == n

    def test_probability_negligible_for_word_sizes(self):
        """Section 3.1: already negligible for small N."""
        assert worst_case_probability(16) < 1e-13
